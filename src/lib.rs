//! Umbrella crate for the XRPC reproduction: re-exports every workspace
//! crate under one roof so examples and integration tests have a single
//! dependency.
//!
//! See `README.md` for a guided tour and `DESIGN.md` for the system
//! inventory and the per-experiment index.

pub use distq;
pub use relalg;
pub use xdm;
pub use xmark;
pub use xmldom;
pub use xqast;
pub use xqeval;
pub use xrpc_net;
pub use xrpc_peer;
pub use xrpc_proto;
