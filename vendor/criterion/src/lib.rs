//! Offline stand-in for the `criterion` crate (see `vendor/README.md`).
//!
//! Keeps the bench *definitions* compiling and runnable: `cargo bench`
//! executes each benchmark a fixed small number of iterations and prints
//! mean wall-clock time per iteration. No statistics, plots, or baseline
//! comparison — swap the real criterion back in for publication-grade
//! numbers.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _c: self,
            name: name.to_string(),
            sample_size,
        }
    }

    pub fn bench_function(&mut self, id: impl Display, mut f: impl FnMut(&mut Bencher)) {
        run_one("", &id.to_string(), self.sample_size, &mut f);
    }
}

pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function(&mut self, id: impl Display, mut f: impl FnMut(&mut Bencher)) {
        run_one(&self.name, &id.to_string(), self.sample_size, &mut f);
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        run_one(
            &self.name,
            &id.label,
            self.sample_size,
            &mut |b: &mut Bencher| f(b, input),
        );
    }

    pub fn finish(self) {}
}

fn run_one(group: &str, label: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        iters: samples as u64,
        elapsed: Duration::ZERO,
        measured: 0,
    };
    f(&mut b);
    let full = if group.is_empty() {
        label.to_string()
    } else {
        format!("{group}/{label}")
    };
    if b.measured > 0 {
        let per_iter = b.elapsed / b.measured as u32;
        println!(
            "bench {full:<50} {per_iter:>12?}/iter ({} iters)",
            b.measured
        );
    } else {
        println!("bench {full:<50} (no measurement)");
    }
}

pub struct Bencher {
    iters: u64,
    elapsed: Duration,
    measured: u64,
}

impl Bencher {
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        let t0 = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed += t0.elapsed();
        self.measured += self.iters;
    }
}

pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(name: impl Display, param: impl Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{param}"),
        }
    }
}

pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() { $( $group(); )+ }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_measures() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut ran = 0u64;
        group.bench_function("f", |b| b.iter(|| ran += 1));
        group.finish();
        assert_eq!(ran, 3);
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::new("f", 7), &7usize, |b, &x| {
            b.iter(|| assert_eq!(x, 7))
        });
    }
}
