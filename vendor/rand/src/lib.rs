//! Offline stand-in for the `rand` crate (see `vendor/README.md`).
//!
//! Implements the API subset the workspace uses — `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::gen_range` over integer ranges —
//! with a deterministic xoshiro256** generator seeded via splitmix64.
//! The bit streams differ from the real `rand::StdRng`, which is fine
//! here: callers only use it for cosmetic filler (padding words, prices),
//! never for content that tests assert on.

pub mod rngs {
    /// Deterministic 64-bit generator (xoshiro256**).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }

    impl StdRng {
        pub(crate) fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        rngs::StdRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

/// Integer range types `gen_range` accepts.
pub trait SampleRange {
    type Output;
    fn sample(self, rng: &mut rngs::StdRng) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut rngs::StdRng) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128 + self.start as i128;
                v as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut rngs::StdRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128 + start as i128;
                v as $t
            }
        }
    )*};
}

impl_sample_range!(usize, u64, u32, u16, u8, i64, i32, i16, i8);

pub trait Rng {
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output;
    fn gen_bool(&mut self, p: f64) -> bool;
}

impl Rng for rngs::StdRng {
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::{Rng, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000usize), b.gen_range(0..1000usize));
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(10_000..100_000);
            assert!((10_000..100_000).contains(&v));
            let w = r.gen_range(1..=28u8);
            assert!((1..=28).contains(&w));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let av: Vec<u64> = (0..8).map(|_| a.gen_range(0..u64::MAX)).collect();
        let bv: Vec<u64> = (0..8).map(|_| b.gen_range(0..u64::MAX)).collect();
        assert_ne!(av, bv);
    }
}
