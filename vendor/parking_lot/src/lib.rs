//! Offline stand-in for the `parking_lot` crate (see `vendor/README.md`).
//!
//! Provides the subset of the API this workspace uses — `Mutex` and
//! `RwLock` whose `lock`/`read`/`write` return guards directly (no
//! `Result`) — implemented over `std::sync`. Poisoning is deliberately
//! ignored, matching parking_lot semantics: a panic while holding a lock
//! does not poison it for later users.

use std::fmt;
use std::ops::{Deref, DerefMut};

pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: match self.inner.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            },
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: p.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Condition variable paired with [`Mutex`], parking_lot-style: `wait`
/// takes the guard by `&mut` and re-acquires the lock before returning.
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // The std condvar consumes the guard and returns a fresh one;
        // move it out of `guard` and write the replacement back without
        // dropping the moved-out bytes (wait() already consumed them).
        unsafe {
            let inner = std::ptr::read(&guard.inner);
            let reacquired = match self.inner.wait(inner) {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            std::ptr::write(&mut guard.inner, reacquired);
        }
    }

    /// Wait with a timeout; returns `true` if the wait timed out. Like
    /// `wait`, spurious wakeups are possible — callers must re-check
    /// their predicate either way.
    pub fn wait_timeout<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> bool {
        unsafe {
            let inner = std::ptr::read(&guard.inner);
            let (reacquired, timed_out) = match self.inner.wait_timeout(inner, timeout) {
                Ok((g, r)) => (g, r.timed_out()),
                Err(p) => {
                    let (g, r) = p.into_inner();
                    (g, r.timed_out())
                }
            };
            std::ptr::write(&mut guard.inner, reacquired);
            timed_out
        }
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar { .. }")
    }
}

pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: match self.inner.read() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            },
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: match self.inner.write() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            },
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RwLock { .. }")
    }
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }

    #[test]
    fn condvar_wakes_waiter() {
        use std::sync::Arc;
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (lock, cvar) = &*p2;
            let mut ready = lock.lock();
            while !*ready {
                cvar.wait(&mut ready);
            }
        });
        {
            let (lock, cvar) = &*pair;
            *lock.lock() = true;
            cvar.notify_all();
        }
        t.join().unwrap();
    }

    #[test]
    fn panic_does_not_poison() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }
}
