//! The §5 experiment: query Q7 (persons ⋈ closed auctions) executed under
//! all four distribution strategies — data shipping, predicate push-down,
//! execution relocation, distributed semi-join — between a loop-lifted
//! peer A and a *wrapped* plain engine B (the Saxon role).
//!
//! ```sh
//! cargo run --release --example semijoin_strategies
//! ```

use distq::{Strategy, MODULE_B};
use std::sync::Arc;
use std::time::Instant;
use xrpc_net::{NetProfile, SimNetwork};
use xrpc_peer::{EngineKind, Peer, XrpcWrapper};

const A_URI: &str = "xrpc://a.example.org";
const B_URI: &str = "xrpc://b.example.org";

fn main() {
    let params = xmark::XmarkParams {
        persons: 250,
        closed_auctions: 2000,
        matches: 6,
        padding_words: 30,
        seed: 42,
    };
    println!(
        "workload: {} persons at A, {} closed auctions at B, {} matches\n",
        params.persons, params.closed_auctions, params.matches
    );
    println!(
        "{:<24} {:>10} {:>12} {:>12} {:>9}",
        "strategy", "total ms", "wire KB", "requests", "results"
    );

    for strategy in Strategy::ALL {
        // fresh cluster per strategy so metrics don't mix
        let net = Arc::new(SimNetwork::new(NetProfile::lan()));
        let a = Peer::new(A_URI, EngineKind::Rel);
        a.add_document("persons.xml", &xmark::persons_xml(&params))
            .unwrap();
        a.register_module(MODULE_B).unwrap();
        // run A's queries through the distributed-optimizer behaviours
        // (loop-invariant hoisting + duplicate-call collapsing)
        a.set_rpc_optimize(true);
        a.set_transport(net.clone());
        net.register(A_URI, a.soap_handler());

        let b = XrpcWrapper::new();
        b.docs.insert(
            "auctions.xml",
            xmldom::parse(&xmark::auctions_xml(&params)).unwrap(),
        );
        b.modules.register_source(MODULE_B).unwrap();
        b.enable_remote_docs(net.clone());
        net.register(B_URI, b.soap_handler());

        let query = strategy.query(B_URI, A_URI);
        let t0 = Instant::now();
        let res = a
            .execute(&query)
            .unwrap_or_else(|_| panic!("{}", strategy.label()));
        let elapsed = t0.elapsed();
        let m = net.metrics.snapshot();
        let results = res
            .iter()
            .filter(|i| {
                matches!(i, xdm::Item::Node(n) if n.name().is_some_and(|q| q.local == "result"))
            })
            .count();
        println!(
            "{:<24} {:>10.0} {:>12.1} {:>12} {:>9}",
            strategy.label(),
            elapsed.as_secs_f64() * 1e3,
            (m.bytes_sent + m.bytes_received) as f64 / 1024.0,
            m.roundtrips,
            results
        );
        assert_eq!(results, params.matches);
    }

    println!(
        "\nThe semi-join ships only matching auctions (the paper's winner);\n\
         data shipping moves the whole auctions document to A first."
    );
}
