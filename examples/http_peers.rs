//! Real-wire deployment: two XRPC peers talking SOAP over actual HTTP/1.1
//! loopback TCP (the paper's transport), comparing Bulk RPC against
//! one-at-a-time dispatch on the same sockets.
//!
//! ```sh
//! cargo run --release --example http_peers
//! ```

use std::sync::Arc;
use std::time::Instant;
use xrpc_net::http::{HttpServer, HttpTransport};
use xrpc_peer::{EngineKind, Peer};

fn main() {
    // Peer B: the server side, with the test module from §3.3.
    let b = Peer::new("placeholder", EngineKind::Tree);
    b.register_module(xmark::test_module()).unwrap();
    let server = HttpServer::bind("127.0.0.1:0", {
        let h = b.soap_handler();
        Arc::new(move |_path: &str, body: &[u8]| (200, h(body)))
    })
    .expect("bind");
    b.set_name(server.url());
    println!("peer B serving SOAP XRPC at {}", server.url());

    let x = 200;
    for (label, engine) in [
        ("one-at-a-time (tree engine)", EngineKind::Tree),
        ("bulk RPC (loop-lifted)", EngineKind::Rel),
    ] {
        let a = Peer::new("xrpc://client", engine);
        a.register_module(xmark::test_module()).unwrap();
        let transport = Arc::new(HttpTransport::new());
        a.set_transport(transport.clone());

        let q = format!(
            r#"import module namespace tst = "test";
               for $i in (1 to {x}) return execute at {{"{}"}} {{tst:echoVoid()}}"#,
            server.url()
        );
        let t0 = Instant::now();
        a.execute(&q).expect("query");
        let elapsed = t0.elapsed();
        let m = transport.metrics.snapshot();
        println!(
            "{label}: {x} calls in {:.1} ms over {} HTTP POST(s) ({} B out, {} B in)",
            elapsed.as_secs_f64() * 1e3,
            m.roundtrips,
            m.bytes_sent,
            m.bytes_received
        );
    }
    println!(
        "\nBulk RPC amortizes every per-request cost: TCP handshake, HTTP framing, SOAP parsing."
    );
}
