//! Distributed updates over XRPC (paper §2.3): calling XQUF *updating
//! functions* remotely under both isolation levels.
//!
//! * isolation "none"   — rule RFu: each request's pending update list is
//!   applied immediately at the callee;
//! * isolation "repeatable" — rule R'Fu: callees defer their ∆s; the
//!   originator drives WS-AtomicTransaction-style 2PC (Prepare/Commit) at
//!   the end, so the distributed commit is atomic. An incompatible update
//!   pair demonstrates the abort path.
//!
//! ```sh
//! cargo run --example distributed_update
//! ```

use std::sync::Arc;
use xrpc_net::{NetProfile, SimNetwork};
use xrpc_peer::{EngineKind, Peer};

const ACCOUNTS_MODULE: &str = r#"
    module namespace acc = "accounts";
    declare function acc:balance($id as xs:string) as xs:double
    { number(doc("accounts.xml")//account[@id = $id]/balance) };
    declare updating function acc:setBalance($id as xs:string, $v as xs:double)
    { replace value of node doc("accounts.xml")//account[@id = $id]/balance
      with string($v) };
    declare updating function acc:rename($id as xs:string, $n as xs:string)
    { rename node doc("accounts.xml")//account[@id = $id] as $n };
"#;

fn balance(peer: &Peer, id: &str) -> String {
    let doc = peer.docs.get("accounts.xml").unwrap();
    let mut found = String::new();
    for n in doc.all_ids() {
        if doc
            .node(n)
            .name
            .as_ref()
            .is_some_and(|q| q.local == "account")
            && doc.attr_local(n, "id") == Some(id)
        {
            found = doc.string_value(n).trim().to_string();
        }
    }
    found
}

fn main() {
    let net = Arc::new(SimNetwork::new(NetProfile::lan()));
    let bank1 = Peer::new("xrpc://bank1", EngineKind::Tree);
    let bank2 = Peer::new("xrpc://bank2", EngineKind::Tree);
    for (p, who) in [(&bank1, "alice"), (&bank2, "bob")] {
        p.register_module(ACCOUNTS_MODULE).unwrap();
        p.add_document(
            "accounts.xml",
            &format!(
                r#"<accounts><account id="{who}"><balance>100</balance></account></accounts>"#
            ),
        )
        .unwrap();
        p.set_transport(net.clone());
    }
    net.register("xrpc://bank1", bank1.soap_handler());
    net.register("xrpc://bank2", bank2.soap_handler());

    // The coordinator peer holds no data itself.
    let coordinator = Peer::new("xrpc://coordinator", EngineKind::Tree);
    coordinator.register_module(ACCOUNTS_MODULE).unwrap();
    coordinator.set_transport(net.clone());

    println!(
        "before: alice={} at bank1, bob={} at bank2",
        balance(&bank1, "alice"),
        balance(&bank2, "bob")
    );

    // A distributed transfer, atomically committed via 2PC.
    let transfer = r#"
        declare option xrpc:isolation "repeatable";
        declare option xrpc:timeout "30";
        import module namespace acc = "accounts";
        ( execute at {"xrpc://bank1"} {acc:setBalance("alice", 70)},
          execute at {"xrpc://bank2"} {acc:setBalance("bob", 130)} )"#;
    let out = coordinator.execute_detailed(transfer).expect("transfer");
    println!(
        "transfer committed via 2PC: {:?}",
        out.commit.expect("2PC ran")
    );
    println!(
        "after:  alice={} at bank1, bob={} at bank2",
        balance(&bank1, "alice"),
        balance(&bank2, "bob")
    );
    assert_eq!(balance(&bank1, "alice"), "70");
    assert_eq!(balance(&bank2, "bob"), "130");

    // An incompatible pair of updates (two renames of one node) must abort
    // atomically: neither bank applies anything.
    let broken = r#"
        declare option xrpc:isolation "repeatable";
        import module namespace acc = "accounts";
        ( execute at {"xrpc://bank1"} {acc:rename("alice", "a1")},
          execute at {"xrpc://bank1"} {acc:rename("alice", "a2")},
          execute at {"xrpc://bank2"} {acc:setBalance("bob", 0)} )"#;
    let err = match coordinator.execute_detailed(broken) {
        Err(e) => e,
        Ok(_) => panic!("conflicting transaction must abort"),
    };
    println!("\nconflicting transaction correctly aborted: {err}");
    assert_eq!(balance(&bank2, "bob"), "130", "abort must be atomic");

    // Rule RFu for contrast: isolation "none" applies per request, no 2PC.
    let quick = r#"
        import module namespace acc = "accounts";
        execute at {"xrpc://bank2"} {acc:setBalance("bob", 42)}"#;
    coordinator.execute(quick).expect("rfu update");
    println!(
        "\nisolation none (rule RFu): bob={} immediately, no coordination messages",
        balance(&bank2, "bob")
    );
    assert_eq!(balance(&bank2, "bob"), "42");
}
