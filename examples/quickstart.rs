//! Quickstart: the paper's running example (§2, query Q1).
//!
//! Two peers on a simulated network: `y.example.org` stores a film
//! database; the local peer executes a remote function on it with
//! `execute at` and wraps the result in a `<films>` element.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use std::sync::Arc;
use xrpc_net::{NetProfile, SimNetwork};
use xrpc_peer::{EngineKind, Peer};

fn main() {
    // The film module of the paper, notionally hosted at x.example.org.
    let film_module = r#"
        module namespace film = "films";
        declare function film:filmsByActor($actor as xs:string) as node()*
        { doc("filmDB.xml")//name[../actor = $actor] };
    "#;

    // A simulated LAN with two peers.
    let net = Arc::new(SimNetwork::new(NetProfile::lan()));

    // Remote peer y.example.org: stores the film DB, serves XRPC.
    let y = Peer::new("xrpc://y.example.org", EngineKind::Tree);
    y.register_module(film_module).unwrap();
    y.add_document(
        "filmDB.xml",
        r#"<films>
<film><name>The Rock</name><actor>Sean Connery</actor></film>
<film><name>Goldfinger</name><actor>Sean Connery</actor></film>
<film><name>Green Card</name><actor>Gerard Depardieu</actor></film>
</films>"#,
    )
    .unwrap();
    net.register("xrpc://y.example.org", y.soap_handler());

    // Local peer: loop-lifted engine (generates Bulk RPC in loops).
    let local = Peer::new("xrpc://local", EngineKind::Rel);
    local.register_module(film_module).unwrap();
    local.set_transport(net.clone());

    // Query Q1 from the paper.
    let q1 = r#"
        import module namespace f = "films" at "http://x.example.org/film.xq";
        <films> {
          execute at {"xrpc://y.example.org"}
          {f:filmsByActor("Sean Connery")}
        } </films>"#;

    let result = local.execute(q1).expect("Q1 failed");
    let xml = result
        .items()
        .iter()
        .filter_map(|i| i.as_node().map(|n| n.to_xml()))
        .collect::<String>();
    println!("Q1 result:\n  {xml}");
    assert_eq!(
        xml,
        "<films><name>The Rock</name><name>Goldfinger</name></films>"
    );

    // Q2: the same call in a loop — watch it become ONE bulk request.
    let q2 = r#"
        import module namespace f = "films";
        for $actor in ("Julie Andrews", "Sean Connery")
        return execute at {"xrpc://y.example.org"} {f:filmsByActor($actor)}"#;
    let out = local.execute_detailed(q2).expect("Q2 failed");
    println!(
        "\nQ2: {} loop iterations -> {} XRPC request(s) carrying {} call(s) (Bulk RPC)",
        2, out.requests_sent, out.calls_sent
    );
    assert_eq!(out.requests_sent, 1);

    let m = net.metrics.snapshot();
    println!(
        "\nnetwork: {} round-trips, {} B sent, {} B received",
        m.roundtrips, m.bytes_sent, m.bytes_received
    );
}
