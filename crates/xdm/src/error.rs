//! XQuery error values (`err:XPST0003` and friends), shared by every layer:
//! parser, evaluators, protocol handlers. An XRPC SOAP Fault carries one of
//! these across the wire (paper §2.1, "XRPC Error Message").

use std::fmt;

/// An XQuery error: a W3C error code plus a human-readable message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct XdmError {
    pub code: String,
    pub message: String,
}

pub type XdmResult<T> = Result<T, XdmError>;

impl XdmError {
    pub fn new(code: &str, message: impl Into<String>) -> Self {
        XdmError {
            code: code.to_string(),
            message: message.into(),
        }
    }

    // Frequently used codes, named for grep-ability.

    /// XPST0003: grammar / static syntax error.
    pub fn syntax(message: impl Into<String>) -> Self {
        Self::new("XPST0003", message)
    }

    /// XPTY0004: type error.
    pub fn type_error(message: impl Into<String>) -> Self {
        Self::new("XPTY0004", message)
    }

    /// XPST0017: unknown function (name/arity).
    pub fn unknown_function(message: impl Into<String>) -> Self {
        Self::new("XPST0017", message)
    }

    /// XPST0008: undefined variable / name.
    pub fn undefined(message: impl Into<String>) -> Self {
        Self::new("XPST0008", message)
    }

    /// FORG0001: invalid value for cast.
    pub fn invalid_cast(message: impl Into<String>) -> Self {
        Self::new("FORG0001", message)
    }

    /// FOCA0002 and friends collapse to this for invalid lexical forms.
    pub fn invalid_lexical(message: impl Into<String>) -> Self {
        Self::new("FOCA0002", message)
    }

    /// FOAR0001: division by zero.
    pub fn div_by_zero() -> Self {
        Self::new("FOAR0001", "division by zero")
    }

    /// FODC0002: error retrieving resource (fn:doc).
    pub fn doc_error(message: impl Into<String>) -> Self {
        Self::new("FODC0002", message)
    }

    /// FORG0006: invalid argument (e.g. EBV of a bad sequence).
    pub fn invalid_arg(message: impl Into<String>) -> Self {
        Self::new("FORG0006", message)
    }

    /// XUDY0023-ish bucket for update-related dynamic errors.
    pub fn update_error(message: impl Into<String>) -> Self {
        Self::new("XUDY0027", message)
    }

    /// XRPC-specific dynamic errors (network, marshaling, remote fault).
    /// The paper does not assign W3C codes; we use a vendor code.
    pub fn xrpc(message: impl Into<String>) -> Self {
        Self::new("XRPC0001", message)
    }

    /// XRPC isolation violation: queryID expired or unknown (paper §2.2).
    pub fn xrpc_expired(message: impl Into<String>) -> Self {
        Self::new("XRPC0002", message)
    }

    /// XRPC durability fault: the write-ahead log can no longer promise
    /// stable storage (append/fsync failure, poisoned log). Distinct from
    /// XRPC0001 so callers can fail prepares fast instead of retrying.
    pub fn xrpc_durability(message: impl Into<String>) -> Self {
        Self::new("XRPC0003", message)
    }

    /// XRPC deadline exceeded: the query's wall-clock budget (derived from
    /// `xrpc:timeout`) ran out. Every layer that enforces the budget —
    /// evaluator checkpoints, arrival checks, retry caps — raises this
    /// code so the originator can tell a timeout from a remote crash.
    pub fn xrpc_deadline(message: impl Into<String>) -> Self {
        Self::new("XRPC0004", message)
    }

    /// XRPC cooperative cancellation: the query was explicitly cancelled
    /// (client connection died, originator fan-out, admin action) rather
    /// than timing out. Never retried.
    pub fn xrpc_cancelled(message: impl Into<String>) -> Self {
        Self::new("XRPC0005", message)
    }
}

impl fmt::Display for XdmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.code, self.message)
    }
}

impl std::error::Error for XdmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_code() {
        let e = XdmError::type_error("boom");
        assert_eq!(e.to_string(), "[XPTY0004] boom");
    }

    #[test]
    fn constructors_set_expected_codes() {
        assert_eq!(XdmError::syntax("x").code, "XPST0003");
        assert_eq!(XdmError::div_by_zero().code, "FOAR0001");
        assert_eq!(XdmError::xrpc("x").code, "XRPC0001");
        assert_eq!(XdmError::xrpc_expired("x").code, "XRPC0002");
        assert_eq!(XdmError::xrpc_durability("x").code, "XRPC0003");
        assert_eq!(XdmError::xrpc_deadline("x").code, "XRPC0004");
        assert_eq!(XdmError::xrpc_cancelled("x").code, "XRPC0005");
    }
}
