//! A fixed-point `xs:decimal` implementation: an `i128` mantissa with a
//! decimal scale (number of fractional digits), enough precision for the
//! XDM's minimum conformance requirements (18 digits).

use crate::error::{XdmError, XdmResult};
use std::cmp::Ordering;
use std::fmt;

/// Maximum fractional digits we keep after division.
const MAX_SCALE: u32 = 18;

/// Arbitrary-enough precision decimal: `mantissa * 10^-scale`.
#[derive(Clone, Copy, Debug)]
pub struct Decimal {
    mantissa: i128,
    scale: u32,
}

// arithmetic is deliberately by-name (`a.add(b)`), not via std::ops: `div`
// and `rem` are fallible (XPTY div-by-zero), so operator overloads would
// split the API in two
#[allow(clippy::should_implement_trait)]
impl Decimal {
    pub fn new(mantissa: i128, scale: u32) -> Self {
        Decimal { mantissa, scale }.normalized()
    }

    pub fn from_i64(v: i64) -> Self {
        Decimal {
            mantissa: v as i128,
            scale: 0,
        }
    }

    pub fn zero() -> Self {
        Decimal {
            mantissa: 0,
            scale: 0,
        }
    }

    pub fn is_zero(&self) -> bool {
        self.mantissa == 0
    }

    pub fn is_negative(&self) -> bool {
        self.mantissa < 0
    }

    /// Parse an `xs:decimal` lexical form: optional sign, digits, optional
    /// fraction. Exponents are *not* allowed (that is xs:double).
    pub fn parse(s: &str) -> XdmResult<Self> {
        let s = s.trim();
        if s.is_empty() {
            return Err(XdmError::invalid_cast("empty decimal"));
        }
        let (neg, rest) = match s.as_bytes()[0] {
            b'-' => (true, &s[1..]),
            b'+' => (false, &s[1..]),
            _ => (false, s),
        };
        let (int_part, frac_part) = match rest.split_once('.') {
            Some((i, f)) => (i, f),
            None => (rest, ""),
        };
        if int_part.is_empty() && frac_part.is_empty() {
            return Err(XdmError::invalid_cast(format!("invalid decimal `{s}`")));
        }
        if !int_part.bytes().all(|b| b.is_ascii_digit())
            || !frac_part.bytes().all(|b| b.is_ascii_digit())
        {
            return Err(XdmError::invalid_cast(format!("invalid decimal `{s}`")));
        }
        let frac = if frac_part.len() as u32 > MAX_SCALE {
            &frac_part[..MAX_SCALE as usize]
        } else {
            frac_part
        };
        let digits = format!("{int_part}{frac}");
        let mantissa: i128 = if digits.is_empty() {
            0
        } else {
            digits
                .parse()
                .map_err(|_| XdmError::invalid_cast(format!("decimal overflow `{s}`")))?
        };
        let mantissa = if neg { -mantissa } else { mantissa };
        Ok(Decimal {
            mantissa,
            scale: frac.len() as u32,
        }
        .normalized())
    }

    fn normalized(mut self) -> Self {
        while self.scale > 0 && self.mantissa % 10 == 0 {
            self.mantissa /= 10;
            self.scale -= 1;
        }
        self
    }

    fn rescaled_pair(a: Decimal, b: Decimal) -> (i128, i128, u32) {
        let scale = a.scale.max(b.scale);
        let am = a.mantissa * 10i128.pow(scale - a.scale);
        let bm = b.mantissa * 10i128.pow(scale - b.scale);
        (am, bm, scale)
    }

    pub fn add(self, other: Decimal) -> Decimal {
        let (a, b, s) = Self::rescaled_pair(self, other);
        Decimal::new(a + b, s)
    }

    pub fn sub(self, other: Decimal) -> Decimal {
        let (a, b, s) = Self::rescaled_pair(self, other);
        Decimal::new(a - b, s)
    }

    pub fn mul(self, other: Decimal) -> Decimal {
        let mut m = self.mantissa * other.mantissa;
        let mut s = self.scale + other.scale;
        while s > MAX_SCALE {
            m /= 10;
            s -= 1;
        }
        Decimal::new(m, s)
    }

    pub fn div(self, other: Decimal) -> XdmResult<Decimal> {
        if other.is_zero() {
            return Err(XdmError::div_by_zero());
        }
        // Compute with MAX_SCALE fractional digits of precision.
        let (a, b, _) = Self::rescaled_pair(self, other);
        let scaled = a
            .checked_mul(10i128.pow(MAX_SCALE))
            .ok_or_else(|| XdmError::invalid_cast("decimal division overflow"))?;
        Ok(Decimal::new(scaled / b, MAX_SCALE))
    }

    /// Integer division (`idiv`), truncating toward zero.
    pub fn idiv(self, other: Decimal) -> XdmResult<i64> {
        if other.is_zero() {
            return Err(XdmError::div_by_zero());
        }
        let (a, b, _) = Self::rescaled_pair(self, other);
        Ok((a / b) as i64)
    }

    /// Remainder (`mod`), sign follows the dividend.
    pub fn rem(self, other: Decimal) -> XdmResult<Decimal> {
        if other.is_zero() {
            return Err(XdmError::div_by_zero());
        }
        let (a, b, s) = Self::rescaled_pair(self, other);
        Ok(Decimal::new(a % b, s))
    }

    pub fn neg(self) -> Decimal {
        Decimal {
            mantissa: -self.mantissa,
            scale: self.scale,
        }
    }

    pub fn abs(self) -> Decimal {
        Decimal {
            mantissa: self.mantissa.abs(),
            scale: self.scale,
        }
    }

    pub fn floor(self) -> i64 {
        let d = 10i128.pow(self.scale);
        let q = self.mantissa.div_euclid(d);
        q as i64
    }

    pub fn ceiling(self) -> i64 {
        -((-self).floor())
    }

    /// Round half away from zero (fn:round semantics for positive halves).
    pub fn round(self) -> i64 {
        let d = 10i128.pow(self.scale);
        let half = d / 2;
        // fn:round rounds .5 toward positive infinity.
        ((self.mantissa + half).div_euclid(d)) as i64
    }

    pub fn to_f64(self) -> f64 {
        self.mantissa as f64 / 10f64.powi(self.scale as i32)
    }

    /// Exact conversion to i64 if integral and in range.
    pub fn to_i64_exact(self) -> Option<i64> {
        let n = self.normalized();
        if n.scale == 0 && n.mantissa >= i64::MIN as i128 && n.mantissa <= i64::MAX as i128 {
            Some(n.mantissa as i64)
        } else {
            None
        }
    }
}

impl std::ops::Neg for Decimal {
    type Output = Decimal;
    fn neg(self) -> Decimal {
        Decimal::neg(self)
    }
}

impl PartialEq for Decimal {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Decimal {}

impl PartialOrd for Decimal {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Decimal {
    fn cmp(&self, other: &Self) -> Ordering {
        let (a, b, _) = Self::rescaled_pair(*self, *other);
        a.cmp(&b)
    }
}

impl fmt::Display for Decimal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let n = self.normalized();
        if n.scale == 0 {
            return write!(f, "{}", n.mantissa);
        }
        let sign = if n.mantissa < 0 { "-" } else { "" };
        let abs = n.mantissa.unsigned_abs();
        let d = 10u128.pow(n.scale);
        let int = abs / d;
        let frac = abs % d;
        let frac_str = format!("{:0width$}", frac, width = n.scale as usize);
        let frac_str = frac_str.trim_end_matches('0');
        if frac_str.is_empty() {
            write!(f, "{sign}{int}")
        } else {
            write!(f, "{sign}{int}.{frac_str}")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(s: &str) -> Decimal {
        Decimal::parse(s).unwrap()
    }

    #[test]
    fn parse_and_display() {
        assert_eq!(d("3.14").to_string(), "3.14");
        assert_eq!(d("-0.50").to_string(), "-0.5");
        assert_eq!(d("42").to_string(), "42");
        assert_eq!(d("+1.0").to_string(), "1");
        assert_eq!(d(".5").to_string(), "0.5");
        assert_eq!(d("5.").to_string(), "5");
    }

    #[test]
    fn invalid_forms_rejected() {
        assert!(Decimal::parse("").is_err());
        assert!(Decimal::parse("1e3").is_err());
        assert!(Decimal::parse("abc").is_err());
        assert!(Decimal::parse(".").is_err());
        assert!(Decimal::parse("1.2.3").is_err());
    }

    #[test]
    fn arithmetic() {
        assert_eq!(d("1.5").add(d("2.25")), d("3.75"));
        assert_eq!(d("1").sub(d("0.001")), d("0.999"));
        assert_eq!(d("1.5").mul(d("2")), d("3"));
        assert_eq!(d("1").div(d("8")).unwrap(), d("0.125"));
        assert_eq!(d("7").idiv(d("2")).unwrap(), 3);
        assert_eq!(d("-7").idiv(d("2")).unwrap(), -3);
        assert_eq!(d("7.5").rem(d("2")).unwrap(), d("1.5"));
    }

    #[test]
    fn div_by_zero_errors() {
        assert_eq!(d("1").div(d("0")).unwrap_err().code, "FOAR0001");
        assert_eq!(d("1").idiv(d("0")).unwrap_err().code, "FOAR0001");
        assert_eq!(d("1").rem(d("0")).unwrap_err().code, "FOAR0001");
    }

    #[test]
    fn comparisons_rescale() {
        assert_eq!(d("1.50"), d("1.5"));
        assert!(d("1.5") < d("1.51"));
        assert!(d("-2") < d("1"));
    }

    #[test]
    fn rounding_family() {
        assert_eq!(d("2.5").round(), 3);
        assert_eq!(d("-2.5").round(), -2); // fn:round: toward +inf
        assert_eq!(d("2.4").floor(), 2);
        assert_eq!(d("-2.4").floor(), -3);
        assert_eq!(d("2.4").ceiling(), 3);
        assert_eq!(d("-2.4").ceiling(), -2);
    }

    #[test]
    fn exact_i64() {
        assert_eq!(d("42").to_i64_exact(), Some(42));
        assert_eq!(d("42.0").to_i64_exact(), Some(42));
        assert_eq!(d("42.5").to_i64_exact(), None);
    }
}
