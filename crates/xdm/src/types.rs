//! Atomic types, item types, occurrence indicators and sequence types.

use std::fmt;

/// The built-in atomic types XRPC marshals (paper §2.1 lists `xsi:type`
/// annotations like `xs:string`, `xs:integer`, `xs:double`, ...).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum AtomicType {
    String,
    UntypedAtomic,
    AnyUri,
    Boolean,
    Integer,
    Decimal,
    Double,
    Float,
    QNameT,
    Date,
    Time,
    DateTime,
    Duration,
}

impl AtomicType {
    /// The `xs:`-prefixed lexical QName used on the wire.
    pub fn xs_name(self) -> &'static str {
        match self {
            AtomicType::String => "xs:string",
            AtomicType::UntypedAtomic => "xs:untypedAtomic",
            AtomicType::AnyUri => "xs:anyURI",
            AtomicType::Boolean => "xs:boolean",
            AtomicType::Integer => "xs:integer",
            AtomicType::Decimal => "xs:decimal",
            AtomicType::Double => "xs:double",
            AtomicType::Float => "xs:float",
            AtomicType::QNameT => "xs:QName",
            AtomicType::Date => "xs:date",
            AtomicType::Time => "xs:time",
            AtomicType::DateTime => "xs:dateTime",
            AtomicType::Duration => "xs:duration",
        }
    }

    /// Inverse of [`xs_name`](Self::xs_name); accepts an optional `xs:`
    /// prefix (protocol messages always carry it).
    pub fn from_xs_name(name: &str) -> Option<AtomicType> {
        let local = name.strip_prefix("xs:").unwrap_or(name);
        Some(match local {
            "string" => AtomicType::String,
            "untypedAtomic" => AtomicType::UntypedAtomic,
            "anyURI" => AtomicType::AnyUri,
            "boolean" => AtomicType::Boolean,
            "integer" | "long" | "int" | "short" | "byte" | "nonNegativeInteger"
            | "positiveInteger" | "negativeInteger" | "nonPositiveInteger" | "unsignedLong"
            | "unsignedInt" | "unsignedShort" | "unsignedByte" => AtomicType::Integer,
            "decimal" => AtomicType::Decimal,
            "double" => AtomicType::Double,
            "float" => AtomicType::Float,
            "QName" => AtomicType::QNameT,
            "date" => AtomicType::Date,
            "time" => AtomicType::Time,
            "dateTime" => AtomicType::DateTime,
            "duration" | "dayTimeDuration" | "yearMonthDuration" => AtomicType::Duration,
            _ => return None,
        })
    }

    pub fn is_numeric(self) -> bool {
        matches!(
            self,
            AtomicType::Integer | AtomicType::Decimal | AtomicType::Double | AtomicType::Float
        )
    }
}

impl fmt::Display for AtomicType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.xs_name())
    }
}

/// Occurrence indicator of a sequence type.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Occurrence {
    /// exactly one
    One,
    /// `?` zero or one
    ZeroOrOne,
    /// `*` zero or more
    ZeroOrMore,
    /// `+` one or more
    OneOrMore,
}

impl Occurrence {
    pub fn accepts(self, n: usize) -> bool {
        match self {
            Occurrence::One => n == 1,
            Occurrence::ZeroOrOne => n <= 1,
            Occurrence::ZeroOrMore => true,
            Occurrence::OneOrMore => n >= 1,
        }
    }

    pub fn indicator(self) -> &'static str {
        match self {
            Occurrence::One => "",
            Occurrence::ZeroOrOne => "?",
            Occurrence::ZeroOrMore => "*",
            Occurrence::OneOrMore => "+",
        }
    }
}

/// Item type component of a sequence type.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ItemKind {
    /// `item()`
    AnyItem,
    /// a specific atomic type
    Atomic(AtomicType),
    /// `node()`
    AnyNode,
    /// `element()` / `element(name)`
    Element(Option<String>),
    /// `attribute()` / `attribute(name)`
    Attribute(Option<String>),
    /// `document-node()`
    DocumentNode,
    /// `text()`
    Text,
    /// `comment()`
    Comment,
    /// `processing-instruction()`
    Pi,
    /// `empty-sequence()` — occurrence is ignored
    EmptySequence,
}

/// A sequence type: item kind + occurrence (`xs:string*`, `node()?`, ...).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SeqType {
    pub kind: ItemKind,
    pub occurrence: Occurrence,
}

impl SeqType {
    pub fn one(kind: ItemKind) -> Self {
        SeqType {
            kind,
            occurrence: Occurrence::One,
        }
    }

    pub fn star(kind: ItemKind) -> Self {
        SeqType {
            kind,
            occurrence: Occurrence::ZeroOrMore,
        }
    }

    pub fn any() -> Self {
        SeqType::star(ItemKind::AnyItem)
    }

    pub fn empty() -> Self {
        SeqType {
            kind: ItemKind::EmptySequence,
            occurrence: Occurrence::ZeroOrMore,
        }
    }
}

impl fmt::Display for SeqType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match &self.kind {
            ItemKind::AnyItem => "item()".to_string(),
            ItemKind::Atomic(a) => a.xs_name().to_string(),
            ItemKind::AnyNode => "node()".to_string(),
            ItemKind::Element(None) => "element()".to_string(),
            ItemKind::Element(Some(n)) => format!("element({n})"),
            ItemKind::Attribute(None) => "attribute()".to_string(),
            ItemKind::Attribute(Some(n)) => format!("attribute({n})"),
            ItemKind::DocumentNode => "document-node()".to_string(),
            ItemKind::Text => "text()".to_string(),
            ItemKind::Comment => "comment()".to_string(),
            ItemKind::Pi => "processing-instruction()".to_string(),
            ItemKind::EmptySequence => return f.write_str("empty-sequence()"),
        };
        write!(f, "{}{}", kind, self.occurrence.indicator())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xs_name_roundtrip() {
        for t in [
            AtomicType::String,
            AtomicType::Boolean,
            AtomicType::Integer,
            AtomicType::Decimal,
            AtomicType::Double,
            AtomicType::Float,
            AtomicType::UntypedAtomic,
            AtomicType::AnyUri,
            AtomicType::QNameT,
            AtomicType::Date,
            AtomicType::Time,
            AtomicType::DateTime,
            AtomicType::Duration,
        ] {
            assert_eq!(AtomicType::from_xs_name(t.xs_name()), Some(t));
        }
    }

    #[test]
    fn derived_integer_types_collapse() {
        assert_eq!(
            AtomicType::from_xs_name("xs:long"),
            Some(AtomicType::Integer)
        );
        assert_eq!(AtomicType::from_xs_name("int"), Some(AtomicType::Integer));
    }

    #[test]
    fn occurrence_accepts() {
        assert!(Occurrence::One.accepts(1));
        assert!(!Occurrence::One.accepts(0));
        assert!(Occurrence::ZeroOrOne.accepts(0));
        assert!(!Occurrence::ZeroOrOne.accepts(2));
        assert!(Occurrence::ZeroOrMore.accepts(99));
        assert!(!Occurrence::OneOrMore.accepts(0));
    }

    #[test]
    fn display_forms() {
        assert_eq!(
            SeqType::star(ItemKind::Atomic(AtomicType::String)).to_string(),
            "xs:string*"
        );
        assert_eq!(
            SeqType::one(ItemKind::Element(Some("person".into()))).to_string(),
            "element(person)"
        );
        assert_eq!(SeqType::empty().to_string(), "empty-sequence()");
    }
}
