//! The XQuery Data Model (XDM): typed atomic values, items, sequences,
//! sequence types and the casting/promotion machinery that both engines
//! (tree-walking and loop-lifted relational) share.
//!
//! The SOAP XRPC protocol round-trips exactly these values: atomic values
//! annotated with their `xs:` type and nodes passed by value (paper §2.1).

pub mod atomic;
pub mod decimal;
pub mod error;
pub mod item;
pub mod ops;
pub mod types;

pub use atomic::{AtomicValue, DateTimeValue, DurationValue};
pub use decimal::Decimal;
pub use error::{XdmError, XdmResult};
pub use item::{Item, Sequence};
pub use types::{AtomicType, Occurrence, SeqType};
