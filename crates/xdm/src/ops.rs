//! Arithmetic on atomic values with XQuery promotion rules.

use crate::atomic::AtomicValue;
use crate::decimal::Decimal;
use crate::error::{XdmError, XdmResult};

/// Binary arithmetic operator.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ArithOp {
    Add,
    Sub,
    Mul,
    Div,
    IDiv,
    Mod,
}

impl ArithOp {
    pub fn symbol(self) -> &'static str {
        match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "div",
            ArithOp::IDiv => "idiv",
            ArithOp::Mod => "mod",
        }
    }
}

/// Evaluate `a op b` with numeric promotion. Untyped operands are cast to
/// double first (XQuery §3.4).
pub fn arith(op: ArithOp, a: &AtomicValue, b: &AtomicValue) -> XdmResult<AtomicValue> {
    use crate::types::AtomicType as T;
    let a = match a {
        AtomicValue::UntypedAtomic(_) => a.cast_to(T::Double)?,
        _ => a.clone(),
    };
    let b = match b {
        AtomicValue::UntypedAtomic(_) => b.cast_to(T::Double)?,
        _ => b.clone(),
    };
    let (pa, pb) = AtomicValue::promote_pair(&a, &b)?;
    match (pa, pb) {
        (AtomicValue::Integer(x), AtomicValue::Integer(y)) => int_arith(op, x, y),
        (AtomicValue::Decimal(x), AtomicValue::Decimal(y)) => dec_arith(op, x, y),
        (AtomicValue::Double(x), AtomicValue::Double(y)) => dbl_arith(op, x, y),
        (AtomicValue::Float(x), AtomicValue::Float(y)) => {
            let r = dbl_arith(op, x as f64, y as f64)?;
            match r {
                AtomicValue::Double(d) => Ok(AtomicValue::Float(d as f32)),
                other => Ok(other),
            }
        }
        _ => unreachable!("promotion yields a numeric pair"),
    }
}

fn int_arith(op: ArithOp, x: i64, y: i64) -> XdmResult<AtomicValue> {
    let overflow = || XdmError::new("FOAR0002", "integer overflow");
    Ok(match op {
        ArithOp::Add => AtomicValue::Integer(x.checked_add(y).ok_or_else(overflow)?),
        ArithOp::Sub => AtomicValue::Integer(x.checked_sub(y).ok_or_else(overflow)?),
        ArithOp::Mul => AtomicValue::Integer(x.checked_mul(y).ok_or_else(overflow)?),
        ArithOp::Div => {
            // integer div yields xs:decimal
            return dec_arith(ArithOp::Div, Decimal::from_i64(x), Decimal::from_i64(y));
        }
        ArithOp::IDiv => {
            if y == 0 {
                return Err(XdmError::div_by_zero());
            }
            AtomicValue::Integer(x.checked_div(y).ok_or_else(overflow)?)
        }
        ArithOp::Mod => {
            if y == 0 {
                return Err(XdmError::div_by_zero());
            }
            AtomicValue::Integer(x % y)
        }
    })
}

fn dec_arith(op: ArithOp, x: Decimal, y: Decimal) -> XdmResult<AtomicValue> {
    Ok(match op {
        ArithOp::Add => AtomicValue::Decimal(x.add(y)),
        ArithOp::Sub => AtomicValue::Decimal(x.sub(y)),
        ArithOp::Mul => AtomicValue::Decimal(x.mul(y)),
        ArithOp::Div => AtomicValue::Decimal(x.div(y)?),
        ArithOp::IDiv => AtomicValue::Integer(x.idiv(y)?),
        ArithOp::Mod => AtomicValue::Decimal(x.rem(y)?),
    })
}

fn dbl_arith(op: ArithOp, x: f64, y: f64) -> XdmResult<AtomicValue> {
    Ok(match op {
        ArithOp::Add => AtomicValue::Double(x + y),
        ArithOp::Sub => AtomicValue::Double(x - y),
        ArithOp::Mul => AtomicValue::Double(x * y),
        // double division by zero yields INF, not an error (IEEE semantics)
        ArithOp::Div => AtomicValue::Double(x / y),
        ArithOp::IDiv => {
            if y == 0.0 {
                return Err(XdmError::div_by_zero());
            }
            let q = (x / y).trunc();
            if q.is_nan() || q.is_infinite() {
                return Err(XdmError::new("FOAR0002", "idiv overflow"));
            }
            AtomicValue::Integer(q as i64)
        }
        ArithOp::Mod => AtomicValue::Double(x % y),
    })
}

/// Unary minus.
pub fn negate(v: &AtomicValue) -> XdmResult<AtomicValue> {
    Ok(match v {
        AtomicValue::Integer(i) => AtomicValue::Integer(
            i.checked_neg()
                .ok_or_else(|| XdmError::new("FOAR0002", "integer overflow"))?,
        ),
        AtomicValue::Decimal(d) => AtomicValue::Decimal(-*d),
        AtomicValue::Double(d) => AtomicValue::Double(-d),
        AtomicValue::Float(f) => AtomicValue::Float(-f),
        AtomicValue::UntypedAtomic(_) => negate(&v.cast_to(crate::types::AtomicType::Double)?)?,
        other => {
            return Err(XdmError::type_error(format!(
                "cannot negate {}",
                other.atomic_type()
            )))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int(i: i64) -> AtomicValue {
        AtomicValue::Integer(i)
    }
    fn dec(s: &str) -> AtomicValue {
        AtomicValue::Decimal(Decimal::parse(s).unwrap())
    }
    fn dbl(d: f64) -> AtomicValue {
        AtomicValue::Double(d)
    }

    #[test]
    fn integer_ops() {
        assert_eq!(
            arith(ArithOp::Add, &int(2), &int(3)).unwrap().lexical(),
            "5"
        );
        assert_eq!(
            arith(ArithOp::Mul, &int(4), &int(5)).unwrap().lexical(),
            "20"
        );
        assert_eq!(
            arith(ArithOp::IDiv, &int(7), &int(2)).unwrap().lexical(),
            "3"
        );
        assert_eq!(
            arith(ArithOp::Mod, &int(7), &int(2)).unwrap().lexical(),
            "1"
        );
    }

    #[test]
    fn integer_div_yields_decimal() {
        let r = arith(ArithOp::Div, &int(1), &int(8)).unwrap();
        assert_eq!(r.atomic_type(), crate::types::AtomicType::Decimal);
        assert_eq!(r.lexical(), "0.125");
    }

    #[test]
    fn integer_div_by_zero_errors() {
        assert!(arith(ArithOp::Div, &int(1), &int(0)).is_err());
        assert!(arith(ArithOp::IDiv, &int(1), &int(0)).is_err());
        assert!(arith(ArithOp::Mod, &int(1), &int(0)).is_err());
    }

    #[test]
    fn double_div_by_zero_is_inf() {
        assert_eq!(
            arith(ArithOp::Div, &dbl(1.0), &dbl(0.0)).unwrap().lexical(),
            "INF"
        );
    }

    #[test]
    fn mixed_promotion() {
        let r = arith(ArithOp::Add, &int(1), &dec("0.5")).unwrap();
        assert_eq!(r.lexical(), "1.5");
        let r = arith(ArithOp::Add, &dec("0.5"), &dbl(1.0)).unwrap();
        assert_eq!(r.atomic_type(), crate::types::AtomicType::Double);
    }

    #[test]
    fn untyped_goes_double() {
        let u = AtomicValue::UntypedAtomic("4".into());
        let r = arith(ArithOp::Mul, &u, &int(2)).unwrap();
        assert_eq!(r.atomic_type(), crate::types::AtomicType::Double);
        assert_eq!(r.lexical(), "8");
    }

    #[test]
    fn overflow_detected() {
        assert!(arith(ArithOp::Add, &int(i64::MAX), &int(1)).is_err());
        assert!(negate(&int(i64::MIN)).is_err());
    }

    #[test]
    fn negate_types() {
        assert_eq!(negate(&int(3)).unwrap().lexical(), "-3");
        assert_eq!(negate(&dec("1.5")).unwrap().lexical(), "-1.5");
        assert!(negate(&AtomicValue::String("x".into())).is_err());
    }
}
