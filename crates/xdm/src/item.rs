//! Items and sequences — the universal value representation both engines
//! and the XRPC marshaler operate on.

use crate::atomic::AtomicValue;
use crate::error::{XdmError, XdmResult};
use crate::types::{AtomicType, ItemKind, SeqType};
use xmldom::{NodeHandle, NodeKind};

/// One XDM item: an atomic value or a node.
#[derive(Clone, Debug)]
pub enum Item {
    Atomic(AtomicValue),
    Node(NodeHandle),
}

impl Item {
    pub fn integer(i: i64) -> Item {
        Item::Atomic(AtomicValue::Integer(i))
    }

    pub fn string(s: impl Into<String>) -> Item {
        Item::Atomic(AtomicValue::String(s.into()))
    }

    pub fn boolean(b: bool) -> Item {
        Item::Atomic(AtomicValue::Boolean(b))
    }

    pub fn double(d: f64) -> Item {
        Item::Atomic(AtomicValue::Double(d))
    }

    pub fn is_node(&self) -> bool {
        matches!(self, Item::Node(_))
    }

    pub fn as_node(&self) -> Option<&NodeHandle> {
        match self {
            Item::Node(n) => Some(n),
            _ => None,
        }
    }

    pub fn as_atomic(&self) -> Option<&AtomicValue> {
        match self {
            Item::Atomic(a) => Some(a),
            _ => None,
        }
    }

    /// `fn:string()` of one item.
    pub fn string_value(&self) -> String {
        match self {
            Item::Atomic(a) => a.lexical(),
            Item::Node(n) => n.string_value(),
        }
    }

    /// Atomization (`fn:data`) of one item: nodes become untypedAtomic of
    /// their string value (we do not carry schema-validated types on nodes),
    /// except attributes annotated with an `xsi:type` we can decode.
    pub fn atomize(&self) -> AtomicValue {
        match self {
            Item::Atomic(a) => a.clone(),
            Item::Node(n) => {
                if let Some(ann) = &n.data().type_annotation {
                    if let Some(ty) = AtomicType::from_xs_name(ann) {
                        if let Ok(v) = AtomicValue::parse_as(&n.string_value(), ty) {
                            return v;
                        }
                    }
                }
                AtomicValue::UntypedAtomic(n.string_value())
            }
        }
    }

    /// Does this item match the given item kind?
    pub fn matches_kind(&self, kind: &ItemKind) -> bool {
        match (self, kind) {
            (_, ItemKind::AnyItem) => true,
            (Item::Atomic(a), ItemKind::Atomic(t)) => {
                let at = a.atomic_type();
                at == *t
                    // derived numeric acceptance: integer is a decimal
                    || (*t == AtomicType::Decimal && at == AtomicType::Integer)
                    // strings accept anyURI (promotion)
                    || (*t == AtomicType::String && at == AtomicType::AnyUri)
            }
            (Item::Node(_), ItemKind::AnyNode) => true,
            (Item::Node(n), ItemKind::Element(name)) => {
                n.kind() == NodeKind::Element
                    && name
                        .as_ref()
                        .map(|nm| n.name().is_some_and(|q| &q.local == nm))
                        .unwrap_or(true)
            }
            (Item::Node(n), ItemKind::Attribute(name)) => {
                n.kind() == NodeKind::Attribute
                    && name
                        .as_ref()
                        .map(|nm| n.name().is_some_and(|q| &q.local == nm))
                        .unwrap_or(true)
            }
            (Item::Node(n), ItemKind::DocumentNode) => n.kind() == NodeKind::Document,
            (Item::Node(n), ItemKind::Text) => n.kind() == NodeKind::Text,
            (Item::Node(n), ItemKind::Comment) => n.kind() == NodeKind::Comment,
            (Item::Node(n), ItemKind::Pi) => n.kind() == NodeKind::ProcessingInstruction,
            _ => false,
        }
    }
}

/// A sequence of items. The XDM identifies an item with the singleton
/// sequence containing it; this type keeps that flattening implicit.
#[derive(Clone, Debug, Default)]
pub struct Sequence {
    items: Vec<Item>,
}

impl Sequence {
    pub fn empty() -> Self {
        Sequence { items: Vec::new() }
    }

    pub fn one(item: Item) -> Self {
        Sequence { items: vec![item] }
    }

    pub fn from_items(items: Vec<Item>) -> Self {
        Sequence { items }
    }

    pub fn len(&self) -> usize {
        self.items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    pub fn items(&self) -> &[Item] {
        &self.items
    }

    pub fn into_items(self) -> Vec<Item> {
        self.items
    }

    pub fn iter(&self) -> std::slice::Iter<'_, Item> {
        self.items.iter()
    }

    pub fn push(&mut self, item: Item) {
        self.items.push(item);
    }

    pub fn extend(&mut self, other: Sequence) {
        self.items.extend(other.items);
    }

    pub fn first(&self) -> Option<&Item> {
        self.items.first()
    }

    /// Exactly-one-item accessor with a type error otherwise.
    pub fn singleton(&self) -> XdmResult<&Item> {
        if self.items.len() == 1 {
            Ok(&self.items[0])
        } else {
            Err(XdmError::type_error(format!(
                "expected a singleton sequence, got {} items",
                self.items.len()
            )))
        }
    }

    /// Zero-or-one accessor.
    pub fn zero_or_one(&self) -> XdmResult<Option<&Item>> {
        match self.items.len() {
            0 => Ok(None),
            1 => Ok(Some(&self.items[0])),
            n => Err(XdmError::type_error(format!(
                "expected at most one item, got {n}"
            ))),
        }
    }

    /// Effective boolean value (XQuery §2.4.3).
    pub fn ebv(&self) -> XdmResult<bool> {
        match self.items.as_slice() {
            [] => Ok(false),
            [Item::Node(_), ..] => Ok(true),
            [Item::Atomic(a)] => a.ebv(),
            _ => Err(XdmError::invalid_arg(
                "effective boolean value of a multi-item atomic sequence",
            )),
        }
    }

    /// Atomize every item (`fn:data`).
    pub fn atomized(&self) -> Vec<AtomicValue> {
        self.items.iter().map(|i| i.atomize()).collect()
    }

    /// The string value of the whole sequence, space-joined (serialization
    /// of atomic sequences).
    pub fn joined_string(&self) -> String {
        self.items
            .iter()
            .map(|i| i.string_value())
            .collect::<Vec<_>>()
            .join(" ")
    }

    /// Check against a sequence type; returns a type error on mismatch.
    pub fn check_type(&self, st: &SeqType) -> XdmResult<()> {
        if st.kind == ItemKind::EmptySequence {
            return if self.is_empty() {
                Ok(())
            } else {
                Err(XdmError::type_error("expected empty-sequence()"))
            };
        }
        if !st.occurrence.accepts(self.items.len()) {
            return Err(XdmError::type_error(format!(
                "cardinality {} does not match {}",
                self.items.len(),
                st
            )));
        }
        for it in &self.items {
            if !it.matches_kind(&st.kind) {
                return Err(XdmError::type_error(format!("item does not match {}", st)));
            }
        }
        Ok(())
    }
}

impl From<Vec<Item>> for Sequence {
    fn from(items: Vec<Item>) -> Self {
        Sequence { items }
    }
}

impl IntoIterator for Sequence {
    type Item = Item;
    type IntoIter = std::vec::IntoIter<Item>;
    fn into_iter(self) -> Self::IntoIter {
        self.items.into_iter()
    }
}

impl FromIterator<Item> for Sequence {
    fn from_iter<T: IntoIterator<Item = Item>>(iter: T) -> Self {
        Sequence {
            items: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use xmldom::parse;

    #[test]
    fn ebv_of_sequences() {
        assert!(!Sequence::empty().ebv().unwrap());
        assert!(Sequence::one(Item::boolean(true)).ebv().unwrap());
        assert!(!Sequence::one(Item::string("")).ebv().unwrap());
        let d = Arc::new(parse("<a/>").unwrap());
        let n = Item::Node(NodeHandle::root(d));
        // node-first sequence is always true, even multi-item
        let mut s = Sequence::one(n);
        s.push(Item::integer(0));
        assert!(s.ebv().unwrap());
        // multi-item atomic errors
        let s2 = Sequence::from_items(vec![Item::integer(1), Item::integer(2)]);
        assert!(s2.ebv().is_err());
    }

    #[test]
    fn atomize_node_is_untyped() {
        let d = Arc::new(parse("<a>42</a>").unwrap());
        let a = d.children(d.root())[0];
        let it = Item::Node(NodeHandle::new(d, a));
        match it.atomize() {
            AtomicValue::UntypedAtomic(s) => assert_eq!(s, "42"),
            other => panic!("expected untypedAtomic, got {other:?}"),
        }
    }

    #[test]
    fn atomize_respects_xsi_type_annotation() {
        let d = Arc::new(
            parse(
                r#"<v xmlns:xsi="http://www.w3.org/2001/XMLSchema-instance" xsi:type="xs:integer">7</v>"#,
            )
            .unwrap(),
        );
        let v = d.children(d.root())[0];
        let it = Item::Node(NodeHandle::new(d, v));
        match it.atomize() {
            AtomicValue::Integer(7) => {}
            other => panic!("expected integer 7, got {other:?}"),
        }
    }

    #[test]
    fn singleton_and_zero_or_one() {
        let s = Sequence::one(Item::integer(1));
        assert!(s.singleton().is_ok());
        assert!(Sequence::empty().singleton().is_err());
        assert!(Sequence::empty().zero_or_one().unwrap().is_none());
        let s2 = Sequence::from_items(vec![Item::integer(1), Item::integer(2)]);
        assert!(s2.zero_or_one().is_err());
    }

    #[test]
    fn type_checking() {
        use crate::types::*;
        let s = Sequence::from_items(vec![Item::string("a"), Item::string("b")]);
        s.check_type(&SeqType::star(ItemKind::Atomic(AtomicType::String)))
            .unwrap();
        assert!(s
            .check_type(&SeqType::one(ItemKind::Atomic(AtomicType::String)))
            .is_err());
        assert!(s
            .check_type(&SeqType::star(ItemKind::Atomic(AtomicType::Integer)))
            .is_err());
        // integer matches xs:decimal (derived)
        Sequence::one(Item::integer(3))
            .check_type(&SeqType::one(ItemKind::Atomic(AtomicType::Decimal)))
            .unwrap();
        Sequence::empty().check_type(&SeqType::empty()).unwrap();
    }

    #[test]
    fn node_kind_matching() {
        use crate::types::*;
        let d = Arc::new(parse(r#"<person id="1"><name>x</name></person>"#).unwrap());
        let p = d.children(d.root())[0];
        let ph = Item::Node(NodeHandle::new(d.clone(), p));
        assert!(ph.matches_kind(&ItemKind::Element(None)));
        assert!(ph.matches_kind(&ItemKind::Element(Some("person".into()))));
        assert!(!ph.matches_kind(&ItemKind::Element(Some("film".into()))));
        let attr = d.attributes(p)[0];
        let ah = Item::Node(NodeHandle::new(d.clone(), attr));
        assert!(ah.matches_kind(&ItemKind::Attribute(Some("id".into()))));
        assert!(!ah.matches_kind(&ItemKind::Element(None)));
    }
}
