//! Typed atomic values with lexical parsing/formatting, casting and
//! the value-comparison semantics XQuery defines.

use crate::decimal::Decimal;
use crate::error::{XdmError, XdmResult};
use crate::types::AtomicType;
use std::cmp::Ordering;

use xmldom::QName;

/// An `xs:dateTime` / `xs:date` / `xs:time` value. Unused components are
/// zero. Timezone is minutes east of UTC (`None` = no timezone).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DateTimeValue {
    pub year: i32,
    pub month: u8,
    pub day: u8,
    pub hour: u8,
    pub minute: u8,
    pub second: u8,
    pub nanos: u32,
    pub tz_minutes: Option<i16>,
}

impl DateTimeValue {
    /// Total ordering key: convert to an approximate UTC timeline value.
    /// Days-from-civil algorithm (Howard Hinnant), good for all years.
    fn timeline(&self) -> i128 {
        let y = self.year as i64 - if self.month <= 2 { 1 } else { 0 };
        let era = if y >= 0 { y } else { y - 399 } / 400;
        let yoe = y - era * 400;
        let m = self.month as i64;
        let doy = (153 * (if m > 2 { m - 3 } else { m + 9 }) + 2) / 5 + self.day as i64 - 1;
        let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
        let days = era * 146097 + doe - 719468;
        let mut secs = days as i128 * 86400
            + self.hour as i128 * 3600
            + self.minute as i128 * 60
            + self.second as i128;
        if let Some(tz) = self.tz_minutes {
            secs -= tz as i128 * 60;
        }
        secs * 1_000_000_000 + self.nanos as i128
    }

    pub fn cmp_value(&self, other: &DateTimeValue) -> Ordering {
        self.timeline().cmp(&other.timeline())
    }
}

/// An `xs:duration`: months plus (possibly fractional) seconds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DurationValue {
    pub months: i64,
    pub seconds: f64,
}

/// A typed atomic value of the XDM.
#[derive(Clone, Debug, PartialEq)]
pub enum AtomicValue {
    String(String),
    UntypedAtomic(String),
    AnyUri(String),
    Boolean(bool),
    Integer(i64),
    Decimal(Decimal),
    Double(f64),
    Float(f32),
    QNameV(QName),
    Date(DateTimeValue),
    Time(DateTimeValue),
    DateTime(DateTimeValue),
    Duration(DurationValue),
}

impl AtomicValue {
    pub fn atomic_type(&self) -> AtomicType {
        match self {
            AtomicValue::String(_) => AtomicType::String,
            AtomicValue::UntypedAtomic(_) => AtomicType::UntypedAtomic,
            AtomicValue::AnyUri(_) => AtomicType::AnyUri,
            AtomicValue::Boolean(_) => AtomicType::Boolean,
            AtomicValue::Integer(_) => AtomicType::Integer,
            AtomicValue::Decimal(_) => AtomicType::Decimal,
            AtomicValue::Double(_) => AtomicType::Double,
            AtomicValue::Float(_) => AtomicType::Float,
            AtomicValue::QNameV(_) => AtomicType::QNameT,
            AtomicValue::Date(_) => AtomicType::Date,
            AtomicValue::Time(_) => AtomicType::Time,
            AtomicValue::DateTime(_) => AtomicType::DateTime,
            AtomicValue::Duration(_) => AtomicType::Duration,
        }
    }

    /// The canonical lexical form (what `fn:string` and the wire format use).
    pub fn lexical(&self) -> String {
        match self {
            AtomicValue::String(s) | AtomicValue::UntypedAtomic(s) | AtomicValue::AnyUri(s) => {
                s.clone()
            }
            AtomicValue::Boolean(b) => b.to_string(),
            AtomicValue::Integer(i) => i.to_string(),
            AtomicValue::Decimal(d) => d.to_string(),
            AtomicValue::Double(d) => fmt_double(*d),
            AtomicValue::Float(f) => fmt_double(*f as f64),
            AtomicValue::QNameV(q) => q.lexical(),
            AtomicValue::Date(d) => format!(
                "{:04}-{:02}-{:02}{}",
                d.year,
                d.month,
                d.day,
                fmt_tz(d.tz_minutes)
            ),
            AtomicValue::Time(t) => format!(
                "{:02}:{:02}:{:02}{}",
                t.hour,
                t.minute,
                t.second,
                fmt_tz(t.tz_minutes)
            ),
            AtomicValue::DateTime(d) => format!(
                "{:04}-{:02}-{:02}T{:02}:{:02}:{:02}{}",
                d.year,
                d.month,
                d.day,
                d.hour,
                d.minute,
                d.second,
                fmt_tz(d.tz_minutes)
            ),
            AtomicValue::Duration(du) => fmt_duration(du),
        }
    }

    /// Parse a lexical form as a value of `ty` (the wire unmarshal path and
    /// the `cast as` path share this).
    pub fn parse_as(lexical: &str, ty: AtomicType) -> XdmResult<AtomicValue> {
        let s = lexical.trim();
        Ok(match ty {
            AtomicType::String => AtomicValue::String(lexical.to_string()),
            AtomicType::UntypedAtomic => AtomicValue::UntypedAtomic(lexical.to_string()),
            AtomicType::AnyUri => AtomicValue::AnyUri(s.to_string()),
            AtomicType::Boolean => match s {
                "true" | "1" => AtomicValue::Boolean(true),
                "false" | "0" => AtomicValue::Boolean(false),
                _ => {
                    return Err(XdmError::invalid_cast(format!("invalid boolean `{s}`")));
                }
            },
            AtomicType::Integer => AtomicValue::Integer(
                s.parse::<i64>()
                    .map_err(|_| XdmError::invalid_cast(format!("invalid integer `{s}`")))?,
            ),
            AtomicType::Decimal => AtomicValue::Decimal(Decimal::parse(s)?),
            AtomicType::Double => AtomicValue::Double(parse_double(s)?),
            AtomicType::Float => AtomicValue::Float(parse_double(s)? as f32),
            AtomicType::QNameT => {
                // Lexical QName without in-scope resolution (prefix kept).
                let (p, l) = match s.split_once(':') {
                    Some((p, l)) => (Some(p.to_string()), l.to_string()),
                    None => (None, s.to_string()),
                };
                AtomicValue::QNameV(QName {
                    prefix: p,
                    ns_uri: None,
                    local: l,
                })
            }
            AtomicType::Date => AtomicValue::Date(parse_date(s)?),
            AtomicType::Time => AtomicValue::Time(parse_time(s)?),
            AtomicType::DateTime => AtomicValue::DateTime(parse_datetime(s)?),
            AtomicType::Duration => AtomicValue::Duration(parse_duration(s)?),
        })
    }

    /// `cast as` between atomic types.
    pub fn cast_to(&self, ty: AtomicType) -> XdmResult<AtomicValue> {
        if self.atomic_type() == ty {
            return Ok(self.clone());
        }
        match (self, ty) {
            // Numeric-to-numeric casts keep values, not lexical forms.
            (AtomicValue::Integer(i), AtomicType::Decimal) => {
                Ok(AtomicValue::Decimal(Decimal::from_i64(*i)))
            }
            (AtomicValue::Integer(i), AtomicType::Double) => Ok(AtomicValue::Double(*i as f64)),
            (AtomicValue::Integer(i), AtomicType::Float) => Ok(AtomicValue::Float(*i as f32)),
            (AtomicValue::Decimal(d), AtomicType::Double) => Ok(AtomicValue::Double(d.to_f64())),
            (AtomicValue::Decimal(d), AtomicType::Float) => {
                Ok(AtomicValue::Float(d.to_f64() as f32))
            }
            (AtomicValue::Decimal(d), AtomicType::Integer) => {
                // truncate toward zero
                let t = if d.is_negative() {
                    d.ceiling()
                } else {
                    d.floor()
                };
                Ok(AtomicValue::Integer(t))
            }
            (AtomicValue::Double(d), AtomicType::Integer) => {
                if d.is_nan() || d.is_infinite() {
                    Err(XdmError::invalid_cast("cannot cast NaN/INF to integer"))
                } else {
                    Ok(AtomicValue::Integer(d.trunc() as i64))
                }
            }
            (AtomicValue::Double(d), AtomicType::Decimal) => {
                if d.is_nan() || d.is_infinite() {
                    Err(XdmError::invalid_cast("cannot cast NaN/INF to decimal"))
                } else {
                    Decimal::parse(&format!("{:.12}", d)).map(AtomicValue::Decimal)
                }
            }
            (AtomicValue::Float(f), t) => AtomicValue::Double(*f as f64).cast_to(t),
            (AtomicValue::Boolean(b), AtomicType::Integer) => {
                Ok(AtomicValue::Integer(if *b { 1 } else { 0 }))
            }
            (AtomicValue::Boolean(b), AtomicType::Double) => {
                Ok(AtomicValue::Double(if *b { 1.0 } else { 0.0 }))
            }
            (AtomicValue::Boolean(b), AtomicType::Decimal) => {
                Ok(AtomicValue::Decimal(Decimal::from_i64(if *b {
                    1
                } else {
                    0
                })))
            }
            (AtomicValue::Integer(i), AtomicType::Boolean) => Ok(AtomicValue::Boolean(*i != 0)),
            (AtomicValue::Decimal(d), AtomicType::Boolean) => {
                Ok(AtomicValue::Boolean(!d.is_zero()))
            }
            (AtomicValue::Double(d), AtomicType::Boolean) => {
                Ok(AtomicValue::Boolean(*d != 0.0 && !d.is_nan()))
            }
            (AtomicValue::DateTime(d), AtomicType::Date) => Ok(AtomicValue::Date(DateTimeValue {
                hour: 0,
                minute: 0,
                second: 0,
                nanos: 0,
                ..*d
            })),
            (AtomicValue::DateTime(d), AtomicType::Time) => Ok(AtomicValue::Time(DateTimeValue {
                year: 0,
                month: 1,
                day: 1,
                ..*d
            })),
            // Everything else goes through the lexical form.
            _ => AtomicValue::parse_as(&self.lexical(), ty),
        }
    }

    /// Numeric type promotion for a pair (integer < decimal < float < double).
    pub fn promote_pair(a: &AtomicValue, b: &AtomicValue) -> XdmResult<(AtomicValue, AtomicValue)> {
        use AtomicType as T;
        let ta = a.atomic_type();
        let tb = b.atomic_type();
        let rank = |t: T| match t {
            T::Integer => Some(0u8),
            T::Decimal => Some(1),
            T::Float => Some(2),
            T::Double => Some(3),
            _ => None,
        };
        let (ra, rb) = match (rank(ta), rank(tb)) {
            (Some(x), Some(y)) => (x, y),
            _ => {
                return Err(XdmError::type_error(format!(
                    "cannot promote {} and {} numerically",
                    ta, tb
                )))
            }
        };
        let target = match ra.max(rb) {
            0 => T::Integer,
            1 => T::Decimal,
            2 => T::Float,
            _ => T::Double,
        };
        Ok((a.cast_to(target)?, b.cast_to(target)?))
    }

    /// XQuery *value comparison* (`eq`, `lt`, ...). UntypedAtomic compares as
    /// string when against strings, else both sides must be comparable.
    pub fn value_cmp(&self, other: &AtomicValue) -> XdmResult<Ordering> {
        use AtomicValue as V;
        match (self, other) {
            (
                V::String(a) | V::UntypedAtomic(a) | V::AnyUri(a),
                V::String(b) | V::UntypedAtomic(b) | V::AnyUri(b),
            ) => Ok(a.cmp(b)),
            (V::Boolean(a), V::Boolean(b)) => Ok(a.cmp(b)),
            (V::QNameV(a), V::QNameV(b)) => {
                if a.matches(b) {
                    Ok(Ordering::Equal)
                } else {
                    Ok(a.lexical().cmp(&b.lexical()))
                }
            }
            (V::Date(a), V::Date(b))
            | (V::Time(a), V::Time(b))
            | (V::DateTime(a), V::DateTime(b)) => Ok(a.cmp_value(b)),
            (V::Duration(a), V::Duration(b)) => {
                let sa = a.months as f64 * 2_629_746.0 + a.seconds;
                let sb = b.months as f64 * 2_629_746.0 + b.seconds;
                sa.partial_cmp(&sb)
                    .ok_or_else(|| XdmError::type_error("duration comparison failed"))
            }
            _ => {
                let (pa, pb) = AtomicValue::promote_pair(self, other)?;
                match (pa, pb) {
                    (V::Integer(a), V::Integer(b)) => Ok(a.cmp(&b)),
                    (V::Decimal(a), V::Decimal(b)) => Ok(a.cmp(&b)),
                    (V::Double(a), V::Double(b)) => a
                        .partial_cmp(&b)
                        .ok_or_else(|| XdmError::type_error("NaN comparison")),
                    (V::Float(a), V::Float(b)) => a
                        .partial_cmp(&b)
                        .ok_or_else(|| XdmError::type_error("NaN comparison")),
                    _ => unreachable!("promotion yields numeric pair"),
                }
            }
        }
    }

    /// Equality for *general comparison* `=`: untyped operands are cast to
    /// the other side's type (or double against numbers).
    pub fn general_eq(&self, other: &AtomicValue) -> XdmResult<bool> {
        let (a, b) = general_coerce(self, other)?;
        Ok(a.value_cmp(&b)? == Ordering::Equal)
    }

    /// Ordering for general comparison `<`, `>`, ...
    pub fn general_cmp(&self, other: &AtomicValue) -> XdmResult<Ordering> {
        let (a, b) = general_coerce(self, other)?;
        a.value_cmp(&b)
    }

    /// Effective boolean value of a single atomic item.
    pub fn ebv(&self) -> XdmResult<bool> {
        Ok(match self {
            AtomicValue::Boolean(b) => *b,
            AtomicValue::String(s) | AtomicValue::UntypedAtomic(s) | AtomicValue::AnyUri(s) => {
                !s.is_empty()
            }
            AtomicValue::Integer(i) => *i != 0,
            AtomicValue::Decimal(d) => !d.is_zero(),
            AtomicValue::Double(d) => *d != 0.0 && !d.is_nan(),
            AtomicValue::Float(f) => *f != 0.0 && !f.is_nan(),
            _ => {
                return Err(XdmError::invalid_arg(format!(
                    "no effective boolean value for {}",
                    self.atomic_type()
                )))
            }
        })
    }
}

/// Coerce operands of a general comparison per XQuery 1.0 §3.5.2.
fn general_coerce(a: &AtomicValue, b: &AtomicValue) -> XdmResult<(AtomicValue, AtomicValue)> {
    use AtomicType as T;
    use AtomicValue as V;
    let ta = a.atomic_type();
    let tb = b.atomic_type();
    match (ta, tb) {
        (T::UntypedAtomic, T::UntypedAtomic) => {
            Ok((V::String(a.lexical()), V::String(b.lexical())))
        }
        (T::UntypedAtomic, t) if t.is_numeric() => Ok((a.cast_to(T::Double)?, b.clone())),
        (t, T::UntypedAtomic) if t.is_numeric() => Ok((a.clone(), b.cast_to(T::Double)?)),
        (T::UntypedAtomic, t) => Ok((a.cast_to(t)?, b.clone())),
        (t, T::UntypedAtomic) => Ok((a.clone(), b.cast_to(t)?)),
        _ => Ok((a.clone(), b.clone())),
    }
}

// ---------------------------------------------------------------------
// Lexical helpers
// ---------------------------------------------------------------------

/// Format a double per the XPath rules (integral values print without `.0`;
/// special values as `NaN`, `INF`, `-INF`).
pub fn fmt_double(d: f64) -> String {
    if d.is_nan() {
        "NaN".to_string()
    } else if d.is_infinite() {
        if d > 0.0 {
            "INF".to_string()
        } else {
            "-INF".to_string()
        }
    } else if d == d.trunc() && d.abs() < 1e15 {
        format!("{}", d as i64)
    } else {
        let s = format!("{}", d);
        s
    }
}

fn parse_double(s: &str) -> XdmResult<f64> {
    match s {
        "INF" | "+INF" => Ok(f64::INFINITY),
        "-INF" => Ok(f64::NEG_INFINITY),
        "NaN" => Ok(f64::NAN),
        _ => s
            .parse::<f64>()
            .map_err(|_| XdmError::invalid_cast(format!("invalid double `{s}`"))),
    }
}

fn fmt_tz(tz: Option<i16>) -> String {
    match tz {
        None => String::new(),
        Some(0) => "Z".to_string(),
        Some(m) => {
            let sign = if m < 0 { '-' } else { '+' };
            let a = m.abs();
            format!("{}{:02}:{:02}", sign, a / 60, a % 60)
        }
    }
}

fn parse_tz(s: &str) -> XdmResult<(Option<i16>, &str)> {
    if let Some(rest) = s.strip_suffix('Z') {
        return Ok((Some(0), rest));
    }
    if s.len() >= 6 {
        let tail = &s[s.len() - 6..];
        let b = tail.as_bytes();
        if (b[0] == b'+' || b[0] == b'-') && b[3] == b':' {
            let h: i16 = tail[1..3]
                .parse()
                .map_err(|_| XdmError::invalid_cast("bad timezone"))?;
            let m: i16 = tail[4..6]
                .parse()
                .map_err(|_| XdmError::invalid_cast("bad timezone"))?;
            let total = h * 60 + m;
            let total = if b[0] == b'-' { -total } else { total };
            return Ok((Some(total), &s[..s.len() - 6]));
        }
    }
    Ok((None, s))
}

fn parse_date(s: &str) -> XdmResult<DateTimeValue> {
    let (tz, core) = parse_tz(s)?;
    let parts: Vec<&str> = core.splitn(3, '-').collect();
    // handle negative years: leading '-' creates an empty first part
    let (year, month, day) = if let Some(rest) = core.strip_prefix('-') {
        let p: Vec<&str> = rest.splitn(3, '-').collect();
        if p.len() != 3 {
            return Err(XdmError::invalid_cast(format!("invalid date `{s}`")));
        }
        (-(parse_num::<i32>(p[0], s)?), p[1], p[2])
    } else {
        if parts.len() != 3 {
            return Err(XdmError::invalid_cast(format!("invalid date `{s}`")));
        }
        (parse_num::<i32>(parts[0], s)?, parts[1], parts[2])
    };
    let month = parse_num::<u8>(month, s)?;
    let day = parse_num::<u8>(day, s)?;
    if !(1..=12).contains(&month) || !(1..=31).contains(&day) {
        return Err(XdmError::invalid_cast(format!("invalid date `{s}`")));
    }
    Ok(DateTimeValue {
        year,
        month,
        day,
        hour: 0,
        minute: 0,
        second: 0,
        nanos: 0,
        tz_minutes: tz,
    })
}

fn parse_time(s: &str) -> XdmResult<DateTimeValue> {
    let (tz, core) = parse_tz(s)?;
    let parts: Vec<&str> = core.splitn(3, ':').collect();
    if parts.len() != 3 {
        return Err(XdmError::invalid_cast(format!("invalid time `{s}`")));
    }
    let hour = parse_num::<u8>(parts[0], s)?;
    let minute = parse_num::<u8>(parts[1], s)?;
    let (sec_str, nanos) = match parts[2].split_once('.') {
        Some((sec, frac)) => {
            let mut f = frac.to_string();
            while f.len() < 9 {
                f.push('0');
            }
            (sec, parse_num::<u32>(&f[..9], s)?)
        }
        None => (parts[2], 0),
    };
    let second = parse_num::<u8>(sec_str, s)?;
    if hour > 24 || minute > 59 || second > 60 {
        return Err(XdmError::invalid_cast(format!("invalid time `{s}`")));
    }
    Ok(DateTimeValue {
        year: 0,
        month: 1,
        day: 1,
        hour,
        minute,
        second,
        nanos,
        tz_minutes: tz,
    })
}

fn parse_datetime(s: &str) -> XdmResult<DateTimeValue> {
    let (date_part, time_part) = s
        .split_once('T')
        .ok_or_else(|| XdmError::invalid_cast(format!("invalid dateTime `{s}`")))?;
    let d = parse_date(date_part)?;
    let t = parse_time(time_part)?;
    Ok(DateTimeValue {
        year: d.year,
        month: d.month,
        day: d.day,
        hour: t.hour,
        minute: t.minute,
        second: t.second,
        nanos: t.nanos,
        tz_minutes: t.tz_minutes.or(d.tz_minutes),
    })
}

fn parse_duration(s: &str) -> XdmResult<DurationValue> {
    // PnYnMnDTnHnMnS with optional leading '-'
    let (neg, rest) = match s.strip_prefix('-') {
        Some(r) => (true, r),
        None => (false, s),
    };
    let rest = rest
        .strip_prefix('P')
        .ok_or_else(|| XdmError::invalid_cast(format!("invalid duration `{s}`")))?;
    let (date_str, time_str) = match rest.split_once('T') {
        Some((d, t)) => (d, t),
        None => (rest, ""),
    };
    let mut months = 0i64;
    let mut seconds = 0f64;
    let mut num = String::new();
    for c in date_str.chars() {
        if c.is_ascii_digit() || c == '.' {
            num.push(c);
        } else {
            let v: f64 = num
                .parse()
                .map_err(|_| XdmError::invalid_cast(format!("invalid duration `{s}`")))?;
            num.clear();
            match c {
                'Y' => months += (v as i64) * 12,
                'M' => months += v as i64,
                'D' => seconds += v * 86400.0,
                _ => return Err(XdmError::invalid_cast(format!("invalid duration `{s}`"))),
            }
        }
    }
    for c in time_str.chars() {
        if c.is_ascii_digit() || c == '.' {
            num.push(c);
        } else {
            let v: f64 = num
                .parse()
                .map_err(|_| XdmError::invalid_cast(format!("invalid duration `{s}`")))?;
            num.clear();
            match c {
                'H' => seconds += v * 3600.0,
                'M' => seconds += v * 60.0,
                'S' => seconds += v,
                _ => return Err(XdmError::invalid_cast(format!("invalid duration `{s}`"))),
            }
        }
    }
    if !num.is_empty() {
        return Err(XdmError::invalid_cast(format!("invalid duration `{s}`")));
    }
    Ok(DurationValue {
        months: if neg { -months } else { months },
        seconds: if neg { -seconds } else { seconds },
    })
}

fn fmt_duration(d: &DurationValue) -> String {
    if d.months == 0 && d.seconds == 0.0 {
        return "PT0S".to_string();
    }
    let neg = d.months < 0 || d.seconds < 0.0;
    let months = d.months.unsigned_abs();
    let secs = d.seconds.abs();
    let mut out = String::new();
    if neg {
        out.push('-');
    }
    out.push('P');
    let years = months / 12;
    let rem_months = months % 12;
    if years > 0 {
        out.push_str(&format!("{years}Y"));
    }
    if rem_months > 0 {
        out.push_str(&format!("{rem_months}M"));
    }
    let days = (secs / 86400.0).floor();
    let mut rem = secs - days * 86400.0;
    if days > 0.0 {
        out.push_str(&format!("{}D", days as u64));
    }
    if rem > 0.0 {
        out.push('T');
        let hours = (rem / 3600.0).floor();
        rem -= hours * 3600.0;
        let mins = (rem / 60.0).floor();
        rem -= mins * 60.0;
        if hours > 0.0 {
            out.push_str(&format!("{}H", hours as u64));
        }
        if mins > 0.0 {
            out.push_str(&format!("{}M", mins as u64));
        }
        if rem > 0.0 {
            if rem == rem.trunc() {
                out.push_str(&format!("{}S", rem as u64));
            } else {
                out.push_str(&format!("{rem}S"));
            }
        }
    }
    out
}

fn parse_num<T: std::str::FromStr>(part: &str, whole: &str) -> XdmResult<T> {
    part.parse::<T>()
        .map_err(|_| XdmError::invalid_cast(format!("invalid component in `{whole}`")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexical_roundtrip_numerics() {
        for (lex, ty) in [
            ("42", AtomicType::Integer),
            ("3.14", AtomicType::Decimal),
            ("true", AtomicType::Boolean),
            ("hello", AtomicType::String),
        ] {
            let v = AtomicValue::parse_as(lex, ty).unwrap();
            assert_eq!(v.lexical(), lex);
            assert_eq!(v.atomic_type(), ty);
        }
    }

    #[test]
    fn double_formatting() {
        assert_eq!(AtomicValue::Double(3.0).lexical(), "3");
        assert_eq!(AtomicValue::Double(3.5).lexical(), "3.5");
        assert_eq!(AtomicValue::Double(f64::NAN).lexical(), "NaN");
        assert_eq!(AtomicValue::Double(f64::INFINITY).lexical(), "INF");
        assert_eq!(AtomicValue::Double(f64::NEG_INFINITY).lexical(), "-INF");
    }

    #[test]
    fn boolean_lexical_space() {
        assert_eq!(
            AtomicValue::parse_as("1", AtomicType::Boolean)
                .unwrap()
                .lexical(),
            "true"
        );
        assert!(AtomicValue::parse_as("yes", AtomicType::Boolean).is_err());
    }

    #[test]
    fn datetime_roundtrip_and_order() {
        let a = AtomicValue::parse_as("2007-09-23T10:00:00Z", AtomicType::DateTime).unwrap();
        assert_eq!(a.lexical(), "2007-09-23T10:00:00Z");
        let b = AtomicValue::parse_as("2007-09-23T12:00:00+02:00", AtomicType::DateTime).unwrap();
        // 12:00+02:00 == 10:00Z
        assert_eq!(a.value_cmp(&b).unwrap(), Ordering::Equal);
        let c = AtomicValue::parse_as("2007-09-24T00:00:00Z", AtomicType::DateTime).unwrap();
        assert_eq!(a.value_cmp(&c).unwrap(), Ordering::Less);
    }

    #[test]
    fn date_roundtrip() {
        let v = AtomicValue::parse_as("2007-09-23", AtomicType::Date).unwrap();
        assert_eq!(v.lexical(), "2007-09-23");
        assert!(AtomicValue::parse_as("2007-13-01", AtomicType::Date).is_err());
    }

    #[test]
    fn duration_roundtrip() {
        let v = AtomicValue::parse_as("P1Y2M3DT4H5M6S", AtomicType::Duration).unwrap();
        match &v {
            AtomicValue::Duration(d) => {
                assert_eq!(d.months, 14);
                assert_eq!(d.seconds, 3.0 * 86400.0 + 4.0 * 3600.0 + 5.0 * 60.0 + 6.0);
            }
            _ => panic!(),
        }
        assert_eq!(v.lexical(), "P1Y2M3DT4H5M6S");
        assert_eq!(
            AtomicValue::parse_as("PT0S", AtomicType::Duration)
                .unwrap()
                .lexical(),
            "PT0S"
        );
    }

    #[test]
    fn numeric_promotion() {
        let (a, b) =
            AtomicValue::promote_pair(&AtomicValue::Integer(2), &AtomicValue::Double(3.1)).unwrap();
        assert_eq!(a.atomic_type(), AtomicType::Double);
        assert_eq!(b.atomic_type(), AtomicType::Double);
        let (a, b) = AtomicValue::promote_pair(
            &AtomicValue::Integer(2),
            &AtomicValue::Decimal(Decimal::parse("2.5").unwrap()),
        )
        .unwrap();
        assert_eq!(a.atomic_type(), AtomicType::Decimal);
        assert_eq!(b.atomic_type(), AtomicType::Decimal);
    }

    #[test]
    fn value_comparison_across_types() {
        assert_eq!(
            AtomicValue::Integer(2)
                .value_cmp(&AtomicValue::Double(2.0))
                .unwrap(),
            Ordering::Equal
        );
        assert!(AtomicValue::String("a".into())
            .value_cmp(&AtomicValue::Integer(1))
            .is_err());
    }

    #[test]
    fn general_comparison_untyped() {
        // untyped vs numeric -> double
        let u = AtomicValue::UntypedAtomic("10".into());
        assert!(u.general_eq(&AtomicValue::Integer(10)).unwrap());
        // untyped vs string -> string
        let u2 = AtomicValue::UntypedAtomic("abc".into());
        assert!(u2.general_eq(&AtomicValue::String("abc".into())).unwrap());
        // untyped vs untyped -> string compare
        assert!(AtomicValue::UntypedAtomic("x".into())
            .general_eq(&AtomicValue::UntypedAtomic("x".into()))
            .unwrap());
    }

    #[test]
    fn casts() {
        let i = AtomicValue::Integer(3);
        assert_eq!(i.cast_to(AtomicType::String).unwrap().lexical(), "3");
        let s = AtomicValue::String("2.5".into());
        assert_eq!(s.cast_to(AtomicType::Double).unwrap().lexical(), "2.5");
        assert!(AtomicValue::String("x".into())
            .cast_to(AtomicType::Integer)
            .is_err());
        assert_eq!(
            AtomicValue::Double(2.9)
                .cast_to(AtomicType::Integer)
                .unwrap()
                .lexical(),
            "2"
        );
        assert_eq!(
            AtomicValue::Double(-2.9)
                .cast_to(AtomicType::Integer)
                .unwrap()
                .lexical(),
            "-2"
        );
    }

    #[test]
    fn ebv_rules() {
        assert!(AtomicValue::Boolean(true).ebv().unwrap());
        assert!(!AtomicValue::String(String::new()).ebv().unwrap());
        assert!(AtomicValue::String("x".into()).ebv().unwrap());
        assert!(!AtomicValue::Integer(0).ebv().unwrap());
        assert!(!AtomicValue::Double(f64::NAN).ebv().unwrap());
        assert!(AtomicValue::parse_as("2007-01-01", AtomicType::Date)
            .unwrap()
            .ebv()
            .is_err());
    }

    #[test]
    fn negative_year_date() {
        let v = AtomicValue::parse_as("-0044-03-15", AtomicType::Date).unwrap();
        match v {
            AtomicValue::Date(d) => assert_eq!(d.year, -44),
            _ => panic!(),
        }
    }
}
