//! Prepared-plan caches.
//!
//! [`PlanCache`] is the generic keyed plan cache: bounded capacity with
//! LRU eviction, hit/miss/eviction/invalidation counters, and a runtime
//! enable switch. The cached artifact lives behind an `Arc` so a plan
//! stays valid for executions already holding it even after eviction or
//! invalidation drops it from the map.
//!
//! [`FunctionCache`] (paper §3.3, "Function Cache") is the original
//! instantiation: parse-once query plans for module functions, keyed by
//! `(module namespace, function, arity)`. MonetDB/XQuery's cache avoids
//! re-translating the XQuery module on every XRPC request; here the
//! cached artifact is the prepared function the request handler would
//! otherwise rebuild (parse + static analysis). It remains a runtime
//! switch so Table 2 can be regenerated with it on and off. The peer's
//! *plan* cache (whole main-module queries keyed by normalized text +
//! static-context fingerprint) is another instantiation — see
//! `xrpc-peer`.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering::Relaxed, Ordering::SeqCst};
use std::sync::Arc;

/// Key of the function cache: (module ns, method, arity).
pub type FnKey = (String, String, usize);

/// The §3.3 function cache is the plan cache keyed by function identity.
pub type FunctionCache<P> = PlanCache<FnKey, P>;

/// Default capacity: generous for function caches (a deployment has tens
/// of module functions) and a sane bound for whole-query plan caches.
pub const DEFAULT_CAPACITY: usize = 256;

struct Entry<P> {
    plan: Arc<P>,
    /// Recency stamp: the cache-wide tick at last touch. Eviction scans
    /// for the minimum — O(n), fine at the bounded sizes used here.
    touched: u64,
}

/// A generic keyed prepared-plan cache: bounded, LRU-evicting, with
/// hit/miss/eviction/invalidation counters.
pub struct PlanCache<K: Eq + Hash + Clone, P> {
    enabled: AtomicBool,
    capacity: AtomicUsize,
    tick: AtomicU64,
    plans: Mutex<HashMap<K, Entry<P>>>,
    pub hits: AtomicU64,
    pub misses: AtomicU64,
    pub evictions: AtomicU64,
    pub invalidations: AtomicU64,
}

/// Counter snapshot for metrics exposition.
#[derive(Debug, Clone, Copy, Default)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    pub invalidations: u64,
    pub len: usize,
    pub enabled: bool,
}

impl CacheStats {
    /// Hits over lookups, in [0, 1]; 1.0 when there were no lookups.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl<K: Eq + Hash + Clone, P> PlanCache<K, P> {
    pub fn new(enabled: bool) -> Self {
        Self::with_capacity(enabled, DEFAULT_CAPACITY)
    }

    pub fn with_capacity(enabled: bool, capacity: usize) -> Self {
        PlanCache {
            enabled: AtomicBool::new(enabled),
            capacity: AtomicUsize::new(capacity.max(1)),
            tick: AtomicU64::new(0),
            plans: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }

    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, SeqCst);
        if !on {
            self.plans.lock().clear();
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled.load(SeqCst)
    }

    /// Change the capacity bound; evicts LRU entries if the cache is
    /// already over the new bound.
    pub fn set_capacity(&self, capacity: usize) {
        self.capacity.store(capacity.max(1), SeqCst);
        let mut plans = self.plans.lock();
        self.evict_to_capacity(&mut plans);
    }

    pub fn capacity(&self) -> usize {
        self.capacity.load(SeqCst)
    }

    /// Fetch the prepared plan, building it with `prepare` on a miss (or
    /// always, when disabled — e.g. the "No Function Cache" column of
    /// Table 2, or the peer's compile-every-query fidelity mode).
    pub fn get_or_prepare<E>(
        &self,
        key: K,
        prepare: impl FnOnce() -> Result<P, E>,
    ) -> Result<Arc<P>, E> {
        if !self.is_enabled() {
            self.misses.fetch_add(1, Relaxed);
            return Ok(Arc::new(prepare()?));
        }
        {
            let mut plans = self.plans.lock();
            if let Some(e) = plans.get_mut(&key) {
                e.touched = self.tick.fetch_add(1, Relaxed) + 1;
                self.hits.fetch_add(1, Relaxed);
                return Ok(e.plan.clone());
            }
        }
        self.misses.fetch_add(1, Relaxed);
        // Build outside the lock: preparation may be slow (a parse), and
        // two racing builders of the same key are harmless — last insert
        // wins, both callers hold a valid Arc.
        let plan = Arc::new(prepare()?);
        let mut plans = self.plans.lock();
        plans.insert(
            key,
            Entry {
                plan: plan.clone(),
                touched: self.tick.fetch_add(1, Relaxed) + 1,
            },
        );
        self.evict_to_capacity(&mut plans);
        Ok(plan)
    }

    /// Peek without counting or inserting (tests/diagnostics).
    pub fn peek(&self, key: &K) -> Option<Arc<P>> {
        self.plans.lock().get(key).map(|e| e.plan.clone())
    }

    fn evict_to_capacity(&self, plans: &mut HashMap<K, Entry<P>>) {
        let cap = self.capacity.load(SeqCst);
        while plans.len() > cap {
            let Some(victim) = plans
                .iter()
                .min_by_key(|(_, e)| e.touched)
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            plans.remove(&victim);
            self.evictions.fetch_add(1, Relaxed);
        }
    }

    /// Explicit invalidation (e.g. on a module-registry change): drops
    /// every entry and counts one invalidation event.
    pub fn invalidate(&self) {
        self.invalidations.fetch_add(1, Relaxed);
        self.plans.lock().clear();
    }

    /// Drop all entries without counting an invalidation (harness reset).
    pub fn clear(&self) {
        self.plans.lock().clear();
    }

    /// Reset the counters (benchmark cells measure from zero).
    pub fn reset_counters(&self) {
        self.hits.store(0, Relaxed);
        self.misses.store(0, Relaxed);
        self.evictions.store(0, Relaxed);
        self.invalidations.store(0, Relaxed);
    }

    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Relaxed),
            misses: self.misses.load(Relaxed),
            evictions: self.evictions.load(Relaxed),
            invalidations: self.invalidations.load(Relaxed),
            len: self.len(),
            enabled: self.is_enabled(),
        }
    }

    pub fn len(&self) -> usize {
        self.plans.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.plans.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::convert::Infallible;

    fn key(m: &str) -> FnKey {
        (m.to_string(), "f".to_string(), 1)
    }

    #[test]
    fn caches_when_enabled() {
        let c: FunctionCache<u32> = FunctionCache::new(true);
        let mut builds = 0;
        for _ in 0..3 {
            let v = c
                .get_or_prepare::<Infallible>(key("m"), || {
                    builds += 1;
                    Ok(42)
                })
                .unwrap();
            assert_eq!(*v, 42);
        }
        assert_eq!(builds, 1);
        assert_eq!(c.hits.load(Relaxed), 2);
        assert_eq!(c.misses.load(Relaxed), 1);
    }

    #[test]
    fn rebuilds_when_disabled() {
        let c: FunctionCache<u32> = FunctionCache::new(false);
        let mut builds = 0;
        for _ in 0..3 {
            c.get_or_prepare::<Infallible>(key("m"), || {
                builds += 1;
                Ok(1)
            })
            .unwrap();
        }
        assert_eq!(builds, 3);
        assert!(c.is_empty());
    }

    #[test]
    fn disabling_clears() {
        let c: FunctionCache<u32> = FunctionCache::new(true);
        c.get_or_prepare::<Infallible>(key("m"), || Ok(1)).unwrap();
        assert_eq!(c.len(), 1);
        c.set_enabled(false);
        assert!(c.is_empty());
    }

    #[test]
    fn distinct_keys_distinct_plans() {
        let c: FunctionCache<String> = FunctionCache::new(true);
        let a = c
            .get_or_prepare::<Infallible>(key("a"), || Ok("A".into()))
            .unwrap();
        let b = c
            .get_or_prepare::<Infallible>(key("b"), || Ok("B".into()))
            .unwrap();
        assert_ne!(*a, *b);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn lru_eviction_at_capacity() {
        let c: PlanCache<u32, u32> = PlanCache::with_capacity(true, 3);
        for k in 0..3 {
            c.get_or_prepare::<Infallible>(k, || Ok(k)).unwrap();
        }
        // touch 0 so 1 becomes the LRU victim
        c.get_or_prepare::<Infallible>(0, || Ok(99)).unwrap();
        c.get_or_prepare::<Infallible>(3, || Ok(3)).unwrap();
        assert_eq!(c.len(), 3);
        assert_eq!(c.evictions.load(Relaxed), 1);
        assert!(c.peek(&1).is_none(), "LRU entry evicted");
        assert!(c.peek(&0).is_some());
        assert!(c.peek(&2).is_some());
        assert!(c.peek(&3).is_some());
    }

    #[test]
    fn shrinking_capacity_evicts() {
        let c: PlanCache<u32, u32> = PlanCache::with_capacity(true, 8);
        for k in 0..8 {
            c.get_or_prepare::<Infallible>(k, || Ok(k)).unwrap();
        }
        c.set_capacity(2);
        assert_eq!(c.len(), 2);
        assert_eq!(c.evictions.load(Relaxed), 6);
        // the two most recently inserted survive
        assert!(c.peek(&6).is_some());
        assert!(c.peek(&7).is_some());
    }

    #[test]
    fn invalidate_clears_and_counts() {
        let c: PlanCache<u32, u32> = PlanCache::new(true);
        c.get_or_prepare::<Infallible>(1, || Ok(1)).unwrap();
        let held = c.get_or_prepare::<Infallible>(2, || Ok(2)).unwrap();
        c.invalidate();
        assert!(c.is_empty());
        assert_eq!(c.invalidations.load(Relaxed), 1);
        // plans already handed out stay usable
        assert_eq!(*held, 2);
        // re-fetch is a miss
        c.get_or_prepare::<Infallible>(2, || Ok(2)).unwrap();
        assert_eq!(c.stats().misses, 3);
    }

    #[test]
    fn hit_rate_snapshot() {
        let c: PlanCache<u32, u32> = PlanCache::new(true);
        assert_eq!(c.stats().hit_rate(), 1.0);
        c.get_or_prepare::<Infallible>(1, || Ok(1)).unwrap();
        for _ in 0..9 {
            c.get_or_prepare::<Infallible>(1, || Ok(1)).unwrap();
        }
        let s = c.stats();
        assert_eq!(s.hits, 9);
        assert_eq!(s.misses, 1);
        assert!((s.hit_rate() - 0.9).abs() < 1e-9);
    }
}
