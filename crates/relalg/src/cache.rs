//! The function cache (paper §3.3, "Function Cache"): prepared,
//! parse-once query plans for module functions, keyed by
//! `(module namespace, function, arity)`.
//!
//! MonetDB/XQuery's cache avoids re-translating the XQuery module on every
//! XRPC request; here the cached artifact is the parsed main-module AST the
//! request handler would otherwise rebuild (parse + static analysis). The
//! cache is a runtime switch so Table 2 can be regenerated with it on and
//! off.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Key: (module ns, method, arity).
pub type FnKey = (String, String, usize);

/// A generic prepared-plan cache with hit/miss counters.
pub struct FunctionCache<P> {
    enabled: std::sync::atomic::AtomicBool,
    plans: Mutex<HashMap<FnKey, Arc<P>>>,
    pub hits: std::sync::atomic::AtomicU64,
    pub misses: std::sync::atomic::AtomicU64,
}

impl<P> FunctionCache<P> {
    pub fn new(enabled: bool) -> Self {
        FunctionCache {
            enabled: std::sync::atomic::AtomicBool::new(enabled),
            plans: Mutex::new(HashMap::new()),
            hits: std::sync::atomic::AtomicU64::new(0),
            misses: std::sync::atomic::AtomicU64::new(0),
        }
    }

    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, std::sync::atomic::Ordering::SeqCst);
        if !on {
            self.plans.lock().clear();
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled.load(std::sync::atomic::Ordering::SeqCst)
    }

    /// Fetch the prepared plan, building it with `prepare` on a miss (or
    /// always, when disabled — the "No Function Cache" column of Table 2).
    pub fn get_or_prepare<E>(
        &self,
        key: FnKey,
        prepare: impl FnOnce() -> Result<P, E>,
    ) -> Result<Arc<P>, E> {
        use std::sync::atomic::Ordering::Relaxed;
        if !self.is_enabled() {
            self.misses.fetch_add(1, Relaxed);
            return Ok(Arc::new(prepare()?));
        }
        if let Some(p) = self.plans.lock().get(&key) {
            self.hits.fetch_add(1, Relaxed);
            return Ok(p.clone());
        }
        self.misses.fetch_add(1, Relaxed);
        let plan = Arc::new(prepare()?);
        self.plans.lock().insert(key, plan.clone());
        Ok(plan)
    }

    pub fn clear(&self) {
        self.plans.lock().clear();
    }

    pub fn len(&self) -> usize {
        self.plans.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.plans.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::convert::Infallible;

    fn key(m: &str) -> FnKey {
        (m.to_string(), "f".to_string(), 1)
    }

    #[test]
    fn caches_when_enabled() {
        let c: FunctionCache<u32> = FunctionCache::new(true);
        let mut builds = 0;
        for _ in 0..3 {
            let v = c
                .get_or_prepare::<Infallible>(key("m"), || {
                    builds += 1;
                    Ok(42)
                })
                .unwrap();
            assert_eq!(*v, 42);
        }
        assert_eq!(builds, 1);
        assert_eq!(c.hits.load(std::sync::atomic::Ordering::Relaxed), 2);
        assert_eq!(c.misses.load(std::sync::atomic::Ordering::Relaxed), 1);
    }

    #[test]
    fn rebuilds_when_disabled() {
        let c: FunctionCache<u32> = FunctionCache::new(false);
        let mut builds = 0;
        for _ in 0..3 {
            c.get_or_prepare::<Infallible>(key("m"), || {
                builds += 1;
                Ok(1)
            })
            .unwrap();
        }
        assert_eq!(builds, 3);
        assert!(c.is_empty());
    }

    #[test]
    fn disabling_clears() {
        let c: FunctionCache<u32> = FunctionCache::new(true);
        c.get_or_prepare::<Infallible>(key("m"), || Ok(1)).unwrap();
        assert_eq!(c.len(), 1);
        c.set_enabled(false);
        assert!(c.is_empty());
    }

    #[test]
    fn distinct_keys_distinct_plans() {
        let c: FunctionCache<String> = FunctionCache::new(true);
        let a = c
            .get_or_prepare::<Infallible>(key("a"), || Ok("A".into()))
            .unwrap();
        let b = c
            .get_or_prepare::<Infallible>(key("b"), || Ok("B".into()))
            .unwrap();
        assert_ne!(*a, *b);
        assert_eq!(c.len(), 2);
    }
}
