//! The loop-lifted interpreter: evaluates the AST over `iter|pos|item`
//! tables, turning `execute at` inside for-loops into Bulk RPC exactly as
//! Figure 2 prescribes.

use crate::table::{IterMap, SeqTable};
use std::sync::Arc;
use xdm::{Item, Sequence, XdmError, XdmResult};
use xqast::{Expr, FlworClause, MainModule, Name};
use xqeval::context::{Environment, StaticContext};
use xqeval::eval::{Ctx, EvalState, Evaluator};
use xqeval::pul::PendingUpdateList;

/// Parse + execute a main module on the loop-lifted engine.
pub fn execute_rel(query: &str, env: &Environment) -> XdmResult<(Sequence, PendingUpdateList)> {
    let module = xqast::parse_main_module(query)?;
    execute_rel_parsed(&module, env, Vec::new())
}

/// Execute an already-parsed main module (prepared-plan path).
pub fn execute_rel_parsed(
    module: &MainModule,
    env: &Environment,
    external: Vec<(String, Sequence)>,
) -> XdmResult<(Sequence, PendingUpdateList)> {
    let sctx = Arc::new(StaticContext::from_prolog(&module.prolog));
    let local_functions = Arc::new(xqeval::eval::local_functions_of(module));
    execute_rel_with(module, sctx, local_functions, env, external)
}

/// Execute a compiled plan (the prepared-query fast path) on the
/// loop-lifted engine — mirror of `xqeval::evaluate_compiled`.
pub fn execute_rel_compiled(
    plan: &xqeval::CompiledMain,
    env: &Environment,
    external: Vec<(String, Sequence)>,
) -> XdmResult<(Sequence, PendingUpdateList)> {
    execute_rel_with(
        &plan.module,
        plan.sctx.clone(),
        plan.local_functions.clone(),
        env,
        external,
    )
}

fn execute_rel_with(
    module: &MainModule,
    sctx: Arc<StaticContext>,
    local_functions: Arc<xqeval::eval::LocalFunctions>,
    env: &Environment,
    external: Vec<(String, Sequence)>,
) -> XdmResult<(Sequence, PendingUpdateList)> {
    let tree = Evaluator {
        env,
        sctx,
        local_functions,
    };
    let engine = RelEngine { tree };
    let mut st = EvalState::new();
    for (n, v) in external {
        st.vars.push((n, v));
    }
    xqeval::eval::eval_prolog_vars(&engine.tree, module, &mut st)?;
    // The whole query runs in a single top-level iteration.
    let lenv = Lifted {
        loop_iters: vec![1],
        vars: Vec::new(),
    };
    // Loop-invariant XRPC hoisting: an `execute at` inside a for-loop
    // whose destination and arguments do not depend on the loop variables
    // is evaluated once, outside the loop — exactly what Pathfinder's
    // loop-lifting does with loop-invariant subexpressions (§3.1). Only
    // read-only calls are hoisted (an updating call's per-iteration ∆s
    // are observable).
    let table = if env.rpc_optimize {
        let body = hoist_invariant_xrpc(&module.body, &engine, &mut 0);
        engine.eval_lifted(&body, &lenv, &mut st)?
    } else {
        engine.eval_lifted(&module.body, &lenv, &mut st)?
    };
    Ok((table.sequence_at(1), st.pul))
}

/// Recursively hoist loop-invariant `execute at` calls out of FLWORs into
/// fresh `let` bindings at the head of the clause list.
fn hoist_invariant_xrpc(e: &Expr, engine: &RelEngine, counter: &mut usize) -> Expr {
    match e {
        Expr::Flwor { clauses, ret } => {
            let mut new_clauses: Vec<FlworClause> = clauses
                .iter()
                .map(|c| match c {
                    FlworClause::For { var, pos_var, seq } => FlworClause::For {
                        var: var.clone(),
                        pos_var: pos_var.clone(),
                        seq: hoist_invariant_xrpc(seq, engine, counter),
                    },
                    FlworClause::Let { var, value } => FlworClause::Let {
                        var: var.clone(),
                        value: hoist_invariant_xrpc(value, engine, counter),
                    },
                    other => other.clone(),
                })
                .collect();
            let new_ret = hoist_invariant_xrpc(ret, engine, counter);
            // variables bound by this FLWOR
            let mut bound: std::collections::HashSet<String> = std::collections::HashSet::new();
            for c in &new_clauses {
                match c {
                    FlworClause::For { var, pos_var, .. } => {
                        bound.insert(var.lexical());
                        if let Some(p) = pos_var {
                            bound.insert(p.lexical());
                        }
                    }
                    FlworClause::Let { var, .. } => {
                        bound.insert(var.lexical());
                    }
                    _ => {}
                }
            }
            let mut hoisted: Vec<(String, Expr)> = Vec::new();
            for c in new_clauses.iter_mut() {
                match c {
                    FlworClause::For { seq, .. } => {
                        *seq = extract_invariant(seq, &bound, engine, counter, &mut hoisted)
                    }
                    FlworClause::Let { value, .. } => {
                        *value = extract_invariant(value, &bound, engine, counter, &mut hoisted)
                    }
                    FlworClause::Where(w) => {
                        *w = extract_invariant(w, &bound, engine, counter, &mut hoisted)
                    }
                    FlworClause::OrderBy(_) => {}
                }
            }
            let new_ret = extract_invariant(&new_ret, &bound, engine, counter, &mut hoisted);
            let mut all: Vec<FlworClause> = hoisted
                .into_iter()
                .map(|(name, value)| FlworClause::Let {
                    var: xqast::Name::local(name),
                    value,
                })
                .collect();
            all.extend(new_clauses);
            Expr::Flwor {
                clauses: all,
                ret: Box::new(new_ret),
            }
        }
        Expr::Sequence(es) => Expr::Sequence(
            es.iter()
                .map(|x| hoist_invariant_xrpc(x, engine, counter))
                .collect(),
        ),
        Expr::If { cond, then, els } => Expr::If {
            cond: Box::new(hoist_invariant_xrpc(cond, engine, counter)),
            then: Box::new(hoist_invariant_xrpc(then, engine, counter)),
            els: Box::new(hoist_invariant_xrpc(els, engine, counter)),
        },
        other => other.clone(),
    }
}

/// Replace loop-invariant read-only `execute at` subexpressions of `e`
/// with fresh variable references, appending the bindings to `hoisted`.
fn extract_invariant(
    e: &Expr,
    bound: &std::collections::HashSet<String>,
    engine: &RelEngine,
    counter: &mut usize,
    hoisted: &mut Vec<(String, Expr)>,
) -> Expr {
    if let Expr::ExecuteAt { dest, call } = e {
        let uses_bound = {
            let mut used = false;
            e.walk(&mut |x| {
                if let Expr::VarRef(n) = x {
                    if bound.contains(&n.lexical()) {
                        used = true;
                    }
                }
            });
            used
        };
        let read_only = match call.as_ref() {
            Expr::FunctionCall { name, args } => engine
                .tree
                .resolve_function_ref(name, args.len())
                .map(|f| !f.updating)
                .unwrap_or(false),
            _ => false,
        };
        if !uses_bound && read_only {
            let name = format!("hoisted-xrpc-{}", *counter);
            *counter += 1;
            hoisted.push((
                name.clone(),
                Expr::ExecuteAt {
                    dest: dest.clone(),
                    call: call.clone(),
                },
            ));
            return Expr::VarRef(xqast::Name::local(name));
        }
    }
    match e {
        Expr::Sequence(es) => Expr::Sequence(
            es.iter()
                .map(|x| extract_invariant(x, bound, engine, counter, hoisted))
                .collect(),
        ),
        Expr::If { cond, then, els } => Expr::If {
            cond: Box::new(extract_invariant(cond, bound, engine, counter, hoisted)),
            then: Box::new(extract_invariant(then, bound, engine, counter, hoisted)),
            els: Box::new(extract_invariant(els, bound, engine, counter, hoisted)),
        },
        Expr::PathStep(a, b) => Expr::PathStep(
            Box::new(extract_invariant(a, bound, engine, counter, hoisted)),
            b.clone(),
        ),
        Expr::FunctionCall { name, args } => Expr::FunctionCall {
            name: name.clone(),
            args: args
                .iter()
                .map(|a| extract_invariant(a, bound, engine, counter, hoisted))
                .collect(),
        },
        other => other.clone(),
    }
}

/// Loop-lifted evaluation environment: the current loop relation and the
/// lifted variable representations bound inside it.
#[derive(Clone, Default)]
pub struct Lifted {
    pub loop_iters: Vec<u32>,
    pub vars: Vec<(String, SeqTable)>,
}

/// The engine: a thin shell around a tree [`Evaluator`] (used for all
/// XRPC-free sub-expressions) plus the lifted XRPC machinery.
pub struct RelEngine<'e> {
    pub tree: Evaluator<'e>,
}

impl<'e> RelEngine<'e> {
    pub fn new(env: &'e Environment, sctx: StaticContext) -> Self {
        RelEngine {
            tree: Evaluator::new(env, sctx),
        }
    }

    /// Run `f` under a profiled-operator guard when profiling is on,
    /// recording the produced row count; one branch when it is off.
    #[inline]
    fn profiled(
        &self,
        name: &str,
        st: &mut EvalState,
        f: impl FnOnce(&Self, &mut EvalState) -> XdmResult<SeqTable>,
    ) -> XdmResult<SeqTable> {
        let Some(mut guard) = self.tree.env.profile_op(name) else {
            return f(self, st);
        };
        let r = f(self, st);
        if let Ok(t) = &r {
            guard.set_items(t.len() as u64);
        }
        r
    }

    /// Evaluate `e` for every iteration of `lenv.loop_iters` at once.
    pub fn eval_lifted(&self, e: &Expr, lenv: &Lifted, st: &mut EvalState) -> XdmResult<SeqTable> {
        // XRPC-free expressions run on the tree engine per iteration; all
        // bulk behaviour lives on the XRPC paths below.
        if !e.contains_xrpc() {
            return self.fallback(e, lenv, st);
        }
        match e {
            Expr::Sequence(es) => {
                let mut ops = Vec::with_capacity(es.len());
                for x in es {
                    ops.push(self.eval_lifted(x, lenv, st)?);
                }
                Ok(SeqTable::concat_per_iter(&lenv.loop_iters, &ops))
            }
            Expr::Flwor { clauses, ret } => self.profiled("rel:flwor", st, |eng, st2| {
                eng.eval_flwor_lifted(clauses, ret, lenv, st2)
            }),
            Expr::ExecuteAt { dest, call } => self.profiled("rel:execute-at", st, |eng, st2| {
                eng.eval_execute_at_lifted(dest, call, lenv, st2)
            }),
            Expr::If { cond, then, els } => {
                let cond_t = self.eval_lifted(cond, lenv, st)?;
                let mut true_iters = Vec::new();
                let mut false_iters = Vec::new();
                for &i in &lenv.loop_iters {
                    if cond_t.sequence_at(i).ebv()? {
                        true_iters.push(i);
                    } else {
                        false_iters.push(i);
                    }
                }
                let then_t = self.eval_lifted(then, &restrict_env(lenv, &true_iters), st)?;
                let else_t = self.eval_lifted(els, &restrict_env(lenv, &false_iters), st)?;
                Ok(SeqTable::merge_union(vec![then_t, else_t]))
            }
            Expr::FunctionCall { name, args } => {
                self.profiled("rel:function-call", st, |eng, st2| {
                    eng.eval_call_lifted(name, args, lenv, st2)
                })
            }
            Expr::PathStep(a, b) => self.profiled("rel:path-step", st, |eng, st| {
                // XRPC can only be on the left of a `/` (steps are not
                // XRPC-bearing); evaluate lhs lifted, apply the step
                // per iteration through the tree engine.
                let base = eng.eval_lifted(a, lenv, st)?;
                let mut out = Vec::new();
                for &i in &lenv.loop_iters {
                    let seq = base.sequence_at(i);
                    let stepped = eng.with_iter_vars(lenv, i, st, |tree, st2| {
                        tree.eval_path_rhs(&seq, b, st2)
                    })?;
                    out.push((i, stepped));
                }
                Ok(SeqTable::from_sequences(out))
            }),
            Expr::GeneralComp(op, a, b) => {
                let ta = self.eval_lifted(a, lenv, st)?;
                let tb = self.eval_lifted(b, lenv, st)?;
                let mut out = Vec::new();
                for &i in &lenv.loop_iters {
                    let r =
                        xqeval::eval::general_compare(*op, &ta.sequence_at(i), &tb.sequence_at(i))?;
                    out.push((i, Sequence::one(Item::boolean(r))));
                }
                Ok(SeqTable::from_sequences(out))
            }
            // Constructors enclosing XRPC (the paper's Q1/Q3 shape,
            // `<films>{ execute at … }</films>`): lift each XRPC-bearing
            // enclosed expression into a synthetic variable evaluated
            // loop-lifted, then construct per iteration.
            Expr::DirectElem(d) => {
                let mut bindings: Vec<(String, SeqTable)> = Vec::new();
                let mut counter = 0usize;
                let new_elem = self.lift_direlem(d, lenv, st, &mut bindings, &mut counter)?;
                let mut inner = lenv.clone();
                inner.vars.extend(bindings);
                self.fallback(&Expr::DirectElem(new_elem), &inner, st)
            }
            Expr::CompElem {
                name,
                content: Some(c),
            } if c.contains_xrpc() => {
                let t = self.eval_lifted(c, lenv, st)?;
                let var = "xrpc-enc-comp".to_string();
                let mut inner = lenv.clone();
                inner.vars.push((var.clone(), t));
                self.fallback(
                    &Expr::CompElem {
                        name: name.clone(),
                        content: Some(Box::new(Expr::VarRef(Name::local(var)))),
                    },
                    &inner,
                    st,
                )
            }
            // Any other XRPC-bearing shape degrades gracefully to
            // per-iteration evaluation — still correct, one RPC per
            // iteration.
            _ => self.fallback(e, lenv, st),
        }
    }

    /// for/let/where pipeline with loop-lifting; `order by` together with
    /// XRPC in the same FLWOR is not lifted (falls back per-iteration).
    fn eval_flwor_lifted(
        &self,
        clauses: &[FlworClause],
        ret: &Expr,
        lenv: &Lifted,
        st: &mut EvalState,
    ) -> XdmResult<SeqTable> {
        // Once the remaining pipeline is XRPC-free, hand the whole rest of
        // the FLWOR to the tree engine per iteration — it has the join
        // optimizations; staying lifted would only burn per-row overhead.
        if !clauses.is_empty() {
            let rest_has_xrpc = ret.contains_xrpc()
                || clauses.iter().any(|c| match c {
                    FlworClause::For { seq, .. } => seq.contains_xrpc(),
                    FlworClause::Let { value, .. } => value.contains_xrpc(),
                    FlworClause::Where(w) => w.contains_xrpc(),
                    FlworClause::OrderBy(_) => false,
                });
            if !rest_has_xrpc {
                return self.fallback(
                    &Expr::Flwor {
                        clauses: clauses.to_vec(),
                        ret: Box::new(ret.clone()),
                    },
                    lenv,
                    st,
                );
            }
        }
        match clauses.first() {
            None => self.eval_lifted(ret, lenv, st),
            Some(FlworClause::For { var, pos_var, seq }) => {
                let s = self.eval_lifted(seq, lenv, st)?;
                // ρ: dense inner iteration numbers over the rows of `s`.
                let map = IterMap::rank(s.iter.clone());
                let mut inner = Lifted {
                    loop_iters: (1..=s.len() as u32).collect(),
                    vars: lenv
                        .vars
                        .iter()
                        .map(|(n, t)| (n.clone(), map.map_in(t)))
                        .collect(),
                };
                let mut var_t = SeqTable::new();
                let mut pos_t = SeqTable::new();
                for (k, item) in s.item.iter().enumerate() {
                    var_t.push(k as u32 + 1, 1, item.clone());
                    pos_t.push(k as u32 + 1, 1, Item::integer(s.pos[k] as i64));
                }
                inner.vars.push((var.lexical(), var_t));
                if let Some(pv) = pos_var {
                    inner.vars.push((pv.lexical(), pos_t));
                }
                let body = self.eval_flwor_lifted(&clauses[1..], ret, &inner, st)?;
                Ok(map.map_back(&body))
            }
            Some(FlworClause::Let { var, value }) => {
                let v = self.eval_lifted(value, lenv, st)?;
                let mut inner = lenv.clone();
                inner.vars.push((var.lexical(), v));
                self.eval_flwor_lifted(&clauses[1..], ret, &inner, st)
            }
            Some(FlworClause::Where(cond)) => {
                let c = self.eval_lifted(cond, lenv, st)?;
                let mut keep = Vec::new();
                for &i in &lenv.loop_iters {
                    if c.sequence_at(i).ebv()? {
                        keep.push(i);
                    }
                }
                let inner = restrict_env(lenv, &keep);
                self.eval_flwor_lifted(&clauses[1..], ret, &inner, st)
            }
            Some(FlworClause::OrderBy(_)) => Err(XdmError::xrpc(
                "order by combined with execute at in one FLWOR is not loop-lifted; \
                 hoist the XRPC call into a let binding",
            )),
        }
    }

    /// Figure 2: the loop-lifted translation of `execute at`.
    fn eval_execute_at_lifted(
        &self,
        dest: &Expr,
        call: &Expr,
        lenv: &Lifted,
        st: &mut EvalState,
    ) -> XdmResult<SeqTable> {
        let Expr::FunctionCall { name, args } = call else {
            return Err(XdmError::syntax("execute at body must be a function call"));
        };
        let func = self.tree.resolve_function_ref(name, args.len())?;
        let dest_t = self.eval_lifted(dest, lenv, st)?;
        let mut arg_tables = Vec::with_capacity(args.len());
        for a in args {
            arg_tables.push(self.eval_lifted(a, lenv, st)?);
        }

        // δ over destinations (first-occurrence order).
        let peers = dest_t.distinct_strings();
        let dispatcher = self
            .tree
            .env
            .dispatcher
            .as_ref()
            .ok_or_else(|| XdmError::xrpc("no XRPC dispatcher configured on this peer"))?;

        // Build (map_p, calls_p) per peer. For read-only functions,
        // duplicate calls (same peer, value-identical atomic arguments)
        // collapse onto one wire call whose result is fanned back out —
        // the set-oriented dual of the loop-invariant hoist.
        struct PeerWork {
            peer: String,
            map: IterMap,
            calls: Vec<Vec<Sequence>>,
            /// per outer iteration: index into `calls`
            call_of_iter: Vec<usize>,
        }
        let mut work = Vec::new();
        for peer in &peers {
            self.tree.env.check_cancel()?;
            let mut outer = Vec::new();
            for &i in &lenv.loop_iters {
                let d = dest_t.sequence_at(i);
                let d = d
                    .singleton()
                    .map_err(|_| XdmError::xrpc("execute at destination must be a single string"))?
                    .string_value();
                if &d == peer {
                    outer.push(i);
                }
            }
            let map = IterMap::rank(outer.clone());
            let mut calls: Vec<Vec<Sequence>> = Vec::new();
            let mut call_of_iter: Vec<usize> = Vec::with_capacity(outer.len());
            let mut seen: std::collections::HashMap<String, usize> =
                std::collections::HashMap::new();
            for &o in &outer {
                let args: Vec<Sequence> = arg_tables.iter().map(|t| t.sequence_at(o)).collect();
                let dedup_ok = !func.updating && self.tree.env.rpc_optimize;
                let key = if dedup_ok {
                    atomic_call_key(&args)
                } else {
                    None
                };
                match key.and_then(|k| seen.get(&k).copied().map(|idx| (k, idx))) {
                    Some((_, idx)) => call_of_iter.push(idx),
                    None => {
                        let idx = calls.len();
                        if dedup_ok {
                            if let Some(k) = atomic_call_key(&args) {
                                seen.insert(k, idx);
                            }
                        }
                        calls.push(args);
                        call_of_iter.push(idx);
                    }
                }
            }
            work.push(PeerWork {
                peer: peer.clone(),
                map,
                calls,
                call_of_iter,
            });
        }

        {
            let mut stats = self.tree.env.stats.lock();
            stats.rpc_dispatches += work.len() as u64;
            stats.rpc_calls += work.iter().map(|w| w.calls.len() as u64).sum::<u64>();
        }

        // Dispatch all Bulk RPC requests in parallel, one thread per
        // destination (§3.2 "Parallel & Out-Of-Order").
        let results: Vec<XdmResult<Vec<Sequence>>> = if work.len() <= 1 {
            work.iter()
                .map(|w| dispatcher.dispatch(&w.peer, &func, w.calls.clone()))
                .collect()
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = work
                    .iter()
                    .map(|w| {
                        let dispatcher = dispatcher.clone();
                        let func = func.clone();
                        scope.spawn(move || dispatcher.dispatch(&w.peer, &func, w.calls.clone()))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("dispatch thread"))
                    .collect()
            })
        };

        // Map every peer's results back to outer iterations and union,
        // fanning deduplicated call results back out per iteration.
        let mut mapped = Vec::new();
        for (w, res) in work.into_iter().zip(results) {
            let res = res?;
            if res.len() != w.calls.len() {
                return Err(XdmError::xrpc(format!(
                    "peer `{}` answered {} results for {} calls",
                    w.peer,
                    res.len(),
                    w.calls.len()
                )));
            }
            let msg = SeqTable::from_sequences(
                w.call_of_iter
                    .iter()
                    .enumerate()
                    .map(|(inner0, &call_idx)| (inner0 as u32 + 1, res[call_idx].clone())),
            );
            mapped.push(w.map.map_back(&msg));
        }
        Ok(SeqTable::merge_union(mapped))
    }

    /// A function call whose arguments (or body) involve XRPC.
    fn eval_call_lifted(
        &self,
        name: &Name,
        args: &[Expr],
        lenv: &Lifted,
        st: &mut EvalState,
    ) -> XdmResult<SeqTable> {
        // Inline a local user function whose body contains XRPC.
        if let Some(f) = self
            .tree
            .local_functions
            .get(&(name.local.clone(), args.len()))
            .cloned()
        {
            if f.body.contains_xrpc() {
                let mut inner = lenv.clone();
                for ((pname, _), a) in f.params.iter().zip(args.iter()) {
                    let t = self.eval_lifted(a, lenv, st)?;
                    inner.vars.push((pname.lexical(), t));
                }
                return self.eval_lifted(&f.body, &inner, st);
            }
        }
        // Otherwise: arguments may contain XRPC — lift them, then apply
        // the function per iteration.
        let mut arg_tables = Vec::with_capacity(args.len());
        for a in args {
            arg_tables.push(self.eval_lifted(a, lenv, st)?);
        }
        let mut out = Vec::new();
        for &i in &lenv.loop_iters {
            let actuals: Vec<Sequence> = arg_tables.iter().map(|t| t.sequence_at(i)).collect();
            let r = self.with_iter_vars(lenv, i, st, |tree, st2| {
                tree.apply_function(name, actuals.clone(), st2, &Ctx::none())
            })?;
            out.push((i, r));
        }
        Ok(SeqTable::from_sequences(out))
    }

    /// Replace XRPC-bearing enclosed expressions of a direct constructor
    /// with synthetic variables bound to their loop-lifted values.
    fn lift_direlem(
        &self,
        d: &xqast::DirElem,
        lenv: &Lifted,
        st: &mut EvalState,
        bindings: &mut Vec<(String, SeqTable)>,
        counter: &mut usize,
    ) -> XdmResult<xqast::DirElem> {
        use xqast::{AttrContent, DirContent};
        let mut out = d.clone();
        for (_, parts) in out.attrs.iter_mut() {
            for p in parts.iter_mut() {
                if let AttrContent::Enclosed(e) = p {
                    if e.contains_xrpc() {
                        let t = self.eval_lifted(e, lenv, st)?;
                        let var = format!("xrpc-enc-{}", *counter);
                        *counter += 1;
                        bindings.push((var.clone(), t));
                        *p = AttrContent::Enclosed(Expr::VarRef(Name::local(var)));
                    }
                }
            }
        }
        for c in out.content.iter_mut() {
            match c {
                DirContent::Enclosed(e) if e.contains_xrpc() => {
                    let t = self.eval_lifted(e, lenv, st)?;
                    let var = format!("xrpc-enc-{}", *counter);
                    *counter += 1;
                    bindings.push((var.clone(), t));
                    *c = DirContent::Enclosed(Expr::VarRef(Name::local(var)));
                }
                DirContent::Element(inner) => {
                    *inner = self.lift_direlem(inner, lenv, st, bindings, counter)?;
                }
                _ => {}
            }
        }
        Ok(out)
    }

    /// Per-iteration fallback to the tree engine.
    fn fallback(&self, e: &Expr, lenv: &Lifted, st: &mut EvalState) -> XdmResult<SeqTable> {
        let mut out = Vec::new();
        for &i in &lenv.loop_iters {
            let r =
                self.with_iter_vars(lenv, i, st, |tree, st2| tree.eval(e, st2, &Ctx::none()))?;
            out.push((i, r));
        }
        Ok(SeqTable::from_sequences(out))
    }

    /// Run `f` with the lifted variables materialized for iteration `i`.
    fn with_iter_vars<T>(
        &self,
        lenv: &Lifted,
        i: u32,
        st: &mut EvalState,
        f: impl FnOnce(&Evaluator, &mut EvalState) -> XdmResult<T>,
    ) -> XdmResult<T> {
        // Cooperative checkpoint: every bulk path funnels through here once
        // per loop iteration, so an exceeded budget stops the batch between
        // iterations instead of after the whole table.
        self.tree.env.check_cancel()?;
        let base = st.vars.len();
        for (n, t) in &lenv.vars {
            st.vars.push((n.clone(), t.sequence_at(i)));
        }
        let r = f(&self.tree, st);
        st.vars.truncate(base);
        r
    }
}

/// A value key for call deduplication: `Some` only when every parameter
/// item is atomic (node arguments carry identity and are never collapsed).
fn atomic_call_key(args: &[Sequence]) -> Option<String> {
    let mut key = String::new();
    for s in args {
        key.push('|');
        for item in s.iter() {
            match item {
                xdm::Item::Atomic(a) => {
                    key.push_str(a.atomic_type().xs_name());
                    key.push(':');
                    key.push_str(&a.lexical());
                    key.push('\u{1}');
                }
                xdm::Item::Node(_) => return None,
            }
        }
    }
    Some(key)
}

fn restrict_env(lenv: &Lifted, iters: &[u32]) -> Lifted {
    Lifted {
        loop_iters: iters.to_vec(),
        vars: lenv
            .vars
            .iter()
            .map(|(n, t)| (n.clone(), t.restrict(iters)))
            .collect(),
    }
}
