//! The loop-lifted relational XQuery engine — the reproduction's stand-in
//! for MonetDB/XQuery + Pathfinder (paper §3).
//!
//! Sequences are `iter|pos|item` tables ([`table::SeqTable`]); nested
//! for-loops are removed by *loop-lifting* (§3.1), and an `execute at`
//! inside a for-loop taken N times turns into a **single Bulk RPC
//! request** per destination peer (§3.2, Figures 1–2): distinct peers are
//! extracted with δ, per-peer request tables are renumbered with ρ,
//! requests are dispatched in parallel, and responses are mapped back and
//! merge-unioned on `iter` to restore query order.
//!
//! Engineering choice (documented in DESIGN.md): sub-expressions that
//! contain no `execute at` are evaluated per-iteration by the tree engine
//! (`xqeval`) — the bulk behaviour the paper measures lives entirely in
//! the XRPC path, which is fully loop-lifted here.

pub mod cache;
pub mod engine;
pub mod table;

pub use cache::{CacheStats, FunctionCache, PlanCache};
pub use engine::{execute_rel, RelEngine};
pub use table::{IterMap, SeqTable};
