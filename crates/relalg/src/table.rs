//! The `iter|pos|item` sequence tables and the Table-1 relational algebra
//! (σ, π, δ, ⊎, ⋈, ρ) specialized to them.
//!
//! Invariant: rows are sorted by `(iter, pos)` and `pos` numbers 1..k
//! within each `iter` group.

use std::collections::BTreeMap;
use xdm::{Item, Sequence};

/// A loop-lifted sequence: one row per item per loop iteration.
#[derive(Clone, Debug, Default)]
pub struct SeqTable {
    pub iter: Vec<u32>,
    pub pos: Vec<u32>,
    pub item: Vec<Item>,
}

impl SeqTable {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn len(&self) -> usize {
        self.iter.len()
    }

    pub fn is_empty(&self) -> bool {
        self.iter.is_empty()
    }

    pub fn push(&mut self, iter: u32, pos: u32, item: Item) {
        self.iter.push(iter);
        self.pos.push(pos);
        self.item.push(item);
    }

    /// A literal table (Table 1's literal-table operator): the same
    /// single item in every iteration of `loop_iters`.
    pub fn literal(loop_iters: &[u32], item: &Item) -> Self {
        let mut t = SeqTable::new();
        for &i in loop_iters {
            t.push(i, 1, item.clone());
        }
        t
    }

    /// Build from one `(iter, Sequence)` pair per iteration (pairs must be
    /// in ascending iter order).
    pub fn from_sequences(pairs: impl IntoIterator<Item = (u32, Sequence)>) -> Self {
        let mut t = SeqTable::new();
        for (iter, seq) in pairs {
            for (p, item) in seq.into_items().into_iter().enumerate() {
                t.push(iter, p as u32 + 1, item);
            }
        }
        t
    }

    /// The items of one iteration as an XDM sequence.
    pub fn sequence_at(&self, iter: u32) -> Sequence {
        let (lo, hi) = self.iter_range(iter);
        Sequence::from_items(self.item[lo..hi].to_vec())
    }

    /// Group boundaries of an iteration (binary search on the sorted
    /// `iter` column).
    pub fn iter_range(&self, iter: u32) -> (usize, usize) {
        let lo = self.iter.partition_point(|&i| i < iter);
        let hi = self.iter.partition_point(|&i| i <= iter);
        (lo, hi)
    }

    /// σ: keep only the rows of the given (sorted) iterations.
    pub fn restrict(&self, iters: &[u32]) -> SeqTable {
        let mut t = SeqTable::new();
        for &i in iters {
            let (lo, hi) = self.iter_range(i);
            for r in lo..hi {
                t.push(self.iter[r], self.pos[r], self.item[r].clone());
            }
        }
        t
    }

    /// Per-iteration map over sequences; rebuilds pos numbering.
    pub fn map_sequences(
        &self,
        loop_iters: &[u32],
        mut f: impl FnMut(u32, Sequence) -> Sequence,
    ) -> SeqTable {
        let mut t = SeqTable::new();
        for &i in loop_iters {
            let seq = f(i, self.sequence_at(i));
            for (p, item) in seq.into_items().into_iter().enumerate() {
                t.push(i, p as u32 + 1, item);
            }
        }
        t
    }

    /// ⊎ of several operand tables *per iteration*, in operand order —
    /// this is how `(e1, e2)` sequence construction is lifted.
    pub fn concat_per_iter(loop_iters: &[u32], operands: &[SeqTable]) -> SeqTable {
        let mut t = SeqTable::new();
        for &i in loop_iters {
            let mut pos = 1u32;
            for op in operands {
                let (lo, hi) = op.iter_range(i);
                for r in lo..hi {
                    t.push(i, pos, op.item[r].clone());
                    pos += 1;
                }
            }
        }
        t
    }

    /// Merge-union of disjoint-iter tables, keeping the (iter, pos) sort —
    /// the final step of Figure 1 (`⋃(res_p1, res_p2)`).
    pub fn merge_union(tables: Vec<SeqTable>) -> SeqTable {
        let mut groups: BTreeMap<u32, Vec<(u32, Item)>> = BTreeMap::new();
        for t in tables {
            for r in 0..t.len() {
                groups
                    .entry(t.iter[r])
                    .or_default()
                    .push((t.pos[r], t.item[r].clone()));
            }
        }
        let mut out = SeqTable::new();
        for (iter, mut rows) in groups {
            rows.sort_by_key(|(p, _)| *p);
            for (p, (_, item)) in rows.into_iter().enumerate() {
                out.push(iter, p as u32 + 1, item);
            }
        }
        out
    }

    /// δ over the item column (string identity) — used to find the set of
    /// distinct destination peers in Figure 2. First-occurrence order.
    pub fn distinct_strings(&self) -> Vec<String> {
        let mut seen = Vec::new();
        for item in &self.item {
            let s = item.string_value();
            if !seen.contains(&s) {
                seen.push(s);
            }
        }
        seen
    }

    /// All iterations present (ascending, deduplicated).
    pub fn iters(&self) -> Vec<u32> {
        let mut v: Vec<u32> = Vec::new();
        for &i in &self.iter {
            if v.last() != Some(&i) {
                v.push(i);
            }
        }
        v
    }
}

/// ρ + map table of Figure 2: the mapping between outer iterations and
/// the densely renumbered inner/per-peer iterations.
///
/// Row `k` (0-based) maps inner iteration `k + 1` to `outer[k]`.
#[derive(Clone, Debug, Default)]
pub struct IterMap {
    pub outer: Vec<u32>,
}

impl IterMap {
    /// ρ: assign dense inner numbers 1..n to the given outer iterations
    /// (in the order given — ascending for the sorted tables we build).
    pub fn rank(outer: Vec<u32>) -> Self {
        IterMap { outer }
    }

    pub fn inner_count(&self) -> usize {
        self.outer.len()
    }

    pub fn to_outer(&self, inner: u32) -> u32 {
        self.outer[(inner - 1) as usize]
    }

    /// Map an outer-iter table into inner numbering: Figure 2's
    /// `req_p = π(ρ(⋈(map_p, param)))`. Outer iterations may repeat
    /// (several inner iterations per outer one).
    pub fn map_in(&self, outer_table: &SeqTable) -> SeqTable {
        let mut t = SeqTable::new();
        for (k, &o) in self.outer.iter().enumerate() {
            let (lo, hi) = outer_table.iter_range(o);
            for r in lo..hi {
                t.push(
                    k as u32 + 1,
                    outer_table.pos[r],
                    outer_table.item[r].clone(),
                );
            }
        }
        t
    }

    /// Map an inner-iter table back to outer numbering: Figure 2's
    /// `res_p = π(⋈(msg_p, map_p))`. Several inner iterations may map to
    /// one outer iteration (a for-loop body); their sequences concatenate
    /// in inner order and `pos` is renumbered per outer group. Requires
    /// `outer` to be non-decreasing (it is: ranks are taken over sorted
    /// iteration columns).
    pub fn map_back(&self, inner_table: &SeqTable) -> SeqTable {
        debug_assert!(self.outer.windows(2).all(|w| w[0] <= w[1]));
        let mut t = SeqTable::new();
        let mut pos = 0u32;
        let mut cur_outer: Option<u32> = None;
        for inner in 1..=self.inner_count() as u32 {
            let o = self.to_outer(inner);
            if cur_outer != Some(o) {
                cur_outer = Some(o);
                pos = 0;
            }
            let (lo, hi) = inner_table.iter_range(inner);
            for r in lo..hi {
                pos += 1;
                t.push(o, pos, inner_table.item[r].clone());
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items(t: &SeqTable) -> Vec<String> {
        t.item.iter().map(|i| i.string_value()).collect()
    }

    #[test]
    fn literal_and_ranges() {
        let t = SeqTable::literal(&[1, 2, 3], &Item::integer(7));
        assert_eq!(t.len(), 3);
        assert_eq!(t.iter_range(2), (1, 2));
        assert_eq!(t.sequence_at(2).len(), 1);
        assert_eq!(t.sequence_at(9).len(), 0);
    }

    #[test]
    fn from_sequences_renumbers_pos() {
        let t = SeqTable::from_sequences(vec![
            (
                1,
                Sequence::from_items(vec![Item::integer(10), Item::integer(11)]),
            ),
            (3, Sequence::one(Item::integer(30))),
        ]);
        assert_eq!(t.iter, vec![1, 1, 3]);
        assert_eq!(t.pos, vec![1, 2, 1]);
    }

    #[test]
    fn restrict_keeps_sorted_subset() {
        let t = SeqTable::from_sequences(vec![
            (1, Sequence::one(Item::integer(1))),
            (2, Sequence::one(Item::integer(2))),
            (3, Sequence::one(Item::integer(3))),
        ]);
        let r = t.restrict(&[1, 3]);
        assert_eq!(items(&r), ["1", "3"]);
    }

    #[test]
    fn concat_per_iter_matches_paper_z_example() {
        // §3.1's $z := ($x, $y) example: four iterations, two values each.
        let x = SeqTable::from_sequences((1..=4).map(|i| {
            (
                i,
                Sequence::one(Item::integer(if i <= 2 { 10 } else { 20 })),
            )
        }));
        let y = SeqTable::from_sequences((1..=4).map(|i| {
            (
                i,
                Sequence::one(Item::integer(if i % 2 == 1 { 100 } else { 200 })),
            )
        }));
        let z = SeqTable::concat_per_iter(&[1, 2, 3, 4], &[x, y]);
        assert_eq!(z.iter, vec![1, 1, 2, 2, 3, 3, 4, 4]);
        assert_eq!(z.pos, vec![1, 2, 1, 2, 1, 2, 1, 2]);
        assert_eq!(
            items(&z),
            ["10", "100", "10", "200", "20", "100", "20", "200"]
        );
    }

    #[test]
    fn distinct_strings_first_occurrence_order() {
        let t = SeqTable::from_sequences(vec![
            (1, Sequence::one(Item::string("y"))),
            (2, Sequence::one(Item::string("z"))),
            (3, Sequence::one(Item::string("y"))),
        ]);
        assert_eq!(t.distinct_strings(), ["y", "z"]);
    }

    #[test]
    fn iter_map_roundtrip_figure1() {
        // Figure 1: peer p1 handles outer iters {1, 3}, p2 handles {2, 4}.
        let actor = SeqTable::from_sequences(vec![
            (1, Sequence::one(Item::string("Julie Andrews"))),
            (2, Sequence::one(Item::string("Julie Andrews"))),
            (3, Sequence::one(Item::string("Sean Connery"))),
            (4, Sequence::one(Item::string("Sean Connery"))),
        ]);
        let map_p1 = IterMap::rank(vec![1, 3]);
        let map_p2 = IterMap::rank(vec![2, 4]);
        let req_p1 = map_p1.map_in(&actor);
        assert_eq!(req_p1.iter, vec![1, 2]);
        assert_eq!(items(&req_p1), ["Julie Andrews", "Sean Connery"]);

        // peer p1's bulk answer: iter_p 2 → two films, iter_p 1 → none
        let msg_p1 = SeqTable::from_sequences(vec![(
            2,
            Sequence::from_items(vec![Item::string("The Rock"), Item::string("Goldfinger")]),
        )]);
        let msg_p2 =
            SeqTable::from_sequences(vec![(1, Sequence::one(Item::string("Sound Of Music")))]);
        let res_p1 = map_p1.map_back(&msg_p1);
        let res_p2 = map_p2.map_back(&msg_p2);
        assert_eq!(res_p1.iter, vec![3, 3]);
        assert_eq!(res_p2.iter, vec![2]);
        let result = SeqTable::merge_union(vec![res_p1, res_p2]);
        assert_eq!(result.iter, vec![2, 3, 3]);
        assert_eq!(items(&result), ["Sound Of Music", "The Rock", "Goldfinger"]);
    }

    #[test]
    fn merge_union_restores_order() {
        let a = SeqTable::from_sequences(vec![(3, Sequence::one(Item::integer(3)))]);
        let b = SeqTable::from_sequences(vec![
            (1, Sequence::one(Item::integer(1))),
            (5, Sequence::one(Item::integer(5))),
        ]);
        let m = SeqTable::merge_union(vec![a, b]);
        assert_eq!(m.iter, vec![1, 3, 5]);
        assert_eq!(items(&m), ["1", "3", "5"]);
    }

    #[test]
    fn map_in_expands_repeated_outer_iters() {
        // one outer iteration feeding two inner iterations
        let v = SeqTable::from_sequences(vec![(7, Sequence::one(Item::string("x")))]);
        let map = IterMap::rank(vec![7, 7]);
        let inner = map.map_in(&v);
        assert_eq!(inner.iter, vec![1, 2]);
        assert_eq!(items(&inner), ["x", "x"]);
    }
}
