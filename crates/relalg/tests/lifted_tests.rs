//! Loop-lifted engine tests: bulk-RPC generation (one request per
//! destination peer regardless of loop count), order restoration, and
//! result equivalence with the tree engine.

use parking_lot::Mutex;
use relalg::execute_rel;
use std::sync::Arc;
use xdm::{Item, Sequence, XdmError, XdmResult};
use xqeval::context::{FunctionRef, RpcDispatcher};
use xqeval::{evaluate_main, Environment, InMemoryDocs};

const FILM_MODULE: &str = r#"
    module namespace film = "films";
    declare function film:filmsByActor($actor as xs:string) as node()*
    { doc("filmDB.xml")//name[../actor = $actor] };
    declare function film:echo($x) { $x };
"#;

const TEST_MODULE: &str = r#"
    module namespace t = "test";
    declare function t:echoVoid() { () };
    declare function t:double($n as xs:integer) { $n * 2 };
"#;

fn film_db(peer: &str) -> String {
    // different peers carry different films so multi-destination order is
    // observable
    match peer {
        "y" => r#"<films>
            <film><name>The Rock</name><actor>Sean Connery</actor></film>
            <film><name>Goldfinger</name><actor>Sean Connery</actor></film>
            </films>"#
            .to_string(),
        _ => r#"<films>
            <film><name>Sound Of Music</name><actor>Julie Andrews</actor></film>
            </films>"#
            .to_string(),
    }
}

/// In-process dispatcher evaluating bulk calls against per-peer remote
/// environments, recording (peer, bulk size) per dispatch.
struct RecordingDispatcher {
    remotes: std::collections::HashMap<String, Environment>,
    pub log: Mutex<Vec<(String, usize)>>,
}

impl RecordingDispatcher {
    fn new(peers: &[&str]) -> Self {
        let mut remotes = std::collections::HashMap::new();
        for p in peers {
            let docs = InMemoryDocs::new();
            docs.insert("filmDB.xml", xmldom::parse(&film_db(p)).unwrap());
            let env = Environment::new(Arc::new(docs));
            env.modules.register_source(FILM_MODULE).unwrap();
            env.modules.register_source(TEST_MODULE).unwrap();
            remotes.insert(format!("xrpc://{p}"), env);
        }
        RecordingDispatcher {
            remotes,
            log: Mutex::new(Vec::new()),
        }
    }
}

impl RpcDispatcher for RecordingDispatcher {
    fn dispatch(
        &self,
        dest: &str,
        func: &FunctionRef,
        calls: Vec<Vec<Sequence>>,
    ) -> XdmResult<Vec<Sequence>> {
        self.log.lock().push((dest.to_string(), calls.len()));
        let remote = self
            .remotes
            .get(dest)
            .ok_or_else(|| XdmError::xrpc(format!("unknown peer {dest}")))?;
        let module = remote
            .modules
            .get_or_load(&func.module_ns, func.location_hint.as_deref())?;
        let f = module
            .function(&func.local_name, func.arity)
            .ok_or_else(|| XdmError::unknown_function("remote function missing"))?;
        let ev = xqeval::Evaluator::new(remote, module.sctx.clone());
        let mut out = Vec::new();
        for args in calls {
            let mut st = xqeval::eval::EvalState::new();
            for ((pname, _), v) in f.params.iter().zip(args) {
                st.vars.push((pname.lexical(), v));
            }
            out.push(ev.eval(&f.body, &mut st, &xqeval::eval::Ctx::none())?);
        }
        Ok(out)
    }
}

fn local_env(dispatcher: Arc<RecordingDispatcher>) -> Environment {
    let docs = InMemoryDocs::new();
    let mut env = Environment::new(Arc::new(docs));
    env.modules.register_source(FILM_MODULE).unwrap();
    env.modules.register_source(TEST_MODULE).unwrap();
    env.dispatcher = Some(dispatcher);
    env
}

fn serialize(seq: &Sequence) -> String {
    seq.iter()
        .map(|i| match i {
            Item::Node(n) => n.to_xml(),
            a => a.string_value(),
        })
        .collect::<Vec<_>>()
        .join("|")
}

#[test]
fn single_call_q1() {
    let disp = Arc::new(RecordingDispatcher::new(&["y"]));
    let env = local_env(disp.clone());
    let q = r#"
        import module namespace f = "films";
        <films>{ execute at {"xrpc://y"} {f:filmsByActor("Sean Connery")} }</films>"#;
    let (res, _) = execute_rel(q, &env).unwrap();
    assert_eq!(
        serialize(&res),
        "<films><name>The Rock</name><name>Goldfinger</name></films>"
    );
    assert_eq!(*disp.log.lock(), vec![("xrpc://y".to_string(), 1)]);
}

#[test]
fn loop_becomes_single_bulk_request_q2() {
    // Q2: two iterations, one destination → exactly ONE bulk request of 2
    let disp = Arc::new(RecordingDispatcher::new(&["y"]));
    let env = local_env(disp.clone());
    let q = r#"
        import module namespace f = "films";
        for $actor in ("Julie Andrews", "Sean Connery")
        return execute at {"xrpc://y"} {f:filmsByActor($actor)}"#;
    let (res, _) = execute_rel(q, &env).unwrap();
    assert_eq!(
        serialize(&res),
        "<name>The Rock</name>|<name>Goldfinger</name>"
    );
    assert_eq!(*disp.log.lock(), vec![("xrpc://y".to_string(), 2)]);
}

#[test]
fn thousand_iterations_still_one_request() {
    let disp = Arc::new(RecordingDispatcher::new(&["y"]));
    let env = local_env(disp.clone());
    let q = r#"
        import module namespace t = "test";
        for $i in (1 to 1000) return execute at {"xrpc://y"} {t:echoVoid()}"#;
    let (res, _) = execute_rel(q, &env).unwrap();
    assert!(res.is_empty());
    let log = disp.log.lock();
    assert_eq!(log.len(), 1, "expected a single bulk dispatch");
    assert_eq!(log[0].1, 1000);
}

#[test]
fn multi_destination_q3_splits_and_restores_order() {
    // Q3: 2 actors × 2 peers = 4 iterations, 2 peers → 2 bulk requests of
    // 2 calls each, results in the original iteration order.
    let disp = Arc::new(RecordingDispatcher::new(&["y", "z"]));
    let env = local_env(disp.clone());
    let q = r#"
        import module namespace f = "films";
        for $actor in ("Julie Andrews", "Sean Connery")
        for $dst in ("xrpc://y", "xrpc://z")
        return execute at {$dst} {f:filmsByActor($actor)}"#;
    let (res, _) = execute_rel(q, &env).unwrap();
    // iteration order: (JA,y)=∅, (JA,z)=SoundOfMusic, (SC,y)=Rock+Gold, (SC,z)=∅
    assert_eq!(
        serialize(&res),
        "<name>Sound Of Music</name>|<name>The Rock</name>|<name>Goldfinger</name>"
    );
    let log = disp.log.lock();
    assert_eq!(log.len(), 2);
    // each peer got one bulk request with both actors (out-of-order
    // per-peer processing, §3.2)
    let mut sorted: Vec<_> = log.clone();
    sorted.sort();
    assert_eq!(
        sorted,
        vec![("xrpc://y".to_string(), 2), ("xrpc://z".to_string(), 2)]
    );
}

#[test]
fn q6_two_calls_same_peer_sequence_construction() {
    // Q6: sequence construction of two execute-ats inside one loop →
    // two bulk requests to the same peer (one per call site), each
    // carrying both loop iterations.
    let disp = Arc::new(RecordingDispatcher::new(&["y"]));
    let env = local_env(disp.clone());
    let q = r#"
        import module namespace f = "films";
        for $name in ("Julie", "Sean")
        let $connery := concat($name, " ", "Connery")
        let $andrews := concat($name, " ", "Andrews")
        return (
            execute at {"xrpc://y"} {f:filmsByActor($connery)},
            execute at {"xrpc://y"} {f:filmsByActor($andrews)} )"#;
    let (res, _) = execute_rel(q, &env).unwrap();
    // Sean Connery matches two films on y; everything else is empty
    assert_eq!(
        serialize(&res),
        "<name>The Rock</name>|<name>Goldfinger</name>"
    );
    let log = disp.log.lock();
    assert_eq!(log.len(), 2, "one bulk request per call site");
    assert!(log.iter().all(|(p, n)| p == "xrpc://y" && *n == 2));
}

#[test]
fn loop_dependent_parameter_values_transferred() {
    let disp = Arc::new(RecordingDispatcher::new(&["y"]));
    let env = local_env(disp.clone());
    let q = r#"
        import module namespace t = "test";
        for $i in (1 to 5) return execute at {"xrpc://y"} {t:double($i)}"#;
    let (res, _) = execute_rel(q, &env).unwrap();
    assert_eq!(serialize(&res), "2|4|6|8|10");
    assert_eq!(disp.log.lock().len(), 1);
}

#[test]
fn where_clause_restricts_bulk() {
    let disp = Arc::new(RecordingDispatcher::new(&["y"]));
    let env = local_env(disp.clone());
    let q = r#"
        import module namespace t = "test";
        for $i in (1 to 10) where $i mod 2 = 0
        return execute at {"xrpc://y"} {t:double($i)}"#;
    let (res, _) = execute_rel(q, &env).unwrap();
    assert_eq!(serialize(&res), "4|8|12|16|20");
    let log = disp.log.lock();
    assert_eq!(log.len(), 1);
    assert_eq!(log[0].1, 5);
}

#[test]
fn nested_loops_multiply_calls() {
    let disp = Arc::new(RecordingDispatcher::new(&["y"]));
    let env = local_env(disp.clone());
    let q = r#"
        import module namespace t = "test";
        for $i in (1 to 3) for $j in (1 to 4)
        return execute at {"xrpc://y"} {t:double($i * $j)}"#;
    let (res, _) = execute_rel(q, &env).unwrap();
    assert_eq!(res.len(), 12);
    assert_eq!(disp.log.lock()[0].1, 12);
}

#[test]
fn conditional_execute_at() {
    let disp = Arc::new(RecordingDispatcher::new(&["y"]));
    let env = local_env(disp.clone());
    let q = r#"
        import module namespace t = "test";
        for $i in (1 to 4)
        return if ($i > 2) then execute at {"xrpc://y"} {t:double($i)} else ($i)"#;
    let (res, _) = execute_rel(q, &env).unwrap();
    assert_eq!(serialize(&res), "1|2|6|8");
    // only the 2 iterations of the then-branch go remote
    assert_eq!(disp.log.lock()[0].1, 2);
}

#[test]
fn let_bound_rpc_result_used_in_predicate() {
    // semi-join shape: let $r := execute at ... return if(empty($r)) ...
    let disp = Arc::new(RecordingDispatcher::new(&["y"]));
    let env = local_env(disp.clone());
    let q = r#"
        import module namespace f = "films";
        for $actor in ("Julie Andrews", "Sean Connery", "Nobody")
        let $r := execute at {"xrpc://y"} {f:filmsByActor($actor)}
        return if (empty($r)) then () else <hit>{$actor}</hit>"#;
    let (res, _) = execute_rel(q, &env).unwrap();
    assert_eq!(serialize(&res), "<hit>Sean Connery</hit>");
    let log = disp.log.lock();
    assert_eq!(log.len(), 1);
    assert_eq!(log[0].1, 3);
}

#[test]
fn rel_and_tree_engines_agree_on_xrpc_free_queries() {
    let disp = Arc::new(RecordingDispatcher::new(&["y"]));
    for q in [
        "for $x in (1 to 10) where $x mod 3 = 0 return $x * $x",
        "let $s := (1, 2, 3) return (count($s), sum($s))",
        "<out>{ for $i in (1 to 3) return <i>{$i}</i> }</out>",
        "string-join(for $x in ('c', 'a', 'b') order by $x return $x, '')",
    ] {
        let env1 = local_env(disp.clone());
        let env2 = local_env(disp.clone());
        let (r1, _) = execute_rel(q, &env1).unwrap();
        let (r2, _) = evaluate_main(q, &env2).unwrap();
        assert_eq!(serialize(&r1), serialize(&r2), "query: {q}");
    }
}

#[test]
fn rpc_error_propagates() {
    let disp = Arc::new(RecordingDispatcher::new(&["y"]));
    let env = local_env(disp.clone());
    let q = r#"
        import module namespace t = "test";
        for $i in (1 to 3) return execute at {"xrpc://nowhere"} {t:echoVoid()}"#;
    let err = execute_rel(q, &env).unwrap_err();
    assert_eq!(err.code, "XRPC0001");
}

#[test]
fn updates_collect_in_pul_through_rel_engine() {
    let disp = Arc::new(RecordingDispatcher::new(&["y"]));
    let env = local_env(disp.clone());
    let docs = InMemoryDocs::new();
    docs.insert("db.xml", xmldom::parse("<db><i/><i/></db>").unwrap());
    let env = Environment {
        docs: Arc::new(docs),
        ..{
            let mut e = Environment::new(env.docs.clone());
            e.dispatcher = Some(disp);
            e
        }
    };
    let (_, pul) = execute_rel(
        r#"for $i in doc("db.xml")//i return insert node <k/> into $i"#,
        &env,
    )
    .unwrap();
    assert_eq!(pul.len(), 2);
}

#[test]
fn rpc_optimize_hoists_invariant_call() {
    // with the optimizer flag on, a loop-invariant call goes out ONCE
    let disp = Arc::new(RecordingDispatcher::new(&["y"]));
    let mut env = local_env(disp.clone());
    env.rpc_optimize = true;
    let q = r#"
        import module namespace f = "films";
        for $i in (1 to 100)
        return count(execute at {"xrpc://y"} {f:filmsByActor("Sean Connery")})"#;
    let (res, _) = execute_rel(q, &env).unwrap();
    assert_eq!(res.len(), 100);
    assert!(res.iter().all(|i| i.string_value() == "2"));
    let log = disp.log.lock();
    assert_eq!(log.len(), 1);
    assert_eq!(log[0].1, 1, "hoisted: one call for 100 iterations");
}

#[test]
fn rpc_optimize_dedupes_repeated_arguments() {
    let disp = Arc::new(RecordingDispatcher::new(&["y"]));
    let mut env = local_env(disp.clone());
    env.rpc_optimize = true;
    let q = r#"
        import module namespace t = "test";
        for $i in (1 to 12) return execute at {"xrpc://y"} {t:double($i mod 3)}"#;
    let (res, _) = execute_rel(q, &env).unwrap();
    // results fan back out per iteration
    assert_eq!(res.len(), 12);
    assert_eq!(res.items()[0].string_value(), "2"); // 1 mod 3 = 1 → 2
    let log = disp.log.lock();
    assert_eq!(log.len(), 1);
    assert_eq!(log[0].1, 3, "only the 3 distinct argument values go out");
}

#[test]
fn rpc_optimize_off_by_default_keeps_figure2_traffic() {
    let disp = Arc::new(RecordingDispatcher::new(&["y"]));
    let env = local_env(disp.clone());
    let q = r#"
        import module namespace t = "test";
        for $i in (1 to 10) return execute at {"xrpc://y"} {t:echoVoid()}"#;
    execute_rel(q, &env).unwrap();
    // Figure 2 literally: all 10 calls on the wire (in one bulk request)
    assert_eq!(*disp.log.lock(), vec![("xrpc://y".to_string(), 10)]);
}
