//! AST node definitions for the supported XQuery subset.

use xdm::atomic::AtomicValue;
use xdm::ops::ArithOp;
use xdm::types::SeqType;

/// An unresolved QName as written in the query (`prefix:local`). Namespace
/// resolution happens in the static context of the evaluating engine.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Name {
    pub prefix: Option<String>,
    pub local: String,
}

impl Name {
    pub fn local(l: impl Into<String>) -> Self {
        Name {
            prefix: None,
            local: l.into(),
        }
    }

    pub fn prefixed(p: impl Into<String>, l: impl Into<String>) -> Self {
        Name {
            prefix: Some(p.into()),
            local: l.into(),
        }
    }

    pub fn lexical(&self) -> String {
        match &self.prefix {
            Some(p) => format!("{}:{}", p, self.local),
            None => self.local.clone(),
        }
    }
}

/// Comparison operators. Value comparisons (`eq`) and general comparisons
/// (`=`) share the op kind; the expression variant distinguishes them.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CompOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// Node comparisons: `is`, `<<`, `>>`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NodeCompOp {
    Is,
    Precedes,
    Follows,
}

/// XPath axes (direct mirror of `xmldom::axes::Axis`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Axis {
    Child,
    Descendant,
    DescendantOrSelf,
    Parent,
    Ancestor,
    AncestorOrSelf,
    FollowingSibling,
    PrecedingSibling,
    Following,
    Preceding,
    Attribute,
    SelfAxis,
}

/// Node test of an axis step.
#[derive(Clone, Debug, PartialEq)]
pub enum NodeTest {
    /// `name` or `prefix:name`
    Name(Name),
    /// `*`
    AnyName,
    /// `prefix:*`
    NsWildcard(String),
    /// `*:local`
    LocalWildcard(String),
    /// `node()`
    AnyKind,
    /// `text()`
    Text,
    /// `comment()`
    Comment,
    /// `processing-instruction()` with optional target
    Pi(Option<String>),
    /// `element()` / `element(name)`
    Element(Option<Name>),
    /// `attribute()` / `attribute(name)`
    AttributeTest(Option<Name>),
    /// `document-node()`
    DocumentTest,
}

/// FLWOR clauses (simplified: one `where`, one `order by`).
#[derive(Clone, Debug, PartialEq)]
pub enum FlworClause {
    For {
        var: Name,
        pos_var: Option<Name>,
        seq: Expr,
    },
    Let {
        var: Name,
        value: Expr,
    },
    Where(Expr),
    OrderBy(Vec<OrderSpec>),
}

#[derive(Clone, Debug, PartialEq)]
pub struct OrderSpec {
    pub key: Expr,
    pub descending: bool,
    pub empty_least: bool,
}

/// Quantifier kind for `some`/`every`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Quantifier {
    Some,
    Every,
}

/// Insert position for XQUF `insert` (paper §2.3 relies on XQUF semantics).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum InsertPos {
    Into,
    AsFirstInto,
    AsLastInto,
    Before,
    After,
}

/// Content particle of a direct element constructor.
#[derive(Clone, Debug, PartialEq)]
pub enum DirContent {
    /// Literal text (entity refs already decoded).
    Text(String),
    /// `{ Expr }` enclosed expression.
    Enclosed(Expr),
    /// Nested direct element.
    Element(DirElem),
    /// `<!-- ... -->`
    Comment(String),
    /// `<?target data?>`
    Pi(String, String),
}

/// Attribute value particle: literal text or enclosed expression.
#[derive(Clone, Debug, PartialEq)]
pub enum AttrContent {
    Text(String),
    Enclosed(Expr),
}

/// A direct element constructor.
#[derive(Clone, Debug, PartialEq)]
pub struct DirElem {
    pub name: Name,
    /// Attributes in source order (namespace declarations are extracted
    /// into `ns_decls` at parse time).
    pub attrs: Vec<(Name, Vec<AttrContent>)>,
    pub ns_decls: Vec<(String, String)>,
    pub content: Vec<DirContent>,
}

/// A single typeswitch case.
#[derive(Clone, Debug, PartialEq)]
pub struct TypeswitchCase {
    pub var: Option<Name>,
    pub ty: SeqType,
    pub body: Expr,
}

/// Expressions.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    Literal(AtomicValue),
    VarRef(Name),
    ContextItem,
    /// `(e1, e2, ...)` including the empty sequence `()`.
    Sequence(Vec<Expr>),
    Range(Box<Expr>, Box<Expr>),
    Arith(ArithOp, Box<Expr>, Box<Expr>),
    Neg(Box<Expr>),
    ValueComp(CompOp, Box<Expr>, Box<Expr>),
    GeneralComp(CompOp, Box<Expr>, Box<Expr>),
    NodeComp(NodeCompOp, Box<Expr>, Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Union(Box<Expr>, Box<Expr>),
    Intersect(Box<Expr>, Box<Expr>),
    Except(Box<Expr>, Box<Expr>),
    If {
        cond: Box<Expr>,
        then: Box<Expr>,
        els: Box<Expr>,
    },
    Flwor {
        clauses: Vec<FlworClause>,
        ret: Box<Expr>,
    },
    Quantified {
        quantifier: Quantifier,
        bindings: Vec<(Name, Expr)>,
        satisfies: Box<Expr>,
    },
    Typeswitch {
        operand: Box<Expr>,
        cases: Vec<TypeswitchCase>,
        default_var: Option<Name>,
        default: Box<Expr>,
    },
    /// `/` rooted path: evaluate `rest` with the context item's document
    /// root as context (rest may be None for a bare `/`).
    Root(Option<Box<Expr>>),
    /// `lhs / step` — evaluate `rhs` once per node of `lhs`, combine in
    /// document order.
    PathStep(Box<Expr>, Box<Expr>),
    /// One axis step with predicates.
    AxisStep {
        axis: Axis,
        test: NodeTest,
        predicates: Vec<Expr>,
    },
    /// Predicates applied to a primary expression: `expr[pred]`.
    Filter(Box<Expr>, Vec<Expr>),
    FunctionCall {
        name: Name,
        args: Vec<Expr>,
    },
    /// `execute at { dest } { f(args) }` — the XRPC extension (paper §2).
    ExecuteAt {
        dest: Box<Expr>,
        call: Box<Expr>,
    },
    DirectElem(DirElem),
    CompElem {
        name: CompName,
        content: Option<Box<Expr>>,
    },
    CompAttr {
        name: CompName,
        content: Option<Box<Expr>>,
    },
    CompText(Box<Expr>),
    CompComment(Box<Expr>),
    CompPi {
        target: CompName,
        content: Option<Box<Expr>>,
    },
    CompDoc(Box<Expr>),
    InstanceOf(Box<Expr>, SeqType),
    TreatAs(Box<Expr>, SeqType),
    CastAs {
        expr: Box<Expr>,
        ty: Name,
        allow_empty: bool,
    },
    CastableAs {
        expr: Box<Expr>,
        ty: Name,
        allow_empty: bool,
    },
    // ---- XQuery Update Facility ----
    Insert {
        source: Box<Expr>,
        target: Box<Expr>,
        pos: InsertPos,
    },
    Delete {
        target: Box<Expr>,
    },
    ReplaceNode {
        target: Box<Expr>,
        with: Box<Expr>,
    },
    ReplaceValue {
        target: Box<Expr>,
        with: Box<Expr>,
    },
    Rename {
        target: Box<Expr>,
        name: Box<Expr>,
    },
}

/// Name of a computed constructor: constant or computed.
#[derive(Clone, Debug, PartialEq)]
pub enum CompName {
    Const(Name),
    Computed(Box<Expr>),
}

/// A module import in the prolog:
/// `import module namespace f = "uri" at "http://..../file.xq";`
#[derive(Clone, Debug, PartialEq)]
pub struct ModuleImport {
    pub prefix: String,
    pub ns_uri: String,
    pub at_hints: Vec<String>,
}

/// A prolog variable declaration. `declare variable $x := expr;` carries
/// a value; `declare variable $x external;` (optionally with a default
/// value, XQuery 3.0 style) must be bound by the caller — the parameter
/// channel of a prepared query.
#[derive(Clone, Debug, PartialEq)]
pub struct VarDecl {
    pub name: Name,
    pub ty: Option<SeqType>,
    /// `None` only for an external variable without a default.
    pub value: Option<Expr>,
    pub external: bool,
}

/// A user-defined function declaration (possibly `updating`, per XQUF).
#[derive(Clone, Debug, PartialEq)]
pub struct FunctionDecl {
    pub name: Name,
    pub params: Vec<(Name, Option<SeqType>)>,
    pub ret: Option<SeqType>,
    pub body: Expr,
    pub updating: bool,
}

impl FunctionDecl {
    pub fn arity(&self) -> usize {
        self.params.len()
    }
}

/// The query prolog.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Prolog {
    pub namespaces: Vec<(String, String)>,
    pub default_element_ns: Option<String>,
    pub default_function_ns: Option<String>,
    /// `declare option qname "value"` — XRPC uses `xrpc:isolation` and
    /// `xrpc:timeout` (paper §2.2).
    pub options: Vec<(Name, String)>,
    /// `declare base-uri "..."` — resolution base for relative `fn:doc`
    /// URIs, and a static-context fingerprint component of the plan cache.
    pub base_uri: Option<String>,
    /// `declare default collation "..."` — accepted, fingerprinted by the
    /// plan cache; only the codepoint collation is implemented.
    pub default_collation: Option<String>,
    pub module_imports: Vec<ModuleImport>,
    pub variables: Vec<VarDecl>,
    pub functions: Vec<FunctionDecl>,
}

impl Prolog {
    /// Look up a `declare option` value by prefix/local name.
    pub fn option(&self, prefix: &str, local: &str) -> Option<&str> {
        self.options
            .iter()
            .find(|(n, _)| n.prefix.as_deref() == Some(prefix) && n.local == local)
            .map(|(_, v)| v.as_str())
    }
}

/// A parsed main module (a runnable query).
#[derive(Clone, Debug, PartialEq)]
pub struct MainModule {
    pub prolog: Prolog,
    pub body: Expr,
}

/// A parsed library module (`module namespace film = "films"; ...`).
#[derive(Clone, Debug, PartialEq)]
pub struct LibraryModule {
    pub prefix: String,
    pub ns_uri: String,
    pub prolog: Prolog,
}

/// Either kind of module.
#[derive(Clone, Debug, PartialEq)]
pub enum Module {
    Main(MainModule),
    Library(LibraryModule),
}

impl Expr {
    /// Does this expression (transitively) contain an `execute at`?
    pub fn contains_xrpc(&self) -> bool {
        let mut found = false;
        self.walk(&mut |e| {
            if matches!(e, Expr::ExecuteAt { .. }) {
                found = true;
            }
        });
        found
    }

    /// Is this an XQUF updating expression at the top level?
    pub fn is_updating_expr(&self) -> bool {
        matches!(
            self,
            Expr::Insert { .. }
                | Expr::Delete { .. }
                | Expr::ReplaceNode { .. }
                | Expr::ReplaceValue { .. }
                | Expr::Rename { .. }
        )
    }

    /// Pre-order walk over all sub-expressions.
    pub fn walk(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        let go = |e: &Expr, f: &mut dyn FnMut(&Expr)| e.walk_dyn(f);
        match self {
            Expr::Literal(_) | Expr::VarRef(_) | Expr::ContextItem => {}
            Expr::Sequence(es) => es.iter().for_each(|e| go(e, f)),
            Expr::Range(a, b)
            | Expr::Arith(_, a, b)
            | Expr::ValueComp(_, a, b)
            | Expr::GeneralComp(_, a, b)
            | Expr::NodeComp(_, a, b)
            | Expr::And(a, b)
            | Expr::Or(a, b)
            | Expr::Union(a, b)
            | Expr::Intersect(a, b)
            | Expr::Except(a, b)
            | Expr::PathStep(a, b) => {
                go(a, f);
                go(b, f);
            }
            Expr::Neg(a) | Expr::CompText(a) | Expr::CompComment(a) | Expr::CompDoc(a) => go(a, f),
            Expr::If { cond, then, els } => {
                go(cond, f);
                go(then, f);
                go(els, f);
            }
            Expr::Flwor { clauses, ret } => {
                for c in clauses {
                    match c {
                        FlworClause::For { seq, .. } => go(seq, f),
                        FlworClause::Let { value, .. } => go(value, f),
                        FlworClause::Where(e) => go(e, f),
                        FlworClause::OrderBy(specs) => specs.iter().for_each(|s| go(&s.key, f)),
                    }
                }
                go(ret, f);
            }
            Expr::Quantified {
                bindings,
                satisfies,
                ..
            } => {
                bindings.iter().for_each(|(_, e)| go(e, f));
                go(satisfies, f);
            }
            Expr::Typeswitch {
                operand,
                cases,
                default,
                ..
            } => {
                go(operand, f);
                cases.iter().for_each(|c| go(&c.body, f));
                go(default, f);
            }
            Expr::Root(r) => {
                if let Some(r) = r {
                    go(r, f);
                }
            }
            Expr::AxisStep { predicates, .. } => predicates.iter().for_each(|p| go(p, f)),
            Expr::Filter(base, preds) => {
                go(base, f);
                preds.iter().for_each(|p| go(p, f));
            }
            Expr::FunctionCall { args, .. } => args.iter().for_each(|a| go(a, f)),
            Expr::ExecuteAt { dest, call } => {
                go(dest, f);
                go(call, f);
            }
            Expr::DirectElem(d) => walk_direlem(d, f),
            Expr::CompElem { name, content } | Expr::CompAttr { name, content } => {
                if let CompName::Computed(e) = name {
                    go(e, f);
                }
                if let Some(c) = content {
                    go(c, f);
                }
            }
            Expr::CompPi { target, content } => {
                if let CompName::Computed(e) = target {
                    go(e, f);
                }
                if let Some(c) = content {
                    go(c, f);
                }
            }
            Expr::InstanceOf(a, _) | Expr::TreatAs(a, _) => go(a, f),
            Expr::CastAs { expr, .. } | Expr::CastableAs { expr, .. } => go(expr, f),
            Expr::Insert { source, target, .. } => {
                go(source, f);
                go(target, f);
            }
            Expr::Delete { target } => go(target, f),
            Expr::ReplaceNode { target, with } | Expr::ReplaceValue { target, with } => {
                go(target, f);
                go(with, f);
            }
            Expr::Rename { target, name } => {
                go(target, f);
                go(name, f);
            }
        }
    }

    fn walk_dyn(&self, f: &mut dyn FnMut(&Expr)) {
        self.walk(&mut |e| f(e));
    }
}

fn walk_direlem(d: &DirElem, f: &mut dyn FnMut(&Expr)) {
    for (_, parts) in &d.attrs {
        for p in parts {
            if let AttrContent::Enclosed(e) = p {
                e.walk_dyn(f);
            }
        }
    }
    for c in &d.content {
        match c {
            DirContent::Enclosed(e) => e.walk_dyn(f),
            DirContent::Element(inner) => {
                // The nested element itself counts as an expression boundary
                // for walking purposes.
                walk_direlem(inner, f);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_xrpc_detects_nested() {
        let e = Expr::Sequence(vec![
            Expr::Literal(AtomicValue::Integer(1)),
            Expr::ExecuteAt {
                dest: Box::new(Expr::Literal(AtomicValue::String("xrpc://y".into()))),
                call: Box::new(Expr::FunctionCall {
                    name: Name::prefixed("f", "g"),
                    args: vec![],
                }),
            },
        ]);
        assert!(e.contains_xrpc());
        assert!(!Expr::ContextItem.contains_xrpc());
    }

    #[test]
    fn walk_visits_flwor_parts() {
        let e = Expr::Flwor {
            clauses: vec![FlworClause::For {
                var: Name::local("x"),
                pos_var: None,
                seq: Expr::Literal(AtomicValue::Integer(1)),
            }],
            ret: Box::new(Expr::VarRef(Name::local("x"))),
        };
        let mut n = 0;
        e.walk(&mut |_| n += 1);
        assert_eq!(n, 3);
    }

    #[test]
    fn prolog_option_lookup() {
        let mut p = Prolog::default();
        p.options
            .push((Name::prefixed("xrpc", "isolation"), "repeatable".into()));
        assert_eq!(p.option("xrpc", "isolation"), Some("repeatable"));
        assert_eq!(p.option("xrpc", "timeout"), None);
    }
}
