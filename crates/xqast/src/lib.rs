//! XQuery abstract syntax: lexing/parsing of the XQuery 1.0 subset the
//! XRPC paper exercises — FLWOR, full axes, constructors, modules,
//! user-defined (updating) functions, the XQuery Update Facility, and the
//! paper's `execute at { Expr } { FunctionCall }` extension (§2).
//!
//! The crate also ships a pretty-printer: the XRPC *wrapper* (paper §4)
//! generates XQuery text for foreign engines, and the §5 distributed
//! strategies are expressed as query rewrites over this AST.

pub mod ast;
pub mod parser;
pub mod pretty;

pub use ast::*;
pub use parser::{parse_library_module, parse_main_module, parse_module};
pub use pretty::pretty_print;
