//! A scannerless recursive-descent parser for the supported XQuery subset,
//! including the XRPC `execute at` extension, exactly as the paper's grammar
//! change specifies:
//!
//! ```text
//! PrimaryExpr ::= ... | FunctionCall | XRPCCall | ...
//! XRPCCall    ::= "execute at" "{" ExprSingle "}" "{" FunctionCall "}"
//! ```

use crate::ast::*;
use xdm::atomic::AtomicValue;
use xdm::decimal::Decimal;
use xdm::error::{XdmError, XdmResult};
use xdm::ops::ArithOp;
use xdm::types::{AtomicType, ItemKind, Occurrence, SeqType};

/// Parse any module (library if it starts with `module namespace`).
pub fn parse_module(input: &str) -> XdmResult<Module> {
    let mut p = P::new(input);
    p.skip_ws();
    p.version_decl()?;
    p.skip_ws();
    if p.peek_keyword("module") {
        Ok(Module::Library(p.library_module()?))
    } else {
        Ok(Module::Main(p.main_module()?))
    }
}

/// Parse a main module (runnable query).
pub fn parse_main_module(input: &str) -> XdmResult<MainModule> {
    match parse_module(input)? {
        Module::Main(m) => Ok(m),
        Module::Library(_) => Err(XdmError::syntax(
            "expected a main module, found a library module",
        )),
    }
}

/// Parse a library module (`module namespace p = "uri"; ...`).
pub fn parse_library_module(input: &str) -> XdmResult<LibraryModule> {
    match parse_module(input)? {
        Module::Library(m) => Ok(m),
        Module::Main(_) => Err(XdmError::syntax(
            "expected a library module, found a main module",
        )),
    }
}

struct P<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> P<'a> {
    fn new(input: &'a str) -> Self {
        P { input, pos: 0 }
    }

    fn err<T>(&self, msg: impl Into<String>) -> XdmResult<T> {
        let around: String = self.input[self.pos..].chars().take(30).collect();
        Err(XdmError::syntax(format!(
            "{} (at offset {}, near `{}`)",
            msg.into(),
            self.pos,
            around
        )))
    }

    fn rest(&self) -> &str {
        &self.input[self.pos..]
    }

    fn peek_ch(&self) -> Option<char> {
        self.rest().chars().next()
    }

    fn bump(&mut self, n: usize) {
        self.pos += n;
    }

    /// Skip whitespace and (nested) XQuery comments `(: ... :)`.
    fn skip_ws(&mut self) {
        loop {
            let before = self.pos;
            while matches!(self.peek_ch(), Some(c) if c.is_whitespace()) {
                self.pos += self.peek_ch().unwrap().len_utf8();
            }
            if self.rest().starts_with("(:") {
                let mut depth = 0usize;
                while self.pos < self.input.len() {
                    if self.rest().starts_with("(:") {
                        depth += 1;
                        self.bump(2);
                    } else if self.rest().starts_with(":)") {
                        depth -= 1;
                        self.bump(2);
                        if depth == 0 {
                            break;
                        }
                    } else {
                        self.pos += self.peek_ch().map(|c| c.len_utf8()).unwrap_or(1);
                    }
                }
            }
            if self.pos == before {
                return;
            }
        }
    }

    /// Try to consume a symbol (no word-boundary requirement).
    fn eat(&mut self, s: &str) -> bool {
        self.skip_ws();
        if self.rest().starts_with(s) {
            self.bump(s.len());
            true
        } else {
            false
        }
    }

    fn expect(&mut self, s: &str) -> XdmResult<()> {
        if self.eat(s) {
            Ok(())
        } else {
            self.err(format!("expected `{}`", s))
        }
    }

    /// Look ahead for a keyword (NCName followed by a non-name char).
    fn peek_keyword(&mut self, kw: &str) -> bool {
        self.skip_ws();
        let r = self.rest();
        r.starts_with(kw)
            && !r[kw.len()..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_' || c == '-' || c == '.')
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.peek_keyword(kw) {
            self.bump(kw.len());
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> XdmResult<()> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            self.err(format!("expected keyword `{}`", kw))
        }
    }

    /// Two consecutive keywords (`order by`, `execute at`, ...).
    fn peek_keyword2(&mut self, a: &str, b: &str) -> bool {
        let save = self.pos;
        let ok = self.eat_keyword(a) && self.peek_keyword(b);
        self.pos = save;
        ok
    }

    fn ncname(&mut self) -> XdmResult<String> {
        self.skip_ws();
        let start = self.pos;
        let mut chars = self.rest().char_indices();
        match chars.next() {
            Some((_, c)) if c.is_alphabetic() || c == '_' => {}
            _ => return self.err("expected a name"),
        }
        let mut len = 1;
        for (i, c) in chars {
            if c.is_alphanumeric() || matches!(c, '_' | '-' | '.') {
                len = i + c.len_utf8();
            } else {
                len = i;
                break;
            }
        }
        // handle name running to end of input
        if start + len > self.input.len() || len == 0 {
            len = self.rest().len();
        }
        let name = &self.rest()[..len];
        // A name cannot end with '.' or '-'; trim if it happened.
        let name = name.trim_end_matches(['.', '-']);
        let name = name.to_string();
        self.bump(name.len());
        Ok(name)
    }

    /// QName: `ncname (":" ncname)?` with no whitespace around `:`.
    /// A `:` followed by a non-name character (e.g. `f:*`) is left in place.
    fn qname(&mut self) -> XdmResult<Name> {
        let first = self.ncname()?;
        if self.rest().starts_with(':')
            && !self.rest().starts_with("::")
            && !self.rest().starts_with(":=")
            && self.rest()[1..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphabetic() || c == '_')
        {
            self.bump(1);
            let second = self.ncname_nows()?;
            Ok(Name::prefixed(first, second))
        } else {
            Ok(Name::local(first))
        }
    }

    fn ncname_nows(&mut self) -> XdmResult<String> {
        // like ncname but without leading ws skip
        let mut chars = self.rest().char_indices();
        match chars.next() {
            Some((_, c)) if c.is_alphabetic() || c == '_' => {}
            _ => return self.err("expected a name after `:`"),
        }
        let mut len = self.rest().chars().next().unwrap().len_utf8();
        for (i, c) in self.rest().char_indices().skip(1) {
            if c.is_alphanumeric() || matches!(c, '_' | '-' | '.') {
                len = i + c.len_utf8();
            } else {
                break;
            }
        }
        let name = self.rest()[..len].to_string();
        self.bump(len);
        Ok(name)
    }

    /// String literal with doubled-quote escapes and XML entity refs.
    fn string_literal(&mut self) -> XdmResult<String> {
        self.skip_ws();
        let quote = match self.peek_ch() {
            Some(q @ ('"' | '\'')) => q,
            _ => return self.err("expected a string literal"),
        };
        self.bump(1);
        let mut out = String::new();
        loop {
            match self.peek_ch() {
                Some(c) if c == quote => {
                    self.bump(1);
                    // doubled quote = escaped quote
                    if self.peek_ch() == Some(quote) {
                        out.push(quote);
                        self.bump(1);
                    } else {
                        return Ok(out);
                    }
                }
                Some('&') => {
                    out.push(self.entity_ref()?);
                }
                Some(c) => {
                    out.push(c);
                    self.bump(c.len_utf8());
                }
                None => return self.err("unterminated string literal"),
            }
        }
    }

    fn entity_ref(&mut self) -> XdmResult<char> {
        debug_assert_eq!(self.peek_ch(), Some('&'));
        self.bump(1);
        let end = match self.rest().find(';') {
            Some(i) if i <= 10 => i,
            _ => return self.err("unterminated entity reference"),
        };
        let name = &self.rest()[..end];
        let c = match name {
            "lt" => '<',
            "gt" => '>',
            "amp" => '&',
            "quot" => '"',
            "apos" => '\'',
            _ if name.starts_with("#x") => char::from_u32(
                u32::from_str_radix(&name[2..], 16)
                    .map_err(|_| XdmError::syntax("bad character reference"))?,
            )
            .ok_or_else(|| XdmError::syntax("bad code point"))?,
            _ if name.starts_with('#') => char::from_u32(
                name[1..]
                    .parse()
                    .map_err(|_| XdmError::syntax("bad character reference"))?,
            )
            .ok_or_else(|| XdmError::syntax("bad code point"))?,
            _ => return self.err(format!("unknown entity `&{};`", name)),
        };
        self.bump(end + 1);
        Ok(c)
    }

    // ------------------------------------------------------------------
    // Modules and prolog
    // ------------------------------------------------------------------

    fn version_decl(&mut self) -> XdmResult<()> {
        if self.peek_keyword2("xquery", "version") {
            self.expect_keyword("xquery")?;
            self.expect_keyword("version")?;
            let _ = self.string_literal()?;
            if self.eat_keyword("encoding") {
                let _ = self.string_literal()?;
            }
            self.expect(";")?;
        }
        Ok(())
    }

    fn library_module(&mut self) -> XdmResult<LibraryModule> {
        self.expect_keyword("module")?;
        self.expect_keyword("namespace")?;
        let prefix = self.ncname()?;
        self.expect("=")?;
        let ns_uri = self.string_literal()?;
        self.expect(";")?;
        let prolog = self.prolog()?;
        self.skip_ws();
        if self.pos != self.input.len() {
            return self.err("unexpected content after library module prolog");
        }
        Ok(LibraryModule {
            prefix,
            ns_uri,
            prolog,
        })
    }

    fn main_module(&mut self) -> XdmResult<MainModule> {
        let prolog = self.prolog()?;
        let body = self.expr()?;
        self.skip_ws();
        if self.pos != self.input.len() {
            return self.err("unexpected trailing content after query body");
        }
        Ok(MainModule { prolog, body })
    }

    fn prolog(&mut self) -> XdmResult<Prolog> {
        let mut prolog = Prolog::default();
        loop {
            self.skip_ws();
            if self.peek_keyword("declare") {
                let save = self.pos;
                self.expect_keyword("declare")?;
                if self.eat_keyword("namespace") {
                    let p = self.ncname()?;
                    self.expect("=")?;
                    let u = self.string_literal()?;
                    self.expect(";")?;
                    prolog.namespaces.push((p, u));
                } else if self.eat_keyword("default") {
                    if self.eat_keyword("element") {
                        self.expect_keyword("namespace")?;
                        prolog.default_element_ns = Some(self.string_literal()?);
                    } else if self.eat_keyword("function") {
                        self.expect_keyword("namespace")?;
                        prolog.default_function_ns = Some(self.string_literal()?);
                    } else if self.eat_keyword("collation") {
                        prolog.default_collation = Some(self.string_literal()?);
                    } else {
                        return self.err(
                            "expected `element`, `function` or `collation` after `declare default`",
                        );
                    }
                    self.expect(";")?;
                } else if self.eat_keyword("base-uri") {
                    prolog.base_uri = Some(self.string_literal()?);
                    self.expect(";")?;
                } else if self.eat_keyword("option") {
                    let name = self.qname()?;
                    let value = self.string_literal()?;
                    self.expect(";")?;
                    prolog.options.push((name, value));
                } else if self.eat_keyword("variable") {
                    self.expect("$")?;
                    let name = self.qname()?;
                    let ty = if self.eat_keyword("as") {
                        Some(self.sequence_type()?)
                    } else {
                        None
                    };
                    // `:= expr`, `external`, or `external := default-expr`
                    let (value, external) = if self.eat_keyword("external") {
                        let default = if self.eat(":=") {
                            Some(self.expr_single()?)
                        } else {
                            None
                        };
                        (default, true)
                    } else {
                        self.expect(":=")?;
                        (Some(self.expr_single()?), false)
                    };
                    self.expect(";")?;
                    prolog.variables.push(VarDecl {
                        name,
                        ty,
                        value,
                        external,
                    });
                } else if self.peek_keyword("updating") || self.peek_keyword("function") {
                    let updating = self.eat_keyword("updating");
                    self.expect_keyword("function")?;
                    let f = self.function_decl(updating)?;
                    self.expect(";")?;
                    prolog.functions.push(f);
                } else {
                    // Unknown declare (boundary-space, construction, ...):
                    // skip to the next `;` for forward compatibility.
                    self.pos = save;
                    self.skip_declaration()?;
                }
            } else if self.peek_keyword("import") {
                self.expect_keyword("import")?;
                if self.eat_keyword("module") {
                    self.expect_keyword("namespace")?;
                    let prefix = self.ncname()?;
                    self.expect("=")?;
                    let ns_uri = self.string_literal()?;
                    let mut at_hints = Vec::new();
                    if self.eat_keyword("at") {
                        at_hints.push(self.string_literal()?);
                        while self.eat(",") {
                            at_hints.push(self.string_literal()?);
                        }
                    }
                    self.expect(";")?;
                    prolog.module_imports.push(ModuleImport {
                        prefix,
                        ns_uri,
                        at_hints,
                    });
                } else if self.eat_keyword("schema") {
                    // Schema imports are accepted and ignored (we do not
                    // implement XML Schema validation; see DESIGN.md).
                    self.skip_declaration()?;
                } else {
                    return self.err("expected `module` or `schema` after `import`");
                }
            } else {
                break;
            }
        }
        Ok(prolog)
    }

    fn skip_declaration(&mut self) -> XdmResult<()> {
        while let Some(c) = self.peek_ch() {
            if c == ';' {
                self.bump(1);
                return Ok(());
            }
            if c == '"' || c == '\'' {
                let _ = self.string_literal()?;
            } else {
                self.bump(c.len_utf8());
            }
        }
        self.err("unterminated declaration")
    }

    fn function_decl(&mut self, updating: bool) -> XdmResult<FunctionDecl> {
        let name = self.qname()?;
        self.expect("(")?;
        let mut params = Vec::new();
        self.skip_ws();
        if !self.rest().starts_with(')') {
            loop {
                self.expect("$")?;
                let pname = self.qname()?;
                let ty = if self.eat_keyword("as") {
                    Some(self.sequence_type()?)
                } else {
                    None
                };
                params.push((pname, ty));
                if !self.eat(",") {
                    break;
                }
            }
        }
        self.expect(")")?;
        let ret = if self.eat_keyword("as") {
            Some(self.sequence_type()?)
        } else {
            None
        };
        self.expect("{")?;
        let body = self.expr()?;
        self.expect("}")?;
        Ok(FunctionDecl {
            name,
            params,
            ret,
            body,
            updating,
        })
    }

    // ------------------------------------------------------------------
    // Sequence types
    // ------------------------------------------------------------------

    fn sequence_type(&mut self) -> XdmResult<SeqType> {
        self.skip_ws();
        if self.eat_keyword("empty-sequence") {
            self.expect("(")?;
            self.expect(")")?;
            return Ok(SeqType::empty());
        }
        let kind = self.item_kind()?;
        let occurrence = if self.eat("?") {
            Occurrence::ZeroOrOne
        } else if self.eat("*") {
            Occurrence::ZeroOrMore
        } else if self.eat("+") {
            Occurrence::OneOrMore
        } else {
            Occurrence::One
        };
        Ok(SeqType { kind, occurrence })
    }

    fn item_kind(&mut self) -> XdmResult<ItemKind> {
        self.skip_ws();
        for (kw, kind) in [
            ("item", ItemKind::AnyItem),
            ("node", ItemKind::AnyNode),
            ("text", ItemKind::Text),
            ("comment", ItemKind::Comment),
            ("document-node", ItemKind::DocumentNode),
            ("processing-instruction", ItemKind::Pi),
        ] {
            if self.peek_kind_test(kw) {
                self.expect_keyword(kw)?;
                self.expect("(")?;
                // allow (and ignore) an inner test for document-node(...)
                self.skip_to_matching_paren()?;
                return Ok(kind);
            }
        }
        if self.peek_kind_test("element") {
            self.expect_keyword("element")?;
            self.expect("(")?;
            self.skip_ws();
            let name = if self.rest().starts_with(')') || self.rest().starts_with('*') {
                let _ = self.eat("*");
                None
            } else {
                Some(self.qname()?.lexical())
            };
            self.skip_to_matching_paren()?;
            return Ok(ItemKind::Element(name));
        }
        if self.peek_kind_test("attribute") {
            self.expect_keyword("attribute")?;
            self.expect("(")?;
            self.skip_ws();
            let name = if self.rest().starts_with(')') || self.rest().starts_with('*') {
                let _ = self.eat("*");
                None
            } else {
                Some(self.qname()?.lexical())
            };
            self.skip_to_matching_paren()?;
            return Ok(ItemKind::Attribute(name));
        }
        // Atomic type name.
        let name = self.qname()?;
        match AtomicType::from_xs_name(&name.lexical()) {
            Some(t) => Ok(ItemKind::Atomic(t)),
            // Unknown named types (user-defined schema types) are treated as
            // item() — we accept but cannot check them.
            None => Ok(ItemKind::AnyItem),
        }
    }

    fn peek_kind_test(&mut self, kw: &str) -> bool {
        let save = self.pos;
        let ok = self.eat_keyword(kw) && self.eat("(");
        self.pos = save;
        ok
    }

    fn skip_to_matching_paren(&mut self) -> XdmResult<()> {
        let mut depth = 1usize;
        while let Some(c) = self.peek_ch() {
            match c {
                '(' => depth += 1,
                ')' => {
                    depth -= 1;
                    if depth == 0 {
                        self.bump(1);
                        return Ok(());
                    }
                }
                _ => {}
            }
            self.bump(c.len_utf8());
        }
        self.err("unbalanced parentheses in type")
    }

    // ------------------------------------------------------------------
    // Expressions (precedence chain)
    // ------------------------------------------------------------------

    fn expr(&mut self) -> XdmResult<Expr> {
        let first = self.expr_single()?;
        if !self.peek_comma() {
            return Ok(first);
        }
        let mut items = vec![first];
        while self.eat(",") {
            items.push(self.expr_single()?);
        }
        Ok(Expr::Sequence(items))
    }

    fn peek_comma(&mut self) -> bool {
        self.skip_ws();
        self.rest().starts_with(',')
    }

    fn expr_single(&mut self) -> XdmResult<Expr> {
        self.skip_ws();
        if self.peek_flwor_start() {
            return self.flwor();
        }
        if self.peek_keyword2("some", "$") || self.peek_quantified("some") {
            return self.quantified(Quantifier::Some);
        }
        if self.peek_quantified("every") {
            return self.quantified(Quantifier::Every);
        }
        if self.peek_keyword2("typeswitch", "(") || self.peek_typeswitch() {
            return self.typeswitch();
        }
        if self.peek_if() {
            return self.if_expr();
        }
        // XQUF expressions
        if self.peek_keyword2("insert", "node") || self.peek_keyword2("insert", "nodes") {
            return self.insert_expr();
        }
        if self.peek_keyword2("delete", "node") || self.peek_keyword2("delete", "nodes") {
            return self.delete_expr();
        }
        if self.peek_keyword2("replace", "node") || self.peek_keyword2("replace", "value") {
            return self.replace_expr();
        }
        if self.peek_keyword2("rename", "node") {
            return self.rename_expr();
        }
        self.or_expr()
    }

    fn peek_flwor_start(&mut self) -> bool {
        // `for $` or `let $`
        let save = self.pos;
        let ok = (self.eat_keyword("for") || {
            self.pos = save;
            self.eat_keyword("let")
        }) && self.eat("$");
        self.pos = save;
        ok
    }

    fn peek_quantified(&mut self, kw: &str) -> bool {
        let save = self.pos;
        let ok = self.eat_keyword(kw) && self.eat("$");
        self.pos = save;
        ok
    }

    fn peek_typeswitch(&mut self) -> bool {
        let save = self.pos;
        let ok = self.eat_keyword("typeswitch") && self.eat("(");
        self.pos = save;
        ok
    }

    fn peek_if(&mut self) -> bool {
        let save = self.pos;
        let ok = self.eat_keyword("if") && self.eat("(");
        self.pos = save;
        ok
    }

    fn flwor(&mut self) -> XdmResult<Expr> {
        let mut clauses = Vec::new();
        loop {
            if self.peek_keyword("for") && {
                let save = self.pos;
                let ok = self.eat_keyword("for") && self.eat("$");
                self.pos = save;
                ok
            } {
                self.expect_keyword("for")?;
                loop {
                    self.expect("$")?;
                    let var = self.qname()?;
                    let pos_var = if self.eat_keyword("at") {
                        self.expect("$")?;
                        Some(self.qname()?)
                    } else {
                        None
                    };
                    // optional type declaration, accepted and ignored
                    if self.eat_keyword("as") {
                        let _ = self.sequence_type()?;
                    }
                    self.expect_keyword("in")?;
                    let seq = self.expr_single()?;
                    clauses.push(FlworClause::For { var, pos_var, seq });
                    if !self.eat(",") {
                        break;
                    }
                }
            } else if self.peek_keyword("let") && {
                let save = self.pos;
                let ok = self.eat_keyword("let") && self.eat("$");
                self.pos = save;
                ok
            } {
                self.expect_keyword("let")?;
                loop {
                    self.expect("$")?;
                    let var = self.qname()?;
                    if self.eat_keyword("as") {
                        let _ = self.sequence_type()?;
                    }
                    self.expect(":=")?;
                    let value = self.expr_single()?;
                    clauses.push(FlworClause::Let { var, value });
                    if !self.eat(",") {
                        break;
                    }
                }
            } else {
                break;
            }
        }
        if self.eat_keyword("where") {
            let w = self.expr_single()?;
            clauses.push(FlworClause::Where(w));
        }
        if self.peek_keyword2("order", "by") || self.peek_keyword2("stable", "order") {
            let _ = self.eat_keyword("stable");
            self.expect_keyword("order")?;
            self.expect_keyword("by")?;
            let mut specs = Vec::new();
            loop {
                let key = self.expr_single()?;
                let descending = if self.eat_keyword("descending") {
                    true
                } else {
                    let _ = self.eat_keyword("ascending");
                    false
                };
                let mut empty_least = true;
                if self.eat_keyword("empty") {
                    if self.eat_keyword("greatest") {
                        empty_least = false;
                    } else {
                        self.expect_keyword("least")?;
                    }
                }
                specs.push(OrderSpec {
                    key,
                    descending,
                    empty_least,
                });
                if !self.eat(",") {
                    break;
                }
            }
            clauses.push(FlworClause::OrderBy(specs));
        }
        self.expect_keyword("return")?;
        let ret = self.expr_single()?;
        Ok(Expr::Flwor {
            clauses,
            ret: Box::new(ret),
        })
    }

    fn quantified(&mut self, quantifier: Quantifier) -> XdmResult<Expr> {
        self.expect_keyword(match quantifier {
            Quantifier::Some => "some",
            Quantifier::Every => "every",
        })?;
        let mut bindings = Vec::new();
        loop {
            self.expect("$")?;
            let var = self.qname()?;
            if self.eat_keyword("as") {
                let _ = self.sequence_type()?;
            }
            self.expect_keyword("in")?;
            let seq = self.expr_single()?;
            bindings.push((var, seq));
            if !self.eat(",") {
                break;
            }
        }
        self.expect_keyword("satisfies")?;
        let satisfies = self.expr_single()?;
        Ok(Expr::Quantified {
            quantifier,
            bindings,
            satisfies: Box::new(satisfies),
        })
    }

    fn typeswitch(&mut self) -> XdmResult<Expr> {
        self.expect_keyword("typeswitch")?;
        self.expect("(")?;
        let operand = self.expr()?;
        self.expect(")")?;
        let mut cases = Vec::new();
        while self.eat_keyword("case") {
            let var = if self.eat("$") {
                let v = self.qname()?;
                self.expect_keyword("as")?;
                Some(v)
            } else {
                None
            };
            let ty = self.sequence_type()?;
            self.expect_keyword("return")?;
            let body = self.expr_single()?;
            cases.push(TypeswitchCase { var, ty, body });
        }
        self.expect_keyword("default")?;
        let default_var = if self.eat("$") {
            Some(self.qname()?)
        } else {
            None
        };
        self.expect_keyword("return")?;
        let default = self.expr_single()?;
        Ok(Expr::Typeswitch {
            operand: Box::new(operand),
            cases,
            default_var,
            default: Box::new(default),
        })
    }

    fn if_expr(&mut self) -> XdmResult<Expr> {
        self.expect_keyword("if")?;
        self.expect("(")?;
        let cond = self.expr()?;
        self.expect(")")?;
        self.expect_keyword("then")?;
        let then = self.expr_single()?;
        self.expect_keyword("else")?;
        let els = self.expr_single()?;
        Ok(Expr::If {
            cond: Box::new(cond),
            then: Box::new(then),
            els: Box::new(els),
        })
    }

    fn insert_expr(&mut self) -> XdmResult<Expr> {
        self.expect_keyword("insert")?;
        if !self.eat_keyword("nodes") {
            self.expect_keyword("node")?;
        }
        let source = self.expr_single()?;
        let pos = if self.eat_keyword("into") {
            InsertPos::Into
        } else if self.eat_keyword("as") {
            let p = if self.eat_keyword("first") {
                InsertPos::AsFirstInto
            } else {
                self.expect_keyword("last")?;
                InsertPos::AsLastInto
            };
            self.expect_keyword("into")?;
            p
        } else if self.eat_keyword("before") {
            InsertPos::Before
        } else if self.eat_keyword("after") {
            InsertPos::After
        } else {
            return self.err("expected `into`, `as first/last into`, `before` or `after`");
        };
        let target = self.expr_single()?;
        Ok(Expr::Insert {
            source: Box::new(source),
            target: Box::new(target),
            pos,
        })
    }

    fn delete_expr(&mut self) -> XdmResult<Expr> {
        self.expect_keyword("delete")?;
        if !self.eat_keyword("nodes") {
            self.expect_keyword("node")?;
        }
        let target = self.expr_single()?;
        Ok(Expr::Delete {
            target: Box::new(target),
        })
    }

    fn replace_expr(&mut self) -> XdmResult<Expr> {
        self.expect_keyword("replace")?;
        let value_of = self.eat_keyword("value");
        if value_of {
            self.expect_keyword("of")?;
        }
        self.expect_keyword("node")?;
        let target = self.expr_single()?;
        self.expect_keyword("with")?;
        let with = self.expr_single()?;
        Ok(if value_of {
            Expr::ReplaceValue {
                target: Box::new(target),
                with: Box::new(with),
            }
        } else {
            Expr::ReplaceNode {
                target: Box::new(target),
                with: Box::new(with),
            }
        })
    }

    fn rename_expr(&mut self) -> XdmResult<Expr> {
        self.expect_keyword("rename")?;
        self.expect_keyword("node")?;
        let target = self.expr_single()?;
        self.expect_keyword("as")?;
        let name = self.expr_single()?;
        Ok(Expr::Rename {
            target: Box::new(target),
            name: Box::new(name),
        })
    }

    fn or_expr(&mut self) -> XdmResult<Expr> {
        let mut lhs = self.and_expr()?;
        while self.eat_keyword("or") {
            let rhs = self.and_expr()?;
            lhs = Expr::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> XdmResult<Expr> {
        let mut lhs = self.comparison_expr()?;
        while self.eat_keyword("and") {
            let rhs = self.comparison_expr()?;
            lhs = Expr::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn comparison_expr(&mut self) -> XdmResult<Expr> {
        let lhs = self.range_expr()?;
        self.skip_ws();
        // value comparisons
        for (kw, op) in [
            ("eq", CompOp::Eq),
            ("ne", CompOp::Ne),
            ("lt", CompOp::Lt),
            ("le", CompOp::Le),
            ("gt", CompOp::Gt),
            ("ge", CompOp::Ge),
        ] {
            if self.peek_keyword(kw) {
                self.expect_keyword(kw)?;
                let rhs = self.range_expr()?;
                return Ok(Expr::ValueComp(op, Box::new(lhs), Box::new(rhs)));
            }
        }
        // node comparisons
        if self.peek_keyword("is") {
            self.expect_keyword("is")?;
            let rhs = self.range_expr()?;
            return Ok(Expr::NodeComp(NodeCompOp::Is, Box::new(lhs), Box::new(rhs)));
        }
        if self.rest().starts_with("<<") {
            self.bump(2);
            let rhs = self.range_expr()?;
            return Ok(Expr::NodeComp(
                NodeCompOp::Precedes,
                Box::new(lhs),
                Box::new(rhs),
            ));
        }
        if self.rest().starts_with(">>") {
            self.bump(2);
            let rhs = self.range_expr()?;
            return Ok(Expr::NodeComp(
                NodeCompOp::Follows,
                Box::new(lhs),
                Box::new(rhs),
            ));
        }
        // general comparisons (careful: `<` could begin a constructor only
        // at primary positions, which we are past)
        let op = if self.rest().starts_with("!=") {
            self.bump(2);
            Some(CompOp::Ne)
        } else if self.rest().starts_with("<=") {
            self.bump(2);
            Some(CompOp::Le)
        } else if self.rest().starts_with(">=") {
            self.bump(2);
            Some(CompOp::Ge)
        } else if self.rest().starts_with('=') {
            self.bump(1);
            Some(CompOp::Eq)
        } else if self.rest().starts_with('<') && !self.rest().starts_with("<<") {
            self.bump(1);
            Some(CompOp::Lt)
        } else if self.rest().starts_with('>') && !self.rest().starts_with(">>") {
            self.bump(1);
            Some(CompOp::Gt)
        } else {
            None
        };
        if let Some(op) = op {
            let rhs = self.range_expr()?;
            return Ok(Expr::GeneralComp(op, Box::new(lhs), Box::new(rhs)));
        }
        Ok(lhs)
    }

    fn range_expr(&mut self) -> XdmResult<Expr> {
        let lhs = self.additive_expr()?;
        if self.eat_keyword("to") {
            let rhs = self.additive_expr()?;
            return Ok(Expr::Range(Box::new(lhs), Box::new(rhs)));
        }
        Ok(lhs)
    }

    fn additive_expr(&mut self) -> XdmResult<Expr> {
        let mut lhs = self.multiplicative_expr()?;
        loop {
            self.skip_ws();
            if self.rest().starts_with('+') {
                self.bump(1);
                let rhs = self.multiplicative_expr()?;
                lhs = Expr::Arith(ArithOp::Add, Box::new(lhs), Box::new(rhs));
            } else if self.rest().starts_with('-') {
                self.bump(1);
                let rhs = self.multiplicative_expr()?;
                lhs = Expr::Arith(ArithOp::Sub, Box::new(lhs), Box::new(rhs));
            } else {
                return Ok(lhs);
            }
        }
    }

    fn multiplicative_expr(&mut self) -> XdmResult<Expr> {
        let mut lhs = self.union_expr()?;
        loop {
            self.skip_ws();
            if self.rest().starts_with('*') {
                self.bump(1);
                let rhs = self.union_expr()?;
                lhs = Expr::Arith(ArithOp::Mul, Box::new(lhs), Box::new(rhs));
            } else if self.peek_keyword("div") {
                self.expect_keyword("div")?;
                let rhs = self.union_expr()?;
                lhs = Expr::Arith(ArithOp::Div, Box::new(lhs), Box::new(rhs));
            } else if self.peek_keyword("idiv") {
                self.expect_keyword("idiv")?;
                let rhs = self.union_expr()?;
                lhs = Expr::Arith(ArithOp::IDiv, Box::new(lhs), Box::new(rhs));
            } else if self.peek_keyword("mod") {
                self.expect_keyword("mod")?;
                let rhs = self.union_expr()?;
                lhs = Expr::Arith(ArithOp::Mod, Box::new(lhs), Box::new(rhs));
            } else {
                return Ok(lhs);
            }
        }
    }

    fn union_expr(&mut self) -> XdmResult<Expr> {
        let mut lhs = self.intersect_except_expr()?;
        loop {
            self.skip_ws();
            if self.peek_keyword("union") {
                self.expect_keyword("union")?;
            } else if self.rest().starts_with('|') && !self.rest().starts_with("||") {
                self.bump(1);
            } else {
                return Ok(lhs);
            }
            let rhs = self.intersect_except_expr()?;
            lhs = Expr::Union(Box::new(lhs), Box::new(rhs));
        }
    }

    fn intersect_except_expr(&mut self) -> XdmResult<Expr> {
        let mut lhs = self.instanceof_expr()?;
        loop {
            if self.peek_keyword("intersect") {
                self.expect_keyword("intersect")?;
                let rhs = self.instanceof_expr()?;
                lhs = Expr::Intersect(Box::new(lhs), Box::new(rhs));
            } else if self.peek_keyword("except") {
                self.expect_keyword("except")?;
                let rhs = self.instanceof_expr()?;
                lhs = Expr::Except(Box::new(lhs), Box::new(rhs));
            } else {
                return Ok(lhs);
            }
        }
    }

    fn instanceof_expr(&mut self) -> XdmResult<Expr> {
        let lhs = self.treat_expr()?;
        if self.peek_keyword2("instance", "of") {
            self.expect_keyword("instance")?;
            self.expect_keyword("of")?;
            let ty = self.sequence_type()?;
            return Ok(Expr::InstanceOf(Box::new(lhs), ty));
        }
        Ok(lhs)
    }

    fn treat_expr(&mut self) -> XdmResult<Expr> {
        let lhs = self.castable_expr()?;
        if self.peek_keyword2("treat", "as") {
            self.expect_keyword("treat")?;
            self.expect_keyword("as")?;
            let ty = self.sequence_type()?;
            return Ok(Expr::TreatAs(Box::new(lhs), ty));
        }
        Ok(lhs)
    }

    fn castable_expr(&mut self) -> XdmResult<Expr> {
        let lhs = self.cast_expr()?;
        if self.peek_keyword2("castable", "as") {
            self.expect_keyword("castable")?;
            self.expect_keyword("as")?;
            let ty = self.qname()?;
            let allow_empty = self.eat("?");
            return Ok(Expr::CastableAs {
                expr: Box::new(lhs),
                ty,
                allow_empty,
            });
        }
        Ok(lhs)
    }

    fn cast_expr(&mut self) -> XdmResult<Expr> {
        let lhs = self.unary_expr()?;
        if self.peek_keyword2("cast", "as") {
            self.expect_keyword("cast")?;
            self.expect_keyword("as")?;
            let ty = self.qname()?;
            let allow_empty = self.eat("?");
            return Ok(Expr::CastAs {
                expr: Box::new(lhs),
                ty,
                allow_empty,
            });
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> XdmResult<Expr> {
        self.skip_ws();
        let mut neg = false;
        loop {
            if self.rest().starts_with('-') {
                self.bump(1);
                neg = !neg;
                self.skip_ws();
            } else if self.rest().starts_with('+') {
                self.bump(1);
                self.skip_ws();
            } else {
                break;
            }
        }
        let e = self.path_expr()?;
        Ok(if neg { Expr::Neg(Box::new(e)) } else { e })
    }

    // ------------------------------------------------------------------
    // Paths
    // ------------------------------------------------------------------

    fn path_expr(&mut self) -> XdmResult<Expr> {
        self.skip_ws();
        if self.rest().starts_with("//") {
            self.bump(2);
            let rel = self.relative_path()?;
            // `//x` == root()/descendant-or-self::node()/x
            let dos = Expr::AxisStep {
                axis: Axis::DescendantOrSelf,
                test: NodeTest::AnyKind,
                predicates: vec![],
            };
            return Ok(Expr::PathStep(
                Box::new(Expr::PathStep(Box::new(Expr::Root(None)), Box::new(dos))),
                Box::new(rel),
            ));
        }
        if self.rest().starts_with('/') {
            self.bump(1);
            // A lone `/` (not followed by a step start) is the root itself.
            self.skip_ws();
            if self.at_step_start() {
                let rel = self.relative_path()?;
                return Ok(Expr::PathStep(Box::new(Expr::Root(None)), Box::new(rel)));
            }
            return Ok(Expr::Root(None));
        }
        self.relative_path()
    }

    fn at_step_start(&mut self) -> bool {
        match self.peek_ch() {
            Some(c) if c.is_alphabetic() || c == '_' => true,
            Some('@') | Some('*') | Some('.') | Some('(') | Some('$') => true,
            _ => false,
        }
    }

    fn relative_path(&mut self) -> XdmResult<Expr> {
        let mut lhs = self.step_expr()?;
        loop {
            self.skip_ws();
            if self.rest().starts_with("//") {
                self.bump(2);
                let dos = Expr::AxisStep {
                    axis: Axis::DescendantOrSelf,
                    test: NodeTest::AnyKind,
                    predicates: vec![],
                };
                lhs = Expr::PathStep(Box::new(lhs), Box::new(dos));
                let rhs = self.step_expr()?;
                lhs = Expr::PathStep(Box::new(lhs), Box::new(rhs));
            } else if self.rest().starts_with('/') {
                self.bump(1);
                let rhs = self.step_expr()?;
                lhs = Expr::PathStep(Box::new(lhs), Box::new(rhs));
            } else {
                return Ok(lhs);
            }
        }
    }

    fn step_expr(&mut self) -> XdmResult<Expr> {
        self.skip_ws();
        // Reverse/forward axis step or node test?
        if let Some(step) = self.try_axis_step()? {
            return Ok(step);
        }
        // Filter expr: primary + predicates
        let primary = self.primary_expr()?;
        let predicates = self.predicate_list()?;
        if predicates.is_empty() {
            Ok(primary)
        } else {
            Ok(Expr::Filter(Box::new(primary), predicates))
        }
    }

    fn try_axis_step(&mut self) -> XdmResult<Option<Expr>> {
        self.skip_ws();
        // `..`
        if self.rest().starts_with("..") {
            self.bump(2);
            let predicates = self.predicate_list()?;
            return Ok(Some(Expr::AxisStep {
                axis: Axis::Parent,
                test: NodeTest::AnyKind,
                predicates,
            }));
        }
        // `@name`
        if self.rest().starts_with('@') {
            self.bump(1);
            let test = self.node_test()?;
            let predicates = self.predicate_list()?;
            return Ok(Some(Expr::AxisStep {
                axis: Axis::Attribute,
                test,
                predicates,
            }));
        }
        // `axis::test`
        let save = self.pos;
        for (kw, axis) in [
            ("child", Axis::Child),
            ("descendant-or-self", Axis::DescendantOrSelf),
            ("descendant", Axis::Descendant),
            ("parent", Axis::Parent),
            ("ancestor-or-self", Axis::AncestorOrSelf),
            ("ancestor", Axis::Ancestor),
            ("following-sibling", Axis::FollowingSibling),
            ("preceding-sibling", Axis::PrecedingSibling),
            ("following", Axis::Following),
            ("preceding", Axis::Preceding),
            ("attribute", Axis::Attribute),
            ("self", Axis::SelfAxis),
        ] {
            if self.peek_keyword(kw) {
                let s2 = self.pos;
                self.expect_keyword(kw)?;
                if self.rest().starts_with("::") {
                    self.bump(2);
                    let test = self.node_test()?;
                    let predicates = self.predicate_list()?;
                    return Ok(Some(Expr::AxisStep {
                        axis,
                        test,
                        predicates,
                    }));
                }
                self.pos = s2;
                break;
            }
        }
        self.pos = save;
        // Bare node test (child axis)? Only if this is a name/wildcard/kind
        // test that is NOT a function call or keyword-led expression.
        if self.rest().starts_with('*') && !self.rest().starts_with("**") {
            // `*` or `*:local`
            self.bump(1);
            if self.rest().starts_with(':') && !self.rest().starts_with("::") {
                self.bump(1);
                let local = self.ncname_nows()?;
                let predicates = self.predicate_list()?;
                return Ok(Some(Expr::AxisStep {
                    axis: Axis::Child,
                    test: NodeTest::LocalWildcard(local),
                    predicates,
                }));
            }
            let predicates = self.predicate_list()?;
            return Ok(Some(Expr::AxisStep {
                axis: Axis::Child,
                test: NodeTest::AnyName,
                predicates,
            }));
        }
        // kind tests on the child axis
        for kw in [
            "node",
            "text",
            "comment",
            "processing-instruction",
            "element",
            "attribute",
            "document-node",
        ] {
            if self.peek_kind_test(kw) {
                let test = self.node_test()?;
                let predicates = self.predicate_list()?;
                return Ok(Some(Expr::AxisStep {
                    axis: if kw == "attribute" {
                        Axis::Attribute
                    } else {
                        Axis::Child
                    },
                    test,
                    predicates,
                }));
            }
        }
        // name test (not followed by `(` which is a function call, nor by
        // `{` which would be a computed constructor keyword)
        let c = match self.peek_ch() {
            Some(c) if c.is_alphabetic() || c == '_' => c,
            _ => return Ok(None),
        };
        let _ = c;
        let save = self.pos;
        let name = self.qname()?;
        self.skip_ws();
        if self.rest().starts_with('(') {
            self.pos = save;
            return Ok(None); // function call → primary
        }
        // Computed constructor keywords are primaries too. They may be
        // followed directly by `{` (computed name / enclosed content) or by
        // a constant QName and then `{` (`element foo { ... }`).
        if matches!(
            name.lexical().as_str(),
            "element"
                | "attribute"
                | "text"
                | "comment"
                | "document"
                | "processing-instruction"
                | "ordered"
                | "unordered"
                | "validate"
                | "execute"
        ) {
            let here = self.pos;
            self.skip_ws();
            let direct_brace = self.rest().starts_with('{');
            let named_brace = !direct_brace && self.qname().is_ok() && {
                self.skip_ws();
                self.rest().starts_with('{')
            };
            self.pos = here;
            if direct_brace || named_brace {
                self.pos = save;
                return Ok(None);
            }
        }
        if name.lexical() == "execute" && self.peek_keyword("at") {
            self.pos = save;
            return Ok(None);
        }
        // namespace wildcard `prefix:*`
        if name.prefix.is_none() && self.rest().starts_with(":*") {
            self.bump(2);
            let predicates = self.predicate_list()?;
            return Ok(Some(Expr::AxisStep {
                axis: Axis::Child,
                test: NodeTest::NsWildcard(name.local),
                predicates,
            }));
        }
        let predicates = self.predicate_list()?;
        Ok(Some(Expr::AxisStep {
            axis: Axis::Child,
            test: NodeTest::Name(name),
            predicates,
        }))
    }

    fn node_test(&mut self) -> XdmResult<NodeTest> {
        self.skip_ws();
        if self.rest().starts_with('*') {
            self.bump(1);
            if self.rest().starts_with(':') {
                self.bump(1);
                let local = self.ncname_nows()?;
                return Ok(NodeTest::LocalWildcard(local));
            }
            return Ok(NodeTest::AnyName);
        }
        for (kw, mk) in [
            ("node", NodeTest::AnyKind),
            ("text", NodeTest::Text),
            ("comment", NodeTest::Comment),
            ("document-node", NodeTest::DocumentTest),
        ] {
            if self.peek_kind_test(kw) {
                self.expect_keyword(kw)?;
                self.expect("(")?;
                self.skip_to_matching_paren()?;
                return Ok(mk);
            }
        }
        if self.peek_kind_test("processing-instruction") {
            self.expect_keyword("processing-instruction")?;
            self.expect("(")?;
            self.skip_ws();
            let target = if self.rest().starts_with(')') {
                None
            } else if self.rest().starts_with('"') || self.rest().starts_with('\'') {
                Some(self.string_literal()?)
            } else {
                Some(self.ncname()?)
            };
            self.expect(")")?;
            return Ok(NodeTest::Pi(target));
        }
        if self.peek_kind_test("element") {
            self.expect_keyword("element")?;
            self.expect("(")?;
            self.skip_ws();
            let name = if self.rest().starts_with(')') || self.rest().starts_with('*') {
                let _ = self.eat("*");
                None
            } else {
                Some(self.qname()?)
            };
            self.skip_to_matching_paren()?;
            return Ok(NodeTest::Element(name));
        }
        if self.peek_kind_test("attribute") {
            self.expect_keyword("attribute")?;
            self.expect("(")?;
            self.skip_ws();
            let name = if self.rest().starts_with(')') || self.rest().starts_with('*') {
                let _ = self.eat("*");
                None
            } else {
                Some(self.qname()?)
            };
            self.skip_to_matching_paren()?;
            return Ok(NodeTest::AttributeTest(name));
        }
        let name = self.qname()?;
        if name.prefix.is_none() && self.rest().starts_with(":*") {
            self.bump(2);
            return Ok(NodeTest::NsWildcard(name.local));
        }
        Ok(NodeTest::Name(name))
    }

    fn predicate_list(&mut self) -> XdmResult<Vec<Expr>> {
        let mut preds = Vec::new();
        loop {
            self.skip_ws();
            if self.rest().starts_with('[') {
                self.bump(1);
                let e = self.expr()?;
                self.expect("]")?;
                preds.push(e);
            } else {
                return Ok(preds);
            }
        }
    }

    // ------------------------------------------------------------------
    // Primary expressions
    // ------------------------------------------------------------------

    fn primary_expr(&mut self) -> XdmResult<Expr> {
        self.skip_ws();
        match self.peek_ch() {
            Some('$') => {
                self.bump(1);
                let name = self.qname()?;
                Ok(Expr::VarRef(name))
            }
            Some('"') | Some('\'') => {
                let s = self.string_literal()?;
                Ok(Expr::Literal(AtomicValue::String(s)))
            }
            Some(c) if c.is_ascii_digit() => self.numeric_literal(),
            Some('.') => {
                // `.5` numeric or `.` context item (`..` handled in steps)
                if self.rest()[1..]
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_ascii_digit())
                {
                    self.numeric_literal()
                } else {
                    self.bump(1);
                    Ok(Expr::ContextItem)
                }
            }
            Some('(') => {
                self.bump(1);
                self.skip_ws();
                if self.rest().starts_with(')') {
                    self.bump(1);
                    return Ok(Expr::Sequence(vec![]));
                }
                let e = self.expr()?;
                self.expect(")")?;
                Ok(e)
            }
            Some('<') => self.direct_constructor(),
            Some(c) if c.is_alphabetic() || c == '_' => self.name_led_primary(),
            _ => self.err("expected an expression"),
        }
    }

    fn numeric_literal(&mut self) -> XdmResult<Expr> {
        self.skip_ws();
        let start = self.pos;
        let mut saw_dot = false;
        let mut saw_exp = false;
        let bytes = self.input.as_bytes();
        while self.pos < self.input.len() {
            let b = bytes[self.pos];
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' if !saw_dot && !saw_exp => {
                    saw_dot = true;
                    self.pos += 1;
                }
                b'e' | b'E' if !saw_exp => {
                    saw_exp = true;
                    self.pos += 1;
                    if self.pos < self.input.len() && matches!(bytes[self.pos], b'+' | b'-') {
                        self.pos += 1;
                    }
                }
                _ => break,
            }
        }
        let text = &self.input[start..self.pos];
        if saw_exp {
            let d: f64 = text
                .parse()
                .map_err(|_| XdmError::syntax(format!("bad double literal `{text}`")))?;
            Ok(Expr::Literal(AtomicValue::Double(d)))
        } else if saw_dot {
            Ok(Expr::Literal(AtomicValue::Decimal(Decimal::parse(text)?)))
        } else {
            let i: i64 = text
                .parse()
                .map_err(|_| XdmError::syntax(format!("bad integer literal `{text}`")))?;
            Ok(Expr::Literal(AtomicValue::Integer(i)))
        }
    }

    fn name_led_primary(&mut self) -> XdmResult<Expr> {
        // `execute at { .. } { f(..) }`
        if self.peek_keyword2("execute", "at") {
            self.expect_keyword("execute")?;
            self.expect_keyword("at")?;
            self.expect("{")?;
            let dest = self.expr_single()?;
            self.expect("}")?;
            self.expect("{")?;
            let call = self.function_call_expr()?;
            self.expect("}")?;
            return Ok(Expr::ExecuteAt {
                dest: Box::new(dest),
                call: Box::new(call),
            });
        }
        // Computed constructors.
        if self.peek_comp_ctor("element") {
            self.expect_keyword("element")?;
            let name = self.comp_name()?;
            let content = self.enclosed_opt()?;
            return Ok(Expr::CompElem { name, content });
        }
        if self.peek_comp_ctor("attribute") {
            self.expect_keyword("attribute")?;
            let name = self.comp_name()?;
            let content = self.enclosed_opt()?;
            return Ok(Expr::CompAttr { name, content });
        }
        if self.peek_keyword2("text", "{") {
            self.expect_keyword("text")?;
            self.expect("{")?;
            let e = self.expr()?;
            self.expect("}")?;
            return Ok(Expr::CompText(Box::new(e)));
        }
        if self.peek_keyword2("comment", "{") {
            self.expect_keyword("comment")?;
            self.expect("{")?;
            let e = self.expr()?;
            self.expect("}")?;
            return Ok(Expr::CompComment(Box::new(e)));
        }
        if self.peek_keyword2("document", "{") {
            self.expect_keyword("document")?;
            self.expect("{")?;
            let e = self.expr()?;
            self.expect("}")?;
            return Ok(Expr::CompDoc(Box::new(e)));
        }
        if self.peek_comp_ctor("processing-instruction") {
            self.expect_keyword("processing-instruction")?;
            let target = self.comp_name()?;
            let content = self.enclosed_opt()?;
            return Ok(Expr::CompPi { target, content });
        }
        if self.peek_keyword2("ordered", "{") || self.peek_keyword2("unordered", "{") {
            let _ = self.eat_keyword("ordered") || self.eat_keyword("unordered");
            self.expect("{")?;
            let e = self.expr()?;
            self.expect("}")?;
            return Ok(e);
        }
        // Function call.
        self.function_call_expr()
    }

    fn peek_comp_ctor(&mut self, kw: &str) -> bool {
        // `element {` or `element qname {`
        let save = self.pos;
        let mut ok = false;
        if self.eat_keyword(kw) {
            ok = self.eat("{") || (self.qname().is_ok() && self.eat("{"));
        }
        self.pos = save;
        ok
    }

    fn comp_name(&mut self) -> XdmResult<CompName> {
        self.skip_ws();
        if self.rest().starts_with('{') {
            self.bump(1);
            let e = self.expr()?;
            self.expect("}")?;
            Ok(CompName::Computed(Box::new(e)))
        } else {
            Ok(CompName::Const(self.qname()?))
        }
    }

    fn enclosed_opt(&mut self) -> XdmResult<Option<Box<Expr>>> {
        self.expect("{")?;
        self.skip_ws();
        if self.rest().starts_with('}') {
            self.bump(1);
            return Ok(None);
        }
        let e = self.expr()?;
        self.expect("}")?;
        Ok(Some(Box::new(e)))
    }

    fn function_call_expr(&mut self) -> XdmResult<Expr> {
        let name = self.qname()?;
        self.skip_ws();
        if !self.rest().starts_with('(') {
            return self.err(format!(
                "expected `(` after function name `{}`",
                name.lexical()
            ));
        }
        self.bump(1);
        let mut args = Vec::new();
        self.skip_ws();
        if !self.rest().starts_with(')') {
            loop {
                args.push(self.expr_single()?);
                if !self.eat(",") {
                    break;
                }
            }
        }
        self.expect(")")?;
        Ok(Expr::FunctionCall { name, args })
    }

    // ------------------------------------------------------------------
    // Direct constructors
    // ------------------------------------------------------------------

    fn direct_constructor(&mut self) -> XdmResult<Expr> {
        Ok(Expr::DirectElem(self.dir_elem()?))
    }

    fn dir_elem(&mut self) -> XdmResult<DirElem> {
        self.expect("<")?;
        let name = self.qname_nows()?;
        let mut attrs: Vec<(Name, Vec<AttrContent>)> = Vec::new();
        let mut ns_decls: Vec<(String, String)> = Vec::new();
        let self_closing;
        loop {
            self.skip_ws_raw();
            if self.rest().starts_with("/>") {
                self.bump(2);
                self_closing = true;
                break;
            }
            if self.rest().starts_with('>') {
                self.bump(1);
                self_closing = false;
                break;
            }
            let aname = self.qname_nows()?;
            self.skip_ws_raw();
            if !self.rest().starts_with('=') {
                return self.err("expected `=` in attribute");
            }
            self.bump(1);
            self.skip_ws_raw();
            let parts = self.dir_attr_value()?;
            // Extract namespace declarations.
            if aname.prefix.is_none() && aname.local == "xmlns" {
                let uri = attr_static_text(&parts)
                    .ok_or_else(|| XdmError::syntax("xmlns value must be a literal"))?;
                ns_decls.push((String::new(), uri));
            } else if aname.prefix.as_deref() == Some("xmlns") {
                let uri = attr_static_text(&parts)
                    .ok_or_else(|| XdmError::syntax("xmlns value must be a literal"))?;
                ns_decls.push((aname.local.clone(), uri));
            } else {
                attrs.push((aname, parts));
            }
        }
        let mut content = Vec::new();
        if !self_closing {
            loop {
                if self.rest().starts_with("</") {
                    self.bump(2);
                    let close = self.qname_nows()?;
                    if close != name {
                        return self.err(format!(
                            "mismatched constructor end tag </{}>, expected </{}>",
                            close.lexical(),
                            name.lexical()
                        ));
                    }
                    self.skip_ws_raw();
                    if !self.rest().starts_with('>') {
                        return self.err("expected `>`");
                    }
                    self.bump(1);
                    break;
                } else if self.rest().starts_with("<!--") {
                    self.bump(4);
                    match self.rest().find("-->") {
                        Some(i) => {
                            content.push(DirContent::Comment(self.rest()[..i].to_string()));
                            self.bump(i + 3);
                        }
                        None => return self.err("unterminated comment in constructor"),
                    }
                } else if self.rest().starts_with("<![CDATA[") {
                    self.bump(9);
                    match self.rest().find("]]>") {
                        Some(i) => {
                            content.push(DirContent::Text(self.rest()[..i].to_string()));
                            self.bump(i + 3);
                        }
                        None => return self.err("unterminated CDATA in constructor"),
                    }
                } else if self.rest().starts_with("<?") {
                    self.bump(2);
                    let target = self.ncname_nows()?;
                    match self.rest().find("?>") {
                        Some(i) => {
                            content.push(DirContent::Pi(
                                target,
                                self.rest()[..i].trim_start().to_string(),
                            ));
                            self.bump(i + 2);
                        }
                        None => return self.err("unterminated PI in constructor"),
                    }
                } else if self.rest().starts_with('<') {
                    content.push(DirContent::Element(self.dir_elem()?));
                } else if self.rest().starts_with('{') {
                    if self.rest().starts_with("{{") {
                        self.bump(2);
                        push_text(&mut content, "{");
                    } else {
                        self.bump(1);
                        let e = self.expr()?;
                        self.expect("}")?;
                        content.push(DirContent::Enclosed(e));
                    }
                } else if self.rest().starts_with("}}") {
                    self.bump(2);
                    push_text(&mut content, "}");
                } else if self.rest().starts_with('&') {
                    let c = self.entity_ref()?;
                    push_text(&mut content, &c.to_string());
                } else if let Some(c) = self.peek_ch() {
                    self.bump(c.len_utf8());
                    push_text(&mut content, &c.to_string());
                } else {
                    return self.err("unterminated element constructor");
                }
            }
        }
        Ok(DirElem {
            name,
            attrs,
            ns_decls,
            content,
        })
    }

    /// Skip plain whitespace only (inside tags; XQuery comments do not
    /// apply there).
    fn skip_ws_raw(&mut self) {
        while matches!(self.peek_ch(), Some(c) if c.is_whitespace()) {
            self.pos += 1;
        }
    }

    fn qname_nows(&mut self) -> XdmResult<Name> {
        let first = self.ncname_nows()?;
        if self.rest().starts_with(':') {
            self.bump(1);
            let second = self.ncname_nows()?;
            Ok(Name::prefixed(first, second))
        } else {
            Ok(Name::local(first))
        }
    }

    fn dir_attr_value(&mut self) -> XdmResult<Vec<AttrContent>> {
        let quote = match self.peek_ch() {
            Some(q @ ('"' | '\'')) => q,
            _ => return self.err("expected quoted attribute value"),
        };
        self.bump(1);
        let mut parts: Vec<AttrContent> = Vec::new();
        let mut text = String::new();
        loop {
            match self.peek_ch() {
                Some(c) if c == quote => {
                    self.bump(1);
                    if self.peek_ch() == Some(quote) {
                        text.push(quote);
                        self.bump(1);
                    } else {
                        if !text.is_empty() {
                            parts.push(AttrContent::Text(text));
                        }
                        return Ok(parts);
                    }
                }
                Some('{') => {
                    if self.rest().starts_with("{{") {
                        text.push('{');
                        self.bump(2);
                    } else {
                        if !text.is_empty() {
                            parts.push(AttrContent::Text(std::mem::take(&mut text)));
                        }
                        self.bump(1);
                        let e = self.expr()?;
                        self.expect("}")?;
                        parts.push(AttrContent::Enclosed(e));
                    }
                }
                Some('}') => {
                    if self.rest().starts_with("}}") {
                        text.push('}');
                        self.bump(2);
                    } else {
                        return self.err("unescaped `}` in attribute value");
                    }
                }
                Some('&') => text.push(self.entity_ref()?),
                Some(c) => {
                    text.push(c);
                    self.bump(c.len_utf8());
                }
                None => return self.err("unterminated attribute value"),
            }
        }
    }
}

fn push_text(content: &mut Vec<DirContent>, s: &str) {
    if let Some(DirContent::Text(t)) = content.last_mut() {
        t.push_str(s);
    } else {
        content.push(DirContent::Text(s.to_string()));
    }
}

fn attr_static_text(parts: &[AttrContent]) -> Option<String> {
    let mut out = String::new();
    for p in parts {
        match p {
            AttrContent::Text(t) => out.push_str(t),
            AttrContent::Enclosed(_) => return None,
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_expr(q: &str) -> Expr {
        parse_main_module(q)
            .unwrap_or_else(|e| panic!("parse `{q}`: {e}"))
            .body
    }

    #[test]
    fn literals() {
        assert_eq!(parse_expr("42"), Expr::Literal(AtomicValue::Integer(42)));
        assert_eq!(
            parse_expr("3.14"),
            Expr::Literal(AtomicValue::Decimal(Decimal::parse("3.14").unwrap()))
        );
        assert!(matches!(
            parse_expr("1e3"),
            Expr::Literal(AtomicValue::Double(d)) if d == 1000.0
        ));
        assert_eq!(
            parse_expr(r#""don""t""#),
            Expr::Literal(AtomicValue::String("don\"t".into()))
        );
        assert_eq!(
            parse_expr("'a&amp;b'"),
            Expr::Literal(AtomicValue::String("a&b".into()))
        );
    }

    #[test]
    fn arithmetic_precedence() {
        // 1 + 2 * 3 parses as 1 + (2 * 3)
        match parse_expr("1 + 2 * 3") {
            Expr::Arith(ArithOp::Add, l, r) => {
                assert_eq!(*l, Expr::Literal(AtomicValue::Integer(1)));
                assert!(matches!(*r, Expr::Arith(ArithOp::Mul, _, _)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn comparison_kinds() {
        assert!(matches!(
            parse_expr("1 = 2"),
            Expr::GeneralComp(CompOp::Eq, ..)
        ));
        assert!(matches!(
            parse_expr("1 eq 2"),
            Expr::ValueComp(CompOp::Eq, ..)
        ));
        assert!(matches!(
            parse_expr("$a is $b"),
            Expr::NodeComp(NodeCompOp::Is, ..)
        ));
        assert!(matches!(
            parse_expr("$a << $b"),
            Expr::NodeComp(NodeCompOp::Precedes, ..)
        ));
        assert!(matches!(
            parse_expr("1 < 2"),
            Expr::GeneralComp(CompOp::Lt, ..)
        ));
    }

    #[test]
    fn flwor_full() {
        let e = parse_expr(
            "for $x at $i in (1 to 5), $y in (1, 2) let $z := $x + $y \
             where $z > 2 order by $z descending return ($i, $z)",
        );
        match e {
            Expr::Flwor { clauses, .. } => {
                assert_eq!(clauses.len(), 5);
                assert!(matches!(
                    &clauses[0],
                    FlworClause::For {
                        pos_var: Some(_),
                        ..
                    }
                ));
                assert!(matches!(
                    &clauses[1],
                    FlworClause::For { pos_var: None, .. }
                ));
                assert!(matches!(&clauses[2], FlworClause::Let { .. }));
                assert!(matches!(&clauses[3], FlworClause::Where(_)));
                assert!(matches!(&clauses[4], FlworClause::OrderBy(s) if s[0].descending));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn paths_and_axes() {
        // //name desugars into root/dos/name
        let e = parse_expr("//name");
        let printed = crate::pretty::pretty_print(&e);
        assert!(printed.contains("descendant-or-self::node()"));
        // abbreviated attribute axis
        match parse_expr("@id") {
            Expr::AxisStep { axis, test, .. } => {
                assert_eq!(axis, Axis::Attribute);
                assert_eq!(test, NodeTest::Name(Name::local("id")));
            }
            other => panic!("{other:?}"),
        }
        // parent abbreviation
        assert!(matches!(
            parse_expr(".."),
            Expr::AxisStep {
                axis: Axis::Parent,
                test: NodeTest::AnyKind,
                ..
            }
        ));
        // explicit axes
        assert!(matches!(
            parse_expr("ancestor-or-self::div"),
            Expr::AxisStep {
                axis: Axis::AncestorOrSelf,
                ..
            }
        ));
        // predicates
        match parse_expr("film[name = 'x'][2]") {
            Expr::AxisStep { predicates, .. } => assert_eq!(predicates.len(), 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn wildcards() {
        assert!(matches!(
            parse_expr("child::*"),
            Expr::AxisStep {
                test: NodeTest::AnyName,
                ..
            }
        ));
        assert!(matches!(
            parse_expr("f:*"),
            Expr::AxisStep {
                test: NodeTest::NsWildcard(_),
                ..
            }
        ));
        assert!(matches!(
            parse_expr("*:local"),
            Expr::AxisStep {
                test: NodeTest::LocalWildcard(_),
                ..
            }
        ));
    }

    #[test]
    fn execute_at_shape() {
        let e =
            parse_expr(r#"execute at {"xrpc://y.example.org"} {f:filmsByActor("Sean Connery")}"#);
        match e {
            Expr::ExecuteAt { dest, call } => {
                assert!(matches!(*dest, Expr::Literal(AtomicValue::String(_))));
                match *call {
                    Expr::FunctionCall { name, args } => {
                        assert_eq!(name, Name::prefixed("f", "filmsByActor"));
                        assert_eq!(args.len(), 1);
                    }
                    other => panic!("{other:?}"),
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn execute_at_with_computed_dest() {
        let e = parse_expr(r#"for $dst in ("a", "b") return execute at {$dst} {f:g()}"#);
        assert!(e.contains_xrpc());
    }

    #[test]
    fn direct_constructor_with_attrs_and_enclosed() {
        let e = parse_expr(r#"<films count="{1+1}" lang="en">{ $x }</films>"#);
        match e {
            Expr::DirectElem(d) => {
                assert_eq!(d.name, Name::local("films"));
                assert_eq!(d.attrs.len(), 2);
                assert!(matches!(d.attrs[0].1[0], AttrContent::Enclosed(_)));
                assert!(matches!(d.attrs[1].1[0], AttrContent::Text(_)));
                assert_eq!(d.content.len(), 1);
                assert!(matches!(d.content[0], DirContent::Enclosed(_)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn direct_constructor_ns_decls_extracted() {
        let e = parse_expr(r#"<a xmlns:p="urn:x" xmlns="urn:d"><p:b/></a>"#);
        match e {
            Expr::DirectElem(d) => {
                assert_eq!(d.ns_decls.len(), 2);
                assert!(d.attrs.is_empty());
                assert!(matches!(d.content[0], DirContent::Element(_)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn direct_constructor_brace_escapes() {
        let e = parse_expr("<a>{{literal}}</a>");
        match e {
            Expr::DirectElem(d) => {
                assert_eq!(d.content, vec![DirContent::Text("{literal}".into())]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn nested_element_constructors() {
        let e = parse_expr("<films>{ for $f in //film return <f>{$f/name}</f> }</films>");
        assert!(matches!(e, Expr::DirectElem(_)));
    }

    #[test]
    fn xquf_expressions() {
        assert!(matches!(
            parse_expr("delete node /a/b"),
            Expr::Delete { .. }
        ));
        assert!(matches!(
            parse_expr("insert node <x/> into /a"),
            Expr::Insert {
                pos: InsertPos::Into,
                ..
            }
        ));
        assert!(matches!(
            parse_expr("insert nodes (<x/>, <y/>) as last into /a"),
            Expr::Insert {
                pos: InsertPos::AsLastInto,
                ..
            }
        ));
        assert!(matches!(
            parse_expr("insert node <x/> before /a/b"),
            Expr::Insert {
                pos: InsertPos::Before,
                ..
            }
        ));
        assert!(matches!(
            parse_expr("replace node /a with <b/>"),
            Expr::ReplaceNode { .. }
        ));
        assert!(matches!(
            parse_expr("replace value of node /a with 'v'"),
            Expr::ReplaceValue { .. }
        ));
        assert!(matches!(
            parse_expr("rename node /a as 'b'"),
            Expr::Rename { .. }
        ));
    }

    #[test]
    fn library_module_with_function() {
        let m = parse_library_module(
            r#"module namespace film = "films";
               declare function film:filmsByActor($actor as xs:string) as node()*
               { doc("filmDB.xml")//name[../actor = $actor] };"#,
        )
        .unwrap();
        assert_eq!(m.prefix, "film");
        assert_eq!(m.ns_uri, "films");
        assert_eq!(m.prolog.functions.len(), 1);
        let f = &m.prolog.functions[0];
        assert_eq!(f.name, Name::prefixed("film", "filmsByActor"));
        assert_eq!(f.arity(), 1);
        assert!(!f.updating);
        assert!(f.ret.is_some());
    }

    #[test]
    fn updating_function_flag() {
        let m = parse_library_module(
            r#"module namespace t = "test";
               declare updating function t:ins($d as node()) { insert node <x/> into $d };"#,
        )
        .unwrap();
        assert!(m.prolog.functions[0].updating);
    }

    #[test]
    fn prolog_imports_and_options() {
        let m = parse_main_module(
            r#"import module namespace f = "films" at "http://x.example.org/film.xq";
               declare option xrpc:isolation "repeatable";
               declare option xrpc:timeout "30";
               1"#,
        )
        .unwrap();
        assert_eq!(m.prolog.module_imports.len(), 1);
        assert_eq!(
            m.prolog.module_imports[0].at_hints[0],
            "http://x.example.org/film.xq"
        );
        assert_eq!(m.prolog.option("xrpc", "isolation"), Some("repeatable"));
        assert_eq!(m.prolog.option("xrpc", "timeout"), Some("30"));
    }

    #[test]
    fn prolog_variable_decl() {
        let m = parse_main_module(r#"declare variable $n as xs:integer := 5; $n"#).unwrap();
        assert_eq!(m.prolog.variables.len(), 1);
        assert_eq!(m.prolog.variables[0].name, Name::local("n"));
        assert!(m.prolog.variables[0].ty.is_some());
        assert!(!m.prolog.variables[0].external);
    }

    #[test]
    fn prolog_external_variable_decls() {
        let m = parse_main_module(
            r#"declare variable $a external;
               declare variable $b as xs:string external;
               declare variable $c as xs:integer external := 7;
               ($a, $b, $c)"#,
        )
        .unwrap();
        let v = &m.prolog.variables;
        assert_eq!(v.len(), 3);
        assert!(v.iter().all(|d| d.external));
        assert!(v[0].ty.is_none() && v[0].value.is_none());
        assert!(v[1].ty.is_some() && v[1].value.is_none());
        assert!(v[2].value.is_some(), "external with default keeps it");
    }

    #[test]
    fn prolog_base_uri_and_default_collation() {
        let m = parse_main_module(
            r#"declare base-uri "http://x.example.org/app/";
               declare default collation "http://www.w3.org/2005/xpath-functions/collation/codepoint";
               1"#,
        )
        .unwrap();
        assert_eq!(
            m.prolog.base_uri.as_deref(),
            Some("http://x.example.org/app/")
        );
        assert_eq!(
            m.prolog.default_collation.as_deref(),
            Some("http://www.w3.org/2005/xpath-functions/collation/codepoint")
        );
    }

    #[test]
    fn base_uri_and_external_roundtrip_through_pretty() {
        let q = r#"declare base-uri "app/";
                   declare variable $pid as xs:string external;
                   $pid"#;
        let m = parse_main_module(q).unwrap();
        let printed = crate::pretty::pretty_print_main(&m);
        let reparsed = parse_main_module(&printed).unwrap();
        assert_eq!(reparsed.prolog.base_uri.as_deref(), Some("app/"));
        assert!(reparsed.prolog.variables[0].external);
    }

    #[test]
    fn version_decl_and_comments() {
        let m = parse_main_module("xquery version \"1.0\"; (: outer (: nested :) comment :) 1 + 1")
            .unwrap();
        assert!(matches!(m.body, Expr::Arith(..)));
    }

    #[test]
    fn paper_query_q1() {
        let q = r#"
            import module namespace f="films" at "http://x.example.org/film.xq";
            <films> {
              execute at {"xrpc://y.example.org"}
              {f:filmsByActor("Sean Connery")}
            } </films>"#;
        let m = parse_main_module(q).unwrap();
        assert!(m.body.contains_xrpc());
    }

    #[test]
    fn paper_query_q3_multi_dest() {
        let q = r#"
            import module namespace f="films" at "http://x.example.org/film.xq";
            <films> {
              for $actor in ("Julie Andrews", "Sean Connery")
              for $dst in ("xrpc://y.example.org", "xrpc://z.example.org")
              return execute at {$dst} {f:filmsByActor($actor)}
            } </films>"#;
        assert!(parse_main_module(q).unwrap().body.contains_xrpc());
    }

    #[test]
    fn paper_query_q7_join() {
        let q = r#"
            for $p in doc("persons.xml")//person,
                $ca in doc("xrpc://B/auctions.xml")//closed_auction
            where $p/@id = $ca/buyer/@person
            return <result>{$p, $ca/annotation}</result>"#;
        let m = parse_main_module(q).unwrap();
        assert!(matches!(m.body, Expr::Flwor { .. }));
    }

    #[test]
    fn quantified_and_typeswitch() {
        assert!(matches!(
            parse_expr("every $x in (1, 2) satisfies $x > 0"),
            Expr::Quantified {
                quantifier: Quantifier::Every,
                ..
            }
        ));
        assert!(matches!(
            parse_expr(
                "typeswitch ($v) case xs:string return 1 case node() return 2 default $d return 3"
            ),
            Expr::Typeswitch { .. }
        ));
    }

    #[test]
    fn union_intersect_except() {
        assert!(matches!(parse_expr("$a union $b"), Expr::Union(..)));
        assert!(matches!(parse_expr("$a | $b"), Expr::Union(..)));
        assert!(matches!(parse_expr("$a intersect $b"), Expr::Intersect(..)));
        assert!(matches!(parse_expr("$a except $b"), Expr::Except(..)));
    }

    #[test]
    fn type_operators() {
        assert!(matches!(
            parse_expr("$a instance of xs:integer+"),
            Expr::InstanceOf(..)
        ));
        assert!(matches!(
            parse_expr("$a treat as node()"),
            Expr::TreatAs(..)
        ));
        assert!(matches!(
            parse_expr("$a cast as xs:date?"),
            Expr::CastAs {
                allow_empty: true,
                ..
            }
        ));
        assert!(matches!(
            parse_expr("$a castable as xs:double"),
            Expr::CastableAs { .. }
        ));
    }

    #[test]
    fn computed_constructors() {
        assert!(matches!(
            parse_expr("element {concat('a','b')} {1}"),
            Expr::CompElem {
                name: CompName::Computed(_),
                ..
            }
        ));
        assert!(matches!(
            parse_expr("element foo {}"),
            Expr::CompElem {
                name: CompName::Const(_),
                content: None
            }
        ));
        assert!(matches!(
            parse_expr("attribute id {'x'}"),
            Expr::CompAttr { .. }
        ));
        assert!(matches!(parse_expr("text {'x'}"), Expr::CompText(_)));
        assert!(matches!(parse_expr("comment {'x'}"), Expr::CompComment(_)));
        assert!(matches!(parse_expr("document {<a/>}"), Expr::CompDoc(_)));
        assert!(matches!(
            parse_expr("processing-instruction t {'d'}"),
            Expr::CompPi { .. }
        ));
    }

    #[test]
    fn errors_reported() {
        assert!(parse_main_module("for $x in").is_err());
        assert!(parse_main_module("1 +").is_err());
        assert!(parse_main_module("<a><b></a>").is_err());
        assert!(parse_main_module("execute at {1}").is_err());
        assert!(parse_main_module("'unterminated").is_err());
    }

    #[test]
    fn filter_on_parenthesized() {
        assert!(matches!(parse_expr("(1, 2, 3)[2]"), Expr::Filter(..)));
        assert!(matches!(parse_expr("$seq[last()]"), Expr::Filter(..)));
    }

    #[test]
    fn kind_tests_in_paths() {
        assert!(matches!(
            parse_expr("a/text()"),
            Expr::PathStep(_, b) if matches!(*b, Expr::AxisStep { test: NodeTest::Text, .. })
        ));
        assert!(matches!(
            parse_expr("self::node()"),
            Expr::AxisStep {
                axis: Axis::SelfAxis,
                test: NodeTest::AnyKind,
                ..
            }
        ));
    }

    #[test]
    fn range_and_neg() {
        assert!(matches!(parse_expr("1 to 10"), Expr::Range(..)));
        assert!(matches!(parse_expr("-$x"), Expr::Neg(_)));
        assert!(matches!(parse_expr("--1"), Expr::Literal(_))); // double negation cancels
    }
}
