//! Pretty-printing the AST back to XQuery source text. The XRPC wrapper
//! (paper §4, Figure 3) generates queries as text for foreign engines, and
//! the §5 strategies produce rewritten queries — both go through here.

use crate::ast::*;
use xdm::atomic::AtomicValue;

/// Render an expression to XQuery source.
pub fn pretty_print(e: &Expr) -> String {
    let mut out = String::new();
    expr(e, &mut out);
    out
}

/// Render a whole main module.
pub fn pretty_print_main(m: &MainModule) -> String {
    let mut out = String::new();
    prolog(&m.prolog, &mut out);
    expr(&m.body, &mut out);
    out
}

/// Render a library module.
pub fn pretty_print_library(m: &LibraryModule) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "module namespace {} = \"{}\";\n",
        m.prefix, m.ns_uri
    ));
    prolog(&m.prolog, &mut out);
    out
}

fn prolog(p: &Prolog, out: &mut String) {
    for (pre, uri) in &p.namespaces {
        out.push_str(&format!("declare namespace {pre} = \"{uri}\";\n"));
    }
    if let Some(ns) = &p.default_element_ns {
        out.push_str(&format!("declare default element namespace \"{ns}\";\n"));
    }
    if let Some(c) = &p.default_collation {
        out.push_str(&format!("declare default collation \"{c}\";\n"));
    }
    if let Some(b) = &p.base_uri {
        out.push_str(&format!("declare base-uri \"{b}\";\n"));
    }
    for (name, val) in &p.options {
        out.push_str(&format!("declare option {} \"{}\";\n", name.lexical(), val));
    }
    for imp in &p.module_imports {
        out.push_str(&format!(
            "import module namespace {} = \"{}\"",
            imp.prefix, imp.ns_uri
        ));
        if !imp.at_hints.is_empty() {
            out.push_str(" at ");
            let hints: Vec<String> = imp.at_hints.iter().map(|h| format!("\"{h}\"")).collect();
            out.push_str(&hints.join(", "));
        }
        out.push_str(";\n");
    }
    for v in &p.variables {
        out.push_str(&format!("declare variable ${}", v.name.lexical()));
        if let Some(t) = &v.ty {
            out.push_str(&format!(" as {t}"));
        }
        if v.external {
            out.push_str(" external");
        }
        if let Some(value) = &v.value {
            out.push_str(" := ");
            expr(value, out);
        }
        out.push_str(";\n");
    }
    for f in &p.functions {
        if f.updating {
            out.push_str("declare updating function ");
        } else {
            out.push_str("declare function ");
        }
        out.push_str(&f.name.lexical());
        out.push('(');
        let params: Vec<String> = f
            .params
            .iter()
            .map(|(n, t)| match t {
                Some(t) => format!("${} as {}", n.lexical(), t),
                None => format!("${}", n.lexical()),
            })
            .collect();
        out.push_str(&params.join(", "));
        out.push(')');
        if let Some(r) = &f.ret {
            out.push_str(&format!(" as {r}"));
        }
        out.push_str(" { ");
        expr(&f.body, out);
        out.push_str(" };\n");
    }
}

fn expr(e: &Expr, out: &mut String) {
    match e {
        Expr::Literal(v) => literal(v, out),
        Expr::VarRef(n) => {
            out.push('$');
            out.push_str(&n.lexical());
        }
        Expr::ContextItem => out.push('.'),
        Expr::Sequence(es) => {
            out.push('(');
            for (i, x) in es.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                expr(x, out);
            }
            out.push(')');
        }
        Expr::Range(a, b) => binop(a, "to", b, out),
        Expr::Arith(op, a, b) => binop(a, op.symbol(), b, out),
        Expr::Neg(a) => {
            out.push('-');
            paren(a, out);
        }
        Expr::ValueComp(op, a, b) => binop(
            a,
            match op {
                CompOp::Eq => "eq",
                CompOp::Ne => "ne",
                CompOp::Lt => "lt",
                CompOp::Le => "le",
                CompOp::Gt => "gt",
                CompOp::Ge => "ge",
            },
            b,
            out,
        ),
        Expr::GeneralComp(op, a, b) => binop(
            a,
            match op {
                CompOp::Eq => "=",
                CompOp::Ne => "!=",
                CompOp::Lt => "<",
                CompOp::Le => "<=",
                CompOp::Gt => ">",
                CompOp::Ge => ">=",
            },
            b,
            out,
        ),
        Expr::NodeComp(op, a, b) => binop(
            a,
            match op {
                NodeCompOp::Is => "is",
                NodeCompOp::Precedes => "<<",
                NodeCompOp::Follows => ">>",
            },
            b,
            out,
        ),
        Expr::And(a, b) => binop(a, "and", b, out),
        Expr::Or(a, b) => binop(a, "or", b, out),
        Expr::Union(a, b) => binop(a, "union", b, out),
        Expr::Intersect(a, b) => binop(a, "intersect", b, out),
        Expr::Except(a, b) => binop(a, "except", b, out),
        Expr::If { cond, then, els } => {
            out.push_str("if (");
            expr(cond, out);
            out.push_str(") then ");
            paren(then, out);
            out.push_str(" else ");
            paren(els, out);
        }
        Expr::Flwor { clauses, ret } => {
            for c in clauses {
                match c {
                    FlworClause::For { var, pos_var, seq } => {
                        out.push_str(&format!("for ${}", var.lexical()));
                        if let Some(p) = pos_var {
                            out.push_str(&format!(" at ${}", p.lexical()));
                        }
                        out.push_str(" in ");
                        paren(seq, out);
                        out.push(' ');
                    }
                    FlworClause::Let { var, value } => {
                        out.push_str(&format!("let ${} := ", var.lexical()));
                        paren(value, out);
                        out.push(' ');
                    }
                    FlworClause::Where(w) => {
                        out.push_str("where ");
                        paren(w, out);
                        out.push(' ');
                    }
                    FlworClause::OrderBy(specs) => {
                        out.push_str("order by ");
                        for (i, s) in specs.iter().enumerate() {
                            if i > 0 {
                                out.push_str(", ");
                            }
                            paren(&s.key, out);
                            if s.descending {
                                out.push_str(" descending");
                            }
                            if !s.empty_least {
                                out.push_str(" empty greatest");
                            }
                        }
                        out.push(' ');
                    }
                }
            }
            out.push_str("return ");
            paren(ret, out);
        }
        Expr::Quantified {
            quantifier,
            bindings,
            satisfies,
        } => {
            out.push_str(match quantifier {
                Quantifier::Some => "some ",
                Quantifier::Every => "every ",
            });
            for (i, (n, s)) in bindings.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("${} in ", n.lexical()));
                paren(s, out);
            }
            out.push_str(" satisfies ");
            paren(satisfies, out);
        }
        Expr::Typeswitch {
            operand,
            cases,
            default_var,
            default,
        } => {
            out.push_str("typeswitch (");
            expr(operand, out);
            out.push_str(") ");
            for c in cases {
                out.push_str("case ");
                if let Some(v) = &c.var {
                    out.push_str(&format!("${} as ", v.lexical()));
                }
                out.push_str(&format!("{} return ", c.ty));
                paren(&c.body, out);
                out.push(' ');
            }
            out.push_str("default ");
            if let Some(v) = default_var {
                out.push_str(&format!("${} ", v.lexical()));
            }
            out.push_str("return ");
            paren(default, out);
        }
        Expr::Root(None) => out.push('/'),
        Expr::Root(Some(r)) => {
            out.push('/');
            expr(r, out);
        }
        Expr::PathStep(a, b) => {
            // `a/descendant-or-self::node()/b` prints as `a//b` only when we
            // re-detect it; keep the explicit form for simplicity.
            expr_path_lhs(a, out);
            out.push('/');
            expr(b, out);
        }
        Expr::AxisStep {
            axis,
            test,
            predicates,
        } => {
            axis_step(*axis, test, out);
            preds(predicates, out);
        }
        Expr::Filter(base, predicates) => {
            paren(base, out);
            preds(predicates, out);
        }
        Expr::FunctionCall { name, args } => {
            out.push_str(&name.lexical());
            out.push('(');
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                expr(a, out);
            }
            out.push(')');
        }
        Expr::ExecuteAt { dest, call } => {
            out.push_str("execute at {");
            expr(dest, out);
            out.push_str("} {");
            expr(call, out);
            out.push('}');
        }
        Expr::DirectElem(d) => dir_elem(d, out),
        Expr::CompElem { name, content } => comp_ctor("element", name, content, out),
        Expr::CompAttr { name, content } => comp_ctor("attribute", name, content, out),
        Expr::CompText(c) => {
            out.push_str("text {");
            expr(c, out);
            out.push('}');
        }
        Expr::CompComment(c) => {
            out.push_str("comment {");
            expr(c, out);
            out.push('}');
        }
        Expr::CompPi { target, content } => {
            comp_ctor("processing-instruction", target, content, out)
        }
        Expr::CompDoc(c) => {
            out.push_str("document {");
            expr(c, out);
            out.push('}');
        }
        Expr::InstanceOf(a, t) => {
            paren(a, out);
            out.push_str(&format!(" instance of {t}"));
        }
        Expr::TreatAs(a, t) => {
            paren(a, out);
            out.push_str(&format!(" treat as {t}"));
        }
        Expr::CastAs {
            expr: a,
            ty,
            allow_empty,
        } => {
            paren(a, out);
            out.push_str(&format!(
                " cast as {}{}",
                ty.lexical(),
                if *allow_empty { "?" } else { "" }
            ));
        }
        Expr::CastableAs {
            expr: a,
            ty,
            allow_empty,
        } => {
            paren(a, out);
            out.push_str(&format!(
                " castable as {}{}",
                ty.lexical(),
                if *allow_empty { "?" } else { "" }
            ));
        }
        Expr::Insert {
            source,
            target,
            pos,
        } => {
            out.push_str("insert nodes ");
            paren(source, out);
            out.push_str(match pos {
                InsertPos::Into => " into ",
                InsertPos::AsFirstInto => " as first into ",
                InsertPos::AsLastInto => " as last into ",
                InsertPos::Before => " before ",
                InsertPos::After => " after ",
            });
            paren(target, out);
        }
        Expr::Delete { target } => {
            out.push_str("delete nodes ");
            paren(target, out);
        }
        Expr::ReplaceNode { target, with } => {
            out.push_str("replace node ");
            paren(target, out);
            out.push_str(" with ");
            paren(with, out);
        }
        Expr::ReplaceValue { target, with } => {
            out.push_str("replace value of node ");
            paren(target, out);
            out.push_str(" with ");
            paren(with, out);
        }
        Expr::Rename { target, name } => {
            out.push_str("rename node ");
            paren(target, out);
            out.push_str(" as ");
            paren(name, out);
        }
    }
}

fn expr_path_lhs(e: &Expr, out: &mut String) {
    match e {
        Expr::Root(None) => {} // `/x` — the slash is emitted by the caller
        Expr::PathStep(..)
        | Expr::AxisStep { .. }
        | Expr::Filter(..)
        | Expr::FunctionCall { .. }
        | Expr::VarRef(_)
        | Expr::ContextItem => expr(e, out),
        _ => {
            out.push('(');
            expr(e, out);
            out.push(')');
        }
    }
}

fn axis_step(axis: Axis, test: &NodeTest, out: &mut String) {
    let axis_name = match axis {
        Axis::Child => "",
        Axis::Descendant => "descendant::",
        Axis::DescendantOrSelf => "descendant-or-self::",
        Axis::Parent => "parent::",
        Axis::Ancestor => "ancestor::",
        Axis::AncestorOrSelf => "ancestor-or-self::",
        Axis::FollowingSibling => "following-sibling::",
        Axis::PrecedingSibling => "preceding-sibling::",
        Axis::Following => "following::",
        Axis::Preceding => "preceding::",
        Axis::Attribute => "@",
        Axis::SelfAxis => "self::",
    };
    out.push_str(axis_name);
    match test {
        NodeTest::Name(n) => out.push_str(&n.lexical()),
        NodeTest::AnyName => out.push('*'),
        NodeTest::NsWildcard(p) => out.push_str(&format!("{p}:*")),
        NodeTest::LocalWildcard(l) => out.push_str(&format!("*:{l}")),
        NodeTest::AnyKind => out.push_str("node()"),
        NodeTest::Text => out.push_str("text()"),
        NodeTest::Comment => out.push_str("comment()"),
        NodeTest::Pi(None) => out.push_str("processing-instruction()"),
        NodeTest::Pi(Some(t)) => out.push_str(&format!("processing-instruction({t})")),
        NodeTest::Element(None) => out.push_str("element()"),
        NodeTest::Element(Some(n)) => out.push_str(&format!("element({})", n.lexical())),
        NodeTest::AttributeTest(None) => out.push_str("attribute()"),
        NodeTest::AttributeTest(Some(n)) => out.push_str(&format!("attribute({})", n.lexical())),
        NodeTest::DocumentTest => out.push_str("document-node()"),
    }
}

fn preds(predicates: &[Expr], out: &mut String) {
    for p in predicates {
        out.push('[');
        expr(p, out);
        out.push(']');
    }
}

fn comp_ctor(kw: &str, name: &CompName, content: &Option<Box<Expr>>, out: &mut String) {
    out.push_str(kw);
    out.push(' ');
    match name {
        CompName::Const(n) => out.push_str(&n.lexical()),
        CompName::Computed(e) => {
            out.push('{');
            expr(e, out);
            out.push('}');
        }
    }
    out.push_str(" {");
    if let Some(c) = content {
        expr(c, out);
    }
    out.push('}');
}

fn dir_elem(d: &DirElem, out: &mut String) {
    out.push('<');
    out.push_str(&d.name.lexical());
    for (p, u) in &d.ns_decls {
        if p.is_empty() {
            out.push_str(&format!(" xmlns=\"{u}\""));
        } else {
            out.push_str(&format!(" xmlns:{p}=\"{u}\""));
        }
    }
    for (n, parts) in &d.attrs {
        out.push(' ');
        out.push_str(&n.lexical());
        out.push_str("=\"");
        for p in parts {
            match p {
                AttrContent::Text(t) => out.push_str(&escape_attr_text(t)),
                AttrContent::Enclosed(e) => {
                    out.push('{');
                    expr(e, out);
                    out.push('}');
                }
            }
        }
        out.push('"');
    }
    if d.content.is_empty() {
        out.push_str("/>");
        return;
    }
    out.push('>');
    for c in &d.content {
        match c {
            DirContent::Text(t) => out.push_str(&escape_elem_text(t)),
            DirContent::Enclosed(e) => {
                out.push('{');
                expr(e, out);
                out.push('}');
            }
            DirContent::Element(inner) => dir_elem(inner, out),
            DirContent::Comment(t) => out.push_str(&format!("<!--{t}-->")),
            DirContent::Pi(t, v) => out.push_str(&format!("<?{t} {v}?>")),
        }
    }
    out.push_str("</");
    out.push_str(&d.name.lexical());
    out.push('>');
}

fn escape_elem_text(t: &str) -> String {
    t.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('{', "{{")
        .replace('}', "}}")
}

fn escape_attr_text(t: &str) -> String {
    t.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('"', "&quot;")
        .replace('{', "{{")
        .replace('}', "}}")
}

fn literal(v: &AtomicValue, out: &mut String) {
    match v {
        AtomicValue::String(s) => {
            out.push('"');
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\"\""),
                    '&' => out.push_str("&amp;"),
                    '<' => out.push_str("&lt;"),
                    _ => out.push(c),
                }
            }
            out.push('"');
        }
        AtomicValue::Integer(i) => out.push_str(&i.to_string()),
        AtomicValue::Decimal(d) => {
            let s = d.to_string();
            out.push_str(&s);
            if !s.contains('.') {
                out.push_str(".0"); // keep it a decimal literal
            }
        }
        AtomicValue::Double(d) => {
            out.push_str(&format!("{:e}", d));
        }
        AtomicValue::Boolean(b) => {
            out.push_str(if *b { "fn:true()" } else { "fn:false()" });
        }
        other => {
            // Everything else round-trips via a cast from its lexical form.
            out.push('"');
            out.push_str(&other.lexical());
            out.push_str("\" cast as ");
            out.push_str(other.atomic_type().xs_name());
        }
    }
}

fn binop(a: &Expr, op: &str, b: &Expr, out: &mut String) {
    paren(a, out);
    out.push(' ');
    out.push_str(op);
    out.push(' ');
    paren(b, out);
}

/// Print with parentheses when the sub-expression could bind differently.
fn paren(e: &Expr, out: &mut String) {
    let needs = !matches!(
        e,
        Expr::Literal(_)
            | Expr::VarRef(_)
            | Expr::ContextItem
            | Expr::Sequence(_)
            | Expr::FunctionCall { .. }
            | Expr::AxisStep { .. }
            | Expr::PathStep(..)
            | Expr::Root(_)
            | Expr::Filter(..)
            | Expr::DirectElem(_)
            | Expr::ExecuteAt { .. }
    );
    if needs {
        out.push('(');
        expr(e, out);
        out.push(')');
    } else {
        expr(e, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_main_module;

    /// Parse → print → parse must be a fixpoint on the AST.
    fn roundtrip(q: &str) {
        let m1 = parse_main_module(q).unwrap_or_else(|e| panic!("parse 1 `{q}`: {e}"));
        let printed = pretty_print(&m1.body);
        let m2 = parse_main_module(&printed).unwrap_or_else(|e| panic!("parse 2 `{printed}`: {e}"));
        let printed2 = pretty_print(&m2.body);
        assert_eq!(printed, printed2, "original: {q}");
    }

    #[test]
    fn roundtrip_core_expressions() {
        for q in [
            "1 + 2 * 3",
            "(1, 2, 3)",
            "for $x in (1 to 10) where $x mod 2 = 0 return $x * $x",
            "let $a := 5 return if ($a > 3) then \"big\" else \"small\"",
            "doc(\"f.xml\")//person[@id = \"p1\"]/name",
            "some $x in (1, 2) satisfies $x = 2",
            "<a b=\"{1 + 1}\">text {2} more</a>",
            "element foo {attribute bar {\"x\"}, text {\"y\"}}",
            "execute at {\"xrpc://y.example.org\"} {f:filmsByActor(\"Sean Connery\")}",
            "$x castable as xs:integer",
            "\"a\" cast as xs:string",
            "count((1, 2)) instance of xs:integer",
            "typeswitch (1) case xs:integer return \"i\" default return \"o\"",
            "delete nodes doc(\"x.xml\")//stale",
            "insert nodes <new/> as first into doc(\"x.xml\")/root",
            "replace value of node /a with \"v\"",
            "rename node /a as \"b\"",
            "/films/film[2]",
            "$seq[3]",
            "//closed_auction[buyer/@person = $pid]",
        ] {
            roundtrip(q);
        }
    }
}
