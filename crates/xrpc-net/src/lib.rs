//! Network substrate for XRPC: a minimal HTTP/1.1 implementation over
//! `std::net` TCP (the paper's peers speak SOAP over HTTP, served by an
//! "ultra-light HTTP daemon", §3) plus a *simulated* transport with a
//! configurable latency/bandwidth model, and a resilience layer
//! ([`ResilientTransport`]) adding typed errors, deadline/retry/backoff
//! and a per-destination circuit breaker on top of either transport.
//!
//! The simulated transport exists because the reproduction has no two
//! Athlon64 boxes on 1 Gb/s Ethernet: it makes the latency-amortization
//! shapes of Tables 2–4 deterministic, and lets the ablation benches sweep
//! LAN→WAN profiles (see DESIGN.md, substitution table). Its fault
//! injection (drop-request / drop-response / corrupt / latency spike /
//! crash-restart, all deterministic) is what the chaos tests drive.

pub mod breaker;
pub mod bufpool;
pub mod cancel;
pub mod http;
pub mod metrics;
pub mod poll;
pub mod pool;
pub mod reactor;
pub mod retry;
pub mod sim;

pub use breaker::{BreakerConfig, BreakerState, CircuitBreaker};
pub use bufpool::{BufferPool, PoolStats};
pub use cancel::{ambient_deadline, current_job, set_ambient_deadline, set_current_job, JobCancel};
pub use http::{http_post, HttpConfig, HttpServer, HttpTransport, ServerModel};
pub use metrics::NetMetrics;
pub use pool::ConnectionPool;
pub use retry::{dest_salt, full_jitter, DestStats, ResilientTransport, RetryPolicy};
pub use sim::{crash_points, CrashSwitch, NetProfile, SimFault, SimNetwork, SoapHandler};

use std::fmt;

/// What went wrong at the transport level — the typed refinement of the
/// paper's blanket "any error will cause a run-time error at the site
/// that originated the query" (§2.1). The kind decides retryability.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetErrorKind {
    /// The connection could not be established: no byte of the request
    /// was written, so the callee never saw it (send-side, unambiguous).
    ConnectionRefused,
    /// No response within the deadline. The request may or may not have
    /// been executed (response-side, ambiguous).
    Timeout,
    /// The connection dropped mid-exchange. Ambiguous like [`Timeout`].
    ConnectionReset,
    /// The response arrived but failed framing/integrity checks. The
    /// request *was* executed (response-side, ambiguous).
    Corrupt,
    /// The message exceeds a configured size bound; retrying the same
    /// payload cannot succeed.
    TooLarge,
    /// Anything else (bad URL, protocol violation, unknown peer, …);
    /// assumed non-transient.
    Other,
}

impl NetErrorKind {
    /// Whether a failure of this kind can ever be worth retrying
    /// (transient). Whether a *given call* may actually be retried also
    /// depends on its idempotency — see [`CallHint`] and
    /// [`retry::ResilientTransport`].
    pub fn retryable(&self) -> bool {
        matches!(
            self,
            NetErrorKind::ConnectionRefused
                | NetErrorKind::Timeout
                | NetErrorKind::ConnectionReset
                | NetErrorKind::Corrupt
        )
    }

    /// Whether the request provably never reached the callee (so a retry
    /// can never double-execute anything).
    pub fn send_side(&self) -> bool {
        matches!(self, NetErrorKind::ConnectionRefused)
    }
}

impl fmt::Display for NetErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            NetErrorKind::ConnectionRefused => "connection refused",
            NetErrorKind::Timeout => "timeout",
            NetErrorKind::ConnectionReset => "connection reset",
            NetErrorKind::Corrupt => "corrupt message",
            NetErrorKind::TooLarge => "message too large",
            NetErrorKind::Other => "error",
        };
        f.write_str(s)
    }
}

/// Transport-level failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetError {
    pub kind: NetErrorKind,
    pub message: String,
}

impl NetError {
    /// An untyped error ([`NetErrorKind::Other`], never retried).
    pub fn new(message: impl Into<String>) -> Self {
        NetError::with_kind(NetErrorKind::Other, message)
    }

    pub fn with_kind(kind: NetErrorKind, message: impl Into<String>) -> Self {
        NetError {
            kind,
            message: message.into(),
        }
    }

    pub fn retryable(&self) -> bool {
        self.kind.retryable()
    }
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "network error ({}): {}", self.kind, self.message)
    }
}

impl std::error::Error for NetError {}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        use std::io::ErrorKind as Io;
        let kind = match e.kind() {
            Io::ConnectionRefused => NetErrorKind::ConnectionRefused,
            // a read on a socket with SO_RCVTIMEO reports WouldBlock on
            // Unix and TimedOut on Windows
            Io::TimedOut | Io::WouldBlock => NetErrorKind::Timeout,
            Io::ConnectionReset | Io::ConnectionAborted | Io::BrokenPipe | Io::UnexpectedEof => {
                NetErrorKind::ConnectionReset
            }
            _ => NetErrorKind::Other,
        };
        NetError::with_kind(kind, e.to_string())
    }
}

/// Per-call idempotency hint consulted by [`ResilientTransport`]: what a
/// redelivered request would do at the callee.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallHint {
    /// Read-only XRPC request — redelivery is always safe.
    ReadOnly,
    /// Updating request applied immediately at the callee (rule RFu):
    /// redelivery after an *ambiguous* failure could double-apply the
    /// update, so only provably send-side failures may be retried.
    Update,
    /// Updating request whose ∆_q is deferred to 2PC commit (rule R'Fu):
    /// redelivery before Prepare merely rebuilds the same pending update
    /// list in the same snapshot, so it is safe.
    DeferredUpdate,
}

impl CallHint {
    /// May a call with this hint be resent after failing with `err`?
    pub fn may_retry(&self, err: &NetError) -> bool {
        match self {
            CallHint::ReadOnly | CallHint::DeferredUpdate => err.retryable(),
            CallHint::Update => err.kind.send_side(),
        }
    }
}

/// A request/response transport: POST `body` to `dest`, get the response
/// body back. Implementations: [`sim::SimNetwork`] (in-process),
/// [`http::HttpTransport`] (real TCP loopback) and
/// [`retry::ResilientTransport`] (decorator adding retry/backoff and
/// circuit breaking to any of the former).
pub trait Transport: Send + Sync {
    fn roundtrip(&self, dest: &str, body: &[u8]) -> Result<Vec<u8>, NetError>;

    /// Like [`roundtrip`](Self::roundtrip) but carrying the caller's
    /// idempotency hint. Base transports ignore the hint; decorators
    /// (retry layers) consult it. The default conservatively forwards to
    /// `roundtrip`.
    fn roundtrip_hinted(
        &self,
        dest: &str,
        body: &[u8],
        hint: CallHint,
    ) -> Result<Vec<u8>, NetError> {
        let _ = hint;
        self.roundtrip(dest, body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_error_kinds_map() {
        let cases = [
            (
                std::io::ErrorKind::ConnectionRefused,
                NetErrorKind::ConnectionRefused,
            ),
            (std::io::ErrorKind::TimedOut, NetErrorKind::Timeout),
            (std::io::ErrorKind::WouldBlock, NetErrorKind::Timeout),
            (
                std::io::ErrorKind::ConnectionReset,
                NetErrorKind::ConnectionReset,
            ),
            (
                std::io::ErrorKind::BrokenPipe,
                NetErrorKind::ConnectionReset,
            ),
            (
                std::io::ErrorKind::UnexpectedEof,
                NetErrorKind::ConnectionReset,
            ),
            (std::io::ErrorKind::NotFound, NetErrorKind::Other),
        ];
        for (io, net) in cases {
            let e: NetError = std::io::Error::new(io, "x").into();
            assert_eq!(e.kind, net, "{io:?}");
        }
    }

    #[test]
    fn retryability_matrix() {
        use NetErrorKind::*;
        for (kind, retryable, send_side) in [
            (ConnectionRefused, true, true),
            (Timeout, true, false),
            (ConnectionReset, true, false),
            (Corrupt, true, false),
            (TooLarge, false, false),
            (Other, false, false),
        ] {
            assert_eq!(kind.retryable(), retryable, "{kind:?}");
            assert_eq!(kind.send_side(), send_side, "{kind:?}");
        }
    }

    #[test]
    fn hint_gates_ambiguous_retries() {
        let refused = NetError::with_kind(NetErrorKind::ConnectionRefused, "x");
        let timeout = NetError::with_kind(NetErrorKind::Timeout, "x");
        let other = NetError::new("x");
        // read-only and deferred updates retry any transient failure
        for h in [CallHint::ReadOnly, CallHint::DeferredUpdate] {
            assert!(h.may_retry(&refused));
            assert!(h.may_retry(&timeout));
            assert!(!h.may_retry(&other));
        }
        // immediate updates retry only send-side failures
        assert!(CallHint::Update.may_retry(&refused));
        assert!(!CallHint::Update.may_retry(&timeout));
        assert!(!CallHint::Update.may_retry(&other));
    }

    #[test]
    fn untyped_error_is_other() {
        let e = NetError::new("legacy");
        assert_eq!(e.kind, NetErrorKind::Other);
        assert!(!e.retryable());
        assert!(e.to_string().contains("legacy"));
    }
}
