//! Network substrate for XRPC: a minimal HTTP/1.1 implementation over
//! `std::net` TCP (the paper's peers speak SOAP over HTTP, served by an
//! "ultra-light HTTP daemon", §3) plus a *simulated* transport with a
//! configurable latency/bandwidth model.
//!
//! The simulated transport exists because the reproduction has no two
//! Athlon64 boxes on 1 Gb/s Ethernet: it makes the latency-amortization
//! shapes of Tables 2–4 deterministic, and lets the ablation benches sweep
//! LAN→WAN profiles (see DESIGN.md, substitution table).

pub mod http;
pub mod metrics;
pub mod sim;

pub use http::{http_post, HttpServer};
pub use metrics::NetMetrics;
pub use sim::{NetProfile, SimNetwork};

use std::fmt;

/// Transport-level failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetError {
    pub message: String,
}

impl NetError {
    pub fn new(message: impl Into<String>) -> Self {
        NetError {
            message: message.into(),
        }
    }
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "network error: {}", self.message)
    }
}

impl std::error::Error for NetError {}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::new(e.to_string())
    }
}

/// A request/response transport: POST `body` to `dest`, get the response
/// body back. Implementations: [`sim::SimNetwork`] (in-process) and
/// [`http::HttpTransport`] (real TCP loopback).
pub trait Transport: Send + Sync {
    fn roundtrip(&self, dest: &str, body: &[u8]) -> Result<Vec<u8>, NetError>;
}
