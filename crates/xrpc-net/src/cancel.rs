//! Job-scoped cancellation plumbing between the reactor and the handler
//! stack.
//!
//! The reactor's worker threads run opaque `JobHandler` closures; the peer
//! runtime deep inside those closures needs two things the function
//! signature does not carry:
//!
//! * a **cancel flag** the reactor can flip when the job's connection dies
//!   or its deadline passes ([`JobCancel`]), bridged into the evaluator's
//!   `CancelToken` so cooperative checkpoints observe it; and
//! * an **ambient deadline** the retry layer can consult so backoff sleeps
//!   never outlive the caller's remaining budget.
//!
//! Both travel through thread-locals scoped by RAII guards: the worker
//! installs the job's [`JobCancel`] around the handler call, and the peer
//! client installs the query deadline around each transport round-trip.
//! Guards restore the previous value on drop, so nested scopes (a handler
//! that itself issues outbound calls) compose.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Shared cancellation state for one in-flight reactor job.
///
/// Created by the worker at dequeue, registered with the reactor's active
/// table so the sweep tick (and `close_conn`) can cancel it, and exposed to
/// the handler via [`current_job`]. The handler publishes the query's
/// deadline back through [`set_deadline`](JobCancel::set_deadline) so the
/// reactor can cancel over-deadline jobs even when the evaluator is stuck
/// between checkpoints.
#[derive(Debug)]
pub struct JobCancel {
    flag: Arc<AtomicBool>,
    deadline: Mutex<Option<Instant>>,
}

impl JobCancel {
    pub fn new() -> Arc<Self> {
        Arc::new(JobCancel {
            flag: Arc::new(AtomicBool::new(false)),
            deadline: Mutex::new(None),
        })
    }

    /// Flip the cancel flag. Idempotent; safe from any thread.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }

    /// The raw flag, for bridging into an evaluator-side token.
    pub fn flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.flag)
    }

    /// Publish the job's wall-clock deadline (set once the handler has
    /// parsed the request budget).
    pub fn set_deadline(&self, deadline: Option<Instant>) {
        *self.deadline.lock().unwrap() = deadline;
    }

    pub fn deadline(&self) -> Option<Instant> {
        *self.deadline.lock().unwrap()
    }

    /// True when a published deadline has passed.
    pub fn expired(&self) -> bool {
        self.deadline().is_some_and(|d| Instant::now() >= d)
    }
}

thread_local! {
    static CURRENT_JOB: RefCell<Option<Arc<JobCancel>>> = const { RefCell::new(None) };
    static AMBIENT_DEADLINE: RefCell<Option<Instant>> = const { RefCell::new(None) };
}

/// Install `job` as the thread's current job for the guard's lifetime.
pub fn set_current_job(job: Arc<JobCancel>) -> CurrentJobGuard {
    let prev = CURRENT_JOB.with(|c| c.replace(Some(job)));
    CurrentJobGuard { prev }
}

/// The job installed by the innermost [`set_current_job`] guard, if any.
pub fn current_job() -> Option<Arc<JobCancel>> {
    CURRENT_JOB.with(|c| c.borrow().clone())
}

pub struct CurrentJobGuard {
    prev: Option<Arc<JobCancel>>,
}

impl Drop for CurrentJobGuard {
    fn drop(&mut self) {
        let prev = self.prev.take();
        CURRENT_JOB.with(|c| *c.borrow_mut() = prev);
    }
}

/// Install a deadline the retry layer must not sleep past. `None` clears
/// any inherited deadline for the guard's scope.
pub fn set_ambient_deadline(deadline: Option<Instant>) -> AmbientDeadlineGuard {
    let prev = AMBIENT_DEADLINE.with(|c| c.replace(deadline));
    AmbientDeadlineGuard { prev }
}

/// The deadline installed by the innermost [`set_ambient_deadline`] guard.
pub fn ambient_deadline() -> Option<Instant> {
    AMBIENT_DEADLINE.with(|c| *c.borrow())
}

pub struct AmbientDeadlineGuard {
    prev: Option<Instant>,
}

impl Drop for AmbientDeadlineGuard {
    fn drop(&mut self) {
        let prev = self.prev.take();
        AMBIENT_DEADLINE.with(|c| *c.borrow_mut() = prev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn job_cancel_flag_and_deadline() {
        let job = JobCancel::new();
        assert!(!job.is_cancelled());
        assert!(!job.expired());
        assert_eq!(job.deadline(), None);

        let bridge = job.flag();
        job.cancel();
        assert!(job.is_cancelled());
        assert!(bridge.load(Ordering::Relaxed));

        job.set_deadline(Some(Instant::now() - Duration::from_millis(1)));
        assert!(job.expired());
        job.set_deadline(Some(Instant::now() + Duration::from_secs(60)));
        assert!(!job.expired());
    }

    #[test]
    fn current_job_guard_scopes_and_restores() {
        assert!(current_job().is_none());
        let outer = JobCancel::new();
        {
            let _g = set_current_job(Arc::clone(&outer));
            assert!(Arc::ptr_eq(&current_job().unwrap(), &outer));
            let inner = JobCancel::new();
            {
                let _g2 = set_current_job(Arc::clone(&inner));
                assert!(Arc::ptr_eq(&current_job().unwrap(), &inner));
            }
            assert!(Arc::ptr_eq(&current_job().unwrap(), &outer));
        }
        assert!(current_job().is_none());
    }

    #[test]
    fn ambient_deadline_guard_scopes_and_restores() {
        assert!(ambient_deadline().is_none());
        let d1 = Instant::now() + Duration::from_secs(5);
        let d2 = Instant::now() + Duration::from_secs(1);
        {
            let _g = set_ambient_deadline(Some(d1));
            assert_eq!(ambient_deadline(), Some(d1));
            {
                let _g2 = set_ambient_deadline(Some(d2));
                assert_eq!(ambient_deadline(), Some(d2));
            }
            assert_eq!(ambient_deadline(), Some(d1));
            {
                let _g3 = set_ambient_deadline(None);
                assert!(ambient_deadline().is_none());
            }
            assert_eq!(ambient_deadline(), Some(d1));
        }
        assert!(ambient_deadline().is_none());
    }
}
