//! Per-destination circuit breaker: after `failure_threshold` consecutive
//! failures the breaker *opens* and calls fail fast without touching the
//! wire; after `cooldown` it admits a single *half-open* probe whose
//! outcome either closes the breaker or re-opens it for another cooldown.
//!
//! The breaker is time-parameterized (`Instant` passed in) so unit tests
//! are deterministic without sleeping.

use std::time::{Duration, Instant};

/// Breaker tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct BreakerConfig {
    /// Consecutive failures that trip the breaker open.
    pub failure_threshold: u32,
    /// How long the breaker stays open before admitting a probe.
    pub cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 5,
            cooldown: Duration::from_secs(1),
        }
    }
}

/// Observable breaker state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Normal operation; failures are being counted.
    Closed,
    /// Failing fast; no requests reach the wire.
    Open,
    /// One probe request is in flight to test recovery.
    HalfOpen,
}

/// The state machine for one destination.
#[derive(Debug)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    state: BreakerState,
    consecutive_failures: u32,
    opened_at: Option<Instant>,
    probe_in_flight: bool,
}

impl CircuitBreaker {
    pub fn new(cfg: BreakerConfig) -> Self {
        CircuitBreaker {
            cfg,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            opened_at: None,
            probe_in_flight: false,
        }
    }

    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Gate a request at time `now`. Returns `true` if the request may
    /// proceed to the wire. While open, returns `false` until the
    /// cooldown elapses, then transitions to half-open and admits exactly
    /// one probe (concurrent callers keep failing fast until the probe
    /// resolves via [`on_success`](Self::on_success) /
    /// [`on_failure`](Self::on_failure)).
    pub fn allow(&mut self, now: Instant) -> bool {
        match self.state {
            BreakerState::Closed => true,
            BreakerState::Open => {
                let opened = self.opened_at.expect("open breaker has opened_at");
                if now.duration_since(opened) >= self.cfg.cooldown {
                    self.state = BreakerState::HalfOpen;
                    self.probe_in_flight = true;
                    true
                } else {
                    false
                }
            }
            BreakerState::HalfOpen => {
                if self.probe_in_flight {
                    false
                } else {
                    self.probe_in_flight = true;
                    true
                }
            }
        }
    }

    /// Record a successful round trip. Closes the breaker from half-open
    /// and resets the failure count.
    pub fn on_success(&mut self) {
        self.state = BreakerState::Closed;
        self.consecutive_failures = 0;
        self.opened_at = None;
        self.probe_in_flight = false;
    }

    /// Record a failed round trip at time `now`. Returns `true` when this
    /// failure *transitions* the breaker to open (for metrics).
    pub fn on_failure(&mut self, now: Instant) -> bool {
        match self.state {
            BreakerState::HalfOpen => {
                // failed probe: back to open, restart the cooldown
                self.state = BreakerState::Open;
                self.opened_at = Some(now);
                self.probe_in_flight = false;
                true
            }
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.cfg.failure_threshold {
                    self.state = BreakerState::Open;
                    self.opened_at = Some(now);
                    true
                } else {
                    false
                }
            }
            BreakerState::Open => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(threshold: u32, cooldown_ms: u64) -> BreakerConfig {
        BreakerConfig {
            failure_threshold: threshold,
            cooldown: Duration::from_millis(cooldown_ms),
        }
    }

    #[test]
    fn opens_after_threshold_consecutive_failures() {
        let t0 = Instant::now();
        let mut b = CircuitBreaker::new(cfg(3, 100));
        assert!(b.allow(t0));
        assert!(!b.on_failure(t0));
        assert!(!b.on_failure(t0));
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.on_failure(t0), "third failure must trip the breaker");
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allow(t0), "open breaker fails fast");
    }

    #[test]
    fn success_resets_failure_count() {
        let t0 = Instant::now();
        let mut b = CircuitBreaker::new(cfg(3, 100));
        b.on_failure(t0);
        b.on_failure(t0);
        b.on_success();
        b.on_failure(t0);
        b.on_failure(t0);
        assert_eq!(
            b.state(),
            BreakerState::Closed,
            "count must restart after success"
        );
    }

    #[test]
    fn half_open_probe_after_cooldown_then_close() {
        let t0 = Instant::now();
        let mut b = CircuitBreaker::new(cfg(1, 100));
        b.on_failure(t0);
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allow(t0 + Duration::from_millis(50)));
        // cooldown over: exactly one probe admitted
        assert!(b.allow(t0 + Duration::from_millis(150)));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(
            !b.allow(t0 + Duration::from_millis(151)),
            "second probe denied"
        );
        b.on_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.allow(t0 + Duration::from_millis(152)));
    }

    #[test]
    fn failed_probe_reopens_with_fresh_cooldown() {
        let t0 = Instant::now();
        let mut b = CircuitBreaker::new(cfg(1, 100));
        b.on_failure(t0);
        let probe_at = t0 + Duration::from_millis(120);
        assert!(b.allow(probe_at));
        assert!(b.on_failure(probe_at), "failed probe counts as a (re)open");
        assert_eq!(b.state(), BreakerState::Open);
        // cooldown restarts from the probe failure, not the original trip
        assert!(!b.allow(t0 + Duration::from_millis(180)));
        assert!(b.allow(probe_at + Duration::from_millis(120)));
    }
}
