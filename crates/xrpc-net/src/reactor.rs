//! The event-driven server core: one reactor thread multiplexing every
//! connection over epoll ([`crate::poll`]), a small fixed worker pool
//! evaluating requests, and a bounded dispatch channel between them —
//! thousands of keep-alive connections without a thread (or a 32 MiB
//! stack) per connection, and no 1 ms accept-loop busy-wait.
//!
//! Per connection the reactor runs three small state machines:
//!
//! * **read**: non-blocking reads feed an incremental HTTP parser that
//!   tolerates partial headers/bodies and recognizes pipelined requests
//!   (parsed requests queue per connection; responses go out in request
//!   order because at most one request per connection is in flight at
//!   the workers).
//! * **write**: responses queue as (head, body) pairs flushed with
//!   vectored writes on `EPOLLOUT`; bodies are recycled into the global
//!   [`BufferPool`] once written.
//! * **shed/drain**: an admission-refused connection gets `503`, a
//!   write-side FIN, and a deadline-bounded read drain — PR 3's
//!   half-close-and-drain contract, minus the helper thread.
//!
//! Admission control is backpressure-aware rather than a hard cap: new
//! connections (and ready requests) are shed with `503` when the
//! dispatch queue is full, when the worker-pool queue wait (EWMA of
//! parse-complete → handler-start latency, the
//! `xrpc_reactor_dispatch_micros` histogram) exceeds
//! [`HttpConfig::shed_wait`], or when `max_connections` (kept as a
//! compatibility bound; `0` = unlimited) is reached. Every decision is
//! visible: `sheds` counter, `active_connections` /
//! `accept_queue_depth` gauges, and the dispatch/wakeup histograms on
//! [`NetMetrics`].

use crate::bufpool::BufferPool;
use crate::cancel::JobCancel;
use crate::http::{response_head, Handler, HttpConfig};
use crate::metrics::NetMetrics;
use crate::poll::{listen_reuseaddr, Poller, Waker};
use std::collections::VecDeque;
use std::io::{self, IoSlice, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const TOKEN_LISTENER: u64 = u64::MAX;
const TOKEN_WAKER: u64 = u64::MAX - 1;
/// Reactor tick: upper bound on how stale a timeout sweep can be.
const TICK: Duration = Duration::from_millis(50);
/// Parsed-but-undispatched requests buffered per connection before the
/// reactor stops reading from it (pipelining bound).
const PIPELINE_MAX: usize = 32;
/// Header-section size cap (the threaded model bounds headers only by
/// the read timeout; the reactor buffers, so it bounds bytes too).
const MAX_HEAD_BYTES: usize = 32 * 1024;
/// How long a shed connection's read drain may run before the socket is
/// closed regardless (mirrors the threaded `reject_over_cap` deadline).
const DRAIN_DEADLINE: Duration = Duration::from_secs(5);

/// A fully parsed request waiting for a worker.
struct OwnedReq {
    path: String,
    body: Vec<u8>,
    keep_alive: bool,
}

/// Work item crossing to the worker pool.
struct Job {
    idx: usize,
    gen: u64,
    path: String,
    body: Vec<u8>,
    keep_alive: bool,
    enqueued: Instant,
}

/// A finished response crossing back to the reactor.
struct Done {
    idx: usize,
    gen: u64,
    status: u16,
    body: Vec<u8>,
    keep_alive: bool,
    finished: Instant,
}

/// Shared liveness/cancellation table between the reactor and the worker
/// pool.
///
/// * `live` mirrors the connection slab: `live[idx]` is the generation of
///   the connection currently occupying slot `idx` (0 = empty). A worker
///   consults it at dequeue so a job whose client vanished while queued is
///   dropped *before* evaluation (`jobs_orphaned`).
/// * `active` holds the [`JobCancel`] of every job currently inside a
///   handler, so the reactor's sweep tick can cancel over-deadline jobs
///   and `close_conn` can cancel a job the moment its connection dies —
///   cooperative checkpoints in the evaluator observe the flag and free
///   the worker (`jobs_cancelled`).
struct JobTable {
    live: Mutex<Vec<u64>>,
    active: Mutex<Vec<(usize, u64, Arc<JobCancel>)>>,
}

impl JobTable {
    fn new() -> Self {
        JobTable {
            live: Mutex::new(Vec::new()),
            active: Mutex::new(Vec::new()),
        }
    }

    fn set_live(&self, idx: usize, gen: u64) {
        let mut live = self.live.lock().unwrap();
        if live.len() <= idx {
            live.resize(idx + 1, 0);
        }
        live[idx] = gen;
    }

    fn is_live(&self, idx: usize, gen: u64) -> bool {
        self.live.lock().unwrap().get(idx).copied() == Some(gen)
    }

    fn register(&self, idx: usize, gen: u64, job: Arc<JobCancel>) {
        self.active.lock().unwrap().push((idx, gen, job));
    }

    fn deregister(&self, idx: usize, gen: u64) {
        self.active
            .lock()
            .unwrap()
            .retain(|(i, g, _)| !(*i == idx && *g == gen));
    }

    /// Connection gone: clear the slot and cancel any job still
    /// evaluating on its behalf.
    fn conn_closed(&self, idx: usize, gen: u64, metrics: &NetMetrics) {
        {
            let mut live = self.live.lock().unwrap();
            if live.get(idx).copied() == Some(gen) {
                live[idx] = 0;
            }
        }
        for (i, g, job) in self.active.lock().unwrap().iter() {
            if *i == idx && *g == gen && !job.is_cancelled() {
                job.cancel();
                metrics.record_job_cancelled();
            }
        }
    }

    /// Cancel every active job whose published deadline has passed.
    fn sweep_expired(&self, metrics: &NetMetrics) {
        for (_, _, job) in self.active.lock().unwrap().iter() {
            if !job.is_cancelled() && job.expired() {
                job.cancel();
                metrics.record_job_cancelled();
            }
        }
    }
}

/// One queued response: header + body flushed as a vectored pair.
struct WBuf {
    head: Vec<u8>,
    body: Vec<u8>,
    off: usize,
}

/// Incremental parse progress for the current request head.
#[derive(Default)]
struct ParseCursor {
    /// Bytes of `rbuf` already scanned for the header terminator.
    scanned: usize,
}

struct ReqHead {
    path: String,
    content_length: usize,
    keep_alive: bool,
    head_len: usize,
}

enum ParseStep {
    NeedMore,
    Request(OwnedReq),
    Bad(String),
    TooLarge(usize),
}

struct Conn {
    stream: TcpStream,
    gen: u64,
    rbuf: Vec<u8>,
    cursor: ParseCursor,
    head: Option<ReqHead>,
    pending: VecDeque<OwnedReq>,
    in_flight: bool,
    wbuf: VecDeque<WBuf>,
    /// Client half-closed its write side (EOF seen); finish in-flight
    /// work, then close.
    read_closed: bool,
    /// Close once the write queue drains (error responses, shutdown,
    /// `Connection: close`).
    close_after_flush: bool,
    /// Shed path: after flush, FIN the write side and discard reads
    /// until EOF or `drain_deadline`.
    shed: bool,
    draining_until: Option<Instant>,
    /// Whether this connection counts toward the admission gauge
    /// (shed connections never do).
    admitted: bool,
    /// Interest currently registered with epoll, to skip no-op ctls.
    interest: (bool, bool),
    last_activity: Instant,
    /// Last time a flush moved response bytes into the socket. A
    /// connection with a non-empty `wbuf` that makes no write progress
    /// for `read_timeout` (client stopped reading: write-side
    /// slow-loris) is closed by the sweep instead of leaking.
    last_write_progress: Instant,
    /// Deferred 400/413: emitted only after every request pipelined
    /// ahead of the protocol error has been answered, so responses stay
    /// in request order.
    pending_error: Option<(u16, Vec<u8>)>,
    /// Keep-alive decision for the response currently being written.
    cur_keep_alive: bool,
}

pub(crate) struct ReactorHandle {
    addr: std::net::SocketAddr,
    shutdown: Arc<AtomicBool>,
    force_stop: Arc<AtomicBool>,
    waker: Arc<Waker>,
    reactor: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    metrics: Arc<NetMetrics>,
}

impl ReactorHandle {
    pub(crate) fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    pub(crate) fn shutdown_graceful(&mut self, deadline: Duration) -> bool {
        self.shutdown.store(true, Ordering::SeqCst);
        self.waker.wake();
        let end = Instant::now() + deadline;
        while self.metrics.active_connections.load(Ordering::SeqCst) > 0 && Instant::now() < end {
            std::thread::sleep(Duration::from_millis(2));
        }
        let drained = self.metrics.active_connections.load(Ordering::SeqCst) == 0;
        self.force_stop.store(true, Ordering::SeqCst);
        self.waker.wake();
        if let Some(t) = self.reactor.take() {
            let _ = t.join();
        }
        // the reactor dropped the dispatch sender on exit, so workers
        // unblock from `recv`; join the ones that are done, detach any
        // straggler stuck in a long handler (same policy as the
        // threaded model)
        for w in std::mem::take(&mut self.workers) {
            if drained || w.is_finished() {
                let _ = w.join();
            }
        }
        drained
    }
}

pub(crate) fn bind(
    addr: &str,
    handler: Arc<Handler>,
    config: HttpConfig,
    metrics: Arc<NetMetrics>,
) -> io::Result<ReactorHandle> {
    let listener = match addr.parse::<std::net::SocketAddr>() {
        Ok(sa) => listen_reuseaddr(&sa)?,
        Err(_) => TcpListener::bind(addr)?,
    };
    listener.set_nonblocking(true)?;
    let local = listener.local_addr()?;
    let poller = Poller::new()?;
    poller.add(listener.as_raw_fd(), TOKEN_LISTENER, true, false)?;
    let waker = Arc::new(Waker::new(&poller, TOKEN_WAKER)?);

    let shutdown = Arc::new(AtomicBool::new(false));
    let force_stop = Arc::new(AtomicBool::new(false));
    let queue_cap = config.dispatch_queue.max(1);
    let (tx, rx) = std::sync::mpsc::sync_channel::<Job>(queue_cap);
    let rx = Arc::new(Mutex::new(rx));
    let done: Arc<Mutex<Vec<Done>>> = Arc::new(Mutex::new(Vec::new()));
    let queue_wait_ewma = Arc::new(AtomicU64::new(0));
    let jobs = Arc::new(JobTable::new());

    let n_workers = if config.reactor_workers > 0 {
        config.reactor_workers
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .max(4)
    };
    let mut workers = Vec::with_capacity(n_workers);
    for i in 0..n_workers {
        let rx = rx.clone();
        let done = done.clone();
        let waker = waker.clone();
        let handler = handler.clone();
        let metrics = metrics.clone();
        let ewma = queue_wait_ewma.clone();
        let jobs = jobs.clone();
        workers.push(
            std::thread::Builder::new()
                .name(format!("xrpc-worker-{local}-{i}"))
                // request handlers may evaluate deep queries: give them
                // room (see xqeval recursion cap)
                .stack_size(32 * 1024 * 1024)
                .spawn(move || worker_loop(&rx, &done, &waker, &handler, &metrics, &ewma, &jobs))
                .map_err(|e| io::Error::other(e.to_string()))?,
        );
    }

    let reactor = {
        let shutdown = shutdown.clone();
        let force_stop = force_stop.clone();
        let waker = waker.clone();
        let metrics = metrics.clone();
        let ewma = queue_wait_ewma.clone();
        std::thread::Builder::new()
            .name(format!("xrpc-reactor-{local}"))
            .spawn(move || {
                Reactor {
                    poller,
                    listener: Some(listener),
                    waker,
                    conns: Vec::new(),
                    free: Vec::new(),
                    tx,
                    done,
                    metrics,
                    config,
                    shutdown,
                    force_stop,
                    queue_wait_ewma: ewma,
                    queued: 0,
                    last_ewma_decay: Instant::now(),
                    gen_counter: 0,
                    jobs,
                }
                .run()
            })
            .map_err(|e| io::Error::other(e.to_string()))?
    };

    Ok(ReactorHandle {
        addr: local,
        shutdown,
        force_stop,
        waker,
        reactor: Some(reactor),
        workers,
        metrics,
    })
}

fn worker_loop(
    rx: &Mutex<Receiver<Job>>,
    done: &Mutex<Vec<Done>>,
    waker: &Waker,
    handler: &Arc<Handler>,
    metrics: &NetMetrics,
    queue_wait_ewma: &AtomicU64,
    jobs: &JobTable,
) {
    loop {
        // the guard is held across the blocking recv — only one idle
        // worker waits at a time, which is exactly what we want: a
        // single job wakes a single worker
        let job = match rx.lock() {
            Ok(g) => match g.recv() {
                Ok(j) => j,
                Err(_) => return, // reactor gone: shut down
            },
            Err(_) => return,
        };
        let wait = job.enqueued.elapsed();
        metrics.reactor_dispatch_micros.record_micros(wait);
        metrics.accept_queue_depth.fetch_sub(1, Ordering::Relaxed);
        ewma_record(
            queue_wait_ewma,
            wait.as_micros().min(u64::MAX as u128) as u64,
        );

        // Orphan check: the connection slot was reclaimed while this job
        // sat in the dispatch queue (client gone) — drop it before doing
        // any evaluation work. A stub Done still crosses back so the
        // reactor's `queued` accounting stays balanced; the generation
        // mismatch there discards it.
        if !jobs.is_live(job.idx, job.gen) {
            metrics.record_job_orphaned();
            BufferPool::global().put(job.body);
            match done.lock() {
                Ok(mut d) => d.push(Done {
                    idx: job.idx,
                    gen: job.gen,
                    status: 0,
                    body: Vec::new(),
                    keep_alive: false,
                    finished: Instant::now(),
                }),
                Err(_) => return,
            }
            waker.wake();
            continue;
        }

        // Expose a cancel handle for this job: the handler bridges it
        // into the evaluator's CancelToken (and publishes the request
        // deadline back), the reactor's sweep/close paths flip it.
        let cancel = JobCancel::new();
        jobs.register(job.idx, job.gen, cancel.clone());
        // re-check after registering: a close racing between the orphan
        // check and `register` would otherwise cancel nothing
        if !jobs.is_live(job.idx, job.gen) {
            cancel.cancel();
        }
        let guard = crate::cancel::set_current_job(cancel);
        let (status, resp) = handler(&job.path, &job.body);
        drop(guard);
        jobs.deregister(job.idx, job.gen);

        metrics.record(job.body.len(), resp.len());
        BufferPool::global().put(job.body);
        match done.lock() {
            Ok(mut d) => d.push(Done {
                idx: job.idx,
                gen: job.gen,
                status,
                body: resp,
                keep_alive: job.keep_alive,
                finished: Instant::now(),
            }),
            Err(_) => return,
        }
        waker.wake();
    }
}

struct Reactor {
    poller: Poller,
    listener: Option<TcpListener>,
    waker: Arc<Waker>,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    tx: SyncSender<Job>,
    done: Arc<Mutex<Vec<Done>>>,
    metrics: Arc<NetMetrics>,
    config: HttpConfig,
    shutdown: Arc<AtomicBool>,
    force_stop: Arc<AtomicBool>,
    queue_wait_ewma: Arc<AtomicU64>,
    /// Jobs enqueued to the dispatch channel and not yet picked up —
    /// the reactor-side view of channel occupancy.
    queued: usize,
    /// Last time the reactor fed a zero-wait decay sample into the EWMA
    /// (rate-limited to one per [`TICK`]).
    last_ewma_decay: Instant,
    gen_counter: u64,
    jobs: Arc<JobTable>,
}

impl Reactor {
    fn run(mut self) {
        let mut events = Vec::new();
        let mut listener_open = true;
        loop {
            if self.force_stop.load(Ordering::SeqCst) {
                break;
            }
            let shutting_down = self.shutdown.load(Ordering::SeqCst);
            if shutting_down && listener_open {
                if let Some(l) = self.listener.take() {
                    let _ = self.poller.delete(l.as_raw_fd());
                }
                listener_open = false;
                self.close_idle_for_shutdown();
            }
            if shutting_down && self.conns.iter().all(|c| c.is_none()) {
                break;
            }
            if self.poller.wait(&mut events, Some(TICK)).is_err() {
                break;
            }
            let drained_at = Instant::now();
            let mut woke = false;
            for &ev in &events {
                match ev.token {
                    TOKEN_LISTENER => self.accept_ready(),
                    TOKEN_WAKER => {
                        self.waker.drain();
                        woke = true;
                    }
                    token => self.conn_ready(
                        token as usize,
                        ev.readable,
                        ev.writable,
                        ev.hangup || ev.error,
                    ),
                }
            }
            // completions can arrive with or without the waker token
            // (it may coalesce); always drain the queue
            self.drain_done(drained_at);
            let _ = woke;
            // Workers only sample the EWMA when they dequeue a job, so a
            // quiet period after an overload would leave the admission
            // signal latched above `shed_wait` forever (shed connections
            // never enqueue — a self-sustaining outage). Whenever the
            // dispatch queue is observed empty, feed a zero-wait sample,
            // at most once per tick: the signal decays (×7/8 per TICK,
            // halving every ~350 ms) as soon as load subsides.
            if self.queued == 0 && self.last_ewma_decay.elapsed() >= TICK {
                ewma_record(&self.queue_wait_ewma, 0);
                self.last_ewma_decay = Instant::now();
            }
            self.sweep_timeouts();
            if self.shutdown.load(Ordering::SeqCst) {
                self.close_idle_for_shutdown();
            }
        }
        // reactor exit: release every remaining connection and let the
        // dispatch channel disconnect so workers unblock
        for idx in 0..self.conns.len() {
            if self.conns[idx].is_some() {
                self.close_conn(idx);
            }
        }
    }

    // ---- accept & admission -------------------------------------------

    fn accept_ready(&mut self) {
        loop {
            let Some(listener) = self.listener.as_ref() else {
                return;
            };
            match listener.accept() {
                Ok((stream, _)) => {
                    let _ = stream.set_nodelay(true);
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let over_cap = self.config.max_connections > 0
                        && self.metrics.active_connections.load(Ordering::Relaxed)
                            >= self.config.max_connections as u64;
                    let queue_full = self.queued >= self.config.dispatch_queue.max(1);
                    let wait_high = self.queue_wait_ewma.load(Ordering::Relaxed)
                        > self.config.shed_wait.as_micros() as u64;
                    if over_cap || queue_full || wait_high {
                        self.shed_new_conn(stream);
                        continue;
                    }
                    self.admit(stream);
                }
                Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(ref e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }

    fn alloc_slot(&mut self) -> usize {
        match self.free.pop() {
            Some(i) => i,
            None => {
                self.conns.push(None);
                self.conns.len() - 1
            }
        }
    }

    fn admit(&mut self, stream: TcpStream) {
        let idx = self.alloc_slot();
        let gen = self.next_gen();
        let fd = stream.as_raw_fd();
        let conn = Conn {
            stream,
            gen,
            rbuf: BufferPool::global().get(0),
            cursor: ParseCursor::default(),
            head: None,
            pending: VecDeque::new(),
            in_flight: false,
            wbuf: VecDeque::new(),
            read_closed: false,
            close_after_flush: false,
            shed: false,
            draining_until: None,
            admitted: true,
            interest: (true, false),
            last_activity: Instant::now(),
            last_write_progress: Instant::now(),
            pending_error: None,
            cur_keep_alive: true,
        };
        if self.poller.add(fd, idx as u64, true, false).is_err() {
            self.free.push(idx);
            return;
        }
        self.metrics
            .active_connections
            .fetch_add(1, Ordering::SeqCst);
        self.jobs.set_live(idx, gen);
        self.conns[idx] = Some(conn);
    }

    /// Admission refused: `503`, then half-close-and-drain. The
    /// connection occupies a slab slot (it must flush and drain) but
    /// never counts as active.
    fn shed_new_conn(&mut self, stream: TcpStream) {
        self.metrics.record_failure();
        self.metrics.record_shed();
        let idx = self.alloc_slot();
        let gen = self.next_gen();
        let fd = stream.as_raw_fd();
        let body = b"connection limit reached".to_vec();
        let head = response_head(503, body.len(), false).into_bytes();
        let mut conn = Conn {
            stream,
            gen,
            rbuf: Vec::new(),
            cursor: ParseCursor::default(),
            head: None,
            pending: VecDeque::new(),
            in_flight: false,
            wbuf: VecDeque::from([WBuf { head, body, off: 0 }]),
            read_closed: false,
            close_after_flush: true,
            shed: true,
            draining_until: None,
            admitted: false,
            interest: (false, true),
            last_activity: Instant::now(),
            last_write_progress: Instant::now(),
            pending_error: None,
            cur_keep_alive: false,
        };
        let _ = flush_wbuf(&mut conn);
        if conn.wbuf.is_empty() {
            // fast path: the 503 fit in the socket buffer; FIN and drain
            let _ = conn.stream.shutdown(std::net::Shutdown::Write);
            conn.draining_until = Some(Instant::now() + DRAIN_DEADLINE);
            conn.interest = (true, false);
        }
        let (r, w) = conn.interest;
        if self.poller.add(fd, idx as u64, r, w).is_err() {
            self.free.push(idx);
            return;
        }
        self.conns[idx] = Some(conn);
    }

    fn next_gen(&mut self) -> u64 {
        // monotonic, so a recycled slot never accepts a stale completion
        self.gen_counter += 1;
        self.gen_counter
    }

    // ---- readiness ----------------------------------------------------

    fn conn_ready(&mut self, idx: usize, readable: bool, writable: bool, hangup: bool) {
        let Some(conn) = self.conns.get_mut(idx).and_then(|c| c.as_mut()) else {
            return;
        };
        if writable && !flush_ok(conn) {
            self.close_conn(idx);
            return;
        }
        if readable || hangup {
            if conn.draining_until.is_some() {
                // shed drain: discard until EOF
                let mut sink = [0u8; 8192];
                loop {
                    match conn.stream.read(&mut sink) {
                        Ok(0) => {
                            self.close_conn(idx);
                            return;
                        }
                        Ok(_) => {}
                        Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(ref e) if e.kind() == io::ErrorKind::Interrupted => {}
                        Err(_) => {
                            self.close_conn(idx);
                            return;
                        }
                    }
                }
            } else if !self.read_and_parse(idx) {
                return; // connection closed inside
            }
        }
        self.after_progress(idx);
    }

    /// Pull bytes, run the incremental parser, queue complete requests.
    /// Returns false when the connection was closed.
    fn read_and_parse(&mut self, idx: usize) -> bool {
        let Some(conn) = self.conns.get_mut(idx).and_then(|c| c.as_mut()) else {
            return false;
        };
        if conn.close_after_flush || conn.read_closed || conn.pending_error.is_some() {
            return true;
        }
        let mut progressed = false;
        let mut eof = false;
        let mut chunk = [0u8; 16 * 1024];
        // bounded per round for fairness across connections
        for _ in 0..16 {
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    eof = true;
                    break;
                }
                Ok(n) => {
                    conn.rbuf.extend_from_slice(&chunk[..n]);
                    progressed = true;
                    if conn.pending.len() >= PIPELINE_MAX {
                        break;
                    }
                }
                Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(ref e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.close_conn(idx);
                    return false;
                }
            }
        }
        if progressed {
            conn.last_activity = Instant::now();
        }
        // parse every complete request sitting in the buffer
        loop {
            let conn = self.conns[idx].as_mut().unwrap();
            if conn.pending.len() >= PIPELINE_MAX {
                break;
            }
            match parse_step(conn, self.config.max_body_bytes) {
                ParseStep::NeedMore => break,
                ParseStep::Request(req) => {
                    conn.pending.push_back(req);
                }
                ParseStep::Bad(msg) => {
                    self.metrics.record_failure();
                    self.queue_error_response(idx, 400, msg.as_bytes());
                    break;
                }
                ParseStep::TooLarge(n) => {
                    self.metrics.record_failure();
                    let msg = format!(
                        "request body of {n} bytes exceeds limit of {} bytes",
                        self.config.max_body_bytes
                    );
                    self.queue_error_response(idx, 413, msg.as_bytes());
                    break;
                }
            }
        }
        let conn = self.conns[idx].as_mut().unwrap();
        if eof {
            conn.read_closed = true;
            if conn.rbuf.is_empty()
                && conn.pending.is_empty()
                && !conn.in_flight
                && conn.wbuf.is_empty()
                && conn.pending_error.is_none()
            {
                // clean client close between requests
                self.close_conn(idx);
                return false;
            }
            // half-close mid-body (truncated request): no response
            // possible for the partial request — drop it, but finish
            // whatever was already complete/in flight
            if conn.head.is_some() || !conn.rbuf.is_empty() {
                conn.rbuf.clear();
                conn.head = None;
                conn.cursor = ParseCursor::default();
                if conn.pending.is_empty()
                    && !conn.in_flight
                    && conn.wbuf.is_empty()
                    && conn.pending_error.is_none()
                {
                    self.close_conn(idx);
                    return false;
                }
            }
        }
        self.maybe_dispatch(idx);
        true
    }

    /// Protocol error (400/413): parsing stops and the connection will
    /// close, but valid requests already pipelined ahead of the error
    /// are still dispatched and answered first — the error response goes
    /// out last, keeping responses in request order per HTTP/1.1
    /// pipelining semantics.
    fn queue_error_response(&mut self, idx: usize, status: u16, msg: &[u8]) {
        let Some(conn) = self.conns.get_mut(idx).and_then(|c| c.as_mut()) else {
            return;
        };
        conn.rbuf.clear();
        conn.head = None;
        conn.cursor = ParseCursor::default();
        conn.pending_error = Some((status, msg.to_vec()));
        self.flush_pending_error(idx);
    }

    /// Emit the deferred protocol-error response once every request
    /// admitted before it has been answered, then close after flush.
    fn flush_pending_error(&mut self, idx: usize) {
        let Some(conn) = self.conns.get_mut(idx).and_then(|c| c.as_mut()) else {
            return;
        };
        if conn.pending_error.is_none() || conn.in_flight || !conn.pending.is_empty() {
            return;
        }
        let (status, msg) = conn.pending_error.take().unwrap();
        conn.close_after_flush = true;
        conn.cur_keep_alive = false;
        let head = response_head(status, msg.len(), false).into_bytes();
        conn.wbuf.push_back(WBuf {
            head,
            body: msg,
            off: 0,
        });
        if !flush_ok(conn) {
            self.close_conn(idx);
        }
    }

    /// Hand the next pending request to the workers (one in flight per
    /// connection keeps pipelined responses in request order).
    fn maybe_dispatch(&mut self, idx: usize) {
        let Some(conn) = self.conns.get_mut(idx).and_then(|c| c.as_mut()) else {
            return;
        };
        if conn.in_flight || conn.close_after_flush {
            return;
        }
        let Some(req) = conn.pending.pop_front() else {
            return;
        };
        let job = Job {
            idx,
            gen: conn.gen,
            path: req.path,
            body: req.body,
            keep_alive: req.keep_alive,
            enqueued: Instant::now(),
        };
        // count the job before publishing it: a worker may pick it up
        // (and decrement) the instant try_send returns, and a /metrics
        // scrape observing itself must not see the gauge at -1
        self.metrics
            .accept_queue_depth
            .fetch_add(1, Ordering::Relaxed);
        match self.tx.try_send(job) {
            Ok(()) => {
                conn.in_flight = true;
                self.queued += 1;
            }
            Err(TrySendError::Full(job)) => {
                // over-admission on a live connection: shed the request
                self.metrics
                    .accept_queue_depth
                    .fetch_sub(1, Ordering::Relaxed);
                BufferPool::global().put(job.body);
                self.metrics.record_shed();
                self.metrics.record_failure();
                self.shed_existing(idx);
            }
            Err(TrySendError::Disconnected(_)) => {
                self.metrics
                    .accept_queue_depth
                    .fetch_sub(1, Ordering::Relaxed);
                self.close_conn(idx);
            }
        }
    }

    /// Turn an admitted connection into the shed path: 503, FIN, drain.
    fn shed_existing(&mut self, idx: usize) {
        let Some(conn) = self.conns.get_mut(idx).and_then(|c| c.as_mut()) else {
            return;
        };
        conn.pending.clear();
        conn.rbuf.clear();
        conn.head = None;
        conn.cursor = ParseCursor::default();
        conn.pending_error = None;
        conn.close_after_flush = true;
        conn.shed = true;
        conn.cur_keep_alive = false;
        let body = b"service overloaded, request shed".to_vec();
        let head = response_head(503, body.len(), false).into_bytes();
        conn.wbuf.push_back(WBuf { head, body, off: 0 });
        if !flush_ok(conn) {
            self.close_conn(idx);
        }
    }

    // ---- completions ---------------------------------------------------

    fn drain_done(&mut self, drained_at: Instant) {
        let batch: Vec<Done> = match self.done.lock() {
            Ok(mut d) => std::mem::take(&mut *d),
            Err(_) => return,
        };
        for d in batch {
            self.queued = self.queued.saturating_sub(1);
            self.metrics
                .reactor_wakeup_micros
                .record_micros(drained_at.saturating_duration_since(d.finished));
            let Some(conn) = self.conns.get_mut(d.idx).and_then(|c| c.as_mut()) else {
                BufferPool::global().put(d.body);
                continue;
            };
            if conn.gen != d.gen {
                BufferPool::global().put(d.body);
                continue;
            }
            conn.in_flight = false;
            conn.last_activity = Instant::now();
            let keep_alive =
                d.keep_alive && !conn.close_after_flush && !self.shutdown.load(Ordering::SeqCst);
            conn.cur_keep_alive = keep_alive;
            if !keep_alive {
                conn.close_after_flush = true;
            }
            let head = response_head(d.status, d.body.len(), keep_alive).into_bytes();
            conn.wbuf.push_back(WBuf {
                head,
                body: d.body,
                off: 0,
            });
            if !flush_ok(conn) {
                self.close_conn(d.idx);
                continue;
            }
            self.maybe_dispatch(d.idx);
            self.after_progress(d.idx);
        }
    }

    // ---- lifecycle ----------------------------------------------------

    /// Recompute the connection's state after any progress: emit a
    /// deferred protocol error once it's next in line, transition
    /// fully-flushed closing connections, re-arm epoll interest.
    fn after_progress(&mut self, idx: usize) {
        self.flush_pending_error(idx);
        let Some(conn) = self.conns.get_mut(idx).and_then(|c| c.as_mut()) else {
            return;
        };
        if conn.wbuf.is_empty() && conn.close_after_flush && conn.draining_until.is_none() {
            if conn.shed {
                // response delivered; FIN, then drain until the client
                // closes so it reliably reads the 503 (not ECONNRESET)
                let _ = conn.stream.shutdown(std::net::Shutdown::Write);
                conn.draining_until = Some(Instant::now() + DRAIN_DEADLINE);
            } else {
                self.close_conn(idx);
                return;
            }
        }
        let conn = self.conns[idx].as_mut().unwrap();
        if conn.read_closed && conn.wbuf.is_empty() && conn.pending.is_empty() && !conn.in_flight {
            self.close_conn(idx);
            return;
        }
        let conn = self.conns[idx].as_mut().unwrap();
        let want_read = if conn.draining_until.is_some() {
            true
        } else {
            !conn.read_closed
                && !conn.close_after_flush
                && conn.pending_error.is_none()
                && conn.pending.len() < PIPELINE_MAX
        };
        let want_write = !conn.wbuf.is_empty();
        if conn.interest != (want_read, want_write) {
            let fd = conn.stream.as_raw_fd();
            if self
                .poller
                .modify(fd, idx as u64, want_read, want_write)
                .is_ok()
            {
                conn.interest = (want_read, want_write);
            }
        }
    }

    fn close_conn(&mut self, idx: usize) {
        if let Some(conn) = self.conns.get_mut(idx).and_then(|c| c.take()) {
            // cancel any in-flight evaluation for this connection right
            // away (fast time-to-cancel on client death), and mark the
            // slot dead so queued jobs are orphaned at dequeue
            self.jobs.conn_closed(idx, conn.gen, &self.metrics);
            let _ = self.poller.delete(conn.stream.as_raw_fd());
            if conn.admitted {
                self.metrics
                    .active_connections
                    .fetch_sub(1, Ordering::SeqCst);
            }
            BufferPool::global().put(conn.rbuf);
            for wb in conn.wbuf {
                BufferPool::global().put(wb.body);
            }
            for req in conn.pending {
                BufferPool::global().put(req.body);
            }
            self.free.push(idx);
            // stream drops → close(2)
        }
    }

    fn sweep_timeouts(&mut self) {
        // cancel in-flight jobs whose published query deadline passed —
        // the backstop for budgets the handler itself fails to observe
        self.jobs.sweep_expired(&self.metrics);
        let now = Instant::now();
        let timeout = self.config.read_timeout;
        for idx in 0..self.conns.len() {
            let Some(conn) = self.conns[idx].as_ref() else {
                continue;
            };
            if let Some(deadline) = conn.draining_until {
                if now >= deadline {
                    self.close_conn(idx);
                }
                continue;
            }
            // write-side slow-loris: a queued response the client won't
            // read would otherwise exempt the connection from every
            // timeout (non-idle, not draining) — it held a slab slot and
            // an active_connections count forever, blocking admission
            // capacity and graceful-shutdown drain detection
            if !conn.wbuf.is_empty()
                && now.saturating_duration_since(conn.last_write_progress) >= timeout
            {
                self.close_conn(idx);
                continue;
            }
            // slow-loris (partial request) and idle keep-alive both get
            // the read timeout, then a clean close — the threaded model
            // surfaced the same as a timeout error and dropped the
            // connection without a response
            let idle = !conn.in_flight && conn.pending.is_empty() && conn.wbuf.is_empty();
            if idle && now.saturating_duration_since(conn.last_activity) >= timeout {
                self.close_conn(idx);
            }
        }
    }

    fn close_idle_for_shutdown(&mut self) {
        for idx in 0..self.conns.len() {
            let Some(conn) = self.conns[idx].as_ref() else {
                continue;
            };
            let idle = !conn.in_flight
                && conn.pending.is_empty()
                && conn.wbuf.is_empty()
                && conn.head.is_none()
                && conn.rbuf.is_empty()
                && conn.draining_until.is_none();
            if idle {
                self.close_conn(idx);
            }
        }
    }
}

/// One EWMA step (α = 1/8) on the queue-wait admission signal. A CAS
/// loop, because workers race each other (and the reactor's decay
/// ticks) on the same cell — a plain load/store pair loses updates, and
/// a lost decay can delay recovery from a shed storm.
fn ewma_record(ewma: &AtomicU64, sample_micros: u64) {
    let _ = ewma.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |prev| {
        let next = prev - prev / 8 + sample_micros / 8;
        // integer floor: prev < 8 would otherwise never decay to zero
        Some(if next == prev && sample_micros < prev {
            prev - 1
        } else {
            next
        })
    });
}

/// Flush as much of the write queue as the socket accepts. `Ok(())`
/// means "made progress or would block"; an error means the connection
/// is dead.
fn flush_wbuf(conn: &mut Conn) -> io::Result<()> {
    while let Some(front) = conn.wbuf.front_mut() {
        let total = front.head.len() + front.body.len();
        let n = if front.off < front.head.len() {
            conn.stream.write_vectored(&[
                IoSlice::new(&front.head[front.off..]),
                IoSlice::new(&front.body),
            ])
        } else {
            conn.stream
                .write(&front.body[front.off - front.head.len()..])
        };
        match n {
            Ok(0) => return Err(io::Error::new(io::ErrorKind::WriteZero, "write zero")),
            Ok(n) => {
                front.off += n;
                conn.last_write_progress = Instant::now();
                if front.off >= total {
                    let wb = conn.wbuf.pop_front().unwrap();
                    BufferPool::global().put(wb.body);
                }
            }
            Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
            Err(ref e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let _ = conn.stream.flush();
    Ok(())
}

fn flush_ok(conn: &mut Conn) -> bool {
    flush_wbuf(conn).is_ok()
}

/// One incremental parse step over the connection's read buffer.
fn parse_step(conn: &mut Conn, max_body_bytes: usize) -> ParseStep {
    if conn.head.is_none() {
        if conn.rbuf.is_empty() {
            return ParseStep::NeedMore;
        }
        let start = conn.cursor.scanned.saturating_sub(3);
        let Some(pos) = find_header_end(&conn.rbuf, start) else {
            conn.cursor.scanned = conn.rbuf.len();
            if conn.rbuf.len() > MAX_HEAD_BYTES {
                return ParseStep::Bad("request headers too large".to_string());
            }
            return ParseStep::NeedMore;
        };
        let head_len = pos + 4;
        match parse_head(&conn.rbuf[..pos]) {
            Ok(mut h) => {
                h.head_len = head_len;
                if h.content_length > max_body_bytes {
                    return ParseStep::TooLarge(h.content_length);
                }
                conn.head = Some(h);
                conn.cursor = ParseCursor::default();
            }
            Err(msg) => return ParseStep::Bad(msg),
        }
    }
    let head = conn.head.as_ref().unwrap();
    let total = head.head_len + head.content_length;
    if conn.rbuf.len() < total {
        return ParseStep::NeedMore;
    }
    let head = conn.head.take().unwrap();
    let mut body = BufferPool::global().get(head.content_length);
    body.extend_from_slice(&conn.rbuf[head.head_len..total]);
    conn.rbuf.drain(..total);
    conn.cursor = ParseCursor::default();
    ParseStep::Request(OwnedReq {
        path: head.path,
        body,
        keep_alive: head.keep_alive,
    })
}

fn find_header_end(buf: &[u8], from: usize) -> Option<usize> {
    if buf.len() < 4 {
        return None;
    }
    (from..=buf.len() - 4).find(|&i| &buf[i..i + 4] == b"\r\n\r\n")
}

/// Parse request line + headers from the header section (no trailing
/// blank line). Mirrors the threaded `read_request` rules exactly:
/// POST/GET only, `HTTP/` version required, `Content-Length` must be a
/// number, `Connection` overrides the HTTP/1.1 keep-alive default.
fn parse_head(head: &[u8]) -> Result<ReqHead, String> {
    let mut lines = head.split(|&b| b == b'\n').map(|l| {
        let l = if l.last() == Some(&b'\r') {
            &l[..l.len() - 1]
        } else {
            l
        };
        String::from_utf8_lossy(l)
    });
    let req_line = lines.next().unwrap_or_default();
    let mut parts = req_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = match parts.next() {
        Some(p) => p.to_string(),
        None => return Err(format!("malformed request line `{}`", req_line.trim_end())),
    };
    let version = parts.next().unwrap_or("");
    if method != "POST" && method != "GET" {
        return Err(format!("unsupported method `{method}`"));
    }
    if !version.starts_with("HTTP/") {
        return Err(format!("malformed request line `{}`", req_line.trim_end()));
    }
    let mut content_length = 0usize;
    let mut keep_alive = version == "HTTP/1.1";
    for line in lines {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some((k, v)) = line.split_once(':') {
            let k = k.trim().to_ascii_lowercase();
            let v = v.trim();
            if k == "content-length" {
                content_length = v.parse().map_err(|_| "bad Content-Length".to_string())?;
            } else if k == "connection" {
                keep_alive = v.eq_ignore_ascii_case("keep-alive");
            }
        }
    }
    Ok(ReqHead {
        path,
        content_length,
        keep_alive,
        head_len: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conn_for(buf: &[u8]) -> Conn {
        // a loopback socket pair just to satisfy the struct; the parser
        // never touches it
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        let stream = TcpStream::connect(l.local_addr().unwrap()).unwrap();
        Conn {
            stream,
            gen: 0,
            rbuf: buf.to_vec(),
            cursor: ParseCursor::default(),
            head: None,
            pending: VecDeque::new(),
            in_flight: false,
            wbuf: VecDeque::new(),
            read_closed: false,
            close_after_flush: false,
            shed: false,
            draining_until: None,
            admitted: true,
            interest: (true, false),
            last_activity: Instant::now(),
            last_write_progress: Instant::now(),
            pending_error: None,
            cur_keep_alive: true,
        }
    }

    #[test]
    fn ewma_decays_to_zero_on_zero_samples() {
        let ewma = AtomicU64::new(0);
        // drive the signal above a 2s shed threshold
        for _ in 0..64 {
            ewma_record(&ewma, 5_000_000);
        }
        assert!(ewma.load(Ordering::Relaxed) > 2_000_000);
        // zero-wait decay samples (what the reactor feeds each idle
        // tick) must bring it all the way back down — including through
        // the integer-division floor at small values
        let mut steps = 0;
        while ewma.load(Ordering::Relaxed) > 0 {
            ewma_record(&ewma, 0);
            steps += 1;
            assert!(steps < 10_000, "EWMA never reached zero");
        }
        // ×7/8 per step: well under a couple hundred steps from 5s
        assert!(steps < 500, "decay too slow: {steps} steps");
    }

    #[test]
    fn incremental_parse_partial_then_complete() {
        let full = b"POST /x HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello";
        // feed byte by byte: never a spurious completion, exactly one at
        // the end
        for cut in 1..full.len() {
            let mut c = conn_for(&full[..cut]);
            match parse_step(&mut c, 1 << 20) {
                ParseStep::NeedMore => {}
                _ => panic!("prefix of {cut} bytes must be incomplete"),
            }
        }
        let mut c = conn_for(full);
        match parse_step(&mut c, 1 << 20) {
            ParseStep::Request(r) => {
                assert_eq!(r.path, "/x");
                assert_eq!(r.body, b"hello");
                assert!(r.keep_alive);
            }
            _ => panic!("complete request must parse"),
        }
        assert!(c.rbuf.is_empty());
    }

    #[test]
    fn pipelined_requests_parse_in_order() {
        let two = b"POST /a HTTP/1.1\r\nContent-Length: 3\r\n\r\nonePOST /b HTTP/1.1\r\nContent-Length: 3\r\n\r\ntwo";
        let mut c = conn_for(two);
        let ParseStep::Request(r1) = parse_step(&mut c, 1 << 20) else {
            panic!("first request");
        };
        let ParseStep::Request(r2) = parse_step(&mut c, 1 << 20) else {
            panic!("second request");
        };
        assert_eq!((r1.path.as_str(), &r1.body[..]), ("/a", &b"one"[..]));
        assert_eq!((r2.path.as_str(), &r2.body[..]), ("/b", &b"two"[..]));
        assert!(matches!(parse_step(&mut c, 1 << 20), ParseStep::NeedMore));
    }

    #[test]
    fn bad_method_and_oversize_detected() {
        let mut c = conn_for(b"DELETE /x HTTP/1.1\r\n\r\n");
        assert!(matches!(parse_step(&mut c, 1 << 20), ParseStep::Bad(_)));
        let mut c = conn_for(b"POST /x HTTP/1.1\r\nContent-Length: 999999\r\n\r\n");
        assert!(matches!(
            parse_step(&mut c, 1024),
            ParseStep::TooLarge(999999)
        ));
        let mut c = conn_for(b"POST /x HTTP/1.1\r\nContent-Length: banana\r\n\r\n");
        assert!(matches!(parse_step(&mut c, 1 << 20), ParseStep::Bad(_)));
    }

    #[test]
    fn connection_close_header_respected() {
        let mut c = conn_for(b"POST /x HTTP/1.1\r\nConnection: close\r\nContent-Length: 0\r\n\r\n");
        let ParseStep::Request(r) = parse_step(&mut c, 1 << 20) else {
            panic!("must parse");
        };
        assert!(!r.keep_alive);
        let mut c = conn_for(b"POST /x HTTP/1.0\r\nContent-Length: 0\r\n\r\n");
        let ParseStep::Request(r) = parse_step(&mut c, 1 << 20) else {
            panic!("must parse");
        };
        assert!(!r.keep_alive, "HTTP/1.0 defaults to close");
    }
}
