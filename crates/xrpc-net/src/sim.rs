//! The simulated network: in-process peers joined by links with a
//! configurable one-way latency and bandwidth, plus deterministic fault
//! injection.
//!
//! Cost model per round trip (both directions):
//! `2·latency + request_bytes/bandwidth + response_bytes/bandwidth`,
//! realized by actually sleeping, so wall-clock benchmark numbers carry
//! the same latency-amortization signal as the paper's testbed.
//!
//! Fault injection is a per-peer FIFO script ([`SimFault`]): each round
//! trip to a peer consumes the next scheduled fault, making chaos tests
//! fully deterministic. Crucially, the script distinguishes *drop-request*
//! (the handler never ran) from *drop-response* (the handler ran, the
//! caller cannot know) — the ambiguity that decides retry safety for
//! updating calls. Peers can also be crashed and restarted wholesale.

use crate::metrics::NetMetrics;
use crate::{NetError, NetErrorKind, Transport};
use parking_lot::{Mutex, RwLock};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Link characteristics.
#[derive(Clone, Copy, Debug)]
pub struct NetProfile {
    pub one_way_latency: Duration,
    /// Bytes per second; `None` = infinite.
    pub bandwidth_bytes_per_sec: Option<u64>,
}

impl NetProfile {
    /// Zero-cost link (pure in-process call).
    pub fn instant() -> Self {
        NetProfile {
            one_way_latency: Duration::ZERO,
            bandwidth_bytes_per_sec: None,
        }
    }

    /// The paper's testbed: 1 Gb/s Ethernet LAN, sub-millisecond latency.
    pub fn lan() -> Self {
        NetProfile {
            one_way_latency: Duration::from_micros(500),
            bandwidth_bytes_per_sec: Some(125_000_000), // 1 Gb/s
        }
    }

    /// A WAN-ish profile for the ablation sweeps.
    pub fn wan() -> Self {
        NetProfile {
            one_way_latency: Duration::from_millis(25),
            bandwidth_bytes_per_sec: Some(12_500_000), // 100 Mb/s
        }
    }

    pub fn with_latency(latency: Duration) -> Self {
        NetProfile {
            one_way_latency: latency,
            bandwidth_bytes_per_sec: Some(125_000_000),
        }
    }

    fn transfer_cost(&self, bytes: usize) -> Duration {
        let mut d = self.one_way_latency;
        if let Some(bw) = self.bandwidth_bytes_per_sec {
            d += Duration::from_secs_f64(bytes as f64 / bw as f64);
        }
        d
    }
}

/// One scheduled fault on the link to a peer (consumed FIFO, one per
/// round trip).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimFault {
    /// The request is lost before reaching the peer: the handler does
    /// NOT run; the caller sees [`NetErrorKind::Timeout`].
    DropRequest,
    /// The response is lost on the way back: the handler DID run; the
    /// caller sees the same [`NetErrorKind::Timeout`] — indistinguishable
    /// from [`SimFault::DropRequest`] at the call site, which is exactly
    /// the ambiguity updating calls must respect.
    DropResponse,
    /// The connection is refused before any byte is written: the handler
    /// does not run; the caller sees [`NetErrorKind::ConnectionRefused`]
    /// (send-side, unambiguous — always safe to retry).
    Refuse,
    /// The response arrives damaged: the handler DID run; the caller sees
    /// [`NetErrorKind::Corrupt`] (detected by the framing layer).
    CorruptResponse,
    /// The round trip succeeds but costs this much extra wall-clock time.
    LatencySpike(Duration),
}

/// A registered peer endpoint: raw SOAP bytes in, raw SOAP bytes out.
pub type SoapHandler = Arc<dyn Fn(&[u8]) -> Vec<u8> + Send + Sync>;

/// Named crash *points* inside a peer's 2PC handling — deterministic
/// process-death injection at protocol-critical instants, not just
/// whole-peer [`SimNetwork::crash`]. The peer code consults its attached
/// [`CrashSwitch`] at each point; the sim suppresses the in-flight
/// response when the switch trips mid-request (the caller sees a timeout,
/// exactly the ambiguity a real crash produces).
pub mod crash_points {
    /// Participant dies after deciding to prepare but *before* forcing
    /// the Prepared record: nothing durable, no ack — presumed abort.
    pub const BEFORE_PREPARE_LOG: &str = "participant:before-prepare-log";
    /// Participant dies right after its Prepare ack is delivered: the
    /// coordinator proceeds to commit while the participant is down with
    /// only its WAL to remember the promise.
    pub const AFTER_PREPARE_ACK: &str = "participant:after-prepare-ack";
    /// Participant dies after forcing the decision record but before
    /// applying ∆_q: recovery must re-apply from the log.
    pub const AFTER_DECISION_LOG: &str = "participant:after-decision-receipt-before-apply";
    /// Coordinator dies after unanimous prepare but *before* forcing the
    /// commit record: no decision exists — participants must presume
    /// abort when they inquire.
    pub const COORD_BEFORE_COMMIT_LOG: &str = "coordinator:before-commit-log";
    /// Coordinator dies after forcing the commit record but before any
    /// Commit delivery: participants stay prepared until the restarted
    /// coordinator redelivers (or they inquire).
    pub const COORD_AFTER_COMMIT_LOG: &str = "coordinator:after-commit-log-before-delivery";
    /// Participant dies after applying a committed ∆_q but before forcing
    /// the `Applied` marker: the log still says "committed, unapplied" —
    /// only the applied-LSN mark stops recovery from applying ∆_q twice.
    pub const AFTER_APPLY_BEFORE_MARKER: &str = "participant:after-apply-before-marker";
    /// Appender dies inside group commit, after its record is written but
    /// before the batch leader's fsync: the record may or may not survive
    /// — exactly the torn-tail ambiguity replay must absorb.
    pub const WAL_GROUP_FSYNC: &str = "wal:group-commit-before-fsync";
    /// Peer dies mid-rotation: the copy-forward segment is on disk but
    /// the previous generation has not been reclaimed — replay sees both
    /// and must deduplicate by LSN.
    pub const WAL_MID_ROTATION: &str = "wal:mid-rotation-before-reclaim";
}

/// A deterministic kill switch shared between a peer and the sim network.
///
/// Chaos tests `arm` a named point; when the instrumented code reaches it
/// ([`hit`](Self::hit)) the switch flips to *down*: the request dies
/// mid-handling (the sim drops the would-be response) and every later
/// request is refused until [`revive`](Self::revive) — the test's stand-in
/// for restarting the process. [`hit_after`](Self::hit_after) models dying
/// *after* the response left the socket: the in-flight reply is delivered,
/// only subsequent requests are refused.
#[derive(Default)]
pub struct CrashSwitch {
    armed: Mutex<Vec<String>>,
    down: AtomicBool,
    /// Monotone count of mid-request deaths; the sim compares before/after
    /// a handler run to decide whether to suppress the response.
    trips: AtomicU64,
}

impl CrashSwitch {
    pub fn new() -> Arc<Self> {
        Arc::new(CrashSwitch::default())
    }

    /// Arm `point`: the next time instrumented code reaches it, die there.
    pub fn arm(&self, point: &str) {
        self.armed.lock().push(point.to_string());
    }

    fn disarm(&self, point: &str) -> bool {
        let mut armed = self.armed.lock();
        match armed.iter().position(|p| p == point) {
            Some(i) => {
                armed.remove(i);
                true
            }
            None => false,
        }
    }

    /// Instrumentation: die *now* (mid-request) if `point` is armed.
    /// Returns true when the caller should abandon the request — the sim
    /// will suppress whatever response it produces.
    pub fn hit(&self, point: &str) -> bool {
        if self.disarm(point) {
            self.down.store(true, Ordering::SeqCst);
            self.trips.fetch_add(1, Ordering::SeqCst);
            true
        } else {
            false
        }
    }

    /// Instrumentation: die *after* the current response is delivered if
    /// `point` is armed (the response goes out; later requests refuse).
    pub fn hit_after(&self, point: &str) -> bool {
        if self.disarm(point) {
            self.down.store(true, Ordering::SeqCst);
            true
        } else {
            false
        }
    }

    pub fn is_down(&self) -> bool {
        self.down.load(Ordering::SeqCst)
    }

    /// The process restarts: accept requests again. Armed points survive
    /// a revive (a schedule may crash the same peer at a later point too).
    pub fn revive(&self) {
        self.down.store(false, Ordering::SeqCst);
    }

    pub fn trips(&self) -> u64 {
        self.trips.load(Ordering::SeqCst)
    }
}

struct PeerEntry {
    handler: SoapHandler,
    /// Legacy fault injection: fail the next `n` requests with an
    /// untyped (non-retryable) error before reaching the handler.
    fail_next: AtomicU32,
    /// Scripted faults, consumed one per round trip.
    faults: Mutex<VecDeque<SimFault>>,
    /// Crashed peers refuse connections until restarted.
    down: AtomicBool,
    /// How many times the handler actually ran (lets chaos tests tell
    /// drop-request from drop-response and prove exactly-once effects).
    handled: AtomicU64,
    /// Optional crash-point switch shared with the peer's handler.
    switch: Mutex<Option<Arc<CrashSwitch>>>,
}

/// An in-process network of named peers.
#[derive(Default)]
pub struct SimNetwork {
    peers: RwLock<HashMap<String, Arc<PeerEntry>>>,
    profile: RwLock<NetProfile>,
    pub metrics: Arc<NetMetrics>,
}

impl SimNetwork {
    pub fn new(profile: NetProfile) -> Self {
        SimNetwork {
            peers: RwLock::new(HashMap::new()),
            profile: RwLock::new(profile),
            metrics: Arc::new(NetMetrics::new()),
        }
    }

    /// Register a peer under a destination URI (e.g. `xrpc://y.example.org`).
    pub fn register(&self, dest: impl Into<String>, handler: SoapHandler) {
        self.peers.write().insert(
            dest.into(),
            Arc::new(PeerEntry {
                handler,
                fail_next: AtomicU32::new(0),
                faults: Mutex::new(VecDeque::new()),
                down: AtomicBool::new(false),
                handled: AtomicU64::new(0),
                switch: Mutex::new(None),
            }),
        );
    }

    pub fn set_profile(&self, profile: NetProfile) {
        *self.profile.write() = profile;
    }

    pub fn profile(&self) -> NetProfile {
        *self.profile.read()
    }

    /// Make the next `n` requests to `dest` fail with an untyped,
    /// *non-retryable* error (legacy link fault injection; use
    /// [`inject_fault`](Self::inject_fault) for typed faults).
    pub fn inject_failures(&self, dest: &str, n: u32) {
        if let Some(p) = self.peers.read().get(dest) {
            p.fail_next.store(n, Ordering::SeqCst);
        }
    }

    /// Schedule one fault on the link to `dest` (FIFO with previously
    /// scheduled faults; each round trip consumes at most one).
    pub fn inject_fault(&self, dest: &str, fault: SimFault) {
        if let Some(p) = self.peers.read().get(dest) {
            p.faults.lock().push_back(fault);
        }
    }

    /// Schedule a sequence of faults on the link to `dest`.
    pub fn inject_fault_script(&self, dest: &str, faults: impl IntoIterator<Item = SimFault>) {
        if let Some(p) = self.peers.read().get(dest) {
            p.faults.lock().extend(faults);
        }
    }

    /// Crash `dest`: every request is refused (send-side) until
    /// [`restart`](Self::restart). The peer's in-memory state is retained
    /// — this models a process that stopped accepting connections, the
    /// paper's transiently-partitioned 2PC participant.
    pub fn crash(&self, dest: &str) {
        if let Some(p) = self.peers.read().get(dest) {
            p.down.store(true, Ordering::SeqCst);
        }
    }

    /// Bring a crashed peer back.
    pub fn restart(&self, dest: &str) {
        if let Some(p) = self.peers.read().get(dest) {
            p.down.store(false, Ordering::SeqCst);
        }
    }

    /// Attach a crash-point switch to `dest`: while the switch is down
    /// the peer refuses connections, and a request whose handling trips
    /// the switch mid-flight loses its response (caller sees a timeout).
    /// The same switch must be given to the peer so its instrumented
    /// crash points fire — see [`CrashSwitch`].
    pub fn attach_crash_switch(&self, dest: &str, switch: Arc<CrashSwitch>) {
        if let Some(p) = self.peers.read().get(dest) {
            *p.switch.lock() = Some(switch);
        }
    }

    /// How many requests `dest`'s handler actually executed.
    pub fn handled_count(&self, dest: &str) -> u64 {
        self.peers
            .read()
            .get(dest)
            .map(|p| p.handled.load(Ordering::SeqCst))
            .unwrap_or(0)
    }

    /// Unconsumed scheduled faults for `dest`.
    pub fn pending_faults(&self, dest: &str) -> usize {
        self.peers
            .read()
            .get(dest)
            .map(|p| p.faults.lock().len())
            .unwrap_or(0)
    }

    pub fn peer_names(&self) -> Vec<String> {
        self.peers.read().keys().cloned().collect()
    }
}

impl Default for NetProfile {
    fn default() -> Self {
        NetProfile::lan()
    }
}

impl Transport for SimNetwork {
    fn roundtrip(&self, dest: &str, body: &[u8]) -> Result<Vec<u8>, NetError> {
        let peer = self.peers.read().get(dest).cloned().ok_or_else(|| {
            self.metrics.record_failure();
            NetError::new(format!("unknown peer `{dest}`"))
        })?;
        if peer.down.load(Ordering::SeqCst) {
            self.metrics.record_failure();
            return Err(NetError::with_kind(
                NetErrorKind::ConnectionRefused,
                format!("peer `{dest}` is down"),
            ));
        }
        let switch = peer.switch.lock().clone();
        if let Some(sw) = &switch {
            if sw.is_down() {
                self.metrics.record_failure();
                return Err(NetError::with_kind(
                    NetErrorKind::ConnectionRefused,
                    format!("peer `{dest}` is down (crashed at a crash point)"),
                ));
            }
        }
        if peer.fail_next.load(Ordering::SeqCst) > 0 {
            peer.fail_next.fetch_sub(1, Ordering::SeqCst);
            self.metrics.record_failure();
            return Err(NetError::new(format!("injected fault on link to `{dest}`")));
        }
        let fault = peer.faults.lock().pop_front();
        let profile = *self.profile.read();
        match fault {
            Some(SimFault::Refuse) => {
                self.metrics.record_failure();
                return Err(NetError::with_kind(
                    NetErrorKind::ConnectionRefused,
                    format!("injected connection refused by `{dest}`"),
                ));
            }
            Some(SimFault::DropRequest) => {
                self.metrics.record_failure();
                self.metrics.record_timeout();
                return Err(NetError::with_kind(
                    NetErrorKind::Timeout,
                    format!("injected request drop on link to `{dest}`"),
                ));
            }
            Some(SimFault::LatencySpike(extra)) if !extra.is_zero() => {
                std::thread::sleep(extra);
            }
            // DropResponse / CorruptResponse fall through: the request IS
            // delivered and handled, the fault hits on the way back
            _ => {}
        }
        let send_cost = profile.transfer_cost(body.len());
        if !send_cost.is_zero() {
            std::thread::sleep(send_cost);
        }
        peer.handled.fetch_add(1, Ordering::SeqCst);
        let trips_before = switch.as_ref().map(|s| s.trips()).unwrap_or(0);
        let response = (peer.handler)(body);
        if let Some(sw) = &switch {
            if sw.trips() != trips_before {
                // the peer died mid-handling: whatever bytes the handler
                // returned never made it onto the wire
                self.metrics.record_failure();
                self.metrics.record_timeout();
                return Err(NetError::with_kind(
                    NetErrorKind::Timeout,
                    format!("peer `{dest}` crashed while handling the request"),
                ));
            }
        }
        let recv_cost = profile.transfer_cost(response.len());
        if !recv_cost.is_zero() {
            std::thread::sleep(recv_cost);
        }
        match fault {
            Some(SimFault::DropResponse) => {
                self.metrics.record_failure();
                self.metrics.record_timeout();
                Err(NetError::with_kind(
                    NetErrorKind::Timeout,
                    format!("injected response drop on link from `{dest}`"),
                ))
            }
            Some(SimFault::CorruptResponse) => {
                self.metrics.record_failure();
                Err(NetError::with_kind(
                    NetErrorKind::Corrupt,
                    format!("injected response corruption on link from `{dest}`"),
                ))
            }
            _ => {
                self.metrics.record(body.len(), response.len());
                Ok(response)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn roundtrip_calls_handler() {
        let net = SimNetwork::new(NetProfile::instant());
        net.register(
            "xrpc://y",
            Arc::new(|b: &[u8]| {
                let mut v = b.to_vec();
                v.reverse();
                v
            }),
        );
        assert_eq!(net.roundtrip("xrpc://y", b"abc").unwrap(), b"cba");
        assert_eq!(net.metrics.snapshot().roundtrips, 1);
        assert_eq!(net.handled_count("xrpc://y"), 1);
    }

    #[test]
    fn unknown_peer_errors() {
        let net = SimNetwork::new(NetProfile::instant());
        assert!(net.roundtrip("xrpc://nowhere", b"x").is_err());
        assert_eq!(net.metrics.snapshot().failures, 1);
    }

    #[test]
    fn latency_is_charged_per_roundtrip() {
        let net = SimNetwork::new(NetProfile::with_latency(Duration::from_millis(5)));
        net.register("xrpc://y", Arc::new(|_: &[u8]| vec![]));
        let t0 = Instant::now();
        net.roundtrip("xrpc://y", b"x").unwrap();
        let one = t0.elapsed();
        assert!(
            one >= Duration::from_millis(10),
            "round trip should cost 2x latency, took {one:?}"
        );

        // bulk amortization: 1 round trip for N calls beats N round trips
        let t1 = Instant::now();
        for _ in 0..5 {
            net.roundtrip("xrpc://y", b"x").unwrap();
        }
        let five = t1.elapsed();
        assert!(five >= Duration::from_millis(50));
    }

    #[test]
    fn bandwidth_charged_for_large_payloads() {
        let net = SimNetwork::new(NetProfile {
            one_way_latency: Duration::ZERO,
            bandwidth_bytes_per_sec: Some(1_000_000), // 1 MB/s
        });
        net.register("xrpc://y", Arc::new(|_: &[u8]| vec![]));
        let body = vec![0u8; 100_000]; // 0.1s at 1MB/s
        let t0 = Instant::now();
        net.roundtrip("xrpc://y", &body).unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(90));
    }

    #[test]
    fn fault_injection_fails_then_recovers() {
        let net = SimNetwork::new(NetProfile::instant());
        net.register("xrpc://y", Arc::new(|_: &[u8]| b"ok".to_vec()));
        net.inject_failures("xrpc://y", 2);
        assert!(net.roundtrip("xrpc://y", b"x").is_err());
        assert!(net.roundtrip("xrpc://y", b"x").is_err());
        assert_eq!(net.roundtrip("xrpc://y", b"x").unwrap(), b"ok");
    }

    #[test]
    fn drop_request_vs_drop_response_distinguishable_at_peer() {
        let net = SimNetwork::new(NetProfile::instant());
        net.register("xrpc://y", Arc::new(|_: &[u8]| b"ok".to_vec()));
        net.inject_fault("xrpc://y", SimFault::DropRequest);
        let e1 = net.roundtrip("xrpc://y", b"x").unwrap_err();
        assert_eq!(e1.kind, NetErrorKind::Timeout);
        assert_eq!(
            net.handled_count("xrpc://y"),
            0,
            "drop-request: handler must not run"
        );

        net.inject_fault("xrpc://y", SimFault::DropResponse);
        let e2 = net.roundtrip("xrpc://y", b"x").unwrap_err();
        assert_eq!(e2.kind, NetErrorKind::Timeout);
        assert_eq!(
            net.handled_count("xrpc://y"),
            1,
            "drop-response: handler ran"
        );
    }

    #[test]
    fn corrupt_response_runs_handler_and_reports_corrupt() {
        let net = SimNetwork::new(NetProfile::instant());
        net.register("xrpc://y", Arc::new(|_: &[u8]| b"ok".to_vec()));
        net.inject_fault("xrpc://y", SimFault::CorruptResponse);
        let e = net.roundtrip("xrpc://y", b"x").unwrap_err();
        assert_eq!(e.kind, NetErrorKind::Corrupt);
        assert_eq!(net.handled_count("xrpc://y"), 1);
    }

    #[test]
    fn latency_spike_succeeds_but_costs_time() {
        let net = SimNetwork::new(NetProfile::instant());
        net.register("xrpc://y", Arc::new(|_: &[u8]| b"ok".to_vec()));
        net.inject_fault(
            "xrpc://y",
            SimFault::LatencySpike(Duration::from_millis(20)),
        );
        let t0 = Instant::now();
        assert_eq!(net.roundtrip("xrpc://y", b"x").unwrap(), b"ok");
        assert!(t0.elapsed() >= Duration::from_millis(20));
        // spike consumed: next call is fast
        let t1 = Instant::now();
        net.roundtrip("xrpc://y", b"x").unwrap();
        assert!(t1.elapsed() < Duration::from_millis(10));
    }

    #[test]
    fn fault_script_consumed_in_order() {
        let net = SimNetwork::new(NetProfile::instant());
        net.register("xrpc://y", Arc::new(|_: &[u8]| b"ok".to_vec()));
        net.inject_fault_script("xrpc://y", [SimFault::Refuse, SimFault::DropResponse]);
        assert_eq!(net.pending_faults("xrpc://y"), 2);
        assert_eq!(
            net.roundtrip("xrpc://y", b"x").unwrap_err().kind,
            NetErrorKind::ConnectionRefused
        );
        assert_eq!(
            net.roundtrip("xrpc://y", b"x").unwrap_err().kind,
            NetErrorKind::Timeout
        );
        assert_eq!(net.pending_faults("xrpc://y"), 0);
        assert!(net.roundtrip("xrpc://y", b"x").is_ok());
    }

    #[test]
    fn crash_refuses_until_restart_preserving_state() {
        let net = SimNetwork::new(NetProfile::instant());
        let hits = Arc::new(AtomicU64::new(0));
        let h = hits.clone();
        net.register(
            "xrpc://y",
            Arc::new(move |_: &[u8]| {
                h.fetch_add(1, Ordering::SeqCst);
                b"ok".to_vec()
            }),
        );
        net.roundtrip("xrpc://y", b"x").unwrap();
        net.crash("xrpc://y");
        let e = net.roundtrip("xrpc://y", b"x").unwrap_err();
        assert_eq!(e.kind, NetErrorKind::ConnectionRefused);
        net.restart("xrpc://y");
        net.roundtrip("xrpc://y", b"x").unwrap();
        assert_eq!(
            hits.load(Ordering::SeqCst),
            2,
            "state (counter) survives the crash"
        );
    }

    #[test]
    fn crash_switch_mid_request_drops_response_then_refuses() {
        let net = SimNetwork::new(NetProfile::instant());
        let sw = CrashSwitch::new();
        let sw_handler = sw.clone();
        net.register(
            "xrpc://y",
            Arc::new(move |_: &[u8]| {
                if sw_handler.hit(crash_points::BEFORE_PREPARE_LOG) {
                    // a real peer would abandon the request here; whatever
                    // it returns must never reach the caller
                    return b"never-delivered".to_vec();
                }
                b"ok".to_vec()
            }),
        );
        net.attach_crash_switch("xrpc://y", sw.clone());

        // not armed: normal operation
        assert_eq!(net.roundtrip("xrpc://y", b"x").unwrap(), b"ok");

        sw.arm(crash_points::BEFORE_PREPARE_LOG);
        let e = net.roundtrip("xrpc://y", b"x").unwrap_err();
        assert_eq!(
            e.kind,
            NetErrorKind::Timeout,
            "mid-request crash is ambiguous"
        );
        assert_eq!(net.handled_count("xrpc://y"), 2, "handler DID start");

        // down until revived
        let e = net.roundtrip("xrpc://y", b"x").unwrap_err();
        assert_eq!(e.kind, NetErrorKind::ConnectionRefused);
        sw.revive();
        assert_eq!(net.roundtrip("xrpc://y", b"x").unwrap(), b"ok");
    }

    #[test]
    fn crash_switch_hit_after_delivers_response_then_refuses() {
        let net = SimNetwork::new(NetProfile::instant());
        let sw = CrashSwitch::new();
        let sw_handler = sw.clone();
        net.register(
            "xrpc://y",
            Arc::new(move |_: &[u8]| {
                sw_handler.hit_after(crash_points::AFTER_PREPARE_ACK);
                b"ack".to_vec()
            }),
        );
        net.attach_crash_switch("xrpc://y", sw.clone());
        sw.arm(crash_points::AFTER_PREPARE_ACK);
        // the response that armed the crash still gets through...
        assert_eq!(net.roundtrip("xrpc://y", b"x").unwrap(), b"ack");
        // ...but the peer is down afterwards
        let e = net.roundtrip("xrpc://y", b"x").unwrap_err();
        assert_eq!(e.kind, NetErrorKind::ConnectionRefused);
    }

    #[test]
    fn profiles_sane() {
        assert!(NetProfile::lan().one_way_latency < NetProfile::wan().one_way_latency);
        assert!(NetProfile::instant().transfer_cost(1 << 30).is_zero());
    }
}
