//! The simulated network: in-process peers joined by links with a
//! configurable one-way latency and bandwidth, plus fault injection.
//!
//! Cost model per round trip (both directions):
//! `2·latency + request_bytes/bandwidth + response_bytes/bandwidth`,
//! realized by actually sleeping, so wall-clock benchmark numbers carry
//! the same latency-amortization signal as the paper's testbed.

use crate::metrics::NetMetrics;
use crate::{NetError, Transport};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Link characteristics.
#[derive(Clone, Copy, Debug)]
pub struct NetProfile {
    pub one_way_latency: Duration,
    /// Bytes per second; `None` = infinite.
    pub bandwidth_bytes_per_sec: Option<u64>,
}

impl NetProfile {
    /// Zero-cost link (pure in-process call).
    pub fn instant() -> Self {
        NetProfile {
            one_way_latency: Duration::ZERO,
            bandwidth_bytes_per_sec: None,
        }
    }

    /// The paper's testbed: 1 Gb/s Ethernet LAN, sub-millisecond latency.
    pub fn lan() -> Self {
        NetProfile {
            one_way_latency: Duration::from_micros(500),
            bandwidth_bytes_per_sec: Some(125_000_000), // 1 Gb/s
        }
    }

    /// A WAN-ish profile for the ablation sweeps.
    pub fn wan() -> Self {
        NetProfile {
            one_way_latency: Duration::from_millis(25),
            bandwidth_bytes_per_sec: Some(12_500_000), // 100 Mb/s
        }
    }

    pub fn with_latency(latency: Duration) -> Self {
        NetProfile {
            one_way_latency: latency,
            bandwidth_bytes_per_sec: Some(125_000_000),
        }
    }

    fn transfer_cost(&self, bytes: usize) -> Duration {
        let mut d = self.one_way_latency;
        if let Some(bw) = self.bandwidth_bytes_per_sec {
            d += Duration::from_secs_f64(bytes as f64 / bw as f64);
        }
        d
    }
}

type PeerHandler = Arc<dyn Fn(&[u8]) -> Vec<u8> + Send + Sync>;

struct PeerEntry {
    handler: PeerHandler,
    /// Number of upcoming requests to fail (fault injection).
    fail_next: AtomicU32,
}

/// An in-process network of named peers.
#[derive(Default)]
pub struct SimNetwork {
    peers: RwLock<HashMap<String, Arc<PeerEntry>>>,
    profile: RwLock<NetProfile>,
    pub metrics: Arc<NetMetrics>,
}

impl SimNetwork {
    pub fn new(profile: NetProfile) -> Self {
        SimNetwork {
            peers: RwLock::new(HashMap::new()),
            profile: RwLock::new(profile),
            metrics: Arc::new(NetMetrics::new()),
        }
    }

    /// Register a peer under a destination URI (e.g. `xrpc://y.example.org`).
    pub fn register(&self, dest: impl Into<String>, handler: PeerHandler) {
        self.peers.write().insert(
            dest.into(),
            Arc::new(PeerEntry {
                handler,
                fail_next: AtomicU32::new(0),
            }),
        );
    }

    pub fn set_profile(&self, profile: NetProfile) {
        *self.profile.write() = profile;
    }

    pub fn profile(&self) -> NetProfile {
        *self.profile.read()
    }

    /// Make the next `n` requests to `dest` fail (link fault injection).
    pub fn inject_failures(&self, dest: &str, n: u32) {
        if let Some(p) = self.peers.read().get(dest) {
            p.fail_next.store(n, Ordering::SeqCst);
        }
    }

    pub fn peer_names(&self) -> Vec<String> {
        self.peers.read().keys().cloned().collect()
    }
}

impl Default for NetProfile {
    fn default() -> Self {
        NetProfile::lan()
    }
}

impl Transport for SimNetwork {
    fn roundtrip(&self, dest: &str, body: &[u8]) -> Result<Vec<u8>, NetError> {
        let peer = self
            .peers
            .read()
            .get(dest)
            .cloned()
            .ok_or_else(|| {
                self.metrics.record_failure();
                NetError::new(format!("unknown peer `{dest}`"))
            })?;
        if peer.fail_next.load(Ordering::SeqCst) > 0 {
            peer.fail_next.fetch_sub(1, Ordering::SeqCst);
            self.metrics.record_failure();
            return Err(NetError::new(format!("injected fault on link to `{dest}`")));
        }
        let profile = *self.profile.read();
        let send_cost = profile.transfer_cost(body.len());
        if !send_cost.is_zero() {
            std::thread::sleep(send_cost);
        }
        let response = (peer.handler)(body);
        let recv_cost = profile.transfer_cost(response.len());
        if !recv_cost.is_zero() {
            std::thread::sleep(recv_cost);
        }
        self.metrics.record(body.len(), response.len());
        Ok(response)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn roundtrip_calls_handler() {
        let net = SimNetwork::new(NetProfile::instant());
        net.register(
            "xrpc://y",
            Arc::new(|b: &[u8]| {
                let mut v = b.to_vec();
                v.reverse();
                v
            }),
        );
        assert_eq!(net.roundtrip("xrpc://y", b"abc").unwrap(), b"cba");
        assert_eq!(net.metrics.snapshot().roundtrips, 1);
    }

    #[test]
    fn unknown_peer_errors() {
        let net = SimNetwork::new(NetProfile::instant());
        assert!(net.roundtrip("xrpc://nowhere", b"x").is_err());
        assert_eq!(net.metrics.snapshot().failures, 1);
    }

    #[test]
    fn latency_is_charged_per_roundtrip() {
        let net = SimNetwork::new(NetProfile::with_latency(Duration::from_millis(5)));
        net.register("xrpc://y", Arc::new(|_: &[u8]| vec![]));
        let t0 = Instant::now();
        net.roundtrip("xrpc://y", b"x").unwrap();
        let one = t0.elapsed();
        assert!(one >= Duration::from_millis(10), "round trip should cost 2x latency, took {one:?}");

        // bulk amortization: 1 round trip for N calls beats N round trips
        let t1 = Instant::now();
        for _ in 0..5 {
            net.roundtrip("xrpc://y", b"x").unwrap();
        }
        let five = t1.elapsed();
        assert!(five >= Duration::from_millis(50));
    }

    #[test]
    fn bandwidth_charged_for_large_payloads() {
        let net = SimNetwork::new(NetProfile {
            one_way_latency: Duration::ZERO,
            bandwidth_bytes_per_sec: Some(1_000_000), // 1 MB/s
        });
        net.register("xrpc://y", Arc::new(|_: &[u8]| vec![]));
        let body = vec![0u8; 100_000]; // 0.1s at 1MB/s
        let t0 = Instant::now();
        net.roundtrip("xrpc://y", &body).unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(90));
    }

    #[test]
    fn fault_injection_fails_then_recovers() {
        let net = SimNetwork::new(NetProfile::instant());
        net.register("xrpc://y", Arc::new(|_: &[u8]| b"ok".to_vec()));
        net.inject_failures("xrpc://y", 2);
        assert!(net.roundtrip("xrpc://y", b"x").is_err());
        assert!(net.roundtrip("xrpc://y", b"x").is_err());
        assert_eq!(net.roundtrip("xrpc://y", b"x").unwrap(), b"ok");
    }

    #[test]
    fn profiles_sane() {
        assert!(NetProfile::lan().one_way_latency < NetProfile::wan().one_way_latency);
        assert!(NetProfile::instant().transfer_cost(1 << 30).is_zero());
    }
}
