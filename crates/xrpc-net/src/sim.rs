//! The simulated network: in-process peers joined by links with a
//! configurable one-way latency and bandwidth, plus deterministic fault
//! injection.
//!
//! Cost model per round trip (both directions):
//! `2·latency + request_bytes/bandwidth + response_bytes/bandwidth`,
//! realized by actually sleeping, so wall-clock benchmark numbers carry
//! the same latency-amortization signal as the paper's testbed.
//!
//! Fault injection is a per-peer FIFO script ([`SimFault`]): each round
//! trip to a peer consumes the next scheduled fault, making chaos tests
//! fully deterministic. Crucially, the script distinguishes *drop-request*
//! (the handler never ran) from *drop-response* (the handler ran, the
//! caller cannot know) — the ambiguity that decides retry safety for
//! updating calls. Peers can also be crashed and restarted wholesale.

use crate::metrics::NetMetrics;
use crate::{NetError, NetErrorKind, Transport};
use parking_lot::{Mutex, RwLock};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Link characteristics.
#[derive(Clone, Copy, Debug)]
pub struct NetProfile {
    pub one_way_latency: Duration,
    /// Bytes per second; `None` = infinite.
    pub bandwidth_bytes_per_sec: Option<u64>,
}

impl NetProfile {
    /// Zero-cost link (pure in-process call).
    pub fn instant() -> Self {
        NetProfile {
            one_way_latency: Duration::ZERO,
            bandwidth_bytes_per_sec: None,
        }
    }

    /// The paper's testbed: 1 Gb/s Ethernet LAN, sub-millisecond latency.
    pub fn lan() -> Self {
        NetProfile {
            one_way_latency: Duration::from_micros(500),
            bandwidth_bytes_per_sec: Some(125_000_000), // 1 Gb/s
        }
    }

    /// A WAN-ish profile for the ablation sweeps.
    pub fn wan() -> Self {
        NetProfile {
            one_way_latency: Duration::from_millis(25),
            bandwidth_bytes_per_sec: Some(12_500_000), // 100 Mb/s
        }
    }

    pub fn with_latency(latency: Duration) -> Self {
        NetProfile {
            one_way_latency: latency,
            bandwidth_bytes_per_sec: Some(125_000_000),
        }
    }

    fn transfer_cost(&self, bytes: usize) -> Duration {
        let mut d = self.one_way_latency;
        if let Some(bw) = self.bandwidth_bytes_per_sec {
            d += Duration::from_secs_f64(bytes as f64 / bw as f64);
        }
        d
    }
}

/// One scheduled fault on the link to a peer (consumed FIFO, one per
/// round trip).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimFault {
    /// The request is lost before reaching the peer: the handler does
    /// NOT run; the caller sees [`NetErrorKind::Timeout`].
    DropRequest,
    /// The response is lost on the way back: the handler DID run; the
    /// caller sees the same [`NetErrorKind::Timeout`] — indistinguishable
    /// from [`SimFault::DropRequest`] at the call site, which is exactly
    /// the ambiguity updating calls must respect.
    DropResponse,
    /// The connection is refused before any byte is written: the handler
    /// does not run; the caller sees [`NetErrorKind::ConnectionRefused`]
    /// (send-side, unambiguous — always safe to retry).
    Refuse,
    /// The response arrives damaged: the handler DID run; the caller sees
    /// [`NetErrorKind::Corrupt`] (detected by the framing layer).
    CorruptResponse,
    /// The round trip succeeds but costs this much extra wall-clock time.
    LatencySpike(Duration),
}

/// A registered peer endpoint: raw SOAP bytes in, raw SOAP bytes out.
pub type SoapHandler = Arc<dyn Fn(&[u8]) -> Vec<u8> + Send + Sync>;

struct PeerEntry {
    handler: SoapHandler,
    /// Legacy fault injection: fail the next `n` requests with an
    /// untyped (non-retryable) error before reaching the handler.
    fail_next: AtomicU32,
    /// Scripted faults, consumed one per round trip.
    faults: Mutex<VecDeque<SimFault>>,
    /// Crashed peers refuse connections until restarted.
    down: AtomicBool,
    /// How many times the handler actually ran (lets chaos tests tell
    /// drop-request from drop-response and prove exactly-once effects).
    handled: AtomicU64,
}

/// An in-process network of named peers.
#[derive(Default)]
pub struct SimNetwork {
    peers: RwLock<HashMap<String, Arc<PeerEntry>>>,
    profile: RwLock<NetProfile>,
    pub metrics: Arc<NetMetrics>,
}

impl SimNetwork {
    pub fn new(profile: NetProfile) -> Self {
        SimNetwork {
            peers: RwLock::new(HashMap::new()),
            profile: RwLock::new(profile),
            metrics: Arc::new(NetMetrics::new()),
        }
    }

    /// Register a peer under a destination URI (e.g. `xrpc://y.example.org`).
    pub fn register(&self, dest: impl Into<String>, handler: SoapHandler) {
        self.peers.write().insert(
            dest.into(),
            Arc::new(PeerEntry {
                handler,
                fail_next: AtomicU32::new(0),
                faults: Mutex::new(VecDeque::new()),
                down: AtomicBool::new(false),
                handled: AtomicU64::new(0),
            }),
        );
    }

    pub fn set_profile(&self, profile: NetProfile) {
        *self.profile.write() = profile;
    }

    pub fn profile(&self) -> NetProfile {
        *self.profile.read()
    }

    /// Make the next `n` requests to `dest` fail with an untyped,
    /// *non-retryable* error (legacy link fault injection; use
    /// [`inject_fault`](Self::inject_fault) for typed faults).
    pub fn inject_failures(&self, dest: &str, n: u32) {
        if let Some(p) = self.peers.read().get(dest) {
            p.fail_next.store(n, Ordering::SeqCst);
        }
    }

    /// Schedule one fault on the link to `dest` (FIFO with previously
    /// scheduled faults; each round trip consumes at most one).
    pub fn inject_fault(&self, dest: &str, fault: SimFault) {
        if let Some(p) = self.peers.read().get(dest) {
            p.faults.lock().push_back(fault);
        }
    }

    /// Schedule a sequence of faults on the link to `dest`.
    pub fn inject_fault_script(&self, dest: &str, faults: impl IntoIterator<Item = SimFault>) {
        if let Some(p) = self.peers.read().get(dest) {
            p.faults.lock().extend(faults);
        }
    }

    /// Crash `dest`: every request is refused (send-side) until
    /// [`restart`](Self::restart). The peer's in-memory state is retained
    /// — this models a process that stopped accepting connections, the
    /// paper's transiently-partitioned 2PC participant.
    pub fn crash(&self, dest: &str) {
        if let Some(p) = self.peers.read().get(dest) {
            p.down.store(true, Ordering::SeqCst);
        }
    }

    /// Bring a crashed peer back.
    pub fn restart(&self, dest: &str) {
        if let Some(p) = self.peers.read().get(dest) {
            p.down.store(false, Ordering::SeqCst);
        }
    }

    /// How many requests `dest`'s handler actually executed.
    pub fn handled_count(&self, dest: &str) -> u64 {
        self.peers
            .read()
            .get(dest)
            .map(|p| p.handled.load(Ordering::SeqCst))
            .unwrap_or(0)
    }

    /// Unconsumed scheduled faults for `dest`.
    pub fn pending_faults(&self, dest: &str) -> usize {
        self.peers
            .read()
            .get(dest)
            .map(|p| p.faults.lock().len())
            .unwrap_or(0)
    }

    pub fn peer_names(&self) -> Vec<String> {
        self.peers.read().keys().cloned().collect()
    }
}

impl Default for NetProfile {
    fn default() -> Self {
        NetProfile::lan()
    }
}

impl Transport for SimNetwork {
    fn roundtrip(&self, dest: &str, body: &[u8]) -> Result<Vec<u8>, NetError> {
        let peer = self.peers.read().get(dest).cloned().ok_or_else(|| {
            self.metrics.record_failure();
            NetError::new(format!("unknown peer `{dest}`"))
        })?;
        if peer.down.load(Ordering::SeqCst) {
            self.metrics.record_failure();
            return Err(NetError::with_kind(
                NetErrorKind::ConnectionRefused,
                format!("peer `{dest}` is down"),
            ));
        }
        if peer.fail_next.load(Ordering::SeqCst) > 0 {
            peer.fail_next.fetch_sub(1, Ordering::SeqCst);
            self.metrics.record_failure();
            return Err(NetError::new(format!("injected fault on link to `{dest}`")));
        }
        let fault = peer.faults.lock().pop_front();
        let profile = *self.profile.read();
        match fault {
            Some(SimFault::Refuse) => {
                self.metrics.record_failure();
                return Err(NetError::with_kind(
                    NetErrorKind::ConnectionRefused,
                    format!("injected connection refused by `{dest}`"),
                ));
            }
            Some(SimFault::DropRequest) => {
                self.metrics.record_failure();
                self.metrics.record_timeout();
                return Err(NetError::with_kind(
                    NetErrorKind::Timeout,
                    format!("injected request drop on link to `{dest}`"),
                ));
            }
            Some(SimFault::LatencySpike(extra)) if !extra.is_zero() => {
                std::thread::sleep(extra);
            }
            // DropResponse / CorruptResponse fall through: the request IS
            // delivered and handled, the fault hits on the way back
            _ => {}
        }
        let send_cost = profile.transfer_cost(body.len());
        if !send_cost.is_zero() {
            std::thread::sleep(send_cost);
        }
        peer.handled.fetch_add(1, Ordering::SeqCst);
        let response = (peer.handler)(body);
        let recv_cost = profile.transfer_cost(response.len());
        if !recv_cost.is_zero() {
            std::thread::sleep(recv_cost);
        }
        match fault {
            Some(SimFault::DropResponse) => {
                self.metrics.record_failure();
                self.metrics.record_timeout();
                Err(NetError::with_kind(
                    NetErrorKind::Timeout,
                    format!("injected response drop on link from `{dest}`"),
                ))
            }
            Some(SimFault::CorruptResponse) => {
                self.metrics.record_failure();
                Err(NetError::with_kind(
                    NetErrorKind::Corrupt,
                    format!("injected response corruption on link from `{dest}`"),
                ))
            }
            _ => {
                self.metrics.record(body.len(), response.len());
                Ok(response)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn roundtrip_calls_handler() {
        let net = SimNetwork::new(NetProfile::instant());
        net.register(
            "xrpc://y",
            Arc::new(|b: &[u8]| {
                let mut v = b.to_vec();
                v.reverse();
                v
            }),
        );
        assert_eq!(net.roundtrip("xrpc://y", b"abc").unwrap(), b"cba");
        assert_eq!(net.metrics.snapshot().roundtrips, 1);
        assert_eq!(net.handled_count("xrpc://y"), 1);
    }

    #[test]
    fn unknown_peer_errors() {
        let net = SimNetwork::new(NetProfile::instant());
        assert!(net.roundtrip("xrpc://nowhere", b"x").is_err());
        assert_eq!(net.metrics.snapshot().failures, 1);
    }

    #[test]
    fn latency_is_charged_per_roundtrip() {
        let net = SimNetwork::new(NetProfile::with_latency(Duration::from_millis(5)));
        net.register("xrpc://y", Arc::new(|_: &[u8]| vec![]));
        let t0 = Instant::now();
        net.roundtrip("xrpc://y", b"x").unwrap();
        let one = t0.elapsed();
        assert!(
            one >= Duration::from_millis(10),
            "round trip should cost 2x latency, took {one:?}"
        );

        // bulk amortization: 1 round trip for N calls beats N round trips
        let t1 = Instant::now();
        for _ in 0..5 {
            net.roundtrip("xrpc://y", b"x").unwrap();
        }
        let five = t1.elapsed();
        assert!(five >= Duration::from_millis(50));
    }

    #[test]
    fn bandwidth_charged_for_large_payloads() {
        let net = SimNetwork::new(NetProfile {
            one_way_latency: Duration::ZERO,
            bandwidth_bytes_per_sec: Some(1_000_000), // 1 MB/s
        });
        net.register("xrpc://y", Arc::new(|_: &[u8]| vec![]));
        let body = vec![0u8; 100_000]; // 0.1s at 1MB/s
        let t0 = Instant::now();
        net.roundtrip("xrpc://y", &body).unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(90));
    }

    #[test]
    fn fault_injection_fails_then_recovers() {
        let net = SimNetwork::new(NetProfile::instant());
        net.register("xrpc://y", Arc::new(|_: &[u8]| b"ok".to_vec()));
        net.inject_failures("xrpc://y", 2);
        assert!(net.roundtrip("xrpc://y", b"x").is_err());
        assert!(net.roundtrip("xrpc://y", b"x").is_err());
        assert_eq!(net.roundtrip("xrpc://y", b"x").unwrap(), b"ok");
    }

    #[test]
    fn drop_request_vs_drop_response_distinguishable_at_peer() {
        let net = SimNetwork::new(NetProfile::instant());
        net.register("xrpc://y", Arc::new(|_: &[u8]| b"ok".to_vec()));
        net.inject_fault("xrpc://y", SimFault::DropRequest);
        let e1 = net.roundtrip("xrpc://y", b"x").unwrap_err();
        assert_eq!(e1.kind, NetErrorKind::Timeout);
        assert_eq!(
            net.handled_count("xrpc://y"),
            0,
            "drop-request: handler must not run"
        );

        net.inject_fault("xrpc://y", SimFault::DropResponse);
        let e2 = net.roundtrip("xrpc://y", b"x").unwrap_err();
        assert_eq!(e2.kind, NetErrorKind::Timeout);
        assert_eq!(
            net.handled_count("xrpc://y"),
            1,
            "drop-response: handler ran"
        );
    }

    #[test]
    fn corrupt_response_runs_handler_and_reports_corrupt() {
        let net = SimNetwork::new(NetProfile::instant());
        net.register("xrpc://y", Arc::new(|_: &[u8]| b"ok".to_vec()));
        net.inject_fault("xrpc://y", SimFault::CorruptResponse);
        let e = net.roundtrip("xrpc://y", b"x").unwrap_err();
        assert_eq!(e.kind, NetErrorKind::Corrupt);
        assert_eq!(net.handled_count("xrpc://y"), 1);
    }

    #[test]
    fn latency_spike_succeeds_but_costs_time() {
        let net = SimNetwork::new(NetProfile::instant());
        net.register("xrpc://y", Arc::new(|_: &[u8]| b"ok".to_vec()));
        net.inject_fault(
            "xrpc://y",
            SimFault::LatencySpike(Duration::from_millis(20)),
        );
        let t0 = Instant::now();
        assert_eq!(net.roundtrip("xrpc://y", b"x").unwrap(), b"ok");
        assert!(t0.elapsed() >= Duration::from_millis(20));
        // spike consumed: next call is fast
        let t1 = Instant::now();
        net.roundtrip("xrpc://y", b"x").unwrap();
        assert!(t1.elapsed() < Duration::from_millis(10));
    }

    #[test]
    fn fault_script_consumed_in_order() {
        let net = SimNetwork::new(NetProfile::instant());
        net.register("xrpc://y", Arc::new(|_: &[u8]| b"ok".to_vec()));
        net.inject_fault_script("xrpc://y", [SimFault::Refuse, SimFault::DropResponse]);
        assert_eq!(net.pending_faults("xrpc://y"), 2);
        assert_eq!(
            net.roundtrip("xrpc://y", b"x").unwrap_err().kind,
            NetErrorKind::ConnectionRefused
        );
        assert_eq!(
            net.roundtrip("xrpc://y", b"x").unwrap_err().kind,
            NetErrorKind::Timeout
        );
        assert_eq!(net.pending_faults("xrpc://y"), 0);
        assert!(net.roundtrip("xrpc://y", b"x").is_ok());
    }

    #[test]
    fn crash_refuses_until_restart_preserving_state() {
        let net = SimNetwork::new(NetProfile::instant());
        let hits = Arc::new(AtomicU64::new(0));
        let h = hits.clone();
        net.register(
            "xrpc://y",
            Arc::new(move |_: &[u8]| {
                h.fetch_add(1, Ordering::SeqCst);
                b"ok".to_vec()
            }),
        );
        net.roundtrip("xrpc://y", b"x").unwrap();
        net.crash("xrpc://y");
        let e = net.roundtrip("xrpc://y", b"x").unwrap_err();
        assert_eq!(e.kind, NetErrorKind::ConnectionRefused);
        net.restart("xrpc://y");
        net.roundtrip("xrpc://y", b"x").unwrap();
        assert_eq!(
            hits.load(Ordering::SeqCst),
            2,
            "state (counter) survives the crash"
        );
    }

    #[test]
    fn profiles_sane() {
        assert!(NetProfile::lan().one_way_latency < NetProfile::wan().one_way_latency);
        assert!(NetProfile::instant().transfer_cost(1 << 30).is_zero());
    }
}
