//! Byte/round-trip counters shared by both transports; the throughput
//! experiment (paper §3.3, "Throughput") reads these. The resilience
//! layer ([`crate::ResilientTransport`]) adds retry/timeout/breaker
//! counters so chaos tests can assert on exact fault handling.

use std::sync::atomic::{AtomicU64, Ordering};
use xrpc_obs::hist::Histogram;

/// Monotonic counters; cheap enough to update on every message.
#[derive(Default)]
pub struct NetMetrics {
    pub roundtrips: AtomicU64,
    pub bytes_sent: AtomicU64,
    pub bytes_received: AtomicU64,
    pub failures: AtomicU64,
    /// Requests resent by the retry layer (one per retry, not per call).
    pub retries: AtomicU64,
    /// Failures of kind [`crate::NetErrorKind::Timeout`] (including
    /// call-deadline overruns).
    pub timeouts: AtomicU64,
    /// Calls rejected by an open circuit breaker without touching the wire.
    pub fast_failures: AtomicU64,
    /// Closed/half-open → open breaker transitions.
    pub breaker_opens: AtomicU64,
    /// HTTP requests served over a reused keep-alive connection.
    pub pool_hits: AtomicU64,
    /// HTTP requests that had to open a fresh TCP connection.
    pub pool_misses: AtomicU64,
    /// Connections (or ready requests) refused by backpressure-aware
    /// admission control with a `503` (reactor server model).
    pub sheds: AtomicU64,
    /// Gauge: connections currently admitted by the server. Not part of
    /// [`MetricsSnapshot`] — gauges are instantaneous, and snapshot
    /// equality is what the chaos suite uses to assert "no traffic".
    pub active_connections: AtomicU64,
    /// Gauge: requests sitting in the reactor's dispatch queue, parsed
    /// but not yet picked up by an evaluation worker.
    pub accept_queue_depth: AtomicU64,
    /// Reactor: queued jobs discarded at dequeue because their connection
    /// slab slot was already reclaimed (client gone before evaluation
    /// started). Not part of [`MetricsSnapshot`] — recorded on the server
    /// side only, and the chaos suite's snapshot-equality "no traffic"
    /// assertions predate it.
    pub jobs_orphaned: AtomicU64,
    /// Reactor: in-flight jobs cancelled by the deadline/disconnect sweep
    /// while a worker was still evaluating them. Like
    /// [`jobs_orphaned`](Self::jobs_orphaned), outside the snapshot.
    pub jobs_cancelled: AtomicU64,
    /// Reactor: time a parsed request waited in the dispatch queue
    /// before a worker picked it up (the admission-control signal).
    pub reactor_dispatch_micros: Histogram,
    /// Reactor: time a finished response waited for the reactor to wake
    /// up and start writing it.
    pub reactor_wakeup_micros: Histogram,
}

impl std::fmt::Debug for NetMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // counters only: histograms summarize via their own snapshots
        f.debug_struct("NetMetrics")
            .field("snapshot", &self.snapshot())
            .field(
                "active_connections",
                &self.active_connections.load(Ordering::Relaxed),
            )
            .field(
                "accept_queue_depth",
                &self.accept_queue_depth.load(Ordering::Relaxed),
            )
            .finish()
    }
}

impl NetMetrics {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn record(&self, sent: usize, received: usize) {
        self.roundtrips.fetch_add(1, Ordering::Relaxed);
        self.bytes_sent.fetch_add(sent as u64, Ordering::Relaxed);
        self.bytes_received
            .fetch_add(received as u64, Ordering::Relaxed);
    }

    pub fn record_failure(&self) {
        self.failures.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_timeout(&self) {
        self.timeouts.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_fast_failure(&self) {
        self.fast_failures.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_breaker_open(&self) {
        self.breaker_opens.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_pool_hit(&self) {
        self.pool_hits.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_pool_miss(&self) {
        self.pool_misses.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_shed(&self) {
        self.sheds.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_job_orphaned(&self) {
        self.jobs_orphaned.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_job_cancelled(&self) {
        self.jobs_cancelled.fetch_add(1, Ordering::Relaxed);
    }

    /// Counters of the process-wide message [`crate::BufferPool`]:
    /// recycled-buffer hit rate and current free-list occupancy. Shared
    /// across transports (the pool is global), so they are exposed here
    /// rather than inside [`MetricsSnapshot`], whose equality the chaos
    /// suite uses to assert "no traffic happened".
    pub fn buffer_pool(&self) -> crate::bufpool::PoolStats {
        crate::bufpool::BufferPool::global().stats()
    }

    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            roundtrips: self.roundtrips.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            bytes_received: self.bytes_received.load(Ordering::Relaxed),
            failures: self.failures.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            fast_failures: self.fast_failures.load(Ordering::Relaxed),
            breaker_opens: self.breaker_opens.load(Ordering::Relaxed),
            pool_hits: self.pool_hits.load(Ordering::Relaxed),
            pool_misses: self.pool_misses.load(Ordering::Relaxed),
            sheds: self.sheds.load(Ordering::Relaxed),
        }
    }

    pub fn reset(&self) {
        self.roundtrips.store(0, Ordering::Relaxed);
        self.bytes_sent.store(0, Ordering::Relaxed);
        self.bytes_received.store(0, Ordering::Relaxed);
        self.failures.store(0, Ordering::Relaxed);
        self.retries.store(0, Ordering::Relaxed);
        self.timeouts.store(0, Ordering::Relaxed);
        self.fast_failures.store(0, Ordering::Relaxed);
        self.breaker_opens.store(0, Ordering::Relaxed);
        self.pool_hits.store(0, Ordering::Relaxed);
        self.pool_misses.store(0, Ordering::Relaxed);
        self.sheds.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of the counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MetricsSnapshot {
    pub roundtrips: u64,
    pub bytes_sent: u64,
    pub bytes_received: u64,
    pub failures: u64,
    pub retries: u64,
    pub timeouts: u64,
    pub fast_failures: u64,
    pub breaker_opens: u64,
    pub pool_hits: u64,
    pub pool_misses: u64,
    pub sheds: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let m = NetMetrics::new();
        m.record(100, 200);
        m.record(1, 2);
        m.record_failure();
        let s = m.snapshot();
        assert_eq!(s.roundtrips, 2);
        assert_eq!(s.bytes_sent, 101);
        assert_eq!(s.bytes_received, 202);
        assert_eq!(s.failures, 1);
        m.reset();
        assert_eq!(m.snapshot().roundtrips, 0);
    }

    #[test]
    fn resilience_counters_accumulate_and_reset() {
        let m = NetMetrics::new();
        m.record_retry();
        m.record_retry();
        m.record_timeout();
        m.record_fast_failure();
        m.record_breaker_open();
        m.record_pool_hit();
        m.record_pool_hit();
        m.record_pool_miss();
        let s = m.snapshot();
        assert_eq!(s.retries, 2);
        assert_eq!(s.timeouts, 1);
        assert_eq!(s.fast_failures, 1);
        assert_eq!(s.breaker_opens, 1);
        assert_eq!(s.pool_hits, 2);
        assert_eq!(s.pool_misses, 1);
        m.reset();
        assert_eq!(m.snapshot().retries, 0);
        assert_eq!(m.snapshot().breaker_opens, 0);
        assert_eq!(m.snapshot().pool_hits, 0);
        assert_eq!(m.snapshot().pool_misses, 0);
    }
}
