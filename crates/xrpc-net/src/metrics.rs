//! Byte/round-trip counters shared by both transports; the throughput
//! experiment (paper §3.3, "Throughput") reads these.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counters; cheap enough to update on every message.
#[derive(Default, Debug)]
pub struct NetMetrics {
    pub roundtrips: AtomicU64,
    pub bytes_sent: AtomicU64,
    pub bytes_received: AtomicU64,
    pub failures: AtomicU64,
}

impl NetMetrics {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn record(&self, sent: usize, received: usize) {
        self.roundtrips.fetch_add(1, Ordering::Relaxed);
        self.bytes_sent.fetch_add(sent as u64, Ordering::Relaxed);
        self.bytes_received
            .fetch_add(received as u64, Ordering::Relaxed);
    }

    pub fn record_failure(&self) {
        self.failures.fetch_add(1, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            roundtrips: self.roundtrips.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            bytes_received: self.bytes_received.load(Ordering::Relaxed),
            failures: self.failures.load(Ordering::Relaxed),
        }
    }

    pub fn reset(&self) {
        self.roundtrips.store(0, Ordering::Relaxed);
        self.bytes_sent.store(0, Ordering::Relaxed);
        self.bytes_received.store(0, Ordering::Relaxed);
        self.failures.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of the counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MetricsSnapshot {
    pub roundtrips: u64,
    pub bytes_sent: u64,
    pub bytes_received: u64,
    pub failures: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let m = NetMetrics::new();
        m.record(100, 200);
        m.record(1, 2);
        m.record_failure();
        let s = m.snapshot();
        assert_eq!(s.roundtrips, 2);
        assert_eq!(s.bytes_sent, 101);
        assert_eq!(s.bytes_received, 202);
        assert_eq!(s.failures, 1);
        m.reset();
        assert_eq!(m.snapshot().roundtrips, 0);
    }
}
