//! A minimal HTTP/1.1 server and client over `std::net` TCP — the
//! reproduction of the paper's "ultra-light HTTP daemon" (shttpd, §3).
//! POST-only with Content-Length framing, thread-per-connection, optional
//! keep-alive.

use crate::metrics::NetMetrics;
use crate::{NetError, Transport};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Handler for incoming requests: (path, body) → (status, response body).
pub type Handler = dyn Fn(&str, &[u8]) -> (u16, Vec<u8>) + Send + Sync;

/// A running HTTP server; dropping it stops the accept loop.
pub struct HttpServer {
    addr: std::net::SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    pub metrics: Arc<NetMetrics>,
}

impl HttpServer {
    /// Bind to `addr` (use port 0 for an ephemeral port) and serve.
    pub fn bind(addr: &str, handler: Arc<Handler>) -> Result<Self, NetError> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let metrics = Arc::new(NetMetrics::new());
        let sd = shutdown.clone();
        let m = metrics.clone();
        listener.set_nonblocking(true)?;
        let accept_thread = std::thread::Builder::new()
            .name(format!("xrpc-http-{local}"))
            .spawn(move || {
                while !sd.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let h = handler.clone();
                            let m2 = m.clone();
                            // request handlers may evaluate deep queries:
                            // give them room (see xqeval recursion cap)
                            let _ = std::thread::Builder::new()
                                .stack_size(32 * 1024 * 1024)
                                .spawn(move || {
                                    let _ = serve_connection(stream, &h, &m2);
                                });
                        }
                        Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(1));
                        }
                        Err(_) => break,
                    }
                }
            })
            .map_err(|e| NetError::new(e.to_string()))?;
        Ok(HttpServer {
            addr: local,
            shutdown,
            accept_thread: Some(accept_thread),
            metrics,
        })
    }

    pub fn port(&self) -> u16 {
        self.addr.port()
    }

    pub fn addr(&self) -> String {
        format!("127.0.0.1:{}", self.addr.port())
    }

    pub fn url(&self) -> String {
        format!("http://127.0.0.1:{}/xrpc", self.addr.port())
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

fn serve_connection(
    stream: TcpStream,
    handler: &Arc<Handler>,
    metrics: &NetMetrics,
) -> Result<(), NetError> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut stream = stream;
    loop {
        let req = match read_request(&mut reader) {
            Ok(Some(r)) => r,
            Ok(None) => return Ok(()), // clean close
            Err(e) => return Err(e),
        };
        let keep_alive = req.keep_alive;
        let (status, body) = handler(&req.path, &req.body);
        metrics.record(req.body.len(), body.len());
        let reason = match status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            500 => "Internal Server Error",
            _ => "Unknown",
        };
        let head = format!(
            "HTTP/1.1 {status} {reason}\r\nContent-Type: application/soap+xml; charset=utf-8\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
            body.len(),
            if keep_alive { "keep-alive" } else { "close" }
        );
        stream.write_all(head.as_bytes())?;
        stream.write_all(&body)?;
        stream.flush()?;
        if !keep_alive {
            return Ok(());
        }
    }
}

struct Request {
    path: String,
    body: Vec<u8>,
    keep_alive: bool,
}

fn read_request(reader: &mut BufReader<TcpStream>) -> Result<Option<Request>, NetError> {
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("/").to_string();
    let version = parts.next().unwrap_or("HTTP/1.1");
    if method != "POST" && method != "GET" {
        return Err(NetError::new(format!("unsupported method `{method}`")));
    }
    let mut content_length = 0usize;
    let mut keep_alive = version == "HTTP/1.1";
    loop {
        let mut h = String::new();
        if reader.read_line(&mut h)? == 0 {
            return Err(NetError::new("connection closed mid-headers"));
        }
        let h = h.trim_end();
        if h.is_empty() {
            break;
        }
        if let Some((k, v)) = h.split_once(':') {
            let k = k.trim().to_ascii_lowercase();
            let v = v.trim();
            if k == "content-length" {
                content_length = v
                    .parse()
                    .map_err(|_| NetError::new("bad Content-Length"))?;
            } else if k == "connection" {
                keep_alive = v.eq_ignore_ascii_case("keep-alive");
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(Some(Request {
        path,
        body,
        keep_alive,
    }))
}

/// HTTP client: POST `body` to `http://host:port/path`.
pub fn http_post(url: &str, body: &[u8]) -> Result<Vec<u8>, NetError> {
    let (addr, path) = parse_url(url)?;
    let mut stream = TcpStream::connect(&addr)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    let head = format!(
        "POST {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/soap+xml; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()?;

    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| NetError::new(format!("bad status line `{status_line}`")))?;
    let mut content_length: Option<usize> = None;
    loop {
        let mut h = String::new();
        if reader.read_line(&mut h)? == 0 {
            return Err(NetError::new("connection closed mid-headers"));
        }
        let h = h.trim_end();
        if h.is_empty() {
            break;
        }
        if let Some((k, v)) = h.split_once(':') {
            if k.trim().eq_ignore_ascii_case("content-length") {
                content_length = v.trim().parse().ok();
            }
        }
    }
    let body = match content_length {
        Some(n) => {
            let mut b = vec![0u8; n];
            reader.read_exact(&mut b)?;
            b
        }
        None => {
            let mut b = Vec::new();
            reader.read_to_end(&mut b)?;
            b
        }
    };
    if status >= 500 {
        // server errors still carry a SOAP Fault body; surface both
        return Ok(body);
    }
    Ok(body)
}

fn parse_url(url: &str) -> Result<(String, String), NetError> {
    let rest = url
        .strip_prefix("http://")
        .ok_or_else(|| NetError::new(format!("expected http:// URL, got `{url}`")))?;
    match rest.split_once('/') {
        Some((addr, path)) => Ok((addr.to_string(), format!("/{path}"))),
        None => Ok((rest.to_string(), "/".to_string())),
    }
}

/// A [`Transport`] over real loopback TCP. `dest` must be an
/// `http://host:port/path` URL.
pub struct HttpTransport {
    pub metrics: Arc<NetMetrics>,
}

impl HttpTransport {
    pub fn new() -> Self {
        HttpTransport {
            metrics: Arc::new(NetMetrics::new()),
        }
    }
}

impl Default for HttpTransport {
    fn default() -> Self {
        Self::new()
    }
}

impl Transport for HttpTransport {
    fn roundtrip(&self, dest: &str, body: &[u8]) -> Result<Vec<u8>, NetError> {
        let resp = http_post(dest, body).inspect_err(|_| self.metrics.record_failure())?;
        self.metrics.record(body.len(), resp.len());
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn echo_server() -> HttpServer {
        HttpServer::bind(
            "127.0.0.1:0",
            Arc::new(|path: &str, body: &[u8]| {
                let mut out = format!("path={path};").into_bytes();
                out.extend_from_slice(body);
                (200, out)
            }),
        )
        .unwrap()
    }

    #[test]
    fn post_roundtrip() {
        let server = echo_server();
        let url = format!("http://{}/xrpc", server.addr());
        let resp = http_post(&url, b"hello").unwrap();
        assert_eq!(resp, b"path=/xrpc;hello");
        assert_eq!(server.metrics.snapshot().roundtrips, 1);
    }

    #[test]
    fn large_body_roundtrip() {
        let server = echo_server();
        let url = format!("http://{}/big", server.addr());
        let body = vec![b'x'; 1 << 20];
        let resp = http_post(&url, &body).unwrap();
        assert_eq!(resp.len(), body.len() + "path=/big;".len());
    }

    #[test]
    fn concurrent_requests() {
        let server = echo_server();
        let url = format!("http://{}/c", server.addr());
        let mut handles = Vec::new();
        for i in 0..8 {
            let u = url.clone();
            handles.push(std::thread::spawn(move || {
                let body = format!("req{i}");
                let resp = http_post(&u, body.as_bytes()).unwrap();
                assert!(resp.ends_with(body.as_bytes()));
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(server.metrics.snapshot().roundtrips, 8);
    }

    #[test]
    fn transport_impl() {
        let server = echo_server();
        let t = HttpTransport::new();
        let url = format!("http://{}/t", server.addr());
        let r = t.roundtrip(&url, b"abc").unwrap();
        assert_eq!(r, b"path=/t;abc");
        assert_eq!(t.metrics.snapshot().bytes_sent, 3);
    }

    #[test]
    fn connection_refused_is_error() {
        let t = HttpTransport::new();
        assert!(t.roundtrip("http://127.0.0.1:1/x", b"x").is_err());
        assert_eq!(t.metrics.snapshot().failures, 1);
    }

    #[test]
    fn bad_url_rejected() {
        assert!(parse_url("ftp://x").is_err());
        assert_eq!(
            parse_url("http://a:1/b/c").unwrap(),
            ("a:1".to_string(), "/b/c".to_string())
        );
        assert_eq!(
            parse_url("http://a:1").unwrap(),
            ("a:1".to_string(), "/".to_string())
        );
    }
}
