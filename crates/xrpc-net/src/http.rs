//! A minimal HTTP/1.1 server and client over `std::net` TCP — the
//! reproduction of the paper's "ultra-light HTTP daemon" (shttpd, §3).
//! POST-only with Content-Length framing, optional keep-alive. The
//! server runs in one of two models (see [`ServerModel`]): the default
//! epoll reactor ([`crate::reactor`]) multiplexing every connection over
//! a small worker pool, or the original thread-per-connection baseline.
//! Timeouts and the maximum accepted body size are configurable via
//! [`HttpConfig`].

use crate::bufpool::BufferPool;
use crate::metrics::NetMetrics;
use crate::pool::ConnectionPool;
use crate::reactor::ReactorHandle;
use crate::{NetError, NetErrorKind, Transport};
use std::io::{BufRead, BufReader, IoSlice, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How the server multiplexes connections.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ServerModel {
    /// Readiness-driven epoll reactor: thousands of keep-alive
    /// connections multiplexed on one event loop, complete requests
    /// handed to a small fixed evaluation pool through a bounded
    /// channel, backpressure-aware admission shedding. The default.
    #[default]
    Reactor,
    /// One OS thread per connection over blocking sockets — the original
    /// model, kept for A/B comparison (`tables s1` benches both).
    Threaded,
}

/// Tuning knobs shared by the HTTP server and client. The defaults are
/// the values that used to be hardcoded (30 s socket read timeout) plus
/// a 64 MiB request-body cap.
///
/// Deprecation note: the `accept_poll_interval` knob is gone. It paced
/// the threaded model's sleep-polling accept loop (1 ms busy-wait per
/// listener at idle); accept is readiness-driven in the reactor model,
/// and the threaded baseline now uses a fixed internal poll slice.
#[derive(Debug, Clone, Copy)]
pub struct HttpConfig {
    /// Socket read timeout (server: per request read; client: response
    /// wait). Maps to [`NetErrorKind::Timeout`] when exceeded.
    pub read_timeout: Duration,
    /// Maximum request body the server accepts; a larger `Content-Length`
    /// is rejected with `413` *before* allocating the buffer.
    pub max_body_bytes: usize,
    /// How many idle keep-alive connections [`HttpTransport`] keeps per
    /// destination. `0` disables pooling (every request opens a fresh
    /// connection and sends `Connection: close`, the pre-pool behavior).
    pub pool_max_idle_per_host: usize,
    /// How long a pooled connection may sit idle before it is reaped
    /// instead of reused.
    pub pool_idle_timeout: Duration,
    /// Maximum concurrently served connections. Connections accepted
    /// beyond the cap are answered with `503 Service Unavailable`; the
    /// request is drained (never handled) so the response is delivered
    /// reliably before the connection closes. `0` means unlimited.
    /// Under [`ServerModel::Reactor`] this is one of three admission
    /// signals (alongside dispatch-queue depth and queue wait).
    pub max_connections: usize,
    /// Which server implementation [`HttpServer::bind_with`] starts.
    pub model: ServerModel,
    /// Reactor model: evaluation worker threads. `0` picks
    /// `max(4, available_parallelism)`.
    pub reactor_workers: usize,
    /// Reactor model: dispatch-channel capacity between the reactor and
    /// the workers. A full queue sheds new connections (and ready
    /// requests) with `503`.
    pub dispatch_queue: usize,
    /// Reactor model: when the EWMA of dispatch-queue wait exceeds this,
    /// new connections are shed — the latency-based admission signal.
    pub shed_wait: Duration,
}

impl Default for HttpConfig {
    fn default() -> Self {
        HttpConfig {
            read_timeout: Duration::from_secs(30),
            max_body_bytes: 64 << 20,
            pool_max_idle_per_host: 8,
            pool_idle_timeout: Duration::from_secs(60),
            max_connections: 0,
            model: ServerModel::Reactor,
            reactor_workers: 0,
            dispatch_queue: 1024,
            shed_wait: Duration::from_secs(2),
        }
    }
}

/// Fixed poll slice for the threaded baseline's accept loop (was the
/// `accept_poll_interval` knob).
const THREADED_ACCEPT_POLL: Duration = Duration::from_millis(1);

/// Handler for incoming requests: (path, body) → (status, response body).
pub type Handler = dyn Fn(&str, &[u8]) -> (u16, Vec<u8>) + Send + Sync;

/// A running HTTP server; dropping it shuts down gracefully (stop
/// accepting, drain in-flight connections for a bounded period, join the
/// worker threads) — see [`shutdown_graceful`](Self::shutdown_graceful)
/// for an explicit, deadline-controlled shutdown. Which implementation
/// serves is chosen by [`HttpConfig::model`]; the public surface is
/// identical for both.
pub struct HttpServer {
    addr: std::net::SocketAddr,
    inner: ServerImpl,
    pub metrics: Arc<NetMetrics>,
}

enum ServerImpl {
    Threaded {
        shutdown: Arc<AtomicBool>,
        accept_thread: Option<std::thread::JoinHandle<()>>,
        workers: Arc<std::sync::Mutex<Vec<std::thread::JoinHandle<()>>>>,
        active: Arc<AtomicUsize>,
    },
    Reactor(ReactorHandle),
}

impl HttpServer {
    /// Bind to `addr` (use port 0 for an ephemeral port) and serve with
    /// default [`HttpConfig`].
    pub fn bind(addr: &str, handler: Arc<Handler>) -> Result<Self, NetError> {
        Self::bind_with(addr, handler, HttpConfig::default())
    }

    /// Bind with explicit configuration.
    pub fn bind_with(
        addr: &str,
        handler: Arc<Handler>,
        config: HttpConfig,
    ) -> Result<Self, NetError> {
        let metrics = Arc::new(NetMetrics::new());
        match config.model {
            ServerModel::Reactor => {
                let handle = crate::reactor::bind(addr, handler, config, metrics.clone())
                    .map_err(NetError::from)?;
                Ok(HttpServer {
                    addr: handle.addr(),
                    inner: ServerImpl::Reactor(handle),
                    metrics,
                })
            }
            ServerModel::Threaded => Self::bind_threaded(addr, handler, config, metrics),
        }
    }

    fn bind_threaded(
        addr: &str,
        handler: Arc<Handler>,
        config: HttpConfig,
        metrics: Arc<NetMetrics>,
    ) -> Result<Self, NetError> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let sd = shutdown.clone();
        let m = metrics.clone();
        let active = Arc::new(AtomicUsize::new(0));
        let workers: Arc<std::sync::Mutex<Vec<std::thread::JoinHandle<()>>>> =
            Arc::new(std::sync::Mutex::new(Vec::new()));
        let act = active.clone();
        let wrk = workers.clone();
        listener.set_nonblocking(true)?;
        let accept_thread = std::thread::Builder::new()
            .name(format!("xrpc-http-{local}"))
            .spawn(move || {
                while !sd.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            if config.max_connections > 0
                                && act.load(Ordering::Relaxed) >= config.max_connections
                            {
                                m.record_failure();
                                m.record_shed();
                                // rejecting involves draining the unread
                                // request; keep the accept loop responsive
                                track(
                                    &wrk,
                                    std::thread::Builder::new()
                                        .spawn(move || reject_over_cap(stream)),
                                );
                                continue;
                            }
                            let h = handler.clone();
                            let m2 = m.clone();
                            let sd2 = sd.clone();
                            let guard = ConnGuard::enter(&act, &m);
                            // request handlers may evaluate deep queries:
                            // give them room (see xqeval recursion cap)
                            track(
                                &wrk,
                                std::thread::Builder::new()
                                    .stack_size(32 * 1024 * 1024)
                                    .spawn(move || {
                                        let _guard = guard;
                                        let _ = serve_connection(stream, &h, &m2, &config, &sd2);
                                    }),
                            );
                        }
                        Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(THREADED_ACCEPT_POLL);
                        }
                        Err(_) => break,
                    }
                }
            })
            .map_err(|e| NetError::new(e.to_string()))?;
        Ok(HttpServer {
            addr: local,
            inner: ServerImpl::Threaded {
                shutdown,
                accept_thread: Some(accept_thread),
                workers,
                active,
            },
            metrics,
        })
    }

    pub fn port(&self) -> u16 {
        self.addr.port()
    }

    pub fn addr(&self) -> String {
        format!("127.0.0.1:{}", self.addr.port())
    }

    pub fn url(&self) -> String {
        format!("http://127.0.0.1:{}/xrpc", self.addr.port())
    }

    /// Connections currently being served.
    pub fn active_connections(&self) -> usize {
        match &self.inner {
            ServerImpl::Threaded { active, .. } => active.load(Ordering::SeqCst),
            ServerImpl::Reactor(_) => {
                self.metrics.active_connections.load(Ordering::SeqCst) as usize
            }
        }
    }

    /// Graceful shutdown: stop accepting new connections, let in-flight
    /// requests finish for up to `deadline`, and join every worker thread
    /// that completes in time. Idle keep-alive connections are closed
    /// without waiting out their read timeout. Returns `true` when the
    /// server fully drained; `false` leaves any straggling workers
    /// detached (their connections die with the process). Idempotent —
    /// later calls (including the one in `Drop`) are cheap no-ops.
    pub fn shutdown_graceful(&mut self, deadline: Duration) -> bool {
        match &mut self.inner {
            ServerImpl::Reactor(handle) => handle.shutdown_graceful(deadline),
            ServerImpl::Threaded {
                shutdown,
                accept_thread,
                workers,
                active,
            } => {
                shutdown.store(true, Ordering::SeqCst);
                if let Some(t) = accept_thread.take() {
                    let _ = t.join();
                }
                let end = std::time::Instant::now() + deadline;
                while active.load(Ordering::SeqCst) > 0 && std::time::Instant::now() < end {
                    std::thread::sleep(Duration::from_millis(2));
                }
                let drained = active.load(Ordering::SeqCst) == 0;
                let handles: Vec<_> = match workers.lock() {
                    Ok(mut w) => w.drain(..).collect(),
                    Err(_) => Vec::new(),
                };
                let mut stragglers = Vec::new();
                for h in handles {
                    // a drained server's workers are past their ConnGuard
                    // drop: joining is instantaneous. Past-deadline
                    // stragglers stay detached rather than blocking
                    // shutdown.
                    if drained || h.is_finished() {
                        let _ = h.join();
                    } else {
                        stragglers.push(h);
                    }
                }
                if !stragglers.is_empty() {
                    if let Ok(mut w) = workers.lock() {
                        w.extend(stragglers);
                    }
                }
                drained
            }
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.shutdown_graceful(Duration::from_secs(5));
    }
}

/// Remember a worker's join handle so shutdown can join it; finished
/// workers are pruned opportunistically to keep the list from growing
/// with connection churn.
fn track(
    workers: &std::sync::Mutex<Vec<std::thread::JoinHandle<()>>>,
    spawned: std::io::Result<std::thread::JoinHandle<()>>,
) {
    let Ok(handle) = spawned else { return };
    if let Ok(mut w) = workers.lock() {
        w.retain(|h| !h.is_finished());
        w.push(handle);
    }
}

fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Refuse an over-cap connection with a `503`. The request has not been
/// read at this point, and closing a socket with unread bytes in its
/// receive buffer makes the kernel send RST — which can discard the
/// in-flight 503 before the client reads it, surfacing as ECONNRESET
/// instead of the intended status. So: respond, half-close the write
/// side (FIN), then drain whatever the client sends until it sees the
/// response and closes its end. The drain is deadline-bounded so a
/// trickling client can't hold the thread hostage.
fn reject_over_cap(mut stream: TcpStream) {
    if write_response(&mut stream, 503, b"connection limit reached", false).is_err() {
        return;
    }
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let mut sink = [0u8; 8192];
    while std::time::Instant::now() < deadline {
        match stream.read(&mut sink) {
            Ok(0) => break,
            Ok(_) => {}
            Err(ref e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => break,
        }
    }
}

/// Decrements the server's active-connection counter (and the
/// `net_active_connections` gauge) when the serving thread finishes,
/// whatever the exit path.
struct ConnGuard(Arc<AtomicUsize>, Arc<NetMetrics>);

impl ConnGuard {
    fn enter(active: &Arc<AtomicUsize>, metrics: &Arc<NetMetrics>) -> Self {
        active.fetch_add(1, Ordering::Relaxed);
        metrics.active_connections.fetch_add(1, Ordering::Relaxed);
        ConnGuard(active.clone(), metrics.clone())
    }
}

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
        self.1.active_connections.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Write `head` and `body` as one vectored write so the kernel sees a
/// single gathered buffer instead of two `write` calls (and the body is
/// never copied into a concatenated buffer). Falls back to looping on
/// short writes.
fn write_all_vectored(w: &mut impl Write, mut head: &[u8], mut body: &[u8]) -> std::io::Result<()> {
    while !head.is_empty() || !body.is_empty() {
        let n = w.write_vectored(&[IoSlice::new(head), IoSlice::new(body)])?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::WriteZero,
                "failed to write whole message",
            ));
        }
        if n >= head.len() {
            body = &body[(n - head.len()).min(body.len())..];
            head = &[];
        } else {
            head = &head[n..];
        }
    }
    Ok(())
}

/// The response head both server models emit — byte-identical between
/// the threaded and reactor paths (a regression test depends on it).
pub(crate) fn response_head(status: u16, body_len: usize, keep_alive: bool) -> String {
    format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: application/soap+xml; charset=utf-8\r\nContent-Length: {body_len}\r\nConnection: {}\r\n\r\n",
        status_reason(status),
        if keep_alive { "keep-alive" } else { "close" }
    )
}

fn write_response(
    stream: &mut TcpStream,
    status: u16,
    body: &[u8],
    keep_alive: bool,
) -> Result<(), NetError> {
    let head = response_head(status, body.len(), keep_alive);
    write_all_vectored(stream, head.as_bytes(), body)?;
    stream.flush()?;
    Ok(())
}

fn serve_connection(
    stream: TcpStream,
    handler: &Arc<Handler>,
    metrics: &NetMetrics,
    config: &HttpConfig,
    shutdown: &AtomicBool,
) -> Result<(), NetError> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(config.read_timeout))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut stream = stream;
    // one request-body buffer per connection, reused across keep-alive
    // requests and recycled into the global pool when the connection ends
    let mut body = BufferPool::global().get(0);
    let result = serve_requests(
        &mut reader,
        &mut stream,
        handler,
        metrics,
        config,
        &mut body,
        shutdown,
    );
    BufferPool::global().put(body);
    result
}

/// What the between-requests wait produced.
enum Wait {
    /// Request bytes are buffered: serve them (even while shutting down —
    /// in-flight work drains).
    Ready,
    /// The client closed the connection cleanly.
    Closed,
    /// The server is shutting down and the connection is idle.
    ShuttingDown,
}

/// Wait for the next request on a (keep-alive) connection in short poll
/// slices, so an idle worker notices a graceful shutdown immediately
/// instead of blocking out its full read timeout. Restores the full
/// per-request read timeout before returning `Ready`.
fn wait_for_request(
    reader: &mut BufReader<TcpStream>,
    config: &HttpConfig,
    shutdown: &AtomicBool,
) -> Result<Wait, NetError> {
    if !reader.buffer().is_empty() {
        return Ok(Wait::Ready);
    }
    let slice = Duration::from_millis(50).min(config.read_timeout);
    let started = std::time::Instant::now();
    reader.get_ref().set_read_timeout(Some(slice))?;
    loop {
        match reader.fill_buf() {
            Ok([]) => return Ok(Wait::Closed),
            Ok(_) => {
                reader
                    .get_ref()
                    .set_read_timeout(Some(config.read_timeout))?;
                return Ok(Wait::Ready);
            }
            Err(ref e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shutdown.load(Ordering::Relaxed) {
                    return Ok(Wait::ShuttingDown);
                }
                if started.elapsed() >= config.read_timeout {
                    return Err(NetError::with_kind(
                        NetErrorKind::Timeout,
                        "idle connection timed out",
                    ));
                }
            }
            Err(e) => return Err(e.into()),
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn serve_requests(
    reader: &mut BufReader<TcpStream>,
    stream: &mut TcpStream,
    handler: &Arc<Handler>,
    metrics: &NetMetrics,
    config: &HttpConfig,
    body: &mut Vec<u8>,
    shutdown: &AtomicBool,
) -> Result<(), NetError> {
    loop {
        match wait_for_request(reader, config, shutdown)? {
            Wait::Ready => {}
            Wait::Closed | Wait::ShuttingDown => return Ok(()),
        }
        let req = match read_request(reader, config, body) {
            Ok(Some(r)) => r,
            Ok(None) => return Ok(()), // clean close
            // protocol violations get an HTTP error response before the
            // connection closes; I/O failures just drop the connection
            Err(ReadError::Proto(msg)) => {
                let _ = write_response(stream, 400, msg.as_bytes(), false);
                metrics.record_failure();
                return Err(NetError::new(msg));
            }
            Err(ReadError::TooLarge(n)) => {
                let msg = format!(
                    "request body of {n} bytes exceeds limit of {} bytes",
                    config.max_body_bytes
                );
                let _ = write_response(stream, 413, msg.as_bytes(), false);
                metrics.record_failure();
                return Err(NetError::with_kind(NetErrorKind::TooLarge, msg));
            }
            Err(ReadError::Io(e)) => {
                metrics.record_failure();
                return Err(e);
            }
        };
        let keep_alive = req.keep_alive;
        let (status, resp) = handler(&req.path, body);
        metrics.record(body.len(), resp.len());
        write_response(stream, status, &resp, keep_alive)?;
        // the handler's response buffer is spent: recycle it
        BufferPool::global().put(resp);
        if !keep_alive {
            return Ok(());
        }
    }
}

/// Request metadata; the body lands in the caller-owned buffer.
struct Request {
    path: String,
    keep_alive: bool,
}

enum ReadError {
    /// Malformed request; answer 400.
    Proto(String),
    /// Content-Length over the configured cap; answer 413.
    TooLarge(usize),
    /// Transport failure; no response possible.
    Io(NetError),
}

impl From<std::io::Error> for ReadError {
    fn from(e: std::io::Error) -> Self {
        ReadError::Io(e.into())
    }
}

fn read_request(
    reader: &mut BufReader<TcpStream>,
    config: &HttpConfig,
    body: &mut Vec<u8>,
) -> Result<Option<Request>, ReadError> {
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = match parts.next() {
        Some(p) => p.to_string(),
        None => {
            return Err(ReadError::Proto(format!(
                "malformed request line `{}`",
                line.trim_end()
            )))
        }
    };
    let version = parts.next().unwrap_or("");
    if method != "POST" && method != "GET" {
        return Err(ReadError::Proto(format!("unsupported method `{method}`")));
    }
    if !version.starts_with("HTTP/") {
        return Err(ReadError::Proto(format!(
            "malformed request line `{}`",
            line.trim_end()
        )));
    }
    let mut content_length = 0usize;
    let mut keep_alive = version == "HTTP/1.1";
    loop {
        let mut h = String::new();
        if reader.read_line(&mut h)? == 0 {
            return Err(ReadError::Proto(
                "connection closed mid-headers".to_string(),
            ));
        }
        let h = h.trim_end();
        if h.is_empty() {
            break;
        }
        if let Some((k, v)) = h.split_once(':') {
            let k = k.trim().to_ascii_lowercase();
            let v = v.trim();
            if k == "content-length" {
                content_length = v
                    .parse()
                    .map_err(|_| ReadError::Proto("bad Content-Length".to_string()))?;
            } else if k == "connection" {
                keep_alive = v.eq_ignore_ascii_case("keep-alive");
            }
        }
    }
    if content_length > config.max_body_bytes {
        return Err(ReadError::TooLarge(content_length));
    }
    body.clear();
    body.resize(content_length, 0);
    reader.read_exact(body)?;
    Ok(Some(Request { path, keep_alive }))
}

/// HTTP client: POST `body` to `http://host:port/path` with default
/// config, surfacing protocol-level failures as typed errors: a `413`
/// maps to [`NetErrorKind::TooLarge`]; any other `5xx` whose body is not
/// a SOAP envelope (so it cannot carry a SOAP Fault for the XRPC layer to
/// decode) becomes a typed error carrying the status.
pub fn http_post(url: &str, body: &[u8]) -> Result<Vec<u8>, NetError> {
    let (status, resp) = http_post_with(url, body, &HttpConfig::default())?;
    classify_response(status, resp)
}

/// Decide whether an HTTP response is usable by the SOAP layer. Server
/// errors *with* a SOAP envelope pass through (the XRPC layer surfaces
/// the SOAP Fault inside); anything else 5xx/413 becomes a typed error.
pub fn classify_response(status: u16, body: Vec<u8>) -> Result<Vec<u8>, NetError> {
    if status == 413 {
        return Err(NetError::with_kind(
            NetErrorKind::TooLarge,
            format!(
                "server rejected request: HTTP 413 ({})",
                String::from_utf8_lossy(&body)
            ),
        ));
    }
    if status >= 500 && !looks_like_soap(&body) {
        return Err(NetError::with_kind(
            NetErrorKind::Other,
            format!(
                "HTTP {status} without a SOAP fault body: {}",
                String::from_utf8_lossy(&body[..body.len().min(200)])
            ),
        ));
    }
    Ok(body)
}

fn looks_like_soap(body: &[u8]) -> bool {
    let text = String::from_utf8_lossy(&body[..body.len().min(512)]);
    let trimmed = text.trim_start();
    trimmed.starts_with('<') && (trimmed.contains("Envelope") || trimmed.contains("envelope"))
}

/// HTTP client primitive: POST and return `(status, body)` without
/// classifying. Timeouts and connection failures map to typed
/// [`NetErrorKind`]s via the `io::Error` conversion. Opens a fresh
/// connection per call; for keep-alive reuse go through
/// [`http_post_pooled`] (what [`HttpTransport`] does).
pub fn http_post_with(
    url: &str,
    body: &[u8],
    config: &HttpConfig,
) -> Result<(u16, Vec<u8>), NetError> {
    let (status, body, _reused) = http_post_pooled(url, body, config, None)?;
    Ok((status, body))
}

/// A request/response exchange failure, remembering whether *any* byte
/// of the response had arrived. Zero bytes on a *reused* connection is
/// the keep-alive race — the server idle-closed the socket before
/// reading our request — and is the only case the client retries itself.
struct ExchangeError {
    error: NetError,
    before_response: bool,
}

impl ExchangeError {
    fn before(error: NetError) -> Self {
        ExchangeError {
            error,
            before_response: true,
        }
    }

    fn mid(error: NetError) -> Self {
        ExchangeError {
            error,
            before_response: false,
        }
    }
}

/// POST over a pooled keep-alive connection when `pool` is given (fresh
/// `Connection: close` exchange otherwise). Returns `(status, body,
/// reused)` where `reused` says the response came over a pooled
/// connection. A reused connection that dies before yielding a single
/// response byte is retried exactly once on a fresh connection; any
/// other failure is surfaced as-is.
pub fn http_post_pooled(
    url: &str,
    body: &[u8],
    config: &HttpConfig,
    pool: Option<&ConnectionPool>,
) -> Result<(u16, Vec<u8>, bool), NetError> {
    let (addr, path) = parse_url(url)?;
    let keep_alive = pool.is_some();
    if let Some(pool) = pool {
        if let Some(stream) = pool.checkout(&addr) {
            match exchange(stream, &addr, &path, body, config, keep_alive) {
                Ok((status, resp, reusable, stream)) => {
                    if reusable {
                        pool.checkin(&addr, stream);
                    }
                    return Ok((status, resp, true));
                }
                // stale pooled socket: fall through to a fresh connection
                Err(e) if e.before_response => {}
                Err(e) => return Err(e.error),
            }
        }
    }
    let stream = TcpStream::connect(&addr)?;
    let (status, resp, reusable, stream) =
        exchange(stream, &addr, &path, body, config, keep_alive).map_err(|e| e.error)?;
    if reusable {
        if let Some(pool) = pool {
            pool.checkin(&addr, stream);
        }
    }
    Ok((status, resp, false))
}

/// One request/response exchange on an established connection. On
/// success returns the stream back (pulled out of the `BufReader`) plus
/// whether it is safe to pool: the response must be `Content-Length`
/// framed, not `Connection: close`, and leave no unread bytes buffered.
fn exchange(
    mut stream: TcpStream,
    addr: &str,
    path: &str,
    body: &[u8],
    config: &HttpConfig,
    keep_alive: bool,
) -> Result<(u16, Vec<u8>, bool, TcpStream), ExchangeError> {
    stream
        .set_nodelay(true)
        .map_err(|e| ExchangeError::before(e.into()))?;
    stream
        .set_read_timeout(Some(config.read_timeout))
        .map_err(|e| ExchangeError::before(e.into()))?;
    let head = format!(
        "POST {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/soap+xml; charset=utf-8\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
        body.len(),
        if keep_alive { "keep-alive" } else { "close" }
    );
    write_all_vectored(&mut stream, head.as_bytes(), body)
        .map_err(|e| ExchangeError::before(e.into()))?;
    stream
        .flush()
        .map_err(|e| ExchangeError::before(e.into()))?;

    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    match reader.read_line(&mut status_line) {
        Ok(0) => {
            return Err(ExchangeError::before(NetError::with_kind(
                NetErrorKind::ConnectionReset,
                "connection closed before response",
            )))
        }
        Ok(_) => {}
        Err(e) => {
            let before = status_line.is_empty();
            let err = ExchangeError {
                error: e.into(),
                before_response: before,
            };
            return Err(err);
        }
    }
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            ExchangeError::mid(NetError::new(format!("bad status line `{status_line}`")))
        })?;
    let mut content_length: Option<usize> = None;
    let mut conn_close = !status_line.starts_with("HTTP/1.1");
    loop {
        let mut h = String::new();
        match reader.read_line(&mut h) {
            Ok(0) => {
                return Err(ExchangeError::mid(NetError::with_kind(
                    NetErrorKind::ConnectionReset,
                    "connection closed mid-headers",
                )))
            }
            Ok(_) => {}
            Err(e) => return Err(ExchangeError::mid(e.into())),
        }
        let h = h.trim_end();
        if h.is_empty() {
            break;
        }
        if let Some((k, v)) = h.split_once(':') {
            let k = k.trim();
            if k.eq_ignore_ascii_case("content-length") {
                // a malformed length is a framing violation, not a missing
                // header: treating it as absent would silently switch to
                // read-to-EOF framing and return a mis-framed body
                let n = v.trim().parse().map_err(|_| {
                    ExchangeError::mid(NetError::with_kind(
                        NetErrorKind::Corrupt,
                        format!("malformed Content-Length `{}`", v.trim()),
                    ))
                })?;
                content_length = Some(n);
            } else if k.eq_ignore_ascii_case("connection") && v.trim().eq_ignore_ascii_case("close")
            {
                conn_close = true;
            }
        }
    }
    let resp_body = match content_length {
        Some(n) => {
            let mut b = BufferPool::global().get(n);
            b.resize(n, 0);
            reader
                .read_exact(&mut b)
                .map_err(|e| ExchangeError::mid(e.into()))?;
            b
        }
        None => {
            // no framing: the body runs to EOF, so the connection is spent
            conn_close = true;
            let mut b = Vec::new();
            reader
                .read_to_end(&mut b)
                .map_err(|e| ExchangeError::mid(e.into()))?;
            b
        }
    };
    let reusable = keep_alive && !conn_close && reader.buffer().is_empty();
    Ok((status, resp_body, reusable, reader.into_inner()))
}

fn parse_url(url: &str) -> Result<(String, String), NetError> {
    let rest = url
        .strip_prefix("http://")
        .ok_or_else(|| NetError::new(format!("expected http:// URL, got `{url}`")))?;
    match rest.split_once('/') {
        Some((addr, path)) => Ok((addr.to_string(), format!("/{path}"))),
        None => Ok((rest.to_string(), "/".to_string())),
    }
}

/// A [`Transport`] over real loopback TCP. `dest` must be an
/// `http://host:port/path` URL. Keeps a per-destination pool of idle
/// keep-alive connections (sized by
/// [`HttpConfig::pool_max_idle_per_host`]); reuse shows up as
/// `pool_hits` in [`NetMetrics`].
pub struct HttpTransport {
    pub metrics: Arc<NetMetrics>,
    pub config: HttpConfig,
    pub pool: ConnectionPool,
}

impl HttpTransport {
    pub fn new() -> Self {
        Self::with_config(HttpConfig::default())
    }

    pub fn with_config(config: HttpConfig) -> Self {
        HttpTransport {
            metrics: Arc::new(NetMetrics::new()),
            config,
            pool: ConnectionPool::new(config.pool_max_idle_per_host, config.pool_idle_timeout),
        }
    }

    fn pool_ref(&self) -> Option<&ConnectionPool> {
        (self.config.pool_max_idle_per_host > 0).then_some(&self.pool)
    }
}

impl Default for HttpTransport {
    fn default() -> Self {
        Self::new()
    }
}

impl Transport for HttpTransport {
    fn roundtrip(&self, dest: &str, body: &[u8]) -> Result<Vec<u8>, NetError> {
        let resp = http_post_pooled(dest, body, &self.config, self.pool_ref())
            .and_then(|(status, resp, reused)| {
                if reused {
                    self.metrics.record_pool_hit();
                } else {
                    self.metrics.record_pool_miss();
                }
                classify_response(status, resp)
            })
            .inspect_err(|e| {
                self.metrics.record_failure();
                if e.kind == NetErrorKind::Timeout {
                    self.metrics.record_timeout();
                }
            })?;
        self.metrics.record(body.len(), resp.len());
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn echo_server() -> HttpServer {
        HttpServer::bind(
            "127.0.0.1:0",
            Arc::new(|path: &str, body: &[u8]| {
                let mut out = format!("path={path};").into_bytes();
                out.extend_from_slice(body);
                (200, out)
            }),
        )
        .unwrap()
    }

    #[test]
    fn post_roundtrip() {
        let server = echo_server();
        let url = format!("http://{}/xrpc", server.addr());
        let resp = http_post(&url, b"hello").unwrap();
        assert_eq!(resp, b"path=/xrpc;hello");
        assert_eq!(server.metrics.snapshot().roundtrips, 1);
    }

    #[test]
    fn large_body_roundtrip() {
        let server = echo_server();
        let url = format!("http://{}/big", server.addr());
        let body = vec![b'x'; 1 << 20];
        let resp = http_post(&url, &body).unwrap();
        assert_eq!(resp.len(), body.len() + "path=/big;".len());
    }

    #[test]
    fn concurrent_requests() {
        let server = echo_server();
        let url = format!("http://{}/c", server.addr());
        let mut handles = Vec::new();
        for i in 0..8 {
            let u = url.clone();
            handles.push(std::thread::spawn(move || {
                let body = format!("req{i}");
                let resp = http_post(&u, body.as_bytes()).unwrap();
                assert!(resp.ends_with(body.as_bytes()));
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(server.metrics.snapshot().roundtrips, 8);
    }

    #[test]
    fn transport_impl() {
        let server = echo_server();
        let t = HttpTransport::new();
        let url = format!("http://{}/t", server.addr());
        let r = t.roundtrip(&url, b"abc").unwrap();
        assert_eq!(r, b"path=/t;abc");
        assert_eq!(t.metrics.snapshot().bytes_sent, 3);
    }

    #[test]
    fn connection_refused_is_typed_error() {
        let t = HttpTransport::new();
        let e = t.roundtrip("http://127.0.0.1:1/x", b"x").unwrap_err();
        assert_eq!(e.kind, NetErrorKind::ConnectionRefused);
        assert_eq!(t.metrics.snapshot().failures, 1);
    }

    #[test]
    fn bad_url_rejected() {
        assert!(parse_url("ftp://x").is_err());
        assert_eq!(
            parse_url("http://a:1/b/c").unwrap(),
            ("a:1".to_string(), "/b/c".to_string())
        );
        assert_eq!(
            parse_url("http://a:1").unwrap(),
            ("a:1".to_string(), "/".to_string())
        );
    }

    #[test]
    fn soap_fault_5xx_body_passes_through() {
        let fault = br#"<?xml version="1.0"?><env:Envelope xmlns:env="http://www.w3.org/2003/05/soap-envelope"><env:Body><env:Fault/></env:Body></env:Envelope>"#;
        let server = HttpServer::bind(
            "127.0.0.1:0",
            Arc::new(move |_: &str, _: &[u8]| (500, fault.to_vec())),
        )
        .unwrap();
        let url = format!("http://{}/f", server.addr());
        // the SOAP layer decodes the fault, so the body must come through
        let body = http_post(&url, b"x").unwrap();
        assert!(String::from_utf8_lossy(&body).contains("Fault"));
    }

    #[test]
    fn non_soap_5xx_is_typed_error() {
        let server = HttpServer::bind(
            "127.0.0.1:0",
            Arc::new(|_: &str, _: &[u8]| (500, b"Internal proxy meltdown".to_vec())),
        )
        .unwrap();
        let url = format!("http://{}/f", server.addr());
        let e = http_post(&url, b"x").unwrap_err();
        assert_eq!(e.kind, NetErrorKind::Other);
        assert!(e.message.contains("HTTP 500"), "{}", e.message);
        assert!(e.message.contains("meltdown"), "{}", e.message);
    }

    #[test]
    fn pooled_transport_reuses_connections() {
        let server = echo_server();
        let t = HttpTransport::new();
        let url = format!("http://{}/p", server.addr());
        for i in 0..5 {
            let body = format!("req{i}");
            let resp = t.roundtrip(&url, body.as_bytes()).unwrap();
            assert!(resp.ends_with(body.as_bytes()));
        }
        let s = t.metrics.snapshot();
        assert_eq!(s.roundtrips, 5);
        assert_eq!(s.pool_misses, 1, "only the first call should connect");
        assert_eq!(s.pool_hits, 4);
        assert_eq!(t.pool.idle_count(&server.addr()), 1);
        // the server saw one connection carrying all five requests
        assert_eq!(server.metrics.snapshot().roundtrips, 5);
    }

    #[test]
    fn pool_disabled_by_zero_capacity() {
        let server = echo_server();
        let t = HttpTransport::with_config(HttpConfig {
            pool_max_idle_per_host: 0,
            ..HttpConfig::default()
        });
        let url = format!("http://{}/p", server.addr());
        for _ in 0..3 {
            t.roundtrip(&url, b"x").unwrap();
        }
        let s = t.metrics.snapshot();
        assert_eq!(s.pool_hits, 0);
        assert_eq!(s.pool_misses, 3);
        assert_eq!(t.pool.idle_count(&server.addr()), 0);
    }

    #[test]
    fn pool_idle_timeout_forces_fresh_connection() {
        let server = echo_server();
        let t = HttpTransport::with_config(HttpConfig {
            pool_idle_timeout: Duration::from_millis(5),
            ..HttpConfig::default()
        });
        let url = format!("http://{}/p", server.addr());
        t.roundtrip(&url, b"x").unwrap();
        std::thread::sleep(Duration::from_millis(25));
        t.roundtrip(&url, b"y").unwrap();
        let s = t.metrics.snapshot();
        assert_eq!(s.pool_hits, 0, "expired connection must not be reused");
        assert_eq!(s.pool_misses, 2);
    }

    /// A raw single-shot server that *claims* keep-alive but closes the
    /// connection after each response — the keep-alive race. The client
    /// must transparently retry the stale pooled socket once.
    #[test]
    fn stale_pooled_connection_retried_once() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            for _ in 0..2 {
                let (stream, _) = listener.accept().unwrap();
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                let mut content_length = 0usize;
                loop {
                    let mut line = String::new();
                    reader.read_line(&mut line).unwrap();
                    let line = line.trim_end();
                    if line.is_empty() {
                        break;
                    }
                    if let Some((k, v)) = line.split_once(':') {
                        if k.trim().eq_ignore_ascii_case("content-length") {
                            content_length = v.trim().parse().unwrap();
                        }
                    }
                }
                let mut body = vec![0u8; content_length];
                reader.read_exact(&mut body).unwrap();
                let mut stream = stream;
                write_response(&mut stream, 200, &body, true).unwrap();
                // dropping the stream closes it despite `keep-alive`
            }
        });
        let t = HttpTransport::new();
        let url = format!("http://{addr}/s");
        assert_eq!(t.roundtrip(&url, b"one").unwrap(), b"one");
        // let the server's FIN reach the pooled socket
        std::thread::sleep(Duration::from_millis(30));
        // checkout hands back the dead socket; the zero-bytes failure
        // must be absorbed by a single fresh-connection retry
        assert_eq!(t.roundtrip(&url, b"two").unwrap(), b"two");
        let s = t.metrics.snapshot();
        assert_eq!(s.roundtrips, 2);
        assert_eq!(s.failures, 0);
        assert_eq!(s.pool_hits, 0, "the stale attempt must not count as a hit");
        assert_eq!(s.pool_misses, 2);
        server.join().unwrap();
    }

    #[test]
    fn connection_cap_rejects_with_503() {
        let server = HttpServer::bind_with(
            "127.0.0.1:0",
            Arc::new(|_: &str, b: &[u8]| (200, b.to_vec())),
            HttpConfig {
                max_connections: 1,
                ..HttpConfig::default()
            },
        )
        .unwrap();
        let url = format!("http://{}/cap", server.addr());
        // an idle raw connection occupies the single slot once accepted
        let hold = TcpStream::connect(server.addr()).unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            let (status, _) = http_post_with(&url, b"x", &HttpConfig::default()).unwrap();
            if status == 503 {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "over-cap connection was never rejected"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        // the typed client path surfaces the 503 as a non-SOAP 5xx error
        let e = http_post(&url, b"x").unwrap_err();
        assert_eq!(e.kind, NetErrorKind::Other);
        assert!(e.message.contains("HTTP 503"), "{}", e.message);
        // releasing the held connection frees the slot again
        drop(hold);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            let (status, body) = http_post_with(&url, b"after", &HttpConfig::default()).unwrap();
            if status == 200 {
                assert_eq!(body, b"after");
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "slot was never released"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    /// Keep-alive reuse (with its recycled per-connection buffers) must be
    /// invisible: N different-sized requests over one pooled connection
    /// yield byte-identical responses to fresh-connection requests.
    #[test]
    fn keep_alive_responses_byte_identical_to_fresh_connections() {
        let server = echo_server();
        let url = format!("http://{}/ka", server.addr());
        let pooled = HttpTransport::new();
        let fresh = HttpTransport::with_config(HttpConfig {
            pool_max_idle_per_host: 0,
            ..HttpConfig::default()
        });
        // sizes chosen to shrink and grow across buffer-pool classes
        for size in [3usize, 70_000, 512, 1 << 20, 1, 9_000, 4 << 20, 100] {
            let body: Vec<u8> = (0..size).map(|i| (i % 251) as u8).collect();
            let a = pooled.roundtrip(&url, &body).unwrap();
            let b = fresh.roundtrip(&url, &body).unwrap();
            assert_eq!(a, b, "{size}-byte request diverged");
            assert_eq!(&a[a.len() - size..], &body[..], "{size}-byte echo corrupt");
        }
        assert!(pooled.metrics.snapshot().pool_hits >= 7);
    }

    /// A malformed Content-Length used to be treated as *absent*, silently
    /// switching to read-to-EOF framing; it must be a typed protocol error.
    #[test]
    fn malformed_content_length_is_corrupt_error() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut line = String::new();
            loop {
                line.clear();
                reader.read_line(&mut line).unwrap();
                if line.trim_end().is_empty() {
                    break;
                }
            }
            stream
                .write_all(
                    b"HTTP/1.1 200 OK\r\nContent-Length: banana\r\nConnection: close\r\n\r\nhi",
                )
                .unwrap();
        });
        let url = format!("http://{addr}/m");
        let e = http_post(&url, b"").unwrap_err();
        assert_eq!(e.kind, NetErrorKind::Corrupt);
        assert!(e.message.contains("Content-Length"), "{}", e.message);
        server.join().unwrap();
    }

    #[test]
    fn graceful_shutdown_drains_in_flight_request() {
        let mut server = HttpServer::bind(
            "127.0.0.1:0",
            Arc::new(|_: &str, b: &[u8]| {
                std::thread::sleep(Duration::from_millis(150));
                (200, b.to_vec())
            }),
        )
        .unwrap();
        let url = format!("http://{}/slow", server.addr());
        let client = std::thread::spawn(move || http_post(&url, b"payload"));
        // let the request reach the handler before shutting down
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while server.active_connections() == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(server.active_connections() > 0, "request never arrived");
        assert!(
            server.shutdown_graceful(Duration::from_secs(5)),
            "in-flight request must drain within the deadline"
        );
        assert_eq!(server.active_connections(), 0);
        // the in-flight response was delivered, not cut off
        assert_eq!(client.join().unwrap().unwrap(), b"payload");
    }

    #[test]
    fn graceful_shutdown_closes_idle_keepalive_quickly() {
        let mut server = echo_server();
        let t = HttpTransport::new();
        let url = format!("http://{}/idle", server.addr());
        t.roundtrip(&url, b"x").unwrap();
        // the pooled keep-alive connection now sits idle in the server;
        // its worker must notice the shutdown well inside the 30 s read
        // timeout
        let started = std::time::Instant::now();
        assert!(server.shutdown_graceful(Duration::from_secs(5)));
        assert!(
            started.elapsed() < Duration::from_secs(2),
            "idle keep-alive worker held shutdown for {:?}",
            started.elapsed()
        );
    }

    #[test]
    fn shutdown_stops_accepting_new_connections() {
        let mut server = echo_server();
        let url = format!("http://{}/gone", server.addr());
        http_post(&url, b"x").unwrap();
        assert!(server.shutdown_graceful(Duration::from_secs(5)));
        // the listener is gone: fresh connections are refused
        let e = http_post(&url, b"x").unwrap_err();
        assert_eq!(e.kind, NetErrorKind::ConnectionRefused);
    }

    #[test]
    fn oversized_body_rejected_with_413_and_toolarge() {
        let server = HttpServer::bind_with(
            "127.0.0.1:0",
            Arc::new(|_: &str, b: &[u8]| (200, b.to_vec())),
            HttpConfig {
                max_body_bytes: 1024,
                ..HttpConfig::default()
            },
        )
        .unwrap();
        let url = format!("http://{}/big", server.addr());
        let e = http_post(&url, &vec![b'x'; 4096]).unwrap_err();
        assert_eq!(e.kind, NetErrorKind::TooLarge);
        // under the limit still works
        assert!(http_post(&url, &vec![b'x'; 512]).is_ok());
    }
}
