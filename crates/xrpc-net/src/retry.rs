//! Retry with deadline and exponential backoff: [`RetryPolicy`] holds the
//! knobs, [`ResilientTransport`] is a [`Transport`] decorator that applies
//! them per call — consulting the caller's [`CallHint`] so that only
//! redelivery-safe requests are ever resent after an ambiguous failure —
//! and gates every destination behind a [`CircuitBreaker`].

use crate::breaker::{BreakerConfig, BreakerState, CircuitBreaker};
use crate::metrics::NetMetrics;
use crate::{CallHint, NetError, NetErrorKind, Transport};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use xrpc_obs::Histogram;

/// Retry/backoff/deadline knobs for one logical call.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts, including the first (1 = no retries).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per retry.
    pub base_backoff: Duration,
    /// Upper bound on a single backoff sleep.
    pub max_backoff: Duration,
    /// Wall-clock budget for the whole call including retries and
    /// backoffs; when the next backoff would overrun it, the call fails
    /// with [`NetErrorKind::Timeout`] instead of sleeping.
    pub call_deadline: Duration,
    /// Seed for the deterministic jitter applied to each backoff.
    pub jitter_seed: u64,
}

impl RetryPolicy {
    /// Defaults conservative enough for production wiring: 3 attempts,
    /// 10 ms → 40 ms backoff, 30 s call budget.
    pub fn conservative() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(200),
            call_deadline: Duration::from_secs(30),
            jitter_seed: 0x5eed_cafe,
        }
    }

    /// Never retry (the decorator still applies the breaker and metrics).
    pub fn no_retry() -> Self {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::conservative()
        }
    }

    /// Backoff before retry number `retry` (1-based): *full jitter* — a
    /// deterministic fraction in `[0, 1)` of the capped exponential
    /// target, derived from `jitter_seed` and `salt` (callers pass a
    /// destination hash so concurrent calls to different peers do not
    /// sleep in lockstep). Full jitter (vs. a 50% floor) is what breaks
    /// the retry *waves*: after a partition heals, N recovering callers
    /// with a floored backoff all land inside the same half-window and
    /// re-collide; spreading over the whole window decorrelates them.
    pub fn backoff_before_retry(&self, retry: u32, salt: u64) -> Duration {
        let exp = self
            .base_backoff
            .saturating_mul(1u32 << retry.saturating_sub(1).min(16));
        let capped = exp.min(self.max_backoff);
        full_jitter(
            capped,
            self.jitter_seed
                .wrapping_add(salt)
                .wrapping_add(retry as u64),
        )
    }
}

/// A deterministic *full jitter* draw: a fraction in `[0, 1)` of `cap`,
/// derived from `seed` via splitmix64. Shared by [`RetryPolicy`] and the
/// 2PC decision-redelivery backoff so every retrying component in the
/// system decorrelates the same way.
pub fn full_jitter(cap: Duration, seed: u64) -> Duration {
    let j = splitmix64(seed);
    let frac = (j >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
    cap.mul_f64(frac)
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::conservative()
    }
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a hash of a destination URI — the per-destination jitter salt.
pub fn dest_salt(dest: &str) -> u64 {
    // FNV-1a: stable across runs, unlike `DefaultHasher`
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in dest.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Per-destination accounting for one [`ResilientTransport`]: a latency
/// histogram over *successful* calls (µs, including any retries and
/// backoff sleeps the call absorbed) plus the failure-path counters that
/// the aggregate [`NetMetrics`] could not attribute — which destination
/// was retried, which breaker fast-failed, which peer silently dropped
/// a request. Exposed as `dest="…"` labels on `/metrics`.
#[derive(Default)]
pub struct DestStats {
    pub latency: Histogram,
    pub retries: AtomicU64,
    pub failures: AtomicU64,
    pub fast_failures: AtomicU64,
    /// Individual bulk calls acknowledged by this destination (the
    /// caller reports batch sizes via [`DestStats::note_calls`]; the
    /// transport only sees opaque bodies).
    pub calls: AtomicU64,
    /// EWMA of per-call round-trip time at this destination, in µs ×16
    /// fixed point (α = 1/8). This is the feedback surface the adaptive
    /// bulk controller reads: amortized per-call cost including network,
    /// queueing and server-side evaluation.
    ewma_call_micros_x16: AtomicU64,
}

impl DestStats {
    /// Report a completed bulk dispatch: `calls` individual calls were
    /// answered in `elapsed` total. Updates the per-call EWMA.
    pub fn note_calls(&self, calls: u64, elapsed: std::time::Duration) {
        if calls == 0 {
            return;
        }
        self.calls.fetch_add(calls, Ordering::Relaxed);
        let per_call_x16 = ((elapsed.as_micros() as u64) / calls).saturating_mul(16);
        // CAS loop: ewma += (sample - ewma) / 8
        let mut cur = self.ewma_call_micros_x16.load(Ordering::Relaxed);
        loop {
            let next = if cur == 0 {
                per_call_x16
            } else {
                cur - cur / 8 + per_call_x16 / 8
            };
            match self.ewma_call_micros_x16.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(now) => cur = now,
            }
        }
    }

    /// The per-call EWMA in µs (0 until the first `note_calls`).
    pub fn ewma_call_micros(&self) -> u64 {
        self.ewma_call_micros_x16.load(Ordering::Relaxed) / 16
    }
}

/// A [`Transport`] decorator adding retry/backoff/deadline and a
/// per-destination circuit breaker to any inner transport.
///
/// Calls without a hint (plain [`Transport::roundtrip`]) are treated as
/// [`CallHint::Update`] — the conservative choice: they are only resent
/// after provably send-side failures.
pub struct ResilientTransport {
    inner: Arc<dyn Transport>,
    policy: RetryPolicy,
    breaker_cfg: BreakerConfig,
    breakers: Mutex<HashMap<String, CircuitBreaker>>,
    dests: Mutex<HashMap<String, Arc<DestStats>>>,
    /// Retry/fast-fail/timeout accounting for this decorator (the inner
    /// transport keeps its own per-wire-attempt counters).
    pub metrics: Arc<NetMetrics>,
}

impl ResilientTransport {
    /// Wrap `inner` with [`RetryPolicy::conservative`] and default
    /// breaker settings.
    pub fn new(inner: Arc<dyn Transport>) -> Arc<Self> {
        Self::with_policy(inner, RetryPolicy::conservative(), BreakerConfig::default())
    }

    pub fn with_policy(
        inner: Arc<dyn Transport>,
        policy: RetryPolicy,
        breaker_cfg: BreakerConfig,
    ) -> Arc<Self> {
        Arc::new(ResilientTransport {
            inner,
            policy,
            breaker_cfg,
            breakers: Mutex::new(HashMap::new()),
            dests: Mutex::new(HashMap::new()),
            metrics: Arc::new(NetMetrics::new()),
        })
    }

    pub fn policy(&self) -> RetryPolicy {
        self.policy
    }

    /// The per-destination breakdown, destination-sorted.
    pub fn dest_stats(&self) -> Vec<(String, Arc<DestStats>)> {
        let mut out: Vec<_> = self
            .dests
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Every breaker's current state, destination-sorted (for `/healthz`).
    pub fn breaker_states(&self) -> Vec<(String, BreakerState)> {
        let mut out: Vec<_> = self
            .breakers
            .lock()
            .iter()
            .map(|(k, b)| (k.clone(), b.state()))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    fn dest(&self, dest: &str) -> Arc<DestStats> {
        self.dests
            .lock()
            .entry(dest.to_string())
            .or_default()
            .clone()
    }

    /// The stats handle for one destination (created on first use). The
    /// adaptive bulk controller holds this to read the per-call EWMA and
    /// to report batch sizes via [`DestStats::note_calls`].
    pub fn dest_stats_for(&self, dest: &str) -> Arc<DestStats> {
        self.dest(dest)
    }

    /// Observable breaker state for `dest` (Closed if never used).
    pub fn breaker_state(&self, dest: &str) -> BreakerState {
        self.breakers
            .lock()
            .get(dest)
            .map(|b| b.state())
            .unwrap_or(BreakerState::Closed)
    }

    fn breaker_allow(&self, dest: &str, now: Instant) -> bool {
        self.breakers
            .lock()
            .entry(dest.to_string())
            .or_insert_with(|| CircuitBreaker::new(self.breaker_cfg))
            .allow(now)
    }

    fn breaker_on_success(&self, dest: &str) {
        if let Some(b) = self.breakers.lock().get_mut(dest) {
            b.on_success();
        }
    }

    fn breaker_on_failure(&self, dest: &str, now: Instant) {
        let mut breakers = self.breakers.lock();
        let b = breakers
            .entry(dest.to_string())
            .or_insert_with(|| CircuitBreaker::new(self.breaker_cfg));
        if b.on_failure(now) {
            self.metrics.record_breaker_open();
        }
    }
}

impl Transport for ResilientTransport {
    fn roundtrip(&self, dest: &str, body: &[u8]) -> Result<Vec<u8>, NetError> {
        self.roundtrip_hinted(dest, body, CallHint::Update)
    }

    fn roundtrip_hinted(
        &self,
        dest: &str,
        body: &[u8],
        hint: CallHint,
    ) -> Result<Vec<u8>, NetError> {
        let start = Instant::now();
        let deadline = start + self.policy.call_deadline;
        let salt = dest_salt(dest);
        let stats = self.dest(dest);
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            if !self.breaker_allow(dest, Instant::now()) {
                self.metrics.record_fast_failure();
                stats.fast_failures.fetch_add(1, Ordering::Relaxed);
                return Err(NetError::with_kind(
                    NetErrorKind::Other,
                    format!("circuit breaker open for `{dest}` (failing fast)"),
                ));
            }
            let err = match self.inner.roundtrip_hinted(dest, body, hint) {
                Ok(resp) => {
                    self.breaker_on_success(dest);
                    self.metrics.record(body.len(), resp.len());
                    stats.latency.record_micros(start.elapsed());
                    return Ok(resp);
                }
                Err(e) => e,
            };
            self.breaker_on_failure(dest, Instant::now());
            self.metrics.record_failure();
            stats.failures.fetch_add(1, Ordering::Relaxed);
            if err.kind == NetErrorKind::Timeout {
                self.metrics.record_timeout();
            }
            if !hint.may_retry(&err) || attempt >= self.policy.max_attempts {
                return Err(err);
            }
            // Cancellation is never retryable: if the job this call serves
            // was cancelled (client gone, deadline sweep), surface the
            // original failure instead of burning backoff sleeps.
            if crate::cancel::current_job().is_some_and(|j| j.is_cancelled()) {
                return Err(err);
            }
            let backoff = self.policy.backoff_before_retry(attempt, salt);
            // The caller's query budget caps cumulative retry time: when the
            // next sleep would overrun the remaining budget, stop retrying
            // and surface the ORIGINAL error (the budget overrun is the
            // caller's XRPC0004 to raise, not a transport timeout).
            if let Some(ambient) = crate::cancel::ambient_deadline() {
                if Instant::now() + backoff >= ambient {
                    self.metrics.record_timeout();
                    return Err(err);
                }
            }
            if Instant::now() + backoff >= deadline {
                self.metrics.record_timeout();
                return Err(NetError::with_kind(
                    NetErrorKind::Timeout,
                    format!(
                        "call deadline {:?} exceeded after {attempt} attempt(s) to `{dest}`; last error: {err}",
                        self.policy.call_deadline
                    ),
                ));
            }
            self.metrics.record_retry();
            stats.retries.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(backoff);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{NetProfile, SimFault, SimNetwork};

    fn fast_policy(max_attempts: u32) -> RetryPolicy {
        RetryPolicy {
            max_attempts,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(4),
            call_deadline: Duration::from_secs(5),
            jitter_seed: 7,
        }
    }

    fn net_with_peer() -> Arc<SimNetwork> {
        let net = Arc::new(SimNetwork::new(NetProfile::instant()));
        net.register("xrpc://y", Arc::new(|_: &[u8]| b"ok".to_vec()));
        net
    }

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        let p = fast_policy(5);
        for retry in 1..=4 {
            let a = p.backoff_before_retry(retry, 1);
            let b = p.backoff_before_retry(retry, 1);
            assert_eq!(a, b, "same inputs, same jitter");
            // full jitter: anywhere in [0, capped exponential target)
            assert!(a <= p.max_backoff);
        }
        // different salts decorrelate
        assert_ne!(p.backoff_before_retry(1, 1), p.backoff_before_retry(1, 2));
        // full jitter spans the low half of the window too (a 50%-floored
        // scheme could never produce a draw below half the target)
        let below_half = (0..64)
            .any(|salt| p.backoff_before_retry(3, salt) < p.base_backoff.saturating_mul(4) / 2);
        assert!(below_half, "full jitter must reach below the 50% floor");
    }

    #[test]
    fn transient_faults_retried_until_success() {
        let net = net_with_peer();
        let t =
            ResilientTransport::with_policy(net.clone(), fast_policy(4), BreakerConfig::default());
        net.inject_fault("xrpc://y", SimFault::DropRequest);
        net.inject_fault("xrpc://y", SimFault::DropRequest);
        let r = t
            .roundtrip_hinted("xrpc://y", b"q", CallHint::ReadOnly)
            .unwrap();
        assert_eq!(r, b"ok");
        let s = t.metrics.snapshot();
        assert_eq!(s.retries, 2);
        assert_eq!(s.failures, 2);
        assert_eq!(s.roundtrips, 1);
    }

    #[test]
    fn attempts_exhausted_surfaces_last_error() {
        let net = net_with_peer();
        let t =
            ResilientTransport::with_policy(net.clone(), fast_policy(3), BreakerConfig::default());
        for _ in 0..5 {
            net.inject_fault("xrpc://y", SimFault::DropResponse);
        }
        let e = t
            .roundtrip_hinted("xrpc://y", b"q", CallHint::ReadOnly)
            .unwrap_err();
        assert_eq!(e.kind, NetErrorKind::Timeout);
        assert_eq!(t.metrics.snapshot().retries, 2, "3 attempts = 2 retries");
    }

    #[test]
    fn ambiguous_failure_not_retried_for_updates() {
        let net = net_with_peer();
        let t =
            ResilientTransport::with_policy(net.clone(), fast_policy(5), BreakerConfig::default());
        // drop-response: the handler ran, so an update must NOT be resent
        net.inject_fault("xrpc://y", SimFault::DropResponse);
        let e = t
            .roundtrip_hinted("xrpc://y", b"u", CallHint::Update)
            .unwrap_err();
        assert_eq!(e.kind, NetErrorKind::Timeout);
        assert_eq!(t.metrics.snapshot().retries, 0);
        assert_eq!(net.handled_count("xrpc://y"), 1, "handler ran exactly once");
    }

    #[test]
    fn send_side_failure_retried_even_for_updates() {
        let net = net_with_peer();
        let t =
            ResilientTransport::with_policy(net.clone(), fast_policy(3), BreakerConfig::default());
        net.inject_fault("xrpc://y", SimFault::Refuse);
        let r = t
            .roundtrip_hinted("xrpc://y", b"u", CallHint::Update)
            .unwrap();
        assert_eq!(r, b"ok");
        assert_eq!(t.metrics.snapshot().retries, 1);
        assert_eq!(
            net.handled_count("xrpc://y"),
            1,
            "update applied exactly once"
        );
    }

    #[test]
    fn deferred_update_retries_ambiguous_failures() {
        let net = net_with_peer();
        let t =
            ResilientTransport::with_policy(net.clone(), fast_policy(3), BreakerConfig::default());
        net.inject_fault("xrpc://y", SimFault::DropResponse);
        let r = t
            .roundtrip_hinted("xrpc://y", b"u", CallHint::DeferredUpdate)
            .unwrap();
        assert_eq!(r, b"ok");
        assert_eq!(
            net.handled_count("xrpc://y"),
            2,
            "redelivery is safe pre-Prepare"
        );
    }

    #[test]
    fn plain_roundtrip_is_conservative() {
        let net = net_with_peer();
        let t =
            ResilientTransport::with_policy(net.clone(), fast_policy(5), BreakerConfig::default());
        net.inject_fault("xrpc://y", SimFault::DropResponse);
        assert!(
            t.roundtrip("xrpc://y", b"x").is_err(),
            "no hint → treated as Update"
        );
    }

    #[test]
    fn breaker_opens_fails_fast_and_recovers_via_probe() {
        let net = net_with_peer();
        let t = ResilientTransport::with_policy(
            net.clone(),
            RetryPolicy::no_retry(),
            BreakerConfig {
                failure_threshold: 3,
                cooldown: Duration::from_millis(30),
            },
        );
        net.crash("xrpc://y");
        for _ in 0..3 {
            assert!(t
                .roundtrip_hinted("xrpc://y", b"q", CallHint::ReadOnly)
                .is_err());
        }
        assert_eq!(t.breaker_state("xrpc://y"), BreakerState::Open);
        let wire_failures = net.metrics.snapshot().failures;
        // open: fails fast without hitting the wire
        assert!(t
            .roundtrip_hinted("xrpc://y", b"q", CallHint::ReadOnly)
            .is_err());
        assert_eq!(
            net.metrics.snapshot().failures,
            wire_failures,
            "no wire traffic while open"
        );
        assert_eq!(t.metrics.snapshot().fast_failures, 1);
        assert_eq!(t.metrics.snapshot().breaker_opens, 1);
        // cooldown passes, peer restarts: half-open probe restores service
        net.restart("xrpc://y");
        std::thread::sleep(Duration::from_millis(40));
        let r = t
            .roundtrip_hinted("xrpc://y", b"q", CallHint::ReadOnly)
            .unwrap();
        assert_eq!(r, b"ok");
        assert_eq!(t.breaker_state("xrpc://y"), BreakerState::Closed);
    }

    #[test]
    fn deadline_bounds_total_retry_time() {
        let net = net_with_peer();
        let t = ResilientTransport::with_policy(
            net.clone(),
            RetryPolicy {
                max_attempts: 100,
                base_backoff: Duration::from_millis(20),
                max_backoff: Duration::from_millis(20),
                call_deadline: Duration::from_millis(50),
                jitter_seed: 1,
            },
            BreakerConfig {
                failure_threshold: 1000,
                cooldown: Duration::from_secs(1),
            },
        );
        for _ in 0..100 {
            net.inject_fault("xrpc://y", SimFault::DropRequest);
        }
        let t0 = Instant::now();
        let e = t
            .roundtrip_hinted("xrpc://y", b"q", CallHint::ReadOnly)
            .unwrap_err();
        assert_eq!(e.kind, NetErrorKind::Timeout);
        assert!(e.message.contains("deadline"), "{}", e.message);
        assert!(t0.elapsed() < Duration::from_millis(500));
    }

    #[test]
    fn ambient_deadline_caps_retries_and_surfaces_original_error() {
        let net = net_with_peer();
        let t = ResilientTransport::with_policy(
            net.clone(),
            RetryPolicy {
                max_attempts: 100,
                base_backoff: Duration::from_millis(20),
                max_backoff: Duration::from_millis(20),
                call_deadline: Duration::from_secs(30),
                jitter_seed: 1,
            },
            BreakerConfig {
                failure_threshold: 1000,
                cooldown: Duration::from_secs(1),
            },
        );
        for _ in 0..100 {
            net.inject_fault("xrpc://y", SimFault::Refuse);
        }
        // the caller's remaining budget is tiny: the first backoff sleep
        // would already overrun it, so no retry happens and the ORIGINAL
        // refused error comes back (not a synthesized deadline timeout)
        let _g =
            crate::cancel::set_ambient_deadline(Some(Instant::now() + Duration::from_millis(5)));
        let t0 = Instant::now();
        let e = t
            .roundtrip_hinted("xrpc://y", b"q", CallHint::ReadOnly)
            .unwrap_err();
        assert_eq!(e.kind, NetErrorKind::ConnectionRefused);
        assert!(
            !e.message.contains("call deadline"),
            "original error, not the policy-deadline wrapper: {}",
            e.message
        );
        assert_eq!(t.metrics.snapshot().retries, 0);
        assert!(t0.elapsed() < Duration::from_millis(200));
    }

    #[test]
    fn cancelled_job_is_never_retried() {
        let net = net_with_peer();
        let t =
            ResilientTransport::with_policy(net.clone(), fast_policy(5), BreakerConfig::default());
        net.inject_fault("xrpc://y", SimFault::Refuse);
        let job = crate::cancel::JobCancel::new();
        job.cancel();
        let _g = crate::cancel::set_current_job(job);
        let e = t
            .roundtrip_hinted("xrpc://y", b"q", CallHint::ReadOnly)
            .unwrap_err();
        assert_eq!(e.kind, NetErrorKind::ConnectionRefused, "original error");
        assert_eq!(t.metrics.snapshot().retries, 0, "no retry once cancelled");
    }

    #[test]
    fn live_job_and_roomy_ambient_deadline_do_not_block_retries() {
        let net = net_with_peer();
        let t =
            ResilientTransport::with_policy(net.clone(), fast_policy(4), BreakerConfig::default());
        net.inject_fault("xrpc://y", SimFault::Refuse);
        let _g =
            crate::cancel::set_ambient_deadline(Some(Instant::now() + Duration::from_secs(30)));
        let _g2 = crate::cancel::set_current_job(crate::cancel::JobCancel::new());
        let r = t
            .roundtrip_hinted("xrpc://y", b"q", CallHint::ReadOnly)
            .unwrap();
        assert_eq!(r, b"ok");
        assert_eq!(t.metrics.snapshot().retries, 1);
    }

    #[test]
    fn per_destination_stats_attribute_retries_and_latency() {
        let net = net_with_peer();
        net.register("xrpc://z", Arc::new(|_: &[u8]| b"zz".to_vec()));
        let t =
            ResilientTransport::with_policy(net.clone(), fast_policy(4), BreakerConfig::default());
        // y absorbs two silent request drops before succeeding; z is clean
        net.inject_fault("xrpc://y", SimFault::DropRequest);
        net.inject_fault("xrpc://y", SimFault::DropRequest);
        t.roundtrip_hinted("xrpc://y", b"q", CallHint::ReadOnly)
            .unwrap();
        t.roundtrip_hinted("xrpc://z", b"q", CallHint::ReadOnly)
            .unwrap();
        let stats = t.dest_stats();
        assert_eq!(
            stats.iter().map(|(d, _)| d.as_str()).collect::<Vec<_>>(),
            vec!["xrpc://y", "xrpc://z"],
            "destination-sorted"
        );
        let y = &stats[0].1;
        let z = &stats[1].1;
        assert_eq!(y.retries.load(Ordering::Relaxed), 2);
        assert_eq!(y.failures.load(Ordering::Relaxed), 2);
        assert_eq!(y.latency.count(), 1, "one successful call recorded");
        assert_eq!(z.retries.load(Ordering::Relaxed), 0);
        assert_eq!(z.failures.load(Ordering::Relaxed), 0);
        assert_eq!(z.latency.count(), 1);
        // the blind spot this exists to fix: aggregate metrics alone
        // cannot say *which* destination ate the retries
        assert_eq!(t.metrics.snapshot().retries, 2);
    }

    #[test]
    fn per_destination_breakers_are_independent() {
        let net = net_with_peer();
        net.register("xrpc://z", Arc::new(|_: &[u8]| b"zz".to_vec()));
        let t = ResilientTransport::with_policy(
            net.clone(),
            RetryPolicy::no_retry(),
            BreakerConfig {
                failure_threshold: 1,
                cooldown: Duration::from_secs(10),
            },
        );
        net.crash("xrpc://y");
        assert!(t
            .roundtrip_hinted("xrpc://y", b"q", CallHint::ReadOnly)
            .is_err());
        assert_eq!(t.breaker_state("xrpc://y"), BreakerState::Open);
        assert_eq!(t.breaker_state("xrpc://z"), BreakerState::Closed);
        assert_eq!(
            t.roundtrip_hinted("xrpc://z", b"q", CallHint::ReadOnly)
                .unwrap(),
            b"zz"
        );
    }
}
