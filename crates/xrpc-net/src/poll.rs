//! A hand-rolled epoll wrapper — the readiness substrate of the
//! event-driven server ([`crate::reactor`]). The workspace deliberately
//! carries no `libc`/`mio` dependency, so the handful of syscalls the
//! reactor needs (`epoll_create1`/`epoll_ctl`/`epoll_wait`, `eventfd`
//! for cross-thread wakeups, and raw socket creation for a
//! `SO_REUSEADDR` listener) are declared here as `extern "C"` bindings
//! against the C library `std` already links. Linux-only by
//! construction, like the rest of the deployment story.

use std::io;
use std::net::{SocketAddr, TcpListener};
use std::os::fd::{FromRawFd, RawFd};
use std::time::Duration;

#[allow(non_camel_case_types)]
type c_int = i32;
#[allow(non_camel_case_types)]
type c_uint = u32;

// `struct epoll_event` is packed on x86_64 (12 bytes); natural layout
// (16 bytes) everywhere else — mirror glibc's `__EPOLL_PACKED`.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn eventfd(initval: c_uint, flags: c_int) -> c_int;
    fn close(fd: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut u8, count: usize) -> isize;
    fn write(fd: c_int, buf: *const u8, count: usize) -> isize;
    fn socket(domain: c_int, ty: c_int, protocol: c_int) -> c_int;
    fn setsockopt(fd: c_int, level: c_int, optname: c_int, optval: *const u8, optlen: u32)
        -> c_int;
    fn getsockopt(
        fd: c_int,
        level: c_int,
        optname: c_int,
        optval: *mut u8,
        optlen: *mut u32,
    ) -> c_int;
    fn bind(fd: c_int, addr: *const SockAddrIn, addrlen: u32) -> c_int;
    fn listen(fd: c_int, backlog: c_int) -> c_int;
    fn connect(fd: c_int, addr: *const SockAddrIn, addrlen: u32) -> c_int;
    fn getrlimit(resource: c_int, rlim: *mut RLimit) -> c_int;
    fn setrlimit(resource: c_int, rlim: *const RLimit) -> c_int;
}

const EPOLL_CLOEXEC: c_int = 0o2000000;
const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;

const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;

const EFD_CLOEXEC: c_int = 0o2000000;
const EFD_NONBLOCK: c_int = 0o4000;

const AF_INET: c_int = 2;
const SOCK_STREAM: c_int = 1;
const SOCK_CLOEXEC: c_int = 0o2000000;
const SOCK_NONBLOCK: c_int = 0o4000;
const SOL_SOCKET: c_int = 1;
const SO_REUSEADDR: c_int = 2;
const SO_ERROR: c_int = 4;
const EINPROGRESS: c_int = 115;
const RLIMIT_NOFILE: c_int = 7;

/// `struct rlimit` on 64-bit Linux.
#[repr(C)]
struct RLimit {
    cur: u64,
    max: u64,
}

fn cvt(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// One readiness notification, with the token the fd was registered
/// under. `hangup` covers peer close (`EPOLLHUP`/`EPOLLRDHUP`) —
/// reads still drain whatever is buffered before EOF.
#[derive(Clone, Copy, Debug)]
pub struct Event {
    pub token: u64,
    pub readable: bool,
    pub writable: bool,
    pub hangup: bool,
    pub error: bool,
}

/// Level-triggered epoll instance. Level-triggered deliberately: the
/// reactor re-arms interest per state transition and never risks the
/// lost-wakeup class of edge-triggered bugs for a few spare syscalls.
pub struct Poller {
    epfd: RawFd,
}

impl Poller {
    pub fn new() -> io::Result<Poller> {
        let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Poller { epfd })
    }

    fn ctl(
        &self,
        op: c_int,
        fd: RawFd,
        token: u64,
        readable: bool,
        writable: bool,
    ) -> io::Result<()> {
        let mut ev = EpollEvent {
            events: EPOLLRDHUP
                | if readable { EPOLLIN } else { 0 }
                | if writable { EPOLLOUT } else { 0 },
            data: token,
        };
        cvt(unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) }).map(drop)
    }

    /// Register `fd` under `token` with the given interest set.
    pub fn add(&self, fd: RawFd, token: u64, readable: bool, writable: bool) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, token, readable, writable)
    }

    /// Re-target an already-registered fd's interest set.
    pub fn modify(&self, fd: RawFd, token: u64, readable: bool, writable: bool) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, token, readable, writable)
    }

    /// Deregister `fd`. Harmless if the fd is about to be closed anyway
    /// (closing deregisters implicitly); explicit so a still-open fd can
    /// be parked.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        let mut ev = EpollEvent { events: 0, data: 0 };
        cvt(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, &mut ev) }).map(drop)
    }

    /// Block until readiness or `timeout` (None = forever), appending
    /// into `out`. Returns the number of events delivered. EINTR is
    /// absorbed as an empty wakeup.
    pub fn wait(&self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        out.clear();
        let mut buf = [EpollEvent { events: 0, data: 0 }; 64];
        let ms: c_int = match timeout {
            None => -1,
            Some(t) => t.as_millis().min(i32::MAX as u128) as c_int,
        };
        let n = unsafe { epoll_wait(self.epfd, buf.as_mut_ptr(), buf.len() as c_int, ms) };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(err);
        }
        for ev in &buf[..n as usize] {
            let bits = ev.events;
            out.push(Event {
                token: ev.data,
                readable: bits & EPOLLIN != 0,
                writable: bits & EPOLLOUT != 0,
                hangup: bits & (EPOLLHUP | EPOLLRDHUP) != 0,
                error: bits & EPOLLERR != 0,
            });
        }
        Ok(n as usize)
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        unsafe { close(self.epfd) };
    }
}

/// Cross-thread wakeup for a blocked [`Poller::wait`]: an eventfd
/// registered read-interested under a reserved token. Worker threads
/// call [`wake`](Self::wake) after publishing a completion; the reactor
/// calls [`drain`](Self::drain) when the token fires.
pub struct Waker {
    fd: RawFd,
}

impl Waker {
    pub fn new(poller: &Poller, token: u64) -> io::Result<Waker> {
        let fd = cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
        poller.add(fd, token, true, false)?;
        Ok(Waker { fd })
    }

    pub fn wake(&self) {
        let one: u64 = 1;
        unsafe { write(self.fd, &one as *const u64 as *const u8, 8) };
    }

    /// Reset the eventfd counter so level-triggered epoll quiesces.
    pub fn drain(&self) {
        let mut buf = [0u8; 8];
        unsafe { read(self.fd, buf.as_mut_ptr(), 8) };
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        unsafe { close(self.fd) };
    }
}

/// IPv4 `sockaddr_in`, network byte order where the kernel wants it.
#[repr(C)]
struct SockAddrIn {
    sin_family: u16,
    sin_port: u16,
    sin_addr: u32,
    sin_zero: [u8; 8],
}

/// Bind a listening socket with `SO_REUSEADDR` — what `std`'s
/// `TcpListener::bind` does *not* set, and what lets a crash-restarted
/// peer rebind its advertised port while old connections linger in
/// TIME_WAIT (the recovery-chaos HTTP suite depends on this). IPv4
/// only; non-IPv4 binds fall back to the caller's `std` path.
pub fn listen_reuseaddr(addr: &SocketAddr) -> io::Result<TcpListener> {
    let SocketAddr::V4(v4) = addr else {
        return TcpListener::bind(addr);
    };
    let fd = cvt(unsafe { socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0) })?;
    // from here the fd must be closed on any failure path
    let result = (|| {
        let on: c_int = 1;
        cvt(unsafe {
            setsockopt(
                fd,
                SOL_SOCKET,
                SO_REUSEADDR,
                &on as *const c_int as *const u8,
                std::mem::size_of::<c_int>() as u32,
            )
        })?;
        let sa = SockAddrIn {
            sin_family: AF_INET as u16,
            sin_port: v4.port().to_be(),
            sin_addr: u32::from_ne_bytes(v4.ip().octets()),
            sin_zero: [0; 8],
        };
        cvt(unsafe { bind(fd, &sa, std::mem::size_of::<SockAddrIn>() as u32) })?;
        cvt(unsafe { listen(fd, 1024) })?;
        Ok(())
    })();
    match result {
        Ok(()) => Ok(unsafe { TcpListener::from_raw_fd(fd) }),
        Err(e) => {
            unsafe { close(fd) };
            Err(e)
        }
    }
}

/// Start a non-blocking IPv4 connect: the socket is created
/// `SOCK_NONBLOCK`, `connect` returns immediately (`EINPROGRESS` is
/// success), and the caller learns the outcome by polling the fd for
/// writability and then checking [`take_socket_error`]. This is what
/// lets the swarm benchmark ramp thousands of client connections from
/// one thread instead of serializing blocking connects.
pub fn connect_nonblocking(addr: &SocketAddr) -> io::Result<std::net::TcpStream> {
    let SocketAddr::V4(v4) = addr else {
        return Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "non-blocking connect is IPv4-only",
        ));
    };
    let fd = cvt(unsafe { socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC | SOCK_NONBLOCK, 0) })?;
    let sa = SockAddrIn {
        sin_family: AF_INET as u16,
        sin_port: v4.port().to_be(),
        sin_addr: u32::from_ne_bytes(v4.ip().octets()),
        sin_zero: [0; 8],
    };
    let r = unsafe { connect(fd, &sa, std::mem::size_of::<SockAddrIn>() as u32) };
    if r < 0 {
        let err = io::Error::last_os_error();
        if err.raw_os_error() != Some(EINPROGRESS) {
            unsafe { close(fd) };
            return Err(err);
        }
    }
    Ok(unsafe { std::net::TcpStream::from_raw_fd(fd) })
}

/// Read-and-clear the socket's pending error (`SO_ERROR`) — the
/// completion status of a non-blocking connect once the fd polls
/// writable. `Ok(())` means the connection is established.
pub fn take_socket_error(fd: RawFd) -> io::Result<()> {
    let mut err: c_int = 0;
    let mut len = std::mem::size_of::<c_int>() as u32;
    cvt(unsafe {
        getsockopt(
            fd,
            SOL_SOCKET,
            SO_ERROR,
            &mut err as *mut c_int as *mut u8,
            &mut len,
        )
    })?;
    if err == 0 {
        Ok(())
    } else {
        Err(io::Error::from_raw_os_error(err))
    }
}

/// Raise the soft `RLIMIT_NOFILE` to the hard cap and return the
/// resulting soft limit. A 10k-connection swarm needs ~2 fds per client
/// (one at the driver, one at the server); default soft limits (1024 on
/// stock CI runners) would cap the whole experiment, so the benchmark
/// raises the limit first and clamps its client count to what it got.
pub fn raise_nofile_limit() -> u64 {
    let mut r = RLimit { cur: 0, max: 0 };
    if unsafe { getrlimit(RLIMIT_NOFILE, &mut r) } != 0 {
        return 1024;
    }
    if r.cur < r.max {
        let want = RLimit {
            cur: r.max,
            max: r.max,
        };
        if unsafe { setrlimit(RLIMIT_NOFILE, &want) } == 0 {
            return r.max;
        }
    }
    r.cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::os::fd::AsRawFd;

    #[test]
    fn poller_sees_listener_readiness() {
        let listener = listen_reuseaddr(&"127.0.0.1:0".parse().unwrap()).unwrap();
        listener.set_nonblocking(true).unwrap();
        let poller = Poller::new().unwrap();
        poller.add(listener.as_raw_fd(), 7, true, false).unwrap();
        let mut events = Vec::new();
        // nothing pending: a short wait times out empty
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty());
        let _client = std::net::TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.readable));
    }

    #[test]
    fn connection_readiness_and_hangup() {
        let listener = listen_reuseaddr(&"127.0.0.1:0".parse().unwrap()).unwrap();
        let mut client = std::net::TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();
        let poller = Poller::new().unwrap();
        poller.add(server_side.as_raw_fd(), 1, true, false).unwrap();
        client.write_all(b"ping").unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 1 && e.readable));
        let mut buf = [0u8; 16];
        let mut s = &server_side;
        assert_eq!(s.read(&mut buf).unwrap(), 4);
        drop(client);
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 1 && e.hangup));
    }

    #[test]
    fn waker_crosses_threads() {
        let poller = Poller::new().unwrap();
        let waker = std::sync::Arc::new(Waker::new(&poller, 99).unwrap());
        let w = waker.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            w.wake();
        });
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 99 && e.readable));
        waker.drain();
        // drained: the level-triggered fd goes quiet
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty());
    }

    #[test]
    fn nonblocking_connect_completes_via_writability() {
        let listener = listen_reuseaddr(&"127.0.0.1:0".parse().unwrap()).unwrap();
        let addr = listener.local_addr().unwrap();
        let stream = connect_nonblocking(&addr).unwrap();
        let poller = Poller::new().unwrap();
        poller.add(stream.as_raw_fd(), 5, false, true).unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 5 && e.writable));
        take_socket_error(stream.as_raw_fd()).expect("connect succeeded");
        let (mut srv, _) = listener.accept().unwrap();
        let mut s = &stream;
        s.write_all(b"hi").unwrap();
        let mut buf = [0u8; 2];
        srv.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"hi");
    }

    #[test]
    fn nofile_limit_is_raised_to_a_usable_floor() {
        let limit = raise_nofile_limit();
        // both locally and on CI runners the hard cap is comfortably
        // above the soft default; the swarm clamps against this value
        assert!(limit >= 1024, "got {limit}");
        // idempotent: a second call reports the same (already-raised) cap
        assert_eq!(raise_nofile_limit(), limit);
    }

    #[test]
    fn reuseaddr_listener_rebinds_same_port() {
        let l1 = listen_reuseaddr(&"127.0.0.1:0".parse().unwrap()).unwrap();
        let port = l1.local_addr().unwrap().port();
        // hold a connection so the port has live traffic, then drop both
        let c = std::net::TcpStream::connect(l1.local_addr().unwrap()).unwrap();
        let _ = l1.accept().unwrap();
        drop(c);
        drop(l1);
        let addr: SocketAddr = format!("127.0.0.1:{port}").parse().unwrap();
        let l2 = listen_reuseaddr(&addr).expect("rebind with SO_REUSEADDR");
        assert_eq!(l2.local_addr().unwrap().port(), port);
    }
}
