//! Per-destination keep-alive connection pool for the HTTP client.
//!
//! The paper's throughput experiment (§3.3) amortizes TCP setup over many
//! calls by keeping connections alive between XRPC messages; before this
//! module the client did `TcpStream::connect` + `Connection: close` on
//! *every* call. The pool keeps recently used sockets per `host:port`,
//! hands the freshest one back first (LIFO — it is least likely to have
//! been idle-closed by the server), and lazily reaps connections that
//! outlived the configured idle timeout at checkout/checkin time, so no
//! background thread is needed.
//!
//! The pool stores bare [`TcpStream`]s; protocol-level reuse rules (only
//! pool a connection whose response was fully framed and not marked
//! `Connection: close`, retry once on a stale reused socket) live in
//! [`crate::http`].

use std::collections::HashMap;
use std::net::TcpStream;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// An idle connection with the moment it was returned to the pool.
struct IdleConn {
    stream: TcpStream,
    since: Instant,
}

/// A thread-safe pool of idle keep-alive connections keyed by
/// `host:port`. `max_idle_per_host == 0` disables pooling entirely
/// (checkout always misses, checkin always drops).
pub struct ConnectionPool {
    idle: Mutex<HashMap<String, Vec<IdleConn>>>,
    max_idle_per_host: usize,
    idle_timeout: Duration,
}

impl ConnectionPool {
    pub fn new(max_idle_per_host: usize, idle_timeout: Duration) -> Self {
        ConnectionPool {
            idle: Mutex::new(HashMap::new()),
            max_idle_per_host,
            idle_timeout,
        }
    }

    /// Take the most recently returned live connection for `addr`, if
    /// any. Connections idle longer than the timeout are dropped here
    /// rather than handed out.
    pub fn checkout(&self, addr: &str) -> Option<TcpStream> {
        let mut idle = self.idle.lock().unwrap_or_else(|e| e.into_inner());
        let conns = idle.get_mut(addr)?;
        // entries are pushed in return order, so expiry reaps a prefix
        let cutoff = Instant::now().checked_sub(self.idle_timeout);
        if let Some(cutoff) = cutoff {
            let live_from = conns.partition_point(|c| c.since < cutoff);
            conns.drain(..live_from);
        }
        let conn = conns.pop();
        if conns.is_empty() {
            idle.remove(addr);
        }
        conn.map(|c| c.stream)
    }

    /// Return a connection for later reuse. Dropped instead if the
    /// per-host cap is already reached (oldest-in-pool is evicted first,
    /// keeping the freshest `max_idle_per_host` sockets).
    pub fn checkin(&self, addr: &str, stream: TcpStream) {
        if self.max_idle_per_host == 0 {
            return;
        }
        let mut idle = self.idle.lock().unwrap_or_else(|e| e.into_inner());
        let conns = idle.entry(addr.to_string()).or_default();
        while conns.len() >= self.max_idle_per_host {
            conns.remove(0);
        }
        conns.push(IdleConn {
            stream,
            since: Instant::now(),
        });
    }

    /// Number of idle connections currently pooled for `addr`.
    pub fn idle_count(&self, addr: &str) -> usize {
        let idle = self.idle.lock().unwrap_or_else(|e| e.into_inner());
        idle.get(addr).map_or(0, Vec::len)
    }

    /// Drop every pooled connection (e.g. after a peer restart).
    pub fn clear(&self) {
        let mut idle = self.idle.lock().unwrap_or_else(|e| e.into_inner());
        idle.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn conn_pair(listener: &TcpListener) -> TcpStream {
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let _server_side = listener.accept().unwrap();
        client
    }

    #[test]
    fn checkout_from_empty_pool_misses() {
        let pool = ConnectionPool::new(4, Duration::from_secs(60));
        assert!(pool.checkout("127.0.0.1:1").is_none());
    }

    #[test]
    fn checkin_then_checkout_reuses_lifo() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let pool = ConnectionPool::new(4, Duration::from_secs(60));
        let a = conn_pair(&listener);
        let a_port = a.local_addr().unwrap().port();
        let b = conn_pair(&listener);
        let b_port = b.local_addr().unwrap().port();
        assert_ne!(a_port, b_port);
        pool.checkin("peer", a);
        pool.checkin("peer", b);
        assert_eq!(pool.idle_count("peer"), 2);
        // most recently returned comes back first
        let got = pool.checkout("peer").unwrap();
        assert_eq!(got.local_addr().unwrap().port(), b_port);
        let got = pool.checkout("peer").unwrap();
        assert_eq!(got.local_addr().unwrap().port(), a_port);
        assert!(pool.checkout("peer").is_none());
    }

    #[test]
    fn per_host_cap_evicts_oldest() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let pool = ConnectionPool::new(2, Duration::from_secs(60));
        let mut ports = Vec::new();
        for _ in 0..3 {
            let c = conn_pair(&listener);
            ports.push(c.local_addr().unwrap().port());
            pool.checkin("peer", c);
        }
        assert_eq!(pool.idle_count("peer"), 2);
        // oldest (first) was evicted; freshest two survive, LIFO order
        assert_eq!(
            pool.checkout("peer").unwrap().local_addr().unwrap().port(),
            ports[2]
        );
        assert_eq!(
            pool.checkout("peer").unwrap().local_addr().unwrap().port(),
            ports[1]
        );
    }

    #[test]
    fn zero_capacity_disables_pooling() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let pool = ConnectionPool::new(0, Duration::from_secs(60));
        pool.checkin("peer", conn_pair(&listener));
        assert_eq!(pool.idle_count("peer"), 0);
        assert!(pool.checkout("peer").is_none());
    }

    #[test]
    fn idle_timeout_reaps_at_checkout() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let pool = ConnectionPool::new(4, Duration::from_millis(5));
        pool.checkin("peer", conn_pair(&listener));
        std::thread::sleep(Duration::from_millis(20));
        assert!(pool.checkout("peer").is_none());
        assert_eq!(pool.idle_count("peer"), 0);
    }

    #[test]
    fn hosts_are_isolated() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let pool = ConnectionPool::new(4, Duration::from_secs(60));
        pool.checkin("a", conn_pair(&listener));
        assert!(pool.checkout("b").is_none());
        assert!(pool.checkout("a").is_some());
    }

    #[test]
    fn clear_drops_everything() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let pool = ConnectionPool::new(4, Duration::from_secs(60));
        pool.checkin("a", conn_pair(&listener));
        pool.checkin("b", conn_pair(&listener));
        pool.clear();
        assert_eq!(pool.idle_count("a") + pool.idle_count("b"), 0);
    }
}
