//! Capacity-classed recycling of message buffers.
//!
//! Large Bulk RPC messages (multi-MiB SOAP envelopes) used to allocate a
//! fresh body buffer per request on both sides of the wire, which makes
//! the allocator — not the network — the bottleneck past a few MiB. The
//! pool keeps a small free list of `Vec<u8>`s per power-of-two capacity
//! class; getting a buffer rounds the requested capacity up to its class
//! so a recycled 4 MiB buffer serves every ~4 MiB request afterwards.
//!
//! Buffers outside the class range (tiny or gigantic) and overflow beyond
//! the per-class cap are dropped rather than hoarded. The cap scales down
//! with class size — up to `MAX_PER_CLASS` small buffers, but no class
//! retains more than `MAX_CLASS_BYTES` (one 32 MiB buffer, two 16 MiB, …)
//! — so the process-wide worst-case footprint after a burst of large
//! messages is ~160 MiB rather than `MAX_PER_CLASS × Σ class_size`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Smallest pooled capacity: 4 KiB.
const MIN_CLASS_SHIFT: u32 = 12;
/// Largest pooled capacity: 32 MiB (class shift 25).
const MAX_CLASS_SHIFT: u32 = 25;
const NUM_CLASSES: usize = (MAX_CLASS_SHIFT - MIN_CLASS_SHIFT + 1) as usize;
/// Free-list depth ceiling for small classes; beyond this, returned
/// buffers are dropped.
const MAX_PER_CLASS: usize = 8;
/// Retained-bytes bound per class: large classes keep fewer buffers
/// (`32 MiB → 1`, `16 MiB → 2`, `8 MiB → 4`, `≤ 4 MiB → MAX_PER_CLASS`)
/// so a burst of huge messages can't leave hundreds of MiB pooled forever.
const MAX_CLASS_BYTES: usize = 32 << 20;

/// Free-list depth for `class`: `MAX_PER_CLASS` capped by the per-class
/// byte bound (always at least 1, so even the largest class recycles).
fn max_per_class(class: usize) -> usize {
    let size = 1usize << (class as u32 + MIN_CLASS_SHIFT);
    (MAX_CLASS_BYTES / size).clamp(1, MAX_PER_CLASS)
}

/// A pool of recycled `Vec<u8>`s bucketed by power-of-two capacity.
pub struct BufferPool {
    classes: [parking_lot::Mutex<Vec<Vec<u8>>>; NUM_CLASSES],
    hits: AtomicU64,
    misses: AtomicU64,
    recycled: AtomicU64,
    dropped: AtomicU64,
    /// Buffers currently sitting in free lists.
    occupancy: AtomicU64,
}

/// Point-in-time pool counters; `hits / (hits + misses)` is the hit rate.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// `get` calls served from a free list.
    pub hits: u64,
    /// `get` calls that had to allocate.
    pub misses: u64,
    /// Buffers accepted back by `put`.
    pub recycled: u64,
    /// Buffers rejected by `put` (out of class range or full class).
    pub dropped: u64,
    /// Buffers currently held in free lists.
    pub occupancy: u64,
}

/// Index of the smallest class whose capacity is ≥ `n`, or `None` when
/// `n` exceeds the largest class.
fn class_for_request(n: usize) -> Option<usize> {
    if n > (1 << MAX_CLASS_SHIFT) {
        return None;
    }
    let shift = usize::BITS - n.max(1).next_power_of_two().leading_zeros() - 1;
    let shift = shift.max(MIN_CLASS_SHIFT);
    Some((shift - MIN_CLASS_SHIFT) as usize)
}

/// Index of the largest class whose capacity is ≤ `cap` — the bucket a
/// returned buffer belongs to — or `None` when `cap` is below the
/// smallest class.
fn class_for_return(cap: usize) -> Option<usize> {
    if cap < (1 << MIN_CLASS_SHIFT) {
        return None;
    }
    let shift = (usize::BITS - 1 - cap.leading_zeros()).min(MAX_CLASS_SHIFT);
    Some((shift - MIN_CLASS_SHIFT) as usize)
}

impl BufferPool {
    pub fn new() -> Self {
        BufferPool {
            classes: std::array::from_fn(|_| parking_lot::Mutex::new(Vec::new())),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            recycled: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            occupancy: AtomicU64::new(0),
        }
    }

    /// The process-wide pool both transports and the protocol layer share.
    pub fn global() -> &'static BufferPool {
        static GLOBAL: OnceLock<BufferPool> = OnceLock::new();
        GLOBAL.get_or_init(BufferPool::new)
    }

    /// An empty buffer with at least `min_capacity` bytes of capacity,
    /// recycled when a suitable one is pooled.
    pub fn get(&self, min_capacity: usize) -> Vec<u8> {
        if let Some(class) = class_for_request(min_capacity) {
            if let Some(mut buf) = self.classes[class].lock().pop() {
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.occupancy.fetch_sub(1, Ordering::Relaxed);
                buf.clear();
                return buf;
            }
            self.misses.fetch_add(1, Ordering::Relaxed);
            // allocate the full class size so the buffer is reusable for
            // any request in this class when it comes back
            return Vec::with_capacity(1 << (class as u32 + MIN_CLASS_SHIFT));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        Vec::with_capacity(min_capacity)
    }

    /// Return a buffer for reuse. Contents are discarded; buffers outside
    /// the class range or landing in a full class are dropped.
    pub fn put(&self, buf: Vec<u8>) {
        if let Some(class) = class_for_return(buf.capacity()) {
            let mut list = self.classes[class].lock();
            if list.len() < max_per_class(class) {
                let mut buf = buf;
                buf.clear();
                list.push(buf);
                self.recycled.fetch_add(1, Ordering::Relaxed);
                self.occupancy.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
        self.dropped.fetch_add(1, Ordering::Relaxed);
    }

    /// [`BufferPool::get`] as an empty `String` (for serializers that
    /// build text); the conversion is free since the buffer is empty.
    pub fn get_string(&self, min_capacity: usize) -> String {
        String::from_utf8(self.get(min_capacity)).expect("empty buffer is valid UTF-8")
    }

    /// Return a `String`'s backing buffer to the pool.
    pub fn put_string(&self, s: String) {
        self.put(s.into_bytes());
    }

    pub fn stats(&self) -> PoolStats {
        PoolStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            recycled: self.recycled.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
            occupancy: self.occupancy.load(Ordering::Relaxed),
        }
    }
}

impl Default for BufferPool {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_boundaries() {
        // requests round up
        assert_eq!(class_for_request(0), Some(0));
        assert_eq!(class_for_request(4096), Some(0));
        assert_eq!(class_for_request(4097), Some(1));
        assert_eq!(class_for_request(1 << 20), Some((20 - 12) as usize));
        assert_eq!(class_for_request(32 << 20), Some(NUM_CLASSES - 1));
        assert_eq!(class_for_request((32 << 20) + 1), None);
        // returns round down
        assert_eq!(class_for_return(4095), None);
        assert_eq!(class_for_return(4096), Some(0));
        assert_eq!(class_for_return(8191), Some(0));
        assert_eq!(class_for_return(1 << 26), Some(NUM_CLASSES - 1));
    }

    #[test]
    fn get_put_get_recycles() {
        let p = BufferPool::new();
        let buf = p.get(1 << 20);
        assert!(buf.capacity() >= 1 << 20);
        let cap = buf.capacity();
        p.put(buf);
        let again = p.get(1 << 20);
        assert_eq!(again.capacity(), cap);
        assert!(again.is_empty());
        let s = p.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert_eq!(s.recycled, 1);
        assert_eq!(s.occupancy, 0);
    }

    #[test]
    fn oversized_and_tiny_buffers_dropped() {
        let p = BufferPool::new();
        p.put(Vec::with_capacity(16)); // below smallest class
        p.put(Vec::new());
        let s = p.stats();
        assert_eq!(s.recycled, 0);
        assert_eq!(s.dropped, 2);
        assert_eq!(s.occupancy, 0);
    }

    #[test]
    fn class_cap_bounds_occupancy() {
        let p = BufferPool::new();
        for _ in 0..(MAX_PER_CLASS + 3) {
            p.put(Vec::with_capacity(4096));
        }
        let s = p.stats();
        assert_eq!(s.recycled, MAX_PER_CLASS as u64);
        assert_eq!(s.dropped, 3);
        assert_eq!(s.occupancy, MAX_PER_CLASS as u64);
    }

    #[test]
    fn large_classes_retain_fewer_buffers() {
        // depth scales down with class size so retained bytes stay bounded
        assert_eq!(
            max_per_class(class_for_return(4096).unwrap()),
            MAX_PER_CLASS
        );
        assert_eq!(max_per_class(class_for_return(4 << 20).unwrap()), 8);
        assert_eq!(max_per_class(class_for_return(8 << 20).unwrap()), 4);
        assert_eq!(max_per_class(class_for_return(16 << 20).unwrap()), 2);
        assert_eq!(max_per_class(class_for_return(32 << 20).unwrap()), 1);
        // worst-case retained footprint across every class stays modest
        let worst: usize = (0..NUM_CLASSES)
            .map(|c| max_per_class(c) << (c as u32 + MIN_CLASS_SHIFT))
            .sum();
        assert!(worst <= 192 << 20, "worst-case pool footprint {worst}");
        // and put() enforces the scaled cap
        let p = BufferPool::new();
        for _ in 0..3 {
            p.put(Vec::with_capacity(16 << 20));
        }
        let s = p.stats();
        assert_eq!(s.recycled, 2);
        assert_eq!(s.dropped, 1);
    }

    #[test]
    fn string_roundtrip_reuses_backing_buffer() {
        let p = BufferPool::new();
        let mut s = p.get_string(8192);
        s.push_str("hello");
        let cap = s.capacity();
        p.put_string(s);
        let s2 = p.get_string(8192);
        assert!(s2.is_empty());
        assert_eq!(s2.capacity(), cap);
        assert_eq!(p.stats().hits, 1);
    }
}
