//! HTTP edge cases against a live loopback server: keep-alive reuse,
//! malformed requests, truncated bodies, timeout mapping, and body-size
//! enforcement at the protocol level (raw sockets, no client helper).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;
use xrpc_net::http::{http_post_with, HttpServer};
use xrpc_net::{HttpConfig, NetErrorKind};

fn echo_server() -> HttpServer {
    HttpServer::bind(
        "127.0.0.1:0",
        Arc::new(|_path: &str, body: &[u8]| (200, body.to_vec())),
    )
    .unwrap()
}

/// Read one HTTP response off `reader`: (status, body).
fn read_response(reader: &mut BufReader<TcpStream>) -> (u16, Vec<u8>) {
    let mut status_line = String::new();
    reader.read_line(&mut status_line).unwrap();
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line `{status_line}`"));
    let mut content_length = 0usize;
    loop {
        let mut h = String::new();
        reader.read_line(&mut h).unwrap();
        let h = h.trim_end();
        if h.is_empty() {
            break;
        }
        if let Some((k, v)) = h.split_once(':') {
            if k.trim().eq_ignore_ascii_case("content-length") {
                content_length = v.trim().parse().unwrap();
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).unwrap();
    (status, body)
}

#[test]
fn keep_alive_reuses_one_connection_for_sequential_requests() {
    let server = echo_server();
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    for i in 0..3 {
        let body = format!("request-{i}");
        let head = format!(
            "POST /xrpc HTTP/1.1\r\nHost: {}\r\nContent-Length: {}\r\nConnection: keep-alive\r\n\r\n",
            server.addr(),
            body.len()
        );
        stream.write_all(head.as_bytes()).unwrap();
        stream.write_all(body.as_bytes()).unwrap();
        stream.flush().unwrap();
        let (status, resp) = read_response(&mut reader);
        assert_eq!(status, 200);
        assert_eq!(
            resp,
            body.as_bytes(),
            "request {i} echoed on the same socket"
        );
    }
    assert_eq!(
        server.metrics.snapshot().roundtrips,
        3,
        "all three requests served over one connection"
    );
}

#[test]
fn malformed_request_line_gets_400() {
    let server = echo_server();
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream.write_all(b"THIS-IS-NOT-HTTP\r\n\r\n").unwrap();
    stream.flush().unwrap();
    let mut resp = String::new();
    stream.read_to_string(&mut resp).unwrap();
    assert!(resp.starts_with("HTTP/1.1 400"), "{resp}");
    assert!(resp.contains("malformed request line"), "{resp}");
}

#[test]
fn unsupported_method_gets_400() {
    let server = echo_server();
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream
        .write_all(b"DELETE /xrpc HTTP/1.1\r\nContent-Length: 0\r\n\r\n")
        .unwrap();
    let mut resp = String::new();
    stream.read_to_string(&mut resp).unwrap();
    assert!(resp.starts_with("HTTP/1.1 400"), "{resp}");
    assert!(resp.contains("unsupported method"), "{resp}");
}

#[test]
fn truncated_body_closes_connection_without_response() {
    let server = echo_server();
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream
        .write_all(b"POST /xrpc HTTP/1.1\r\nContent-Length: 100\r\n\r\nonly-this")
        .unwrap();
    stream.flush().unwrap();
    // half-close: the server's read_exact hits EOF mid-body
    stream.shutdown(std::net::Shutdown::Write).unwrap();
    let mut resp = Vec::new();
    stream.read_to_end(&mut resp).unwrap();
    assert!(
        resp.is_empty(),
        "truncated request must not produce a response: {:?}",
        String::from_utf8_lossy(&resp)
    );
    assert_eq!(server.metrics.snapshot().roundtrips, 0);
}

#[test]
fn slow_server_maps_to_timeout_kind_at_client() {
    let server = HttpServer::bind(
        "127.0.0.1:0",
        Arc::new(|_: &str, b: &[u8]| {
            std::thread::sleep(Duration::from_millis(500));
            (200, b.to_vec())
        }),
    )
    .unwrap();
    let url = format!("http://{}/slow", server.addr());
    let cfg = HttpConfig {
        read_timeout: Duration::from_millis(50),
        ..HttpConfig::default()
    };
    let err = http_post_with(&url, b"x", &cfg).unwrap_err();
    assert_eq!(err.kind, NetErrorKind::Timeout);
    assert!(err.kind.retryable(), "client timeouts are retryable");
}

#[test]
fn oversized_content_length_rejected_before_body_arrives() {
    let server = HttpServer::bind_with(
        "127.0.0.1:0",
        Arc::new(|_: &str, b: &[u8]| (200, b.to_vec())),
        HttpConfig {
            max_body_bytes: 1024,
            ..HttpConfig::default()
        },
    )
    .unwrap();
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    // announce a huge body but send none: the 413 must come back anyway,
    // proving the server rejects on the header alone
    stream
        .write_all(b"POST /xrpc HTTP/1.1\r\nContent-Length: 10000000000\r\n\r\n")
        .unwrap();
    stream.flush().unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let (status, body) = read_response(&mut reader);
    assert_eq!(status, 413);
    assert!(
        String::from_utf8_lossy(&body).contains("exceeds limit"),
        "{}",
        String::from_utf8_lossy(&body)
    );
}
