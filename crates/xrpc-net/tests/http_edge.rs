//! HTTP edge cases against a live loopback server: keep-alive reuse,
//! malformed requests, truncated bodies, timeout mapping, body-size
//! enforcement, slow-loris timeouts, request pipelining and admission
//! shedding — at the protocol level (raw sockets, no client helper).
//! The default server is the epoll reactor; the tests that pin down
//! behavior both models must share run against each explicitly.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};
use xrpc_net::http::{http_post_with, HttpServer};
use xrpc_net::{HttpConfig, NetErrorKind, ServerModel};

fn echo_server() -> HttpServer {
    HttpServer::bind(
        "127.0.0.1:0",
        Arc::new(|_path: &str, body: &[u8]| (200, body.to_vec())),
    )
    .unwrap()
}

/// Read one HTTP response off `reader`: (status, body).
fn read_response(reader: &mut BufReader<TcpStream>) -> (u16, Vec<u8>) {
    let mut status_line = String::new();
    reader.read_line(&mut status_line).unwrap();
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line `{status_line}`"));
    let mut content_length = 0usize;
    loop {
        let mut h = String::new();
        reader.read_line(&mut h).unwrap();
        let h = h.trim_end();
        if h.is_empty() {
            break;
        }
        if let Some((k, v)) = h.split_once(':') {
            if k.trim().eq_ignore_ascii_case("content-length") {
                content_length = v.trim().parse().unwrap();
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).unwrap();
    (status, body)
}

#[test]
fn keep_alive_reuses_one_connection_for_sequential_requests() {
    let server = echo_server();
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    for i in 0..3 {
        let body = format!("request-{i}");
        let head = format!(
            "POST /xrpc HTTP/1.1\r\nHost: {}\r\nContent-Length: {}\r\nConnection: keep-alive\r\n\r\n",
            server.addr(),
            body.len()
        );
        stream.write_all(head.as_bytes()).unwrap();
        stream.write_all(body.as_bytes()).unwrap();
        stream.flush().unwrap();
        let (status, resp) = read_response(&mut reader);
        assert_eq!(status, 200);
        assert_eq!(
            resp,
            body.as_bytes(),
            "request {i} echoed on the same socket"
        );
    }
    assert_eq!(
        server.metrics.snapshot().roundtrips,
        3,
        "all three requests served over one connection"
    );
}

#[test]
fn malformed_request_line_gets_400() {
    let server = echo_server();
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream.write_all(b"THIS-IS-NOT-HTTP\r\n\r\n").unwrap();
    stream.flush().unwrap();
    let mut resp = String::new();
    stream.read_to_string(&mut resp).unwrap();
    assert!(resp.starts_with("HTTP/1.1 400"), "{resp}");
    assert!(resp.contains("malformed request line"), "{resp}");
}

#[test]
fn unsupported_method_gets_400() {
    let server = echo_server();
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream
        .write_all(b"DELETE /xrpc HTTP/1.1\r\nContent-Length: 0\r\n\r\n")
        .unwrap();
    let mut resp = String::new();
    stream.read_to_string(&mut resp).unwrap();
    assert!(resp.starts_with("HTTP/1.1 400"), "{resp}");
    assert!(resp.contains("unsupported method"), "{resp}");
}

#[test]
fn truncated_body_closes_connection_without_response() {
    let server = echo_server();
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream
        .write_all(b"POST /xrpc HTTP/1.1\r\nContent-Length: 100\r\n\r\nonly-this")
        .unwrap();
    stream.flush().unwrap();
    // half-close: the server's read_exact hits EOF mid-body
    stream.shutdown(std::net::Shutdown::Write).unwrap();
    let mut resp = Vec::new();
    stream.read_to_end(&mut resp).unwrap();
    assert!(
        resp.is_empty(),
        "truncated request must not produce a response: {:?}",
        String::from_utf8_lossy(&resp)
    );
    assert_eq!(server.metrics.snapshot().roundtrips, 0);
}

#[test]
fn slow_server_maps_to_timeout_kind_at_client() {
    let server = HttpServer::bind(
        "127.0.0.1:0",
        Arc::new(|_: &str, b: &[u8]| {
            std::thread::sleep(Duration::from_millis(500));
            (200, b.to_vec())
        }),
    )
    .unwrap();
    let url = format!("http://{}/slow", server.addr());
    let cfg = HttpConfig {
        read_timeout: Duration::from_millis(50),
        ..HttpConfig::default()
    };
    let err = http_post_with(&url, b"x", &cfg).unwrap_err();
    assert_eq!(err.kind, NetErrorKind::Timeout);
    assert!(err.kind.retryable(), "client timeouts are retryable");
}

#[test]
fn oversized_content_length_rejected_before_body_arrives() {
    let server = HttpServer::bind_with(
        "127.0.0.1:0",
        Arc::new(|_: &str, b: &[u8]| (200, b.to_vec())),
        HttpConfig {
            max_body_bytes: 1024,
            ..HttpConfig::default()
        },
    )
    .unwrap();
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    // announce a huge body but send none: the 413 must come back anyway,
    // proving the server rejects on the header alone
    stream
        .write_all(b"POST /xrpc HTTP/1.1\r\nContent-Length: 10000000000\r\n\r\n")
        .unwrap();
    stream.flush().unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let (status, body) = read_response(&mut reader);
    assert_eq!(status, 413);
    assert!(
        String::from_utf8_lossy(&body).contains("exceeds limit"),
        "{}",
        String::from_utf8_lossy(&body)
    );
}

/// Slow-loris: a client trickling a partial header must get a clean
/// close (FIN, zero response bytes) once `read_timeout` expires — not a
/// hung worker, not a reset mid-handshake, under either server model.
#[test]
fn slow_loris_partial_header_cleanly_closed_after_read_timeout() {
    for model in [ServerModel::Reactor, ServerModel::Threaded] {
        let server = HttpServer::bind_with(
            "127.0.0.1:0",
            Arc::new(|_: &str, b: &[u8]| (200, b.to_vec())),
            HttpConfig {
                read_timeout: Duration::from_millis(200),
                model,
                ..HttpConfig::default()
            },
        )
        .unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        // a header fragment, then silence — never the terminating CRLFCRLF
        stream
            .write_all(b"POST /xrpc HTTP/1.1\r\nContent-Le")
            .unwrap();
        stream.flush().unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let started = Instant::now();
        let mut resp = Vec::new();
        stream.read_to_end(&mut resp).unwrap();
        assert!(
            resp.is_empty(),
            "{model:?}: a partial request must not be answered: {:?}",
            String::from_utf8_lossy(&resp)
        );
        assert!(
            started.elapsed() >= Duration::from_millis(150),
            "{model:?}: closed before the read timeout"
        );
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "{model:?}: close took {:?}, worker looks hung",
            started.elapsed()
        );
        assert_eq!(server.metrics.snapshot().roundtrips, 0, "{model:?}");
    }
}

/// Two requests written back-to-back on one connection before reading
/// anything: both answered, in order, each correctly framed.
#[test]
fn pipelined_requests_answered_in_order() {
    for model in [ServerModel::Reactor, ServerModel::Threaded] {
        let server = HttpServer::bind_with(
            "127.0.0.1:0",
            Arc::new(|path: &str, body: &[u8]| {
                let mut out = format!("path={path};").into_bytes();
                out.extend_from_slice(body);
                (200, out)
            }),
            HttpConfig {
                model,
                ..HttpConfig::default()
            },
        )
        .unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        let mut pipelined = Vec::new();
        for (path, body) in [("/first", "alpha"), ("/second", "bravo")] {
            pipelined.extend_from_slice(
                format!(
                    "POST {path} HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\nConnection: keep-alive\r\n\r\n{body}",
                    body.len()
                )
                .as_bytes(),
            );
        }
        stream.write_all(&pipelined).unwrap();
        stream.flush().unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let (s1, r1) = read_response(&mut reader);
        let (s2, r2) = read_response(&mut reader);
        assert_eq!((s1, s2), (200, 200), "{model:?}");
        assert_eq!(r1, b"path=/first;alpha", "{model:?}: first answer first");
        assert_eq!(r2, b"path=/second;bravo", "{model:?}: second answer second");
        assert_eq!(server.metrics.snapshot().roundtrips, 2, "{model:?}");
    }
}

/// Over-admission on the reactor path: with `max_connections: 1` and
/// the slot held, the excess connection reads a full `503` response —
/// not ECONNRESET — because the shed path half-closes and drains (the
/// PR 3 regression, ported from the threaded model).
#[test]
fn reactor_over_admission_yields_readable_503() {
    let server = HttpServer::bind_with(
        "127.0.0.1:0",
        Arc::new(|_: &str, b: &[u8]| (200, b.to_vec())),
        HttpConfig {
            max_connections: 1,
            model: ServerModel::Reactor,
            ..HttpConfig::default()
        },
    )
    .unwrap();
    // occupy the only slot with an idle admitted connection
    let hold = TcpStream::connect(server.addr()).unwrap();
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.active_connections() == 0 {
        assert!(Instant::now() < deadline, "held connection never admitted");
        std::thread::sleep(Duration::from_millis(1));
    }
    // the next connection must be shed — with the request bytes already
    // in flight, the hardest case for response delivery
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream
        .write_all(b"POST /xrpc HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nbody")
        .unwrap();
    stream.flush().unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let (status, body) = read_response(&mut reader);
    assert_eq!(status, 503, "over-admission must shed with 503");
    assert!(
        String::from_utf8_lossy(&body).contains("limit"),
        "{}",
        String::from_utf8_lossy(&body)
    );
    assert!(
        server.metrics.snapshot().sheds >= 1,
        "shed decision must be counted"
    );
    drop(hold);
    // the slot frees: a fresh request is served again
    let url = format!("http://{}/xrpc", server.addr());
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let (status, body) = http_post_with(&url, b"after", &HttpConfig::default()).unwrap();
        if status == 200 {
            assert_eq!(body, b"after");
            break;
        }
        assert!(Instant::now() < deadline, "slot was never released");
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// A valid request pipelined ahead of a malformed one: the valid
/// request is answered first (200), then the 400, then the connection
/// closes — a protocol error must not eat responses for requests
/// queued before it, nor jump ahead of them (HTTP/1.1 pipelining
/// answers in request order).
#[test]
fn pipelined_request_before_malformed_one_answered_first() {
    let server = echo_server();
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream
        .write_all(
            b"POST /a HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nalphaTHIS-IS-NOT-HTTP\r\n\r\n",
        )
        .unwrap();
    stream.flush().unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let (s1, r1) = read_response(&mut reader);
    assert_eq!(s1, 200, "pipelined request ahead of the error is served");
    assert_eq!(r1, b"alpha");
    let (s2, _) = read_response(&mut reader);
    assert_eq!(s2, 400, "protocol error answered after it");
    let mut rest = Vec::new();
    reader.read_to_end(&mut rest).unwrap();
    assert!(
        rest.is_empty(),
        "connection closes after the error response"
    );
    assert_eq!(server.metrics.snapshot().roundtrips, 1);
}

/// Write-side slow-loris: the client requests a response far larger
/// than the socket buffers and then never reads. The stalled flush
/// keeps `wbuf` non-empty (so the connection is never "idle"); the
/// sweep must still close it once write progress stalls for
/// `read_timeout` — not leak the slot and its active_connections count
/// forever.
#[test]
fn unread_response_closed_after_write_stall_timeout() {
    let server = HttpServer::bind_with(
        "127.0.0.1:0",
        Arc::new(|_: &str, _: &[u8]| (200, vec![0x58; 64 << 20])),
        HttpConfig {
            read_timeout: Duration::from_millis(300),
            model: ServerModel::Reactor,
            ..HttpConfig::default()
        },
    )
    .unwrap();
    let stream = TcpStream::connect(server.addr()).unwrap();
    (&stream)
        .write_all(b"POST /big HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\n\r\n")
        .unwrap();
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.active_connections() == 0 {
        assert!(Instant::now() < deadline, "connection never admitted");
        std::thread::sleep(Duration::from_millis(2));
    }
    // never read a byte: the 64 MiB response cannot fit in kernel
    // buffers, so the server's flush stalls until the write timeout
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.active_connections() > 0 {
        assert!(
            Instant::now() < deadline,
            "stalled connection never closed by the write timeout"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// A transient overload pushes the queue-wait EWMA over `shed_wait`;
/// new connections are shed at accept — but shed connections never
/// enqueue jobs, so only the reactor's idle-tick decay can bring the
/// signal back down. Without it a shed storm latches into a permanent
/// 503 outage; this pins the recovery path.
#[test]
fn shed_signal_recovers_after_load_subsides() {
    let server = HttpServer::bind_with(
        "127.0.0.1:0",
        Arc::new(|_: &str, b: &[u8]| {
            std::thread::sleep(Duration::from_millis(40));
            (200, b.to_vec())
        }),
        HttpConfig {
            model: ServerModel::Reactor,
            reactor_workers: 1,
            dispatch_queue: 64,
            shed_wait: Duration::from_millis(5),
            ..HttpConfig::default()
        },
    )
    .unwrap();
    // 6 concurrent one-shot clients against one 40ms-per-request
    // worker: later jobs wait 40–200ms in the dispatch queue, driving
    // the EWMA far above the 5ms shed threshold. Connect everyone
    // first — admission happens at accept, while the signal is still
    // zero — so all 6 deterministically complete.
    let streams: Vec<TcpStream> = (0..6)
        .map(|_| TcpStream::connect(server.addr()).unwrap())
        .collect();
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.active_connections() < 6 {
        assert!(Instant::now() < deadline, "burst never fully admitted");
        std::thread::sleep(Duration::from_millis(2));
    }
    let burst: Vec<_> = streams
        .into_iter()
        .map(|mut stream| {
            std::thread::spawn(move || {
                stream
                    .write_all(b"POST /xrpc HTTP/1.1\r\nHost: x\r\nContent-Length: 1\r\n\r\nx")
                    .unwrap();
                stream.flush().unwrap();
                stream
                    .set_read_timeout(Some(Duration::from_secs(10)))
                    .unwrap();
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                read_response(&mut reader).0
            })
        })
        .collect();
    for b in burst {
        assert_eq!(b.join().unwrap(), 200, "burst served while signal low");
    }
    // signal is now latched high: the next connection is shed
    {
        let stream = TcpStream::connect(server.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let (status, _) = read_response(&mut reader);
        assert_eq!(status, 503, "EWMA over shed_wait must shed at accept");
    }
    assert!(server.metrics.snapshot().sheds >= 1);
    // with zero load the signal must decay and admission must recover
    let deadline = Instant::now() + Duration::from_secs(15);
    loop {
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream
            .write_all(b"POST /xrpc HTTP/1.1\r\nHost: x\r\nContent-Length: 1\r\n\r\ny")
            .unwrap();
        stream.flush().unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let (status, _) = read_response(&mut reader);
        if status == 200 {
            break;
        }
        assert_eq!(status, 503);
        assert!(
            Instant::now() < deadline,
            "shed signal never recovered: permanent 503 outage"
        );
        std::thread::sleep(Duration::from_millis(100));
    }
}

/// A saturated dispatch queue sheds rather than queueing unboundedly:
/// one worker stuck in a slow handler, a queue of one, and a burst of
/// keep-alive clients — at least one must see the 503 shed path, and
/// every connection must get *some* orderly answer (503 or 200).
#[test]
fn reactor_dispatch_queue_saturation_sheds_with_503() {
    let server = HttpServer::bind_with(
        "127.0.0.1:0",
        Arc::new(|_: &str, b: &[u8]| {
            std::thread::sleep(Duration::from_millis(300));
            (200, b.to_vec())
        }),
        HttpConfig {
            model: ServerModel::Reactor,
            reactor_workers: 1,
            dispatch_queue: 1,
            ..HttpConfig::default()
        },
    )
    .unwrap();
    let addr = server.addr();
    let clients: Vec<_> = (0..6)
        .map(|i| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut stream = TcpStream::connect(addr).unwrap();
                let body = format!("c{i}");
                stream
                    .write_all(
                        format!(
                            "POST /xrpc HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{body}",
                            body.len()
                        )
                        .as_bytes(),
                    )
                    .unwrap();
                stream.flush().unwrap();
                stream
                    .set_read_timeout(Some(Duration::from_secs(10)))
                    .unwrap();
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                read_response(&mut reader).0
            })
        })
        .collect();
    let statuses: Vec<u16> = clients.into_iter().map(|c| c.join().unwrap()).collect();
    assert!(
        statuses.iter().all(|s| *s == 200 || *s == 503),
        "every connection gets an orderly answer: {statuses:?}"
    );
    assert!(
        statuses.contains(&503) || server.metrics.snapshot().sheds > 0,
        "saturation must trigger the shed path: {statuses:?}"
    );
    assert!(
        statuses.contains(&200),
        "admitted requests still complete: {statuses:?}"
    );
}
