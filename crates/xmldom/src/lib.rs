//! Arena-based XML document store: the storage substrate underneath the
//! XQuery Data Model, the XQuery engines and the SOAP XRPC protocol layer.
//!
//! Design notes
//! ------------
//! * A [`Document`] owns a flat arena of nodes ([`NodeId`] indexes into it).
//!   Elements and the document root keep explicit `children`/`attributes`
//!   vectors, so XQUF mutations (insert/delete/replace/rename) are simple
//!   vector edits.
//! * Evaluation always works on immutable `Arc<Document>` snapshots; updates
//!   clone the arena, mutate the clone and swap it in. This mirrors the
//!   shadow-paging snapshot isolation that MonetDB/XQuery uses (paper §2.2).
//! * Document order is computed structurally (by comparing ancestor paths),
//!   which stays correct after arbitrary mutation.

pub mod axes;
pub mod builder;
pub mod escape;
pub mod node;
pub mod order;
pub mod parser;
pub mod qname;
pub mod serialize;

pub use builder::DocBuilder;
pub use node::{Document, NodeData, NodeId, NodeKind};
pub use parser::{parse, parse_with_uri, ParseError};
pub use qname::QName;
pub use serialize::{
    serialize_document, serialize_document_into, serialize_node, serialize_node_into, SerializeOpts,
};

use std::sync::Arc;

/// A reference-counted handle to a node inside a specific document snapshot.
///
/// Two handles are the *same node* iff they point into the same snapshot and
/// carry the same id; handles into different snapshots of one logical
/// document are distinct nodes, which is exactly what repeatable-read
/// isolation requires.
#[derive(Clone)]
pub struct NodeHandle {
    pub doc: Arc<Document>,
    pub id: NodeId,
}

impl NodeHandle {
    pub fn new(doc: Arc<Document>, id: NodeId) -> Self {
        NodeHandle { doc, id }
    }

    /// Handle to the document root node of `doc`.
    pub fn root(doc: Arc<Document>) -> Self {
        let id = doc.root();
        NodeHandle { doc, id }
    }

    pub fn kind(&self) -> NodeKind {
        self.doc.kind(self.id)
    }

    pub fn data(&self) -> &NodeData {
        self.doc.node(self.id)
    }

    /// Node identity (`is` operator): same snapshot, same arena slot.
    pub fn same_node(&self, other: &NodeHandle) -> bool {
        Arc::ptr_eq(&self.doc, &other.doc) && self.id == other.id
    }

    /// String value per the XDM (concatenation of descendant text nodes for
    /// elements/documents; the stored value for the other kinds).
    pub fn string_value(&self) -> String {
        self.doc.string_value(self.id)
    }

    pub fn name(&self) -> Option<&QName> {
        self.doc.node(self.id).name.as_deref()
    }

    pub fn parent(&self) -> Option<NodeHandle> {
        self.doc
            .node(self.id)
            .parent
            .map(|p| NodeHandle::new(self.doc.clone(), p))
    }

    /// Serialize this node (children inline) to a string.
    pub fn to_xml(&self) -> String {
        serialize::serialize_node(&self.doc, self.id, &SerializeOpts::default())
    }
}

impl std::fmt::Debug for NodeHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "NodeHandle({:?}, {:?})", self.id, self.kind())
    }
}

impl PartialEq for NodeHandle {
    fn eq(&self, other: &Self) -> bool {
        self.same_node(other)
    }
}
impl Eq for NodeHandle {}

impl std::hash::Hash for NodeHandle {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        (Arc::as_ptr(&self.doc) as usize).hash(state);
        self.id.hash(state);
    }
}
