//! Document order, computed structurally so it survives XQUF mutation.
//!
//! Nodes from *different* documents are ordered by an arbitrary but stable
//! criterion (the `Arc` pointer address), as the XQuery Data Model allows —
//! the paper (§2.2 Call-by-Value) explicitly notes XRPC does not preserve
//! cross-document order on marshaled copies.

use crate::node::{Document, NodeId, NodeKind};
use crate::NodeHandle;
use std::cmp::Ordering;
use std::sync::Arc;

/// Path from the document root to a node: the child index at each level.
/// Attributes order after their owner element and before its children,
/// encoded by a special large-offset index component.
fn path_to(doc: &Document, id: NodeId) -> Vec<u32> {
    let mut rev = Vec::new();
    let mut cur = id;
    while let Some(parent) = doc.node(cur).parent {
        let pd = doc.node(parent);
        if doc.kind(cur) == NodeKind::Attribute {
            let pos = pd
                .attributes
                .iter()
                .position(|&a| a == cur)
                .expect("attribute under parent") as u32;
            // Attributes sort before children but after the element itself:
            // encode as a leading half-range component.
            rev.push(pos);
            rev.push(u32::MAX); // attribute marker level
        } else {
            let pos = pd
                .children
                .iter()
                .position(|&c| c == cur)
                .expect("child under parent") as u32;
            rev.push(pos);
        }
        cur = parent;
    }
    rev.reverse();
    rev
}

/// Compare two nodes of the *same* document in document order.
pub fn cmp_same_doc(doc: &Document, a: NodeId, b: NodeId) -> Ordering {
    if a == b {
        return Ordering::Equal;
    }
    let pa = path_to(doc, a);
    let pb = path_to(doc, b);
    // An ancestor precedes its descendants: shorter path that is a prefix.
    for i in 0..pa.len().min(pb.len()) {
        match pa[i].cmp(&pb[i]) {
            Ordering::Equal => continue,
            // attribute marker (MAX) must sort *before* child indexes at the
            // same level: an attribute precedes the element's children.
            ord => {
                let a_attr = pa[i] == u32::MAX;
                let b_attr = pb[i] == u32::MAX;
                if a_attr != b_attr {
                    return if a_attr {
                        Ordering::Less
                    } else {
                        Ordering::Greater
                    };
                }
                return ord;
            }
        }
    }
    pa.len().cmp(&pb.len())
}

/// Compare two handles in (global) document order.
pub fn cmp_handles(a: &NodeHandle, b: &NodeHandle) -> Ordering {
    if Arc::ptr_eq(&a.doc, &b.doc) {
        cmp_same_doc(&a.doc, a.id, b.id)
    } else {
        (Arc::as_ptr(&a.doc) as usize).cmp(&(Arc::as_ptr(&b.doc) as usize))
    }
}

/// Sort handles into document order and remove duplicates (node identity) —
/// the post-processing every XPath step applies.
///
/// For large same-document batches, comparing via [`cmp_handles`] is
/// quadratic: every comparison rebuilds both root paths, and each path level
/// does a linear sibling-position scan. Instead we make one preorder pass
/// over the document assigning each attached node a dense rank, then sort by
/// that integer key — O(doc + n log n) with O(1) comparisons.
pub fn sort_dedup(handles: &mut Vec<NodeHandle>) {
    if handles.len() <= 1 {
        return;
    }
    let same_doc = handles
        .windows(2)
        .all(|w| Arc::ptr_eq(&w[0].doc, &w[1].doc));
    if same_doc && handles.len() >= 8 {
        let ranks = doc_order_ranks(&handles[0].doc);
        if handles.iter().all(|h| ranks[h.id.index()] != u32::MAX) {
            handles.sort_by_key(|h| ranks[h.id.index()]);
            handles.dedup_by(|a, b| a.same_node(b));
            return;
        }
    }
    handles.sort_by(cmp_handles);
    handles.dedup_by(|a, b| a.same_node(b));
}

/// Preorder rank per arena slot (document order: an element precedes its
/// attributes, which precede its children).
///
/// Detached subtrees — e.g. marshaled fragments sharing one message arena —
/// are ranked after the attached tree, ordered by their root's arena slot:
/// an arbitrary but stable inter-fragment order, which is all the XDM
/// requires for nodes with no common ancestor. Nodes unreachable from any
/// parentless root keep `u32::MAX`.
fn doc_order_ranks(doc: &Document) -> Vec<u32> {
    let mut ranks = vec![u32::MAX; doc.len()];
    let mut next: u32 = 0;
    let rank_from = |root: NodeId, ranks: &mut Vec<u32>, next: &mut u32| {
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            ranks[id.index()] = *next;
            *next += 1;
            for &a in doc.attributes(id) {
                ranks[a.index()] = *next;
                *next += 1;
            }
            for &c in doc.children(id).iter().rev() {
                stack.push(c);
            }
        }
    };
    rank_from(doc.root(), &mut ranks, &mut next);
    for id in doc.all_ids().skip(1) {
        if doc.node(id).parent.is_none() && ranks[id.index()] == u32::MAX {
            rank_from(id, &mut ranks, &mut next);
        }
    }
    ranks
}

/// True iff `anc` is an ancestor of `desc` (strict) within one document.
pub fn is_ancestor(doc: &Document, anc: NodeId, desc: NodeId) -> bool {
    let mut cur = doc.node(desc).parent;
    while let Some(p) = cur {
        if p == anc {
            return true;
        }
        cur = doc.node(p).parent;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn preorder_matches_document_order() {
        let d = parse("<a><b><c/></b><d/></a>").unwrap();
        let a = d.children(d.root())[0];
        let b = d.children(a)[0];
        let c = d.children(b)[0];
        let dd = d.children(a)[1];
        assert_eq!(cmp_same_doc(&d, a, b), Ordering::Less);
        assert_eq!(cmp_same_doc(&d, b, c), Ordering::Less);
        assert_eq!(cmp_same_doc(&d, c, dd), Ordering::Less);
        assert_eq!(cmp_same_doc(&d, dd, b), Ordering::Greater);
        assert_eq!(cmp_same_doc(&d, a, a), Ordering::Equal);
    }

    #[test]
    fn attributes_before_children() {
        let d = parse(r#"<a k="v"><b/></a>"#).unwrap();
        let a = d.children(d.root())[0];
        let attr = d.attributes(a)[0];
        let b = d.children(a)[0];
        assert_eq!(cmp_same_doc(&d, a, attr), Ordering::Less);
        assert_eq!(cmp_same_doc(&d, attr, b), Ordering::Less);
    }

    #[test]
    fn order_survives_mutation() {
        let mut d = parse("<a><b/><c/></a>").unwrap();
        let a = d.children(d.root())[0];
        let b = d.children(a)[0];
        let c = d.children(a)[1];
        // Move c before b.
        d.insert_before(b, c);
        assert_eq!(cmp_same_doc(&d, c, b), Ordering::Less);
    }

    #[test]
    fn sort_dedup_by_identity() {
        let d = Arc::new(parse("<a><b/><c/></a>").unwrap());
        let a = d.children(d.root())[0];
        let b = d.children(a)[0];
        let c = d.children(a)[1];
        let mut v = vec![
            NodeHandle::new(d.clone(), c),
            NodeHandle::new(d.clone(), b),
            NodeHandle::new(d.clone(), c),
        ];
        sort_dedup(&mut v);
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].id, b);
        assert_eq!(v[1].id, c);
    }

    #[test]
    fn ancestor_test() {
        let d = parse("<a><b><c/></b></a>").unwrap();
        let a = d.children(d.root())[0];
        let b = d.children(a)[0];
        let c = d.children(b)[0];
        assert!(is_ancestor(&d, a, c));
        assert!(is_ancestor(&d, b, c));
        assert!(!is_ancestor(&d, c, a));
        assert!(!is_ancestor(&d, c, c));
    }
}
