//! XML serialization (the inverse of the parser, used for wire messages and
//! for `fn:put` / debugging output).

use crate::escape::{push_escaped_attr, push_escaped_text};
use crate::node::{Document, NodeId, NodeKind};

/// Serialization options.
#[derive(Clone, Debug, Default)]
pub struct SerializeOpts {
    /// Emit an `<?xml version="1.0" encoding="utf-8"?>` declaration
    /// (document serialization only).
    pub xml_decl: bool,
    /// Pretty-print with the given indent width (0 = compact).
    pub indent: usize,
}

/// Serialize a whole document.
pub fn serialize_document(doc: &Document, opts: &SerializeOpts) -> String {
    let mut out = String::new();
    if opts.xml_decl {
        out.push_str("<?xml version=\"1.0\" encoding=\"utf-8\"?>");
        if opts.indent > 0 {
            out.push('\n');
        }
    }
    let mut first = true;
    for &c in doc.children(doc.root()) {
        if !first && opts.indent > 0 {
            out.push('\n');
        }
        first = false;
        write_node(doc, c, opts, 0, &mut out);
    }
    out
}

/// Serialize one node (subtree).
pub fn serialize_node(doc: &Document, id: NodeId, opts: &SerializeOpts) -> String {
    let mut out = String::new();
    write_node(doc, id, opts, 0, &mut out);
    out
}

fn write_node(doc: &Document, id: NodeId, opts: &SerializeOpts, depth: usize, out: &mut String) {
    match doc.kind(id) {
        NodeKind::Document => {
            for &c in doc.children(id) {
                write_node(doc, c, opts, depth, out);
            }
        }
        NodeKind::Element => write_element(doc, id, opts, depth, out),
        NodeKind::Text => push_escaped_text(out, &doc.node(id).value),
        NodeKind::Comment => {
            out.push_str("<!--");
            out.push_str(&doc.node(id).value);
            out.push_str("-->");
        }
        NodeKind::ProcessingInstruction => {
            out.push_str("<?");
            out.push_str(
                doc.node(id)
                    .name
                    .as_ref()
                    .map(|n| n.local.as_str())
                    .unwrap_or(""),
            );
            let v = &doc.node(id).value;
            if !v.is_empty() {
                out.push(' ');
                out.push_str(v);
            }
            out.push_str("?>");
        }
        NodeKind::Attribute => {
            // A standalone attribute serializes as name="value" (used by the
            // XRPC <attribute> wrapper).
            let d = doc.node(id);
            out.push_str(&d.name.as_ref().map(|n| n.lexical()).unwrap_or_default());
            out.push_str("=\"");
            push_escaped_attr(out, &d.value);
            out.push('"');
        }
    }
}

fn write_element(doc: &Document, id: NodeId, opts: &SerializeOpts, depth: usize, out: &mut String) {
    let d = doc.node(id);
    let name = d.name.as_ref().expect("element has a name").lexical();
    if opts.indent > 0 && depth > 0 {
        // caller already placed us; indentation is applied to children below
    }
    out.push('<');
    out.push_str(&name);
    for (p, u) in &d.ns_decls {
        if p.is_empty() {
            out.push_str(" xmlns=\"");
        } else {
            out.push_str(" xmlns:");
            out.push_str(p);
            out.push_str("=\"");
        }
        push_escaped_attr(out, u);
        out.push('"');
    }
    for &a in doc.attributes(id) {
        let ad = doc.node(a);
        out.push(' ');
        out.push_str(&ad.name.as_ref().map(|n| n.lexical()).unwrap_or_default());
        out.push_str("=\"");
        push_escaped_attr(out, &ad.value);
        out.push('"');
    }
    if d.children.is_empty() {
        out.push_str("/>");
        return;
    }
    out.push('>');
    let pretty = opts.indent > 0 && d.children.iter().all(|&c| doc.kind(c) != NodeKind::Text);
    for &c in doc.children(id) {
        if pretty {
            out.push('\n');
            for _ in 0..(depth + 1) * opts.indent {
                out.push(' ');
            }
        }
        write_node(doc, c, opts, depth + 1, out);
    }
    if pretty {
        out.push('\n');
        for _ in 0..depth * opts.indent {
            out.push(' ');
        }
    }
    out.push_str("</");
    out.push_str(&name);
    out.push('>');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn roundtrip(s: &str) -> String {
        let d = parse(s).unwrap();
        serialize_document(&d, &SerializeOpts::default())
    }

    #[test]
    fn simple_roundtrip() {
        assert_eq!(roundtrip("<a><b>x</b><c/></a>"), "<a><b>x</b><c/></a>");
    }

    #[test]
    fn attrs_and_namespaces_roundtrip() {
        let s = r#"<p:a xmlns:p="urn:x" k="v&quot;"><p:b/></p:a>"#;
        assert_eq!(roundtrip(s), s);
    }

    #[test]
    fn text_escaping_roundtrip() {
        assert_eq!(roundtrip("<a>&lt;&amp;&gt;</a>"), "<a>&lt;&amp;&gt;</a>");
    }

    #[test]
    fn comments_and_pis_roundtrip() {
        let s = "<a><!-- c --><?t data?></a>";
        assert_eq!(roundtrip(s), s);
    }

    #[test]
    fn xml_decl_emitted() {
        let d = parse("<a/>").unwrap();
        let out = serialize_document(
            &d,
            &SerializeOpts {
                xml_decl: true,
                indent: 0,
            },
        );
        assert!(out.starts_with("<?xml version=\"1.0\""));
    }

    #[test]
    fn pretty_printing_indents_element_only_content() {
        let d = parse("<a><b><c/></b></a>").unwrap();
        let out = serialize_document(
            &d,
            &SerializeOpts {
                xml_decl: false,
                indent: 2,
            },
        );
        assert_eq!(out, "<a>\n  <b>\n    <c/>\n  </b>\n</a>");
    }

    #[test]
    fn double_parse_serialize_is_fixpoint() {
        let s = r#"<r><x a="1">t&amp;t</x><!--c--><y xmlns="urn:d"><z/></y></r>"#;
        let once = roundtrip(s);
        let twice = roundtrip(&once);
        assert_eq!(once, twice);
    }
}
