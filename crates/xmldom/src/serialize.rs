//! XML serialization (the inverse of the parser, used for wire messages and
//! for `fn:put` / debugging output).
//!
//! Serialization is iterative (explicit work stack, not recursion) so deeply
//! nested documents cannot overflow the thread stack, and every entry point
//! has an `_into` variant that appends to a caller-supplied buffer so the
//! hot message path can reuse one allocation across calls.

use crate::escape::{push_escaped_attr, push_escaped_text};
use crate::node::{Document, NodeId, NodeKind};

/// Serialization options.
#[derive(Clone, Debug, Default)]
pub struct SerializeOpts {
    /// Emit an `<?xml version="1.0" encoding="utf-8"?>` declaration
    /// (document serialization only).
    pub xml_decl: bool,
    /// Pretty-print with the given indent width (0 = compact).
    pub indent: usize,
}

/// Serialize a whole document.
pub fn serialize_document(doc: &Document, opts: &SerializeOpts) -> String {
    let mut out = String::new();
    serialize_document_into(doc, opts, &mut out);
    out
}

/// Serialize a whole document, appending to `out` (reusable buffer).
pub fn serialize_document_into(doc: &Document, opts: &SerializeOpts, out: &mut String) {
    if opts.xml_decl {
        out.push_str("<?xml version=\"1.0\" encoding=\"utf-8\"?>");
        if opts.indent > 0 {
            out.push('\n');
        }
    }
    let mut first = true;
    for &c in doc.children(doc.root()) {
        if !first && opts.indent > 0 {
            out.push('\n');
        }
        first = false;
        write_node(doc, c, opts, 0, out);
    }
}

/// Serialize one node (subtree).
pub fn serialize_node(doc: &Document, id: NodeId, opts: &SerializeOpts) -> String {
    let mut out = String::new();
    write_node(doc, id, opts, 0, &mut out);
    out
}

/// Serialize one node (subtree), appending to `out` (reusable buffer).
pub fn serialize_node_into(doc: &Document, id: NodeId, opts: &SerializeOpts, out: &mut String) {
    write_node(doc, id, opts, 0, out);
}

/// Work items for the iterative serializer.
enum Work {
    /// Serialize this node (subtree) at the given depth.
    Node(NodeId, usize),
    /// Emit the closing tag of an element.
    Close(NodeId, usize),
    /// Pretty mode: newline followed by `depth * indent` spaces.
    Break(usize),
}

thread_local! {
    /// Reused across `write_node` calls: marshaling a Bulk RPC message
    /// serializes tens of thousands of small subtrees back-to-back, and a
    /// fresh work stack per subtree shows up as the dominant allocation.
    static WORK_STACK: std::cell::RefCell<Vec<Work>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

fn write_node(doc: &Document, id: NodeId, opts: &SerializeOpts, depth: usize, out: &mut String) {
    // take (not borrow) so a hypothetical re-entrant call degrades to a
    // fresh stack instead of a RefCell panic
    let mut stack = WORK_STACK.with(|s| std::mem::take(&mut *s.borrow_mut()));
    stack.push(Work::Node(id, depth));
    write_node_with(doc, opts, out, &mut stack);
    stack.clear();
    WORK_STACK.with(|s| *s.borrow_mut() = stack);
}

fn write_node_with(doc: &Document, opts: &SerializeOpts, out: &mut String, stack: &mut Vec<Work>) {
    while let Some(work) = stack.pop() {
        match work {
            Work::Break(depth) => {
                out.push('\n');
                for _ in 0..depth * opts.indent {
                    out.push(' ');
                }
            }
            Work::Close(id, _depth) => {
                out.push_str("</");
                doc.node(id)
                    .name
                    .as_ref()
                    .expect("element name")
                    .push_lexical(out);
                out.push('>');
            }
            Work::Node(id, depth) => match doc.kind(id) {
                NodeKind::Document => {
                    for &c in doc.children(id).iter().rev() {
                        stack.push(Work::Node(c, depth));
                    }
                }
                NodeKind::Element => write_element_open(doc, id, opts, depth, out, stack),
                NodeKind::Text => push_escaped_text(out, &doc.node(id).value),
                NodeKind::Comment => {
                    out.push_str("<!--");
                    out.push_str(&doc.node(id).value);
                    out.push_str("-->");
                }
                NodeKind::ProcessingInstruction => {
                    out.push_str("<?");
                    out.push_str(
                        doc.node(id)
                            .name
                            .as_ref()
                            .map(|n| n.local.as_str())
                            .unwrap_or(""),
                    );
                    let v = &doc.node(id).value;
                    if !v.is_empty() {
                        out.push(' ');
                        out.push_str(v);
                    }
                    out.push_str("?>");
                }
                NodeKind::Attribute => {
                    // A standalone attribute serializes as name="value" (used
                    // by the XRPC <attribute> wrapper).
                    let d = doc.node(id);
                    if let Some(n) = d.name.as_ref() {
                        n.push_lexical(out);
                    }
                    out.push_str("=\"");
                    push_escaped_attr(out, &d.value);
                    out.push('"');
                }
            },
        }
    }
}

/// Emit the open tag of an element and schedule its children + close tag.
fn write_element_open(
    doc: &Document,
    id: NodeId,
    opts: &SerializeOpts,
    depth: usize,
    out: &mut String,
    stack: &mut Vec<Work>,
) {
    let d = doc.node(id);
    out.push('<');
    d.name
        .as_ref()
        .expect("element has a name")
        .push_lexical(out);
    for (p, u) in &d.ns_decls {
        if p.is_empty() {
            out.push_str(" xmlns=\"");
        } else {
            out.push_str(" xmlns:");
            out.push_str(p);
            out.push_str("=\"");
        }
        push_escaped_attr(out, u);
        out.push('"');
    }
    for &a in doc.attributes(id) {
        let ad = doc.node(a);
        out.push(' ');
        if let Some(n) = ad.name.as_ref() {
            n.push_lexical(out);
        }
        out.push_str("=\"");
        push_escaped_attr(out, &ad.value);
        out.push('"');
    }
    if d.children.is_empty() {
        out.push_str("/>");
        return;
    }
    out.push('>');
    let pretty = opts.indent > 0 && d.children.iter().all(|&c| doc.kind(c) != NodeKind::Text);
    // Scheduled in reverse so the stack pops them in document order.
    stack.push(Work::Close(id, depth));
    if pretty {
        stack.push(Work::Break(depth));
    }
    for &c in d.children.iter().rev() {
        stack.push(Work::Node(c, depth + 1));
        if pretty {
            stack.push(Work::Break(depth + 1));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn roundtrip(s: &str) -> String {
        let d = parse(s).unwrap();
        serialize_document(&d, &SerializeOpts::default())
    }

    #[test]
    fn simple_roundtrip() {
        assert_eq!(roundtrip("<a><b>x</b><c/></a>"), "<a><b>x</b><c/></a>");
    }

    #[test]
    fn attrs_and_namespaces_roundtrip() {
        let s = r#"<p:a xmlns:p="urn:x" k="v&quot;"><p:b/></p:a>"#;
        assert_eq!(roundtrip(s), s);
    }

    #[test]
    fn text_escaping_roundtrip() {
        assert_eq!(roundtrip("<a>&lt;&amp;&gt;</a>"), "<a>&lt;&amp;&gt;</a>");
    }

    #[test]
    fn comments_and_pis_roundtrip() {
        let s = "<a><!-- c --><?t data?></a>";
        assert_eq!(roundtrip(s), s);
    }

    #[test]
    fn xml_decl_emitted() {
        let d = parse("<a/>").unwrap();
        let out = serialize_document(
            &d,
            &SerializeOpts {
                xml_decl: true,
                indent: 0,
            },
        );
        assert!(out.starts_with("<?xml version=\"1.0\""));
    }

    #[test]
    fn pretty_printing_indents_element_only_content() {
        let d = parse("<a><b><c/></b></a>").unwrap();
        let out = serialize_document(
            &d,
            &SerializeOpts {
                xml_decl: false,
                indent: 2,
            },
        );
        assert_eq!(out, "<a>\n  <b>\n    <c/>\n  </b>\n</a>");
    }

    #[test]
    fn double_parse_serialize_is_fixpoint() {
        let s = r#"<r><x a="1">t&amp;t</x><!--c--><y xmlns="urn:d"><z/></y></r>"#;
        let once = roundtrip(s);
        let twice = roundtrip(&once);
        assert_eq!(once, twice);
    }

    #[test]
    fn into_variant_appends_to_existing_buffer() {
        let d = parse("<a><b/></a>").unwrap();
        let mut buf = String::from("PREFIX:");
        serialize_document_into(&d, &SerializeOpts::default(), &mut buf);
        assert_eq!(buf, "PREFIX:<a><b/></a>");
        // Reuse after clear keeps capacity and produces identical bytes.
        let cap = buf.capacity();
        buf.clear();
        serialize_document_into(&d, &SerializeOpts::default(), &mut buf);
        assert_eq!(buf, "<a><b/></a>");
        assert!(buf.capacity() >= cap.min(buf.len()));
    }

    #[test]
    fn deeply_nested_document_serializes_without_overflow() {
        // 100k-deep element chain: the serializer must not recurse per depth.
        let depth = 100_000;
        let mut d = Document::new();
        let mut cur = d.root();
        for _ in 0..depth {
            let e = d.create_element(crate::QName::local("d"));
            d.append_child(cur, e);
            cur = e;
        }
        let out = serialize_node(&d, d.children(d.root())[0], &SerializeOpts::default());
        assert_eq!(
            out.len(),
            depth * "<d>".len() + (depth - 1) * "</d>".len() + "/".len()
        );
        assert!(out.starts_with("<d><d>"));
        assert!(out.ends_with("</d></d>"));
    }
}
