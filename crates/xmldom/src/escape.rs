//! XML escaping helpers shared by the serializer and the protocol layer.

/// Escape character data (text node content).
pub fn escape_text(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            '\r' => out.push_str("&#13;"),
            _ => out.push(c),
        }
    }
    out
}

/// Escape an attribute value (double-quoted).
pub fn escape_attr(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '&' => out.push_str("&amp;"),
            '"' => out.push_str("&quot;"),
            '\t' => out.push_str("&#9;"),
            '\n' => out.push_str("&#10;"),
            '\r' => out.push_str("&#13;"),
            _ => out.push(c),
        }
    }
    out
}

/// Append escaped text without an intermediate allocation.
pub fn push_escaped_text(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            '\r' => out.push_str("&#13;"),
            _ => out.push(c),
        }
    }
}

/// Append an escaped attribute value without an intermediate allocation.
pub fn push_escaped_attr(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '&' => out.push_str("&amp;"),
            '"' => out.push_str("&quot;"),
            '\t' => out.push_str("&#9;"),
            '\n' => out.push_str("&#10;"),
            '\r' => out.push_str("&#13;"),
            _ => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_escaping() {
        assert_eq!(escape_text("a<b>&c"), "a&lt;b&gt;&amp;c");
    }

    #[test]
    fn attr_escaping() {
        assert_eq!(escape_attr("\"x\" <&>"), "&quot;x&quot; &lt;&amp;>");
        assert_eq!(escape_attr("a\nb"), "a&#10;b");
    }
}
