//! XML escaping helpers shared by the serializer and the protocol layer.
//!
//! Hot path: every character that needs escaping is ASCII, so we scan raw
//! bytes and copy clean spans with one `push_str` instead of matching per
//! `char`. Multi-byte UTF-8 sequences never contain bytes < 0x80, so the
//! byte scan cannot split a code point.

use std::borrow::Cow;

/// True for bytes that must be escaped inside character data.
#[inline]
fn text_special(b: u8) -> bool {
    matches!(b, b'<' | b'>' | b'&' | b'\r')
}

/// True for bytes that must be escaped inside a double-quoted attribute.
#[inline]
fn attr_special(b: u8) -> bool {
    matches!(b, b'<' | b'&' | b'"' | b'\t' | b'\n' | b'\r')
}

#[inline]
fn text_entity(b: u8) -> &'static str {
    match b {
        b'<' => "&lt;",
        b'>' => "&gt;",
        b'&' => "&amp;",
        _ => "&#13;", // \r
    }
}

#[inline]
fn attr_entity(b: u8) -> &'static str {
    match b {
        b'<' => "&lt;",
        b'&' => "&amp;",
        b'"' => "&quot;",
        b'\t' => "&#9;",
        b'\n' => "&#10;",
        _ => "&#13;", // \r
    }
}

/// Core span-copying loop shared by the text and attribute variants.
#[inline]
fn push_escaped(
    out: &mut String,
    s: &str,
    special: fn(u8) -> bool,
    entity: fn(u8) -> &'static str,
) {
    let bytes = s.as_bytes();
    let mut start = 0;
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        if special(b) {
            // Safety of slicing: `start..i` ends on an ASCII special byte,
            // which is always a char boundary.
            out.push_str(&s[start..i]);
            out.push_str(entity(b));
            start = i + 1;
        }
        i += 1;
    }
    out.push_str(&s[start..]);
}

/// Escape character data (text node content) without copying when clean.
pub fn escape_text_cow(s: &str) -> Cow<'_, str> {
    if s.bytes().any(text_special) {
        let mut out = String::with_capacity(s.len() + 8);
        push_escaped(&mut out, s, text_special, text_entity);
        Cow::Owned(out)
    } else {
        Cow::Borrowed(s)
    }
}

/// Escape an attribute value without copying when clean.
pub fn escape_attr_cow(s: &str) -> Cow<'_, str> {
    if s.bytes().any(attr_special) {
        let mut out = String::with_capacity(s.len() + 8);
        push_escaped(&mut out, s, attr_special, attr_entity);
        Cow::Owned(out)
    } else {
        Cow::Borrowed(s)
    }
}

/// Escape character data (text node content).
pub fn escape_text(s: &str) -> String {
    escape_text_cow(s).into_owned()
}

/// Escape an attribute value (double-quoted).
pub fn escape_attr(s: &str) -> String {
    escape_attr_cow(s).into_owned()
}

/// Append escaped text without an intermediate allocation.
pub fn push_escaped_text(out: &mut String, s: &str) {
    push_escaped(out, s, text_special, text_entity);
}

/// Append an escaped attribute value without an intermediate allocation.
pub fn push_escaped_attr(out: &mut String, s: &str) {
    push_escaped(out, s, attr_special, attr_entity);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_escaping() {
        assert_eq!(escape_text("a<b>&c"), "a&lt;b&gt;&amp;c");
    }

    #[test]
    fn attr_escaping() {
        assert_eq!(escape_attr("\"x\" <&>"), "&quot;x&quot; &lt;&amp;>");
        assert_eq!(escape_attr("a\nb"), "a&#10;b");
    }

    #[test]
    fn clean_strings_borrow() {
        assert!(matches!(escape_text_cow("plain text"), Cow::Borrowed(_)));
        assert!(matches!(escape_attr_cow("plain"), Cow::Borrowed(_)));
        assert!(matches!(escape_text_cow("a<b"), Cow::Owned(_)));
    }

    #[test]
    fn carriage_return_and_controls() {
        assert_eq!(escape_text("a\rb"), "a&#13;b");
        assert_eq!(escape_attr("a\t\r\nb"), "a&#9;&#13;&#10;b");
    }

    #[test]
    fn multibyte_utf8_around_specials() {
        assert_eq!(escape_text("é<ü&日本語>"), "é&lt;ü&amp;日本語&gt;");
        assert_eq!(
            escape_attr("\u{1F600}\"\u{1F600}"),
            "\u{1F600}&quot;\u{1F600}"
        );
    }

    #[test]
    fn specials_at_boundaries() {
        assert_eq!(escape_text("<a>"), "&lt;a&gt;");
        assert_eq!(escape_text("&"), "&amp;");
        assert_eq!(escape_text(""), "");
        assert_eq!(escape_attr("\""), "&quot;");
    }
}
