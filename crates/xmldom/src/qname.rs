//! Qualified names with namespace URIs.

use std::fmt;

/// Well-known namespace URIs used by the XRPC protocol layer.
pub const NS_XML: &str = "http://www.w3.org/XML/1998/namespace";
pub const NS_XMLNS: &str = "http://www.w3.org/2000/xmlns/";
pub const NS_XS: &str = "http://www.w3.org/2001/XMLSchema";
pub const NS_XSI: &str = "http://www.w3.org/2001/XMLSchema-instance";
pub const NS_SOAP_ENV: &str = "http://www.w3.org/2003/05/soap-envelope";
pub const NS_XRPC: &str = "http://monetdb.cwi.nl/XQuery";

/// An expanded qualified name: optional prefix (serialization hint only),
/// optional namespace URI (participates in equality) and a local part.
#[derive(Clone, Debug)]
pub struct QName {
    pub prefix: Option<String>,
    pub ns_uri: Option<String>,
    pub local: String,
}

impl QName {
    /// A name with no namespace.
    pub fn local(local: impl Into<String>) -> Self {
        QName {
            prefix: None,
            ns_uri: None,
            local: local.into(),
        }
    }

    /// A name in namespace `uri`, with a preferred serialization prefix.
    pub fn ns(prefix: impl Into<String>, uri: impl Into<String>, local: impl Into<String>) -> Self {
        QName {
            prefix: Some(prefix.into()),
            ns_uri: Some(uri.into()),
            local: local.into(),
        }
    }

    /// Lexical form `prefix:local` (or just `local`).
    pub fn lexical(&self) -> String {
        let mut s = String::with_capacity(self.lexical_len());
        self.push_lexical(&mut s);
        s
    }

    /// Append the lexical form to `out` without allocating — the serializer's
    /// hot path emits two tag names per element.
    pub fn push_lexical(&self, out: &mut String) {
        if let Some(p) = &self.prefix {
            if !p.is_empty() {
                out.push_str(p);
                out.push(':');
            }
        }
        out.push_str(&self.local);
    }

    /// Byte length of [`lexical`](Self::lexical), for serialized-size
    /// estimation.
    pub fn lexical_len(&self) -> usize {
        match &self.prefix {
            Some(p) if !p.is_empty() => p.len() + 1 + self.local.len(),
            _ => self.local.len(),
        }
    }

    /// Expanded-name equality: namespace URI and local part (prefix ignored),
    /// as the XDM requires.
    pub fn matches(&self, other: &QName) -> bool {
        self.local == other.local && norm(&self.ns_uri) == norm(&other.ns_uri)
    }

    /// True if the namespace URI equals `uri` and the local name equals `local`.
    pub fn is(&self, uri: &str, local: &str) -> bool {
        self.local == local && self.ns_uri.as_deref() == Some(uri)
    }
}

fn norm(u: &Option<String>) -> Option<&str> {
    match u.as_deref() {
        None | Some("") => None,
        Some(s) => Some(s),
    }
}

impl PartialEq for QName {
    fn eq(&self, other: &Self) -> bool {
        self.matches(other)
    }
}
impl Eq for QName {}

impl std::hash::Hash for QName {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        norm(&self.ns_uri).hash(state);
        self.local.hash(state);
    }
}

impl fmt::Display for QName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.lexical())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equality_ignores_prefix() {
        let a = QName::ns("a", "urn:x", "name");
        let b = QName::ns("b", "urn:x", "name");
        assert_eq!(a, b);
    }

    #[test]
    fn equality_respects_uri() {
        let a = QName::ns("a", "urn:x", "name");
        let b = QName::ns("a", "urn:y", "name");
        assert_ne!(a, b);
    }

    #[test]
    fn empty_uri_is_no_namespace() {
        let a = QName {
            prefix: None,
            ns_uri: Some(String::new()),
            local: "n".into(),
        };
        let b = QName::local("n");
        assert_eq!(a, b);
    }

    #[test]
    fn lexical_forms() {
        assert_eq!(QName::local("x").lexical(), "x");
        assert_eq!(QName::ns("p", "u", "x").lexical(), "p:x");
    }
}
