//! A small fluent builder for constructing documents programmatically
//! (used heavily by the protocol layer and the workload generators).

use crate::node::{Document, NodeId};
use crate::qname::QName;

/// Builder over a [`Document`] with a cursor stack.
pub struct DocBuilder {
    doc: Document,
    stack: Vec<NodeId>,
}

impl DocBuilder {
    pub fn new() -> Self {
        let doc = Document::new();
        let root = doc.root();
        DocBuilder {
            doc,
            stack: vec![root],
        }
    }

    fn top(&self) -> NodeId {
        *self.stack.last().expect("builder stack never empty")
    }

    /// Open an element (no namespace) and descend into it.
    pub fn open(mut self, name: &str) -> Self {
        let e = self.doc.create_element(QName::local(name));
        self.doc.append_child(self.top(), e);
        self.stack.push(e);
        self
    }

    /// Open a namespaced element and descend into it.
    pub fn open_ns(mut self, prefix: &str, uri: &str, local: &str) -> Self {
        let e = self.doc.create_element(QName::ns(prefix, uri, local));
        self.doc.append_child(self.top(), e);
        self.stack.push(e);
        self
    }

    /// Declare a namespace on the current element.
    pub fn ns_decl(mut self, prefix: &str, uri: &str) -> Self {
        let top = self.top();
        self.doc
            .node_mut(top)
            .ns_decls
            .push((prefix.to_string(), uri.to_string()));
        self
    }

    /// Add an attribute (no namespace) to the current element.
    pub fn attr(mut self, name: &str, value: &str) -> Self {
        let top = self.top();
        self.doc.set_attribute(top, QName::local(name), value);
        self
    }

    /// Add a namespaced attribute to the current element.
    pub fn attr_ns(mut self, prefix: &str, uri: &str, local: &str, value: &str) -> Self {
        let top = self.top();
        self.doc
            .set_attribute(top, QName::ns(prefix, uri, local), value);
        self
    }

    /// Append a text node under the current element.
    pub fn text(mut self, value: &str) -> Self {
        let t = self.doc.create_text(value);
        self.doc.append_child(self.top(), t);
        self
    }

    /// Append a comment under the current element.
    pub fn comment(mut self, value: &str) -> Self {
        let c = self.doc.create_comment(value);
        self.doc.append_child(self.top(), c);
        self
    }

    /// Import a subtree from another document under the current element.
    pub fn import(mut self, src: &Document, src_id: NodeId) -> Self {
        let copy = self.doc.import_subtree(src, src_id);
        self.doc.append_child(self.top(), copy);
        self
    }

    /// Close the current element.
    pub fn close(mut self) -> Self {
        assert!(self.stack.len() > 1, "unbalanced close()");
        self.stack.pop();
        self
    }

    /// Finish; panics if elements are left open.
    pub fn build(self) -> Document {
        assert_eq!(self.stack.len(), 1, "unclosed elements at build()");
        self.doc
    }

    /// Access the document under construction (for advanced tweaks).
    pub fn doc_mut(&mut self) -> &mut Document {
        &mut self.doc
    }

    /// The current element id (e.g. to stash for later).
    pub fn current(&self) -> NodeId {
        self.top()
    }
}

impl Default for DocBuilder {
    fn default() -> Self {
        DocBuilder::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serialize::{serialize_document, SerializeOpts};

    #[test]
    fn fluent_building() {
        let doc = DocBuilder::new()
            .open("films")
            .open("film")
            .attr("year", "1996")
            .open("name")
            .text("The Rock")
            .close()
            .close()
            .close()
            .build();
        assert_eq!(
            serialize_document(&doc, &SerializeOpts::default()),
            r#"<films><film year="1996"><name>The Rock</name></film></films>"#
        );
    }

    #[test]
    fn namespaced_building() {
        let doc = DocBuilder::new()
            .open_ns("env", "http://www.w3.org/2003/05/soap-envelope", "Envelope")
            .ns_decl("env", "http://www.w3.org/2003/05/soap-envelope")
            .open_ns("env", "http://www.w3.org/2003/05/soap-envelope", "Body")
            .close()
            .close()
            .build();
        let s = serialize_document(&doc, &SerializeOpts::default());
        assert!(s.contains("<env:Envelope xmlns:env="));
        assert!(s.contains("<env:Body/>"));
    }

    #[test]
    #[should_panic(expected = "unclosed elements")]
    fn unbalanced_build_panics() {
        let _ = DocBuilder::new().open("a").build();
    }
}
