//! A hand-written, namespace-aware XML 1.0 parser.
//!
//! Supports the subset the XRPC stack needs: elements, attributes,
//! namespace declarations with proper scoping, text with the five
//! predefined entities plus numeric character references, CDATA sections,
//! comments, processing instructions, an XML declaration and a (skipped)
//! DOCTYPE. DTD-defined entities are not supported — the SOAP XRPC wire
//! format never needs them.

#[cfg(test)]
use crate::node::NodeKind;
use crate::node::{Document, NodeId};
use crate::qname::{QName, NS_XML};
use std::collections::HashMap;
use std::sync::Arc;

/// Parse failure with byte offset and a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub offset: usize,
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "XML parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Upper bound on the arena pre-sizing estimate (node slots). 256 Ki slots
/// cover multi-MiB real-world messages outright while capping what a
/// hostile byte count can pre-allocate at ~36 MiB (see `Parser::run`).
const PRESIZE_NODE_CAP: usize = 256 * 1024;

/// Parse a complete XML document.
pub fn parse(input: &str) -> Result<Document, ParseError> {
    Parser::new(input).run(None)
}

/// Parse, recording `uri` as the document URI (what `fn:doc` returns).
pub fn parse_with_uri(input: &str, uri: &str) -> Result<Document, ParseError> {
    Parser::new(input).run(Some(uri.to_string()))
}

struct Parser<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

/// In-scope namespace bindings: a flat declaration stack with per-element
/// frame offsets, so prefix lookup costs O(declarations in scope) rather
/// than O(element depth) — deep documents with few declarations stay cheap.
struct NsScope {
    frame_starts: Vec<usize>,
    decls: Vec<(String, String)>,
}

impl NsScope {
    fn new() -> Self {
        NsScope {
            frame_starts: Vec::new(),
            decls: Vec::new(),
        }
    }

    fn push_frame(&mut self) {
        self.frame_starts.push(self.decls.len());
    }

    fn pop_frame(&mut self) {
        let start = self.frame_starts.pop().expect("namespace frame underflow");
        self.decls.truncate(start);
    }

    /// Declarations of the innermost (current) frame.
    fn current_frame(&self) -> &[(String, String)] {
        &self.decls[*self.frame_starts.last().expect("no open frame")..]
    }

    fn lookup(&self, prefix: &str) -> Option<&str> {
        for (p, u) in self.decls.iter().rev() {
            if p == prefix {
                // An empty URI undeclares the prefix.
                if u.is_empty() {
                    return None;
                }
                return Some(u);
            }
        }
        None
    }
}

/// Interns one `Arc<QName>` per distinct (raw tag name, resolved namespace)
/// pair seen during a parse, so a document with a million `<chunk>` elements
/// allocates the name strings exactly once. Keys borrow the input text —
/// lookups on the hot path are allocation-free.
/// Per raw name: the (resolved namespace, interned QName) pairs seen so far.
type NsVariants = Vec<(Option<String>, Arc<QName>)>;

struct QNameInterner<'a> {
    map: HashMap<&'a str, NsVariants>,
}

impl<'a> QNameInterner<'a> {
    fn new() -> Self {
        QNameInterner {
            map: HashMap::new(),
        }
    }

    /// `raw` is the lexical name (possibly prefixed) as written in the input;
    /// `ns_uri` its already-resolved namespace. Allocates only on first sight.
    fn intern(&mut self, raw: &'a str, ns_uri: Option<&str>) -> Arc<QName> {
        let bucket = self.map.entry(raw).or_default();
        if let Some((_, q)) = bucket.iter().find(|(u, _)| u.as_deref() == ns_uri) {
            return q.clone();
        }
        let (prefix, local) = match raw.split_once(':') {
            Some((p, l)) => (Some(p), l),
            None => (None, raw),
        };
        let q = Arc::new(QName {
            prefix: prefix.map(str::to_string),
            ns_uri: ns_uri.map(str::to_string),
            local: local.to_string(),
        });
        bucket.push((ns_uri.map(str::to_string), q.clone()));
        q
    }
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser {
            input,
            bytes: input.as_bytes(),
            pos: 0,
        }
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            offset: self.pos,
            message: msg.into(),
        })
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s)
    }

    fn bump(&mut self, n: usize) {
        self.pos += n;
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, s: &str) -> Result<(), ParseError> {
        if self.starts_with(s) {
            self.bump(s.len());
            Ok(())
        } else {
            self.err(format!("expected `{}`", s))
        }
    }

    fn run(mut self, uri: Option<String>) -> Result<Document, ParseError> {
        // Pre-size the arena from the input: every element start/end tag,
        // comment, PI and CDATA section opens with `<`, and at most one text
        // node sits between consecutive tags, so the `<` count is a tight
        // upper-bound-ish estimate of the node count. One vectorizable scan
        // buys freedom from doubling a multi-MiB arena past the LLC.
        //
        // The count is attacker-controlled: `<` is legal inside CDATA and
        // comments (and free in malformed input), and each slot costs
        // ~sizeof(NodeData) ≈ 140 bytes, so an unclamped estimate would let
        // a body of pure `<` bytes force a pre-allocation ~140× its own
        // size before parsing even starts. Clamp it: real documents keep
        // the no-doubling win up to the cap and merely resume on-demand
        // growth past it, while hostile input is bounded to tens of MiB.
        let approx_nodes = self
            .bytes
            .iter()
            .filter(|&&b| b == b'<')
            .count()
            .min(PRESIZE_NODE_CAP);
        let mut doc = Document::with_node_capacity(approx_nodes);
        doc.uri = uri;
        let root = doc.root();
        let mut ns_stack = NsScope::new();
        let mut names = QNameInterner::new();

        // Prolog: XML decl, misc, doctype.
        self.skip_ws();
        if self.starts_with("<?xml") {
            self.skip_until("?>")?;
        }
        loop {
            self.skip_ws();
            if self.starts_with("<!--") {
                let c = self.parse_comment()?;
                let n = doc.create_comment(c);
                doc.append_child(root, n);
            } else if self.starts_with("<!DOCTYPE") {
                self.skip_doctype()?;
            } else if self.starts_with("<?") {
                let (t, v) = self.parse_pi()?;
                let n = doc.create_pi(t, v);
                doc.append_child(root, n);
            } else {
                break;
            }
        }

        self.skip_ws();
        if self.peek() != Some(b'<') {
            return self.err("expected root element");
        }
        let elem = self.parse_element(&mut doc, &mut ns_stack, &mut names)?;
        doc.append_child(root, elem);

        // Trailing misc.
        loop {
            self.skip_ws();
            if self.pos >= self.bytes.len() {
                break;
            }
            if self.starts_with("<!--") {
                let c = self.parse_comment()?;
                let n = doc.create_comment(c);
                doc.append_child(root, n);
            } else if self.starts_with("<?") {
                let (t, v) = self.parse_pi()?;
                let n = doc.create_pi(t, v);
                doc.append_child(root, n);
            } else {
                return self.err("unexpected content after root element");
            }
        }
        Ok(doc)
    }

    fn skip_until(&mut self, end: &str) -> Result<(), ParseError> {
        match self.input[self.pos..].find(end) {
            Some(i) => {
                self.pos += i + end.len();
                Ok(())
            }
            None => self.err(format!("unterminated construct, expected `{}`", end)),
        }
    }

    fn skip_doctype(&mut self) -> Result<(), ParseError> {
        // Skip to matching '>' allowing one level of [] internal subset.
        self.expect("<!DOCTYPE")?;
        let mut depth = 0i32;
        while let Some(c) = self.peek() {
            match c {
                b'[' => depth += 1,
                b']' => depth -= 1,
                b'>' if depth <= 0 => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => {}
            }
            self.pos += 1;
        }
        self.err("unterminated DOCTYPE")
    }

    fn parse_comment(&mut self) -> Result<String, ParseError> {
        self.expect("<!--")?;
        let start = self.pos;
        match self.input[self.pos..].find("-->") {
            Some(i) => {
                let text = self.input[start..start + i].to_string();
                self.pos += i + 3;
                Ok(text)
            }
            None => self.err("unterminated comment"),
        }
    }

    fn parse_pi(&mut self) -> Result<(String, String), ParseError> {
        self.expect("<?")?;
        let target = self.parse_name()?.to_string();
        let start = self.pos;
        match self.input[self.pos..].find("?>") {
            Some(i) => {
                let data = self.input[start..start + i].trim_start().to_string();
                self.pos += i + 2;
                Ok((target, data))
            }
            None => self.err("unterminated processing instruction"),
        }
    }

    /// Borrow the name from the input — the hot path (tag and attribute
    /// names) must not allocate a `String` per occurrence.
    fn parse_name(&mut self) -> Result<&'a str, ParseError> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            let ch = c as char;
            let ok = if self.pos == start {
                ch.is_alphabetic() || ch == '_' || ch == ':' || c >= 0x80
            } else {
                ch.is_alphanumeric() || matches!(ch, '_' | ':' | '.' | '-') || c >= 0x80
            };
            if !ok {
                break;
            }
            self.pos += 1;
        }
        if self.pos == start {
            return self.err("expected name");
        }
        Ok(&self.input[start..self.pos])
    }

    /// `<name attr="v" ...>content</name>` or `<name .../>`.
    ///
    /// Iterative (explicit open-element stack): element depth must not be
    /// bounded by the thread stack — deeply nested wire messages are valid.
    fn parse_element(
        &mut self,
        doc: &mut Document,
        ns_stack: &mut NsScope,
        names: &mut QNameInterner<'a>,
    ) -> Result<NodeId, ParseError> {
        let (root_elem, raw, self_closing) = self.parse_start_tag(doc, ns_stack, names)?;
        if self_closing {
            return Ok(root_elem);
        }
        let mut open: Vec<(NodeId, &'a str)> = vec![(root_elem, raw)];
        loop {
            let cur = open.last().unwrap().0;
            if self.starts_with("</") {
                self.expect("</")?;
                let close = self.parse_name()?;
                let (_, raw_name) = open.pop().unwrap();
                if close != raw_name {
                    return self.err(format!(
                        "mismatched end tag: expected </{}>, found </{}>",
                        raw_name, close
                    ));
                }
                self.skip_ws();
                self.expect(">")?;
                ns_stack.pop_frame();
                if open.is_empty() {
                    return Ok(root_elem);
                }
            } else if self.starts_with("<!--") {
                let c = self.parse_comment()?;
                let n = doc.create_comment(c);
                doc.append_child(cur, n);
            } else if self.starts_with("<![CDATA[") {
                self.expect("<![CDATA[")?;
                let start = self.pos;
                match self.input[self.pos..].find("]]>") {
                    Some(i) => {
                        let text = self.input[start..start + i].to_string();
                        self.pos += i + 3;
                        let n = doc.create_text(text);
                        doc.append_child(cur, n);
                    }
                    None => return self.err("unterminated CDATA section"),
                }
            } else if self.starts_with("<?") {
                let (t, v) = self.parse_pi()?;
                let n = doc.create_pi(t, v);
                doc.append_child(cur, n);
            } else if self.peek() == Some(b'<') {
                let (kid, kraw, kself) = self.parse_start_tag(doc, ns_stack, names)?;
                doc.append_child(cur, kid);
                if !kself {
                    open.push((kid, kraw));
                }
            } else if self.peek().is_some() {
                let text = self.parse_text()?;
                if !text.is_empty() {
                    let n = doc.create_text(text);
                    doc.append_child(cur, n);
                }
            } else {
                let raw_name = open.last().unwrap().1;
                return self.err(format!("unterminated element <{}>", raw_name));
            }
        }
    }

    /// Parse a start tag: `<name attr="v" ...>` or `<name .../>`. Pushes a
    /// namespace frame; for self-closing elements the frame is popped before
    /// returning, otherwise the caller pops it at the matching end tag.
    fn parse_start_tag(
        &mut self,
        doc: &mut Document,
        ns_stack: &mut NsScope,
        names: &mut QNameInterner<'a>,
    ) -> Result<(NodeId, &'a str, bool), ParseError> {
        self.expect("<")?;
        let raw_name = self.parse_name()?;

        // Raw attributes first; namespace decls must be in scope before
        // resolving prefixes (including the element's own).
        let mut raw_attrs: Vec<(&'a str, String)> = Vec::new();
        let self_closing;
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'>') => {
                    self.pos += 1;
                    self_closing = false;
                    break;
                }
                Some(b'/') => {
                    self.expect("/>")?;
                    self_closing = true;
                    break;
                }
                Some(_) => {
                    let an = self.parse_name()?;
                    self.skip_ws();
                    self.expect("=")?;
                    self.skip_ws();
                    let av = self.parse_attr_value()?;
                    if raw_attrs.iter().any(|(n, _)| *n == an) {
                        return self.err(format!("duplicate attribute `{}`", an));
                    }
                    raw_attrs.push((an, av));
                }
                None => return self.err("unterminated start tag"),
            }
        }

        ns_stack.push_frame();
        for (n, v) in &raw_attrs {
            if *n == "xmlns" {
                ns_stack.decls.push((String::new(), v.clone()));
            } else if let Some(p) = n.strip_prefix("xmlns:") {
                ns_stack.decls.push((p.to_string(), v.clone()));
            }
        }

        let name = self.resolve_name(raw_name, ns_stack, names, true)?;
        let elem = doc.create_element_shared(name);
        // Record declarations on the element for later (re)serialization and
        // in-scope prefix resolution.
        let frame = ns_stack.current_frame();
        if !frame.is_empty() {
            doc.node_mut(elem).ns_decls = frame.to_vec();
        }

        let mut xsi_type: Option<String> = None;
        for (n, v) in raw_attrs {
            if n == "xmlns" || n.starts_with("xmlns:") {
                continue;
            }
            let qn = self.resolve_name(n, ns_stack, names, false)?;
            if qn.is(crate::qname::NS_XSI, "type") {
                xsi_type = Some(v.clone());
            }
            let a = doc.create_attribute_shared(qn, v);
            doc.set_attribute_node(elem, a);
        }
        doc.node_mut(elem).type_annotation = xsi_type;

        if self_closing {
            ns_stack.pop_frame();
        }
        Ok((elem, raw_name, self_closing))
    }

    fn parse_attr_value(&mut self) -> Result<String, ParseError> {
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => q,
            _ => return self.err("expected quoted attribute value"),
        };
        self.pos += 1;
        let mut out = String::new();
        loop {
            // Copy the clean span in one append; the delimiters are all
            // ASCII so the byte scan cannot split a UTF-8 sequence.
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == quote || b == b'&' || b == b'<' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(&self.input[start..self.pos]);
            match self.peek() {
                Some(c) if c == quote => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'&') => out.push(self.parse_entity()?),
                Some(_) => return self.err("`<` not allowed in attribute value"),
                None => return self.err("unterminated attribute value"),
            }
        }
    }

    fn parse_text(&mut self) -> Result<String, ParseError> {
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'<' || b == b'&' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(&self.input[start..self.pos]);
            match self.peek() {
                Some(b'&') => out.push(self.parse_entity()?),
                _ => return Ok(out),
            }
        }
    }

    fn parse_entity(&mut self) -> Result<char, ParseError> {
        self.expect("&")?;
        let end = match self.input[self.pos..].find(';') {
            Some(i) if i <= 10 => self.pos + i,
            _ => return self.err("unterminated entity reference"),
        };
        let name = &self.input[self.pos..end];
        let c = match name {
            "lt" => '<',
            "gt" => '>',
            "amp" => '&',
            "quot" => '"',
            "apos" => '\'',
            _ if name.starts_with("#x") || name.starts_with("#X") => {
                let cp = u32::from_str_radix(&name[2..], 16).map_err(|_| ParseError {
                    offset: self.pos,
                    message: format!("bad hex character reference `&{};`", name),
                })?;
                char::from_u32(cp).ok_or_else(|| ParseError {
                    offset: self.pos,
                    message: format!("invalid code point in `&{};`", name),
                })?
            }
            _ if name.starts_with('#') => {
                let cp = name[1..].parse::<u32>().map_err(|_| ParseError {
                    offset: self.pos,
                    message: format!("bad character reference `&{};`", name),
                })?;
                char::from_u32(cp).ok_or_else(|| ParseError {
                    offset: self.pos,
                    message: format!("invalid code point in `&{};`", name),
                })?
            }
            _ => {
                return self.err(format!("unknown entity `&{};`", name));
            }
        };
        self.pos = end + 1;
        Ok(c)
    }

    /// Resolve a raw (possibly prefixed) name against the in-scope namespace
    /// bindings and intern the result. Allocation-free when the (name, uri)
    /// pair has been seen before.
    fn resolve_name(
        &self,
        raw: &'a str,
        ns_stack: &NsScope,
        names: &mut QNameInterner<'a>,
        is_element: bool,
    ) -> Result<Arc<QName>, ParseError> {
        let prefix = match raw.split_once(':') {
            Some((p, l)) => {
                if p.is_empty() || l.is_empty() || l.contains(':') {
                    return Err(ParseError {
                        offset: self.pos,
                        message: format!("malformed QName `{}`", raw),
                    });
                }
                Some(p)
            }
            None => None,
        };
        let ns_uri = match prefix {
            Some("xml") => Some(NS_XML),
            Some(p) => match ns_stack.lookup(p) {
                Some(u) => Some(u),
                None => {
                    return Err(ParseError {
                        offset: self.pos,
                        message: format!("undeclared namespace prefix `{}`", p),
                    })
                }
            },
            // Unprefixed elements pick up the default namespace;
            // unprefixed attributes never do (XML Namespaces §6.2).
            None if is_element => ns_stack.lookup(""),
            None => None,
        };
        Ok(names.intern(raw, ns_uri))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn root_elem(doc: &Document) -> NodeId {
        doc.children(doc.root())
            .iter()
            .copied()
            .find(|&c| doc.kind(c) == NodeKind::Element)
            .unwrap()
    }

    #[test]
    fn minimal_document() {
        let d = parse("<a/>").unwrap();
        let r = root_elem(&d);
        assert_eq!(d.node(r).name.as_ref().unwrap().local, "a");
    }

    /// `<` inside CDATA inflates the pre-sizing estimate without producing
    /// nodes; the clamp must keep the arena reservation bounded (an
    /// unclamped estimate near the 64 MiB body cap would try ~9 GiB).
    #[test]
    fn presize_estimate_is_clamped() {
        let hostile = format!("<a><![CDATA[{}]]></a>", "<".repeat(2 * PRESIZE_NODE_CAP));
        let d = parse(&hostile).unwrap();
        assert!(
            d.node_capacity() <= PRESIZE_NODE_CAP + 1,
            "arena reserved {} slots, cap is {}",
            d.node_capacity(),
            PRESIZE_NODE_CAP
        );
        // and the document still parsed correctly
        let r = root_elem(&d);
        assert_eq!(d.string_value(r).len(), 2 * PRESIZE_NODE_CAP);
    }

    #[test]
    fn nested_with_text_and_attrs() {
        let d = parse(r#"<films><film year="1996"><name>The Rock</name></film></films>"#).unwrap();
        let films = root_elem(&d);
        let film = d.children(films)[0];
        assert_eq!(d.attr_local(film, "year"), Some("1996"));
        assert_eq!(d.string_value(film), "The Rock");
    }

    #[test]
    fn entities_and_charrefs() {
        let d = parse("<a>&lt;&amp;&gt; &#65;&#x42;</a>").unwrap();
        assert_eq!(d.string_value(root_elem(&d)), "<&> AB");
    }

    #[test]
    fn cdata() {
        let d = parse("<a><![CDATA[<not><parsed>&amp;]]></a>").unwrap();
        assert_eq!(d.string_value(root_elem(&d)), "<not><parsed>&amp;");
    }

    #[test]
    fn namespaces_scoped() {
        let d =
            parse(r#"<p:a xmlns:p="urn:one"><p:b/><c xmlns:p="urn:two"><p:d/></c></p:a>"#).unwrap();
        let a = root_elem(&d);
        assert_eq!(
            d.node(a).name.as_ref().unwrap().ns_uri.as_deref(),
            Some("urn:one")
        );
        let b = d.children(a)[0];
        assert_eq!(
            d.node(b).name.as_ref().unwrap().ns_uri.as_deref(),
            Some("urn:one")
        );
        let c = d.children(a)[1];
        let inner = d.children(c)[0];
        assert_eq!(
            d.node(inner).name.as_ref().unwrap().ns_uri.as_deref(),
            Some("urn:two")
        );
    }

    #[test]
    fn default_namespace_applies_to_elements_only() {
        let d = parse(r#"<a xmlns="urn:d" k="v"><b/></a>"#).unwrap();
        let a = root_elem(&d);
        assert_eq!(
            d.node(a).name.as_ref().unwrap().ns_uri.as_deref(),
            Some("urn:d")
        );
        let attr = d.attributes(a)[0];
        assert_eq!(d.node(attr).name.as_ref().unwrap().ns_uri, None);
        let b = d.children(a)[0];
        assert_eq!(
            d.node(b).name.as_ref().unwrap().ns_uri.as_deref(),
            Some("urn:d")
        );
    }

    #[test]
    fn xml_decl_doctype_comments_pis() {
        let d = parse(
            "<?xml version=\"1.0\" encoding=\"utf-8\"?>\n<!DOCTYPE a>\n<!-- hi --><?t d?><a/><!-- bye -->",
        )
        .unwrap();
        let kinds: Vec<NodeKind> = d.children(d.root()).iter().map(|&c| d.kind(c)).collect();
        assert_eq!(
            kinds,
            [
                NodeKind::Comment,
                NodeKind::ProcessingInstruction,
                NodeKind::Element,
                NodeKind::Comment
            ]
        );
    }

    #[test]
    fn mismatched_tags_rejected() {
        assert!(parse("<a><b></a></b>").is_err());
    }

    #[test]
    fn duplicate_attribute_rejected() {
        assert!(parse(r#"<a x="1" x="2"/>"#).is_err());
    }

    #[test]
    fn undeclared_prefix_rejected() {
        assert!(parse("<p:a/>").is_err());
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse("<a/>junk").is_err());
    }

    #[test]
    fn xsi_type_recorded_as_annotation() {
        let d = parse(
            r#"<v xmlns:xsi="http://www.w3.org/2001/XMLSchema-instance" xsi:type="xs:integer">3</v>"#,
        )
        .unwrap();
        let v = root_elem(&d);
        assert_eq!(d.node(v).type_annotation.as_deref(), Some("xs:integer"));
    }

    #[test]
    fn utf8_content() {
        let d = parse("<a>héllo wörld ✓</a>").unwrap();
        assert_eq!(d.string_value(root_elem(&d)), "héllo wörld ✓");
    }

    #[test]
    fn deeply_nested_document_parses_without_overflow() {
        // 100k-deep element chain: the parser must not recurse per depth.
        let depth = 100_000;
        let mut s = String::with_capacity(depth * 7 + 16);
        for _ in 0..depth {
            s.push_str("<d>");
        }
        s.push('x');
        for _ in 0..depth {
            s.push_str("</d>");
        }
        let d = parse(&s).unwrap();
        let mut cur = root_elem(&d);
        let mut seen = 1usize;
        while let Some(&c) = d
            .children(cur)
            .iter()
            .find(|&&c| d.kind(c) == NodeKind::Element)
        {
            cur = c;
            seen += 1;
        }
        assert_eq!(seen, depth);
        assert_eq!(d.string_value(cur), "x");
    }

    #[test]
    fn deep_unterminated_rejected_with_typed_error() {
        let s = "<d>".repeat(50_000);
        let err = parse(&s).unwrap_err();
        assert!(err.message.contains("unterminated"));
    }
}
