//! The thirteen XPath axes over [`NodeHandle`]s.
//!
//! Results come back in the order the XQuery engines need: forward axes in
//! document order, reverse axes in reverse document order (callers re-sort
//! when combining steps).

use crate::node::{NodeId, NodeKind};
use crate::NodeHandle;

#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Axis {
    Child,
    Descendant,
    DescendantOrSelf,
    Parent,
    Ancestor,
    AncestorOrSelf,
    FollowingSibling,
    PrecedingSibling,
    Following,
    Preceding,
    Attribute,
    SelfAxis,
    /// Not a real XPath axis: namespace axis is unsupported (deprecated in
    /// XQuery); kept for parser completeness and always empty.
    Namespace,
}

impl Axis {
    pub fn is_reverse(self) -> bool {
        matches!(
            self,
            Axis::Parent
                | Axis::Ancestor
                | Axis::AncestorOrSelf
                | Axis::PrecedingSibling
                | Axis::Preceding
        )
    }

    /// The principal node kind of this axis (attribute axis selects
    /// attributes; everything else selects elements for name tests).
    pub fn principal_kind(self) -> NodeKind {
        match self {
            Axis::Attribute => NodeKind::Attribute,
            _ => NodeKind::Element,
        }
    }
}

/// Collect all nodes on `axis` from `ctx`.
pub fn step(ctx: &NodeHandle, axis: Axis) -> Vec<NodeHandle> {
    let doc = &ctx.doc;
    let mk = |id: NodeId| NodeHandle::new(doc.clone(), id);
    match axis {
        Axis::SelfAxis => vec![ctx.clone()],
        Axis::Child => doc.children(ctx.id).iter().map(|&c| mk(c)).collect(),
        Axis::Attribute => doc.attributes(ctx.id).iter().map(|&a| mk(a)).collect(),
        Axis::Parent => ctx.parent().into_iter().collect(),
        Axis::Descendant => {
            let mut out = Vec::new();
            descend(ctx, &mut out);
            out
        }
        Axis::DescendantOrSelf => {
            let mut out = vec![ctx.clone()];
            descend(ctx, &mut out);
            out
        }
        Axis::Ancestor => {
            let mut out = Vec::new();
            let mut cur = ctx.parent();
            while let Some(p) = cur {
                cur = p.parent();
                out.push(p);
            }
            out
        }
        Axis::AncestorOrSelf => {
            let mut out = vec![ctx.clone()];
            let mut cur = ctx.parent();
            while let Some(p) = cur {
                cur = p.parent();
                out.push(p);
            }
            out
        }
        Axis::FollowingSibling => siblings(ctx, true),
        Axis::PrecedingSibling => {
            let mut v = siblings(ctx, false);
            v.reverse();
            v
        }
        Axis::Following => {
            // Descendants of following siblings of ancestors-or-self,
            // in document order.
            let mut out = Vec::new();
            let mut cur = Some(ctx.clone());
            while let Some(node) = cur {
                for sib in siblings(&node, true) {
                    out.push(sib.clone());
                    descend(&sib, &mut out);
                }
                cur = node.parent();
            }
            crate::order::sort_dedup(&mut out);
            out
        }
        Axis::Preceding => {
            // Everything before ctx in document order except ancestors.
            let mut out = Vec::new();
            let mut cur = Some(ctx.clone());
            while let Some(node) = cur {
                for sib in siblings(&node, false) {
                    out.push(sib.clone());
                    descend(&sib, &mut out);
                }
                cur = node.parent();
            }
            crate::order::sort_dedup(&mut out);
            out.reverse();
            out
        }
        Axis::Namespace => Vec::new(),
    }
}

fn descend(ctx: &NodeHandle, out: &mut Vec<NodeHandle>) {
    for &c in ctx.doc.children(ctx.id) {
        let h = NodeHandle::new(ctx.doc.clone(), c);
        out.push(h.clone());
        if matches!(h.kind(), NodeKind::Element) {
            descend(&h, out);
        }
    }
}

fn siblings(ctx: &NodeHandle, following: bool) -> Vec<NodeHandle> {
    if ctx.kind() == NodeKind::Attribute {
        return Vec::new();
    }
    let Some(parent) = ctx.data().parent else {
        return Vec::new();
    };
    let kids = ctx.doc.children(parent);
    let Some(pos) = kids.iter().position(|&k| k == ctx.id) else {
        return Vec::new();
    };
    let range: Vec<NodeId> = if following {
        kids[pos + 1..].to_vec()
    } else {
        kids[..pos].to_vec()
    };
    range
        .into_iter()
        .map(|id| NodeHandle::new(ctx.doc.clone(), id))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use std::sync::Arc;

    fn setup() -> (Arc<crate::Document>, NodeHandle) {
        let d = Arc::new(parse(r#"<a k="v"><b><c/><d/></b><e/><f><g/></f></a>"#).unwrap());
        let a = d.children(d.root())[0];
        (d.clone(), NodeHandle::new(d, a))
    }

    fn names(v: &[NodeHandle]) -> Vec<String> {
        v.iter()
            .map(|h| h.name().map(|n| n.local.clone()).unwrap_or_default())
            .collect()
    }

    #[test]
    fn child_axis() {
        let (_, a) = setup();
        assert_eq!(names(&step(&a, Axis::Child)), ["b", "e", "f"]);
    }

    #[test]
    fn descendant_axis_document_order() {
        let (_, a) = setup();
        assert_eq!(
            names(&step(&a, Axis::Descendant)),
            ["b", "c", "d", "e", "f", "g"]
        );
    }

    #[test]
    fn attribute_axis() {
        let (_, a) = setup();
        let attrs = step(&a, Axis::Attribute);
        assert_eq!(names(&attrs), ["k"]);
        assert_eq!(attrs[0].string_value(), "v");
    }

    #[test]
    fn ancestor_and_parent() {
        let (d, a) = setup();
        let b = NodeHandle::new(d.clone(), d.children(a.id)[0]);
        let c = NodeHandle::new(d.clone(), d.children(b.id)[0]);
        assert_eq!(names(&step(&c, Axis::Parent)), ["b"]);
        let anc = step(&c, Axis::Ancestor);
        assert_eq!(anc.len(), 3); // b, a, document
        assert_eq!(anc[0].id, b.id);
    }

    #[test]
    fn sibling_axes() {
        let (d, a) = setup();
        let e = NodeHandle::new(d.clone(), d.children(a.id)[1]);
        assert_eq!(names(&step(&e, Axis::FollowingSibling)), ["f"]);
        assert_eq!(names(&step(&e, Axis::PrecedingSibling)), ["b"]);
    }

    #[test]
    fn following_and_preceding() {
        let (d, a) = setup();
        let b = NodeHandle::new(d.clone(), d.children(a.id)[0]);
        let cnode = NodeHandle::new(d.clone(), d.children(b.id)[0]);
        assert_eq!(names(&step(&cnode, Axis::Following)), ["d", "e", "f", "g"]);
        let f = NodeHandle::new(d.clone(), d.children(a.id)[2]);
        // preceding of f: b, c, d, e (reverse doc order), excluding ancestors
        assert_eq!(names(&step(&f, Axis::Preceding)), ["e", "d", "c", "b"]);
    }

    #[test]
    fn attribute_has_no_siblings() {
        let (d, a) = setup();
        let attr = NodeHandle::new(d.clone(), d.attributes(a.id)[0]);
        assert!(step(&attr, Axis::FollowingSibling).is_empty());
        assert_eq!(names(&step(&attr, Axis::Parent)), ["a"]);
    }

    #[test]
    fn detached_node_axes_are_empty_upward() {
        // A freshly imported (by-value) fragment must see empty parent /
        // following axes: the XRPC call-by-value guarantee.
        let (d, a) = setup();
        let mut fresh = crate::Document::new();
        let copy = fresh.import_subtree(&d, d.children(a.id)[0]);
        let h = NodeHandle::new(Arc::new(fresh), copy);
        assert!(step(&h, Axis::Parent).is_empty());
        assert!(step(&h, Axis::FollowingSibling).is_empty());
        assert!(step(&h, Axis::Following).is_empty());
        assert_eq!(names(&step(&h, Axis::Child)), ["c", "d"]);
    }
}
