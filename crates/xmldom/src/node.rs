//! Node arena and the mutation API used by XQUF `applyUpdates`.

use crate::qname::QName;
use std::sync::Arc;

/// Index of a node inside a [`Document`] arena.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Debug for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The seven XDM node kinds.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum NodeKind {
    Document,
    Element,
    Attribute,
    Text,
    Comment,
    ProcessingInstruction,
}

/// One arena slot. Fields are used per kind:
/// * `Document`: `children`
/// * `Element`: `name`, `attributes`, `children`, `ns_decls`
/// * `Attribute`: `name`, `value`
/// * `Text` / `Comment`: `value`
/// * `ProcessingInstruction`: `name` (target, no namespace), `value`
#[derive(Clone, Debug)]
pub struct NodeData {
    pub kind: NodeKind,
    pub parent: Option<NodeId>,
    /// Shared so that the parser can intern one `QName` per distinct tag and
    /// deep copies / marshaled fragments bump a refcount instead of cloning
    /// three strings per node.
    pub name: Option<Arc<QName>>,
    pub value: String,
    pub attributes: Vec<NodeId>,
    pub children: Vec<NodeId>,
    /// Namespace declarations in scope *declared on this element*
    /// (`prefix -> uri`; empty prefix = default namespace).
    pub ns_decls: Vec<(String, String)>,
    /// Type annotation carried by `xsi:type` (kept as a lexical QName). The
    /// XRPC marshaler uses it to round-trip user-defined schema types.
    pub type_annotation: Option<String>,
}

impl NodeData {
    fn new(kind: NodeKind) -> Self {
        NodeData {
            kind,
            parent: None,
            name: None,
            value: String::new(),
            attributes: Vec::new(),
            children: Vec::new(),
            ns_decls: Vec::new(),
            type_annotation: None,
        }
    }
}

/// An XML document: a node arena whose slot 0 is always the document node.
///
/// Mutation methods take `&mut self`; callers that need snapshot semantics
/// clone the document first (see `xrpc-peer`'s store).
#[derive(Clone, Debug)]
pub struct Document {
    nodes: Vec<NodeData>,
    pub uri: Option<String>,
}

impl Document {
    pub fn new() -> Self {
        Document {
            nodes: vec![NodeData::new(NodeKind::Document)],
            uri: None,
        }
    }

    /// A document whose arena is pre-sized for `nodes` node slots (plus the
    /// document node itself). Parsers and builders that can estimate the node
    /// count up front use this to avoid doubling a multi-MiB arena past the
    /// last-level cache.
    pub fn with_node_capacity(nodes: usize) -> Self {
        let mut v = Vec::with_capacity(nodes.saturating_add(1));
        v.push(NodeData::new(NodeKind::Document));
        Document {
            nodes: v,
            uri: None,
        }
    }

    pub fn with_uri(uri: impl Into<String>) -> Self {
        let mut d = Document::new();
        d.uri = Some(uri.into());
        d
    }

    /// Reserve arena room for at least `additional` more nodes.
    pub fn reserve_nodes(&mut self, additional: usize) {
        self.nodes.reserve(additional);
    }

    pub fn node_capacity(&self) -> usize {
        self.nodes.capacity()
    }

    pub fn root(&self) -> NodeId {
        NodeId(0)
    }

    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        false // there is always a document node
    }

    pub fn node(&self, id: NodeId) -> &NodeData {
        &self.nodes[id.index()]
    }

    pub fn node_mut(&mut self, id: NodeId) -> &mut NodeData {
        &mut self.nodes[id.index()]
    }

    pub fn kind(&self, id: NodeId) -> NodeKind {
        self.nodes[id.index()].kind
    }

    fn alloc(&mut self, data: NodeData) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(data);
        id
    }

    // ------------------------------------------------------------------
    // Construction
    // ------------------------------------------------------------------

    pub fn create_element(&mut self, name: QName) -> NodeId {
        self.create_element_shared(Arc::new(name))
    }

    /// Like [`create_element`](Self::create_element) but reusing an interned
    /// name — no allocation beyond the arena slot.
    pub fn create_element_shared(&mut self, name: Arc<QName>) -> NodeId {
        let mut d = NodeData::new(NodeKind::Element);
        d.name = Some(name);
        self.alloc(d)
    }

    /// Allocate a *detached* document node. The XRPC unmarshaler uses this to
    /// give `xrpc:document` values a document root inside a shared arena
    /// without deep-copying the subtree into a fresh [`Document`].
    pub fn create_document_node(&mut self) -> NodeId {
        self.alloc(NodeData::new(NodeKind::Document))
    }

    pub fn create_text(&mut self, value: impl Into<String>) -> NodeId {
        let mut d = NodeData::new(NodeKind::Text);
        d.value = value.into();
        self.alloc(d)
    }

    pub fn create_comment(&mut self, value: impl Into<String>) -> NodeId {
        let mut d = NodeData::new(NodeKind::Comment);
        d.value = value.into();
        self.alloc(d)
    }

    pub fn create_pi(&mut self, target: impl Into<String>, value: impl Into<String>) -> NodeId {
        let mut d = NodeData::new(NodeKind::ProcessingInstruction);
        d.name = Some(Arc::new(QName::local(target)));
        d.value = value.into();
        self.alloc(d)
    }

    pub fn create_attribute(&mut self, name: QName, value: impl Into<String>) -> NodeId {
        self.create_attribute_shared(Arc::new(name), value)
    }

    /// Like [`create_attribute`](Self::create_attribute) with an interned name.
    pub fn create_attribute_shared(
        &mut self,
        name: Arc<QName>,
        value: impl Into<String>,
    ) -> NodeId {
        let mut d = NodeData::new(NodeKind::Attribute);
        d.name = Some(name);
        d.value = value.into();
        self.alloc(d)
    }

    // ------------------------------------------------------------------
    // Tree surgery (XQUF primitives)
    // ------------------------------------------------------------------

    /// Append `child` as the last child of `parent` (document or element).
    pub fn append_child(&mut self, parent: NodeId, child: NodeId) {
        debug_assert!(matches!(
            self.kind(parent),
            NodeKind::Document | NodeKind::Element
        ));
        self.detach(child);
        self.nodes[child.index()].parent = Some(parent);
        self.nodes[parent.index()].children.push(child);
    }

    /// Insert `child` under `parent` at child position `pos` (clamped).
    pub fn insert_child_at(&mut self, parent: NodeId, pos: usize, child: NodeId) {
        self.detach(child);
        self.nodes[child.index()].parent = Some(parent);
        let kids = &mut self.nodes[parent.index()].children;
        let pos = pos.min(kids.len());
        kids.insert(pos, child);
    }

    /// Insert `child` immediately before sibling `anchor`.
    pub fn insert_before(&mut self, anchor: NodeId, child: NodeId) {
        let parent = self.nodes[anchor.index()]
            .parent
            .expect("insert_before target must have a parent");
        let pos = self.child_position(parent, anchor);
        self.insert_child_at(parent, pos, child);
    }

    /// Insert `child` immediately after sibling `anchor`.
    pub fn insert_after(&mut self, anchor: NodeId, child: NodeId) {
        let parent = self.nodes[anchor.index()]
            .parent
            .expect("insert_after target must have a parent");
        let pos = self.child_position(parent, anchor);
        self.insert_child_at(parent, pos + 1, child);
    }

    /// Attach an attribute node to an element (replacing any same-named one).
    pub fn set_attribute_node(&mut self, element: NodeId, attr: NodeId) {
        debug_assert_eq!(self.kind(element), NodeKind::Element);
        debug_assert_eq!(self.kind(attr), NodeKind::Attribute);
        let name = self.nodes[attr.index()].name.clone().expect("attr name");
        if let Some(existing) = self.attribute_by_name(element, &name) {
            self.remove_attribute(element, existing);
        }
        self.nodes[attr.index()].parent = Some(element);
        self.nodes[element.index()].attributes.push(attr);
    }

    /// Convenience: create + attach an attribute.
    pub fn set_attribute(&mut self, element: NodeId, name: QName, value: impl Into<String>) {
        let a = self.create_attribute(name, value);
        self.set_attribute_node(element, a);
    }

    /// Detach a node from its parent's child (or attribute) list.
    pub fn detach(&mut self, node: NodeId) {
        if let Some(p) = self.nodes[node.index()].parent.take() {
            let pd = &mut self.nodes[p.index()];
            pd.children.retain(|&c| c != node);
            pd.attributes.retain(|&c| c != node);
        }
    }

    pub fn remove_attribute(&mut self, element: NodeId, attr: NodeId) {
        self.nodes[element.index()]
            .attributes
            .retain(|&a| a != attr);
        self.nodes[attr.index()].parent = None;
    }

    /// XQUF `replace node`: swap `target` for `replacements` in its parent.
    pub fn replace_node(&mut self, target: NodeId, replacements: &[NodeId]) {
        let parent = self.nodes[target.index()]
            .parent
            .expect("replace target must have a parent");
        if self.kind(target) == NodeKind::Attribute {
            self.remove_attribute(parent, target);
            for &r in replacements {
                self.set_attribute_node(parent, r);
            }
        } else {
            let pos = self.child_position(parent, target);
            self.detach(target);
            for (i, &r) in replacements.iter().enumerate() {
                self.insert_child_at(parent, pos + i, r);
            }
        }
    }

    /// XQUF `replace value of node`.
    pub fn replace_value(&mut self, target: NodeId, value: &str) {
        match self.kind(target) {
            NodeKind::Element => {
                // Replace the entire content with one text node.
                let kids: Vec<NodeId> = self.nodes[target.index()].children.clone();
                for k in kids {
                    self.detach(k);
                }
                if !value.is_empty() {
                    let t = self.create_text(value);
                    self.append_child(target, t);
                }
            }
            _ => self.nodes[target.index()].value = value.to_string(),
        }
    }

    /// XQUF `rename node`.
    pub fn rename(&mut self, target: NodeId, name: QName) {
        self.nodes[target.index()].name = Some(Arc::new(name));
    }

    fn child_position(&self, parent: NodeId, child: NodeId) -> usize {
        self.nodes[parent.index()]
            .children
            .iter()
            .position(|&c| c == child)
            .expect("child not under parent")
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    pub fn children(&self, id: NodeId) -> &[NodeId] {
        &self.nodes[id.index()].children
    }

    pub fn attributes(&self, id: NodeId) -> &[NodeId] {
        &self.nodes[id.index()].attributes
    }

    pub fn attribute_by_name(&self, element: NodeId, name: &QName) -> Option<NodeId> {
        self.nodes[element.index()]
            .attributes
            .iter()
            .copied()
            .find(|&a| {
                self.nodes[a.index()]
                    .name
                    .as_ref()
                    .is_some_and(|n| n.matches(name))
            })
    }

    /// Attribute value lookup by local name only (namespace ignored) —
    /// convenient for protocol parsing where attributes are unprefixed.
    pub fn attr_local(&self, element: NodeId, local: &str) -> Option<&str> {
        self.nodes[element.index()]
            .attributes
            .iter()
            .find_map(|&a| {
                let d = &self.nodes[a.index()];
                if d.name.as_ref().is_some_and(|n| n.local == local) {
                    Some(d.value.as_str())
                } else {
                    None
                }
            })
    }

    /// First child element with a matching expanded name.
    pub fn child_element(&self, parent: NodeId, name: &QName) -> Option<NodeId> {
        self.children(parent).iter().copied().find(|&c| {
            self.kind(c) == NodeKind::Element
                && self.nodes[c.index()]
                    .name
                    .as_ref()
                    .is_some_and(|n| n.matches(name))
        })
    }

    /// All child elements (any name).
    pub fn child_elements(&self, parent: NodeId) -> Vec<NodeId> {
        self.children(parent)
            .iter()
            .copied()
            .filter(|&c| self.kind(c) == NodeKind::Element)
            .collect()
    }

    /// Concatenated text content (XDM string value).
    pub fn string_value(&self, id: NodeId) -> String {
        match self.kind(id) {
            NodeKind::Document | NodeKind::Element => {
                let mut out = String::new();
                self.collect_text(id, &mut out);
                out
            }
            _ => self.nodes[id.index()].value.clone(),
        }
    }

    fn collect_text(&self, id: NodeId, out: &mut String) {
        for &c in self.children(id) {
            match self.kind(c) {
                NodeKind::Text => out.push_str(&self.nodes[c.index()].value),
                NodeKind::Element => self.collect_text(c, out),
                _ => {}
            }
        }
    }

    /// Resolve a namespace prefix at `node` by walking ancestor `ns_decls`.
    pub fn resolve_prefix(&self, node: NodeId, prefix: &str) -> Option<String> {
        if prefix == "xml" {
            return Some(crate::qname::NS_XML.to_string());
        }
        let mut cur = Some(node);
        while let Some(id) = cur {
            let d = &self.nodes[id.index()];
            for (p, u) in &d.ns_decls {
                if p == prefix {
                    if u.is_empty() {
                        return None; // un-declaration
                    }
                    return Some(u.clone());
                }
            }
            cur = d.parent;
        }
        None
    }

    /// Number of arena slots the subtree rooted at `id` occupies (the node
    /// itself, its attributes, and all descendants) — an O(subtree) count
    /// used to pre-reserve destination arenas before a deep copy.
    pub fn subtree_size(&self, id: NodeId) -> usize {
        let mut n = 0usize;
        let mut stack = vec![id];
        while let Some(cur) = stack.pop() {
            n += 1;
            let d = &self.nodes[cur.index()];
            stack.extend_from_slice(&d.attributes);
            stack.extend_from_slice(&d.children);
        }
        n
    }

    /// Rough serialized byte size of the subtree rooted at `id`: tag pairs
    /// from the interned name lengths, attribute/text content from the
    /// stored value lengths, plus a small slack for escaping. One O(subtree)
    /// pointer walk; the traversal stack is reused across calls because
    /// sizing a Bulk RPC message calls this once per sequence item.
    pub fn subtree_wire_estimate(&self, id: NodeId) -> usize {
        thread_local! {
            static WALK_STACK: std::cell::RefCell<Vec<NodeId>> =
                const { std::cell::RefCell::new(Vec::new()) };
        }
        // take (not borrow) so a re-entrant call degrades to a fresh
        // stack instead of a RefCell panic
        let mut stack = WALK_STACK.with(|s| std::mem::take(&mut *s.borrow_mut()));
        stack.push(id);
        let mut total = 0usize;
        while let Some(cur) = stack.pop() {
            let d = &self.nodes[cur.index()];
            if let Some(q) = &d.name {
                total += 2 * q.lexical_len() + 5; // <n>..</n> or n=".."
            }
            total += d.value.len() + d.value.len() / 16 + 2;
            stack.extend_from_slice(&d.attributes);
            stack.extend_from_slice(&d.children);
        }
        WALK_STACK.with(|s| *s.borrow_mut() = stack);
        total
    }

    /// Deep-copy the subtree rooted at `src_id` in `src` into `self`,
    /// returning the new root id. The copy is *detached* (no parent), giving
    /// the by-value semantics XRPC marshaling requires. The destination arena
    /// is reserved up front so large imports never re-grow it mid-copy.
    pub fn import_subtree(&mut self, src: &Document, src_id: NodeId) -> NodeId {
        self.nodes.reserve(src.subtree_size(src_id));
        self.import_rec(src, src_id)
    }

    fn import_rec(&mut self, src: &Document, src_id: NodeId) -> NodeId {
        let sd = src.node(src_id);
        let new_id = match sd.kind {
            NodeKind::Document => {
                // Import a document node as... a fresh subtree under no parent:
                // allocate an element-like holder is wrong; instead copy each
                // child under a new document is handled by callers. Here we
                // copy the document node itself only when self is empty.
                let mut d = NodeData::new(NodeKind::Document);
                d.ns_decls = sd.ns_decls.clone();
                self.alloc(d)
            }
            _ => {
                let mut d = NodeData::new(sd.kind);
                d.name = sd.name.clone();
                d.value = sd.value.clone();
                d.ns_decls = sd.ns_decls.clone();
                d.type_annotation = sd.type_annotation.clone();
                self.alloc(d)
            }
        };
        let attrs: Vec<NodeId> = sd.attributes.clone();
        for a in attrs {
            let na = self.import_rec(src, a);
            self.nodes[na.index()].parent = Some(new_id);
            self.nodes[new_id.index()].attributes.push(na);
        }
        let kids: Vec<NodeId> = sd.children.clone();
        for c in kids {
            let nc = self.import_rec(src, c);
            self.nodes[nc.index()].parent = Some(new_id);
            self.nodes[new_id.index()].children.push(nc);
        }
        new_id
    }

    /// Iterate all node ids in arena order (includes detached nodes).
    pub fn all_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }
}

impl Default for Document {
    fn default() -> Self {
        Document::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn elem(doc: &mut Document, name: &str) -> NodeId {
        doc.create_element(QName::local(name))
    }

    #[test]
    fn build_and_navigate() {
        let mut d = Document::new();
        let root = elem(&mut d, "a");
        d.append_child(d.root(), root);
        let b = elem(&mut d, "b");
        d.append_child(root, b);
        let t = d.create_text("hi");
        d.append_child(b, t);
        assert_eq!(d.children(root), &[b]);
        assert_eq!(d.string_value(root), "hi");
        assert_eq!(d.node(b).parent, Some(root));
    }

    #[test]
    fn insert_before_after() {
        let mut d = Document::new();
        let root = elem(&mut d, "r");
        d.append_child(d.root(), root);
        let a = elem(&mut d, "a");
        let b = elem(&mut d, "b");
        let c = elem(&mut d, "c");
        d.append_child(root, b);
        d.insert_before(b, a);
        d.insert_after(b, c);
        let names: Vec<String> = d
            .children(root)
            .iter()
            .map(|&k| d.node(k).name.as_ref().unwrap().local.clone())
            .collect();
        assert_eq!(names, ["a", "b", "c"]);
    }

    #[test]
    fn replace_node_multi() {
        let mut d = Document::new();
        let root = elem(&mut d, "r");
        d.append_child(d.root(), root);
        let a = elem(&mut d, "a");
        d.append_child(root, a);
        let x = elem(&mut d, "x");
        let y = elem(&mut d, "y");
        d.replace_node(a, &[x, y]);
        let names: Vec<String> = d
            .children(root)
            .iter()
            .map(|&k| d.node(k).name.as_ref().unwrap().local.clone())
            .collect();
        assert_eq!(names, ["x", "y"]);
        assert_eq!(d.node(a).parent, None);
    }

    #[test]
    fn replace_value_of_element() {
        let mut d = Document::new();
        let root = elem(&mut d, "r");
        d.append_child(d.root(), root);
        let t = d.create_text("old");
        d.append_child(root, t);
        d.replace_value(root, "new");
        assert_eq!(d.string_value(root), "new");
    }

    #[test]
    fn set_attribute_replaces_same_name() {
        let mut d = Document::new();
        let root = elem(&mut d, "r");
        d.append_child(d.root(), root);
        d.set_attribute(root, QName::local("id"), "1");
        d.set_attribute(root, QName::local("id"), "2");
        assert_eq!(d.attributes(root).len(), 1);
        assert_eq!(d.attr_local(root, "id"), Some("2"));
    }

    #[test]
    fn rename_node() {
        let mut d = Document::new();
        let root = elem(&mut d, "old");
        d.append_child(d.root(), root);
        d.rename(root, QName::local("new"));
        assert_eq!(d.node(root).name.as_ref().unwrap().local, "new");
    }

    #[test]
    fn import_subtree_is_detached_deep_copy() {
        let mut src = Document::new();
        let root = elem(&mut src, "a");
        src.append_child(src.root(), root);
        src.set_attribute(root, QName::local("k"), "v");
        let kid = elem(&mut src, "b");
        src.append_child(root, kid);

        let mut dst = Document::new();
        let copy = dst.import_subtree(&src, root);
        assert_eq!(dst.node(copy).parent, None);
        assert_eq!(dst.attr_local(copy, "k"), Some("v"));
        assert_eq!(dst.children(copy).len(), 1);
        // Mutating the copy leaves the source untouched.
        dst.rename(copy, QName::local("z"));
        assert_eq!(src.node(root).name.as_ref().unwrap().local, "a");
    }

    #[test]
    fn prefix_resolution_walks_ancestors() {
        let mut d = Document::new();
        let root = elem(&mut d, "r");
        d.append_child(d.root(), root);
        d.node_mut(root).ns_decls.push(("p".into(), "urn:p".into()));
        let kid = elem(&mut d, "k");
        d.append_child(root, kid);
        assert_eq!(d.resolve_prefix(kid, "p").as_deref(), Some("urn:p"));
        assert_eq!(d.resolve_prefix(kid, "q"), None);
        assert_eq!(
            d.resolve_prefix(kid, "xml").as_deref(),
            Some(crate::qname::NS_XML)
        );
    }
}
