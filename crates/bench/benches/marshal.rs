//! Criterion bench for ablation A3: marshaling cost (s2n/n2s) by
//! parameter shape — atomic values vs element subtrees (paper §2.1's two
//! value families).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;
use xdm::{Item, Sequence};
use xmldom::NodeHandle;
use xrpc_proto::{parse_message, XrpcRequest};

fn atomic_seq(n: usize) -> Sequence {
    Sequence::from_items(
        (0..n)
            .map(|i| {
                if i % 2 == 0 {
                    Item::integer(i as i64)
                } else {
                    Item::string(format!("value-{i}"))
                }
            })
            .collect(),
    )
}

fn element_seq(n: usize) -> Sequence {
    let mut xml = String::from("<w>");
    for i in 0..n {
        xml.push_str(&format!("<film year=\"{i}\"><name>Film {i}</name></film>"));
    }
    xml.push_str("</w>");
    let doc = Arc::new(xmldom::parse(&xml).unwrap());
    let w = doc.children(doc.root())[0];
    Sequence::from_items(
        doc.children(w)
            .iter()
            .map(|&c| Item::Node(NodeHandle::new(doc.clone(), c)))
            .collect(),
    )
}

fn roundtrip(seq: &Sequence) {
    let mut req = XrpcRequest::new("m", "f", 1);
    req.push_call(vec![seq.clone()]);
    let xml = req.to_xml().unwrap();
    let _ = parse_message(&xml).unwrap();
}

fn bench_marshal(c: &mut Criterion) {
    let mut group = c.benchmark_group("marshal_roundtrip");
    group.sample_size(20);
    for n in [10usize, 100, 1000] {
        let a = atomic_seq(n);
        group.bench_with_input(BenchmarkId::new("atomic", n), &a, |b, seq| {
            b.iter(|| roundtrip(seq))
        });
        let e = element_seq(n);
        group.bench_with_input(BenchmarkId::new("element", n), &e, |b, seq| {
            b.iter(|| roundtrip(seq))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_marshal);
criterion_main!(benches);
