//! Criterion bench for experiment E2 (Table 3): the XRPC wrapper serving
//! echoVoid and getPerson bulk requests on a plain engine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xrpc_bench::{get_person_query, time_query, wrapper_cluster, wrapper_echo_query};

fn bench_wrapper(c: &mut Criterion) {
    let persons = 2000;
    let mut group = c.benchmark_group("wrapper");
    group.sample_size(10);
    for x in [1usize, 100] {
        group.bench_with_input(BenchmarkId::new("echoVoid", x), &x, |b, &x| {
            let cluster = wrapper_cluster(persons);
            let q = wrapper_echo_query(x);
            let _ = time_query(&cluster.a, &wrapper_echo_query(1));
            b.iter(|| cluster.a.execute(&q).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("getPerson", x), &x, |b, &x| {
            let cluster = wrapper_cluster(persons);
            let q = get_person_query(x, persons);
            // first call builds the wrapped engine's join index
            let _ = time_query(&cluster.a, &get_person_query(1, persons));
            b.iter(|| cluster.a.execute(&q).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_wrapper);
criterion_main!(benches);
