//! Criterion bench for experiment E1 (Table 2): Bulk RPC vs one-at-a-time
//! dispatch, measured on the instant network profile so the numbers show
//! pure protocol/engine CPU cost (the latency effect is swept separately
//! by `tables ablation-latency`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xrpc_bench::{echo_cluster, echo_query, time_query};
use xrpc_net::NetProfile;

fn bench_bulk_vs_single(c: &mut Criterion) {
    let mut group = c.benchmark_group("echoVoid");
    group.sample_size(10);
    for x in [1usize, 10, 100] {
        for (mode, bulk) in [("single", false), ("bulk", true)] {
            group.bench_with_input(BenchmarkId::new(mode, x), &x, |b, &x| {
                let cluster = echo_cluster(NetProfile::instant(), bulk, true);
                let q = echo_query(x);
                // warm the function cache
                let _ = time_query(&cluster.a, &echo_query(1));
                b.iter(|| {
                    cluster.a.execute(&q).unwrap();
                });
            });
        }
    }
    group.finish();
}

fn bench_function_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("function_cache");
    group.sample_size(10);
    for (mode, cache) in [("cached", true), ("uncached", false)] {
        group.bench_function(mode, |b| {
            let cluster = echo_cluster(NetProfile::instant(), true, cache);
            let q = echo_query(1);
            let _ = time_query(&cluster.a, &q);
            b.iter(|| {
                cluster.a.execute(&q).unwrap();
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bulk_vs_single, bench_function_cache);
criterion_main!(benches);
