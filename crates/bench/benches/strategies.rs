//! Criterion bench for experiment E3 (Table 4): the four Q7 distribution
//! strategies at a reduced scale (Criterion repeats each many times; the
//! paper-scale run lives in `tables table4`).

use criterion::{criterion_group, criterion_main, Criterion};
use xrpc_bench::{strategy_cluster, A_URI, B_URI};
use xrpc_net::NetProfile;

fn bench_strategies(c: &mut Criterion) {
    let params = xmark::XmarkParams {
        persons: 100,
        closed_auctions: 800,
        matches: 6,
        padding_words: 10,
        seed: 42,
    };
    let mut group = c.benchmark_group("q7_strategies");
    group.sample_size(10);
    for strategy in distq::Strategy::ALL {
        group.bench_function(strategy.label(), |b| {
            let cluster = strategy_cluster(&params, NetProfile::instant());
            cluster.a.set_rpc_optimize(true);
            let q = strategy.query(B_URI, A_URI);
            // warm-up: builds join indexes and the wrapped engine's caches
            let _ = cluster.a.execute(&q).unwrap();
            b.iter(|| cluster.a.execute(&q).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_strategies);
criterion_main!(benches);
