//! Criterion bench for experiment E4 (§3.3 throughput text): request- and
//! response-heavy XRPC calls with a 256 KiB payload.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use xrpc_bench::{request_heavy_query, response_heavy_query, throughput_cluster};

fn bench_payload(c: &mut Criterion) {
    let bytes = 256 * 1024;
    let mut group = c.benchmark_group("payload_256k");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(bytes as u64));
    group.bench_function("request_heavy", |b| {
        let cluster = throughput_cluster(bytes);
        let q = request_heavy_query();
        b.iter(|| cluster.a.execute(&q).unwrap());
    });
    group.bench_function("response_heavy", |b| {
        let cluster = throughput_cluster(bytes);
        let q = response_heavy_query();
        b.iter(|| cluster.a.execute(&q).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_payload);
criterion_main!(benches);
