//! Shared experiment setups: the clusters, workloads and timing helpers
//! used by both the `tables` binary (which regenerates every table in the
//! paper) and the Criterion benches.

pub mod swarm;

use std::sync::Arc;
use std::time::{Duration, Instant};
use xdm::Sequence;
use xrpc_net::{NetError, NetProfile, SimNetwork, Transport};
use xrpc_peer::{EngineKind, FsyncPolicy, Peer, WalConfig, XrpcWrapper};

pub const A_URI: &str = "xrpc://a.example.org";
pub const B_URI: &str = "xrpc://b.example.org";

/// A transport decorator that accumulates the time the caller spends
/// blocked in round trips — how we split "MonetDB time" from "Saxon time
/// (includes network)" exactly the way Table 4 does.
pub struct TimingTransport {
    inner: Arc<dyn Transport>,
    blocked: parking_lot::Mutex<Duration>,
}

impl TimingTransport {
    pub fn new(inner: Arc<dyn Transport>) -> Arc<Self> {
        Arc::new(TimingTransport {
            inner,
            blocked: parking_lot::Mutex::new(Duration::ZERO),
        })
    }

    pub fn take_blocked(&self) -> Duration {
        std::mem::take(&mut *self.blocked.lock())
    }
}

impl Transport for TimingTransport {
    fn roundtrip(&self, dest: &str, body: &[u8]) -> Result<Vec<u8>, NetError> {
        let t0 = Instant::now();
        let r = self.inner.roundtrip(dest, body);
        *self.blocked.lock() += t0.elapsed();
        r
    }
}

// ---------------------------------------------------------------------
// Experiment 1 (Table 2): echoVoid, bulk vs one-at-a-time, function cache
// ---------------------------------------------------------------------

pub struct EchoCluster {
    pub net: Arc<SimNetwork>,
    pub a: Arc<Peer>,
    pub b: Arc<Peer>,
}

/// Two rel-capable peers: A issues the echoVoid loop, B services it.
/// `bulk` picks A's engine (Rel = loop-lifted Bulk RPC, Tree = one RPC at
/// a time); `cache` switches B's function cache (Table 2's two halves).
pub fn echo_cluster(profile: NetProfile, bulk: bool, cache: bool) -> EchoCluster {
    let net = Arc::new(SimNetwork::new(profile));
    let a = Peer::new(
        A_URI,
        if bulk {
            EngineKind::Rel
        } else {
            EngineKind::Tree
        },
    );
    let b = Peer::new(B_URI, EngineKind::Tree);
    for p in [&a, &b] {
        p.register_module(xmark::test_module()).unwrap();
        p.set_transport(net.clone());
    }
    b.function_cache.set_enabled(cache);
    net.register(A_URI, a.soap_handler());
    net.register(B_URI, b.soap_handler());
    EchoCluster { net, a, b }
}

/// The §3.3 echoVoid query with `$x` iterations.
pub fn echo_query(x: usize) -> String {
    format!(
        r#"import module namespace t = "test";
for $i in (1 to {x}) return execute at {{"{B_URI}"}} {{t:echoVoid()}}"#
    )
}

/// Run a query once, returning (elapsed, result).
pub fn time_query(peer: &Peer, query: &str) -> (Duration, Sequence) {
    let t0 = Instant::now();
    let res = peer.execute(query).expect("query failed");
    (t0.elapsed(), res)
}

// ---------------------------------------------------------------------
// Experiment 2 (Table 3): the wrapper, echoVoid + getPerson
// ---------------------------------------------------------------------

pub struct WrapperCluster {
    pub net: Arc<SimNetwork>,
    pub a: Arc<Peer>,
    pub wrapper: Arc<XrpcWrapper>,
}

/// Rel-engine client + wrapped plain engine holding an XMark persons
/// document with `persons` entries.
pub fn wrapper_cluster(persons: usize) -> WrapperCluster {
    let net = Arc::new(SimNetwork::new(NetProfile::instant()));
    let a = Peer::new(A_URI, EngineKind::Rel);
    a.register_module(xmark::test_module()).unwrap();
    a.register_module(xmark::functions_module()).unwrap();
    a.set_transport(net.clone());
    let wrapper = XrpcWrapper::new();
    wrapper
        .modules
        .register_source(xmark::test_module())
        .unwrap();
    wrapper
        .modules
        .register_source(xmark::functions_module())
        .unwrap();
    let params = xmark::XmarkParams {
        persons,
        closed_auctions: 0,
        matches: 0,
        padding_words: 16,
        seed: 11,
    };
    wrapper.docs.insert(
        "persons.xml",
        xmldom::parse(&xmark::persons_xml(&params)).unwrap(),
    );
    net.register(B_URI, wrapper.soap_handler());
    WrapperCluster { net, a, wrapper }
}

pub fn wrapper_echo_query(x: usize) -> String {
    format!(
        r#"import module namespace tst = "test";
for $i in (1 to {x}) return execute at {{"{B_URI}"}} {{tst:echoVoid()}}"#
    )
}

/// getPerson with a loop-dependent person id (exercises the bulk
/// selection-becomes-join effect of §4).
pub fn get_person_query(x: usize, persons: usize) -> String {
    format!(
        r#"import module namespace func = "functions";
for $i in (1 to {x})
return execute at {{"{B_URI}"}} {{func:getPerson("persons.xml", concat("person", string($i mod {persons})))}}"#
    )
}

// ---------------------------------------------------------------------
// Experiment 3 (Table 4): the four Q7 strategies
// ---------------------------------------------------------------------

pub struct StrategyCluster {
    pub net: Arc<SimNetwork>,
    pub a: Arc<Peer>,
    pub wrapper: Arc<XrpcWrapper>,
    pub timing: Arc<TimingTransport>,
}

/// Peer A (rel, persons.xml) + wrapped peer B (auctions.xml), with the
/// timing transport between them so "A time" and "B time (incl. network)"
/// can be split like the paper's Table 4.
pub fn strategy_cluster(params: &xmark::XmarkParams, profile: NetProfile) -> StrategyCluster {
    let net = Arc::new(SimNetwork::new(profile));
    let timing = TimingTransport::new(net.clone());
    let a = Peer::new(A_URI, EngineKind::Rel);
    a.add_document("persons.xml", &xmark::persons_xml(params))
        .unwrap();
    a.register_module(distq::MODULE_B).unwrap();
    a.set_transport(timing.clone());
    net.register(A_URI, a.soap_handler());

    let wrapper = XrpcWrapper::new();
    wrapper.docs.insert(
        "auctions.xml",
        xmldom::parse(&xmark::auctions_xml(params)).unwrap(),
    );
    wrapper.modules.register_source(distq::MODULE_B).unwrap();
    wrapper.enable_remote_docs(net.clone());
    net.register(B_URI, wrapper.soap_handler());
    StrategyCluster {
        net,
        a,
        wrapper,
        timing,
    }
}

// ---------------------------------------------------------------------
// Experiment 4 (§3.3 text): throughput with scaled payloads
// ---------------------------------------------------------------------

pub struct ThroughputCluster {
    pub net: Arc<SimNetwork>,
    pub a: Arc<Peer>,
    pub b: Arc<Peer>,
}

pub const THROUGHPUT_MODULE: &str = r#"
module namespace tp = "throughput";
declare function tp:consume($x) as xs:integer { count($x) };
declare function tp:produce() as node()* { doc("payload.xml")/payload/chunk };
"#;

/// Peers for the payload-scaling experiment. `payload_bytes` sizes the
/// documents on both sides.
pub fn throughput_cluster(payload_bytes: usize) -> ThroughputCluster {
    let net = Arc::new(SimNetwork::new(NetProfile::instant()));
    let a = Peer::new(A_URI, EngineKind::Rel);
    let b = Peer::new(B_URI, EngineKind::Tree);
    for p in [&a, &b] {
        p.register_module(THROUGHPUT_MODULE).unwrap();
        p.add_document("payload.xml", &xmark::payload_xml(payload_bytes))
            .unwrap();
        p.set_transport(net.clone());
    }
    net.register(A_URI, a.soap_handler());
    net.register(B_URI, b.soap_handler());
    ThroughputCluster { net, a, b }
}

/// Request-heavy call: ship all payload chunks as a parameter.
pub fn request_heavy_query() -> String {
    format!(
        r#"import module namespace tp = "throughput";
execute at {{"{B_URI}"}} {{tp:consume(doc("payload.xml")/payload/chunk)}}"#
    )
}

/// Response-heavy call: the remote function returns all payload chunks.
pub fn response_heavy_query() -> String {
    format!(
        r#"import module namespace tp = "throughput";
count(execute at {{"{B_URI}"}} {{tp:produce()}})"#
    )
}

/// Pretty MB/s.
pub fn mb_per_sec(bytes: u64, elapsed: Duration) -> f64 {
    bytes as f64 / (1024.0 * 1024.0) / elapsed.as_secs_f64().max(1e-9)
}

// ---------------------------------------------------------------------
// Experiment C1: prepared queries — plan-cache warm path and
// feedback-driven adaptive bulk sizing
// ---------------------------------------------------------------------

/// A compile-dominant query: a long chain of `let` clauses (the shape a
/// query generator or wrapper emits) touching no documents at all, so
/// the cache-off/cache-on gap measures parse + static analysis, not data
/// access. `tag` is baked into the first binding so sweeps can mint
/// arbitrarily many textually *distinct* queries of the same cost.
pub fn compile_heavy_query(clauses: usize, tag: u64) -> String {
    let mut q = String::with_capacity(clauses * 24 + 32);
    q.push_str(&format!("let $v0 := {tag}\n"));
    for i in 1..clauses {
        q.push_str(&format!("let $v{i} := $v{} + {i}\n", i - 1));
    }
    q.push_str(&format!("return $v{} mod 1000000", clauses.max(1) - 1));
    q
}

/// Two-peer cluster for the adaptive-bulk half of C1: A loop-lifts a
/// getPerson batch into one Bulk RPC, B serves it out of persons.xml —
/// the A1 workload with a data-dependent function body, so B's per-call
/// evaluation cost is real and the bulk-sizing controller has something
/// to observe.
pub struct BulkPersonCluster {
    pub net: Arc<SimNetwork>,
    pub a: Arc<Peer>,
    pub b: Arc<Peer>,
}

pub fn bulk_person_cluster(persons: usize, profile: NetProfile) -> BulkPersonCluster {
    let net = Arc::new(SimNetwork::new(profile));
    let a = Peer::new(A_URI, EngineKind::Rel);
    let b = Peer::new(B_URI, EngineKind::Tree);
    for p in [&a, &b] {
        p.register_module(xmark::functions_module()).unwrap();
        p.set_transport(net.clone());
    }
    let params = xmark::XmarkParams {
        persons,
        closed_auctions: 0,
        matches: 0,
        padding_words: 8,
        seed: 7,
    };
    b.add_document("persons.xml", &xmark::persons_xml(&params))
        .unwrap();
    net.register(A_URI, a.soap_handler());
    net.register(B_URI, b.soap_handler());
    BulkPersonCluster { net, a, b }
}

// ---------------------------------------------------------------------
// Experiment U1: update-heavy durability — WAL group commit under
// FsyncPolicy::Always (committed updates/s + commit latency quantiles)
// ---------------------------------------------------------------------

/// Steady-state update workload: `u:bump()` replaces a text node, so the
/// document (and with it snapshot-clone and ∆ cost) stays constant-size
/// no matter how many transactions commit — the measured cost is the
/// durability path, not document growth.
pub const U1_MODULE: &str = r#"
module namespace u = "u1";
declare updating function u:bump()
{ replace value of node doc("log.xml")/log/e with "x" };
"#;

/// QueryID timestamp placeholder baked into the pre-serialized message
/// templates; far enough in the future that it never collides with a
/// real `now_millis` and its decimal form never appears elsewhere in the
/// XML.
const QID_TS_SENTINEL: u64 = 4_100_000_000_000;

/// A wire-level updater: one synthetic coordinator replaying the exact
/// message sequence of a committed single-participant transaction —
/// updating call, `Prepare`, `Commit` — from message templates
/// serialized once at construction, with only the queryID timestamp
/// substituted per transaction.
///
/// The point: the *participant* (message parsing, evaluation, 2PC
/// handling, WAL group commit, apply) is the system under test, so the
/// load generator must be cheaper than it. Driving full coordinator
/// peers instead would spend most of each core on client-side query
/// parsing and message construction and starve the participant on small
/// machines.
pub struct UpdateDriver {
    net: Arc<SimNetwork>,
    templates: [String; 3],
}

impl UpdateDriver {
    pub fn new(net: Arc<SimNetwork>, host: &str) -> UpdateDriver {
        let tpl = |module: &str, method: &str| {
            let mut req = xrpc_proto::XrpcRequest::new(module, method, 0)
                .with_query_id(xrpc_proto::QueryId::new(host, QID_TS_SENTINEL, 3_000));
            req.push_call(vec![]);
            req.to_xml().unwrap()
        };
        UpdateDriver {
            net,
            templates: [
                tpl("u1", "bump"),
                tpl(xrpc_proto::WSAT_MODULE, xrpc_proto::METHOD_PREPARE),
                tpl(xrpc_proto::WSAT_MODULE, xrpc_proto::METHOD_COMMIT),
            ],
        }
    }

    /// Run one full transaction under queryID timestamp `ts` (must be
    /// unique per driver and recent enough to pass expiry). Errors on
    /// any transport failure or SOAP fault.
    pub fn commit_one(&self, ts: u64) -> Result<(), String> {
        let ts = ts.to_string();
        let sentinel = QID_TS_SENTINEL.to_string();
        for (tpl, label) in self.templates.iter().zip(["call", "prepare", "commit"]) {
            let body = tpl.replace(&sentinel, &ts);
            let resp = self
                .net
                .roundtrip(B_URI, body.as_bytes())
                .map_err(|e| format!("{label}: {e}"))?;
            if resp.windows(5).any(|w| w == b"Fault") {
                return Err(format!(
                    "{label} faulted: {}",
                    String::from_utf8_lossy(&resp)
                ));
            }
        }
        Ok(())
    }
}

/// `updaters` wire-level drivers hammering one durable participant `b`
/// whose WAL runs real forced fsyncs ([`FsyncPolicy::Always`]) — the
/// workload where group commit either coalesces concurrent forces into
/// one fsync or serializes on the disk.
pub struct UpdateCluster {
    pub net: Arc<SimNetwork>,
    pub drivers: Vec<UpdateDriver>,
    pub b: Arc<Peer>,
    pub wal_path: std::path::PathBuf,
}

impl Drop for UpdateCluster {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.wal_path);
    }
}

pub fn update_cluster(updaters: usize, group_commit: bool) -> UpdateCluster {
    update_cluster_fsync(updaters, group_commit, FsyncPolicy::Always)
}

/// Like [`update_cluster`] with an explicit fsync policy —
/// `FsyncPolicy::Never` measures the CPU ceiling of the commit path,
/// the headroom any durability scheme is chasing.
pub fn update_cluster_fsync(
    updaters: usize,
    group_commit: bool,
    fsync: FsyncPolicy,
) -> UpdateCluster {
    let net = Arc::new(SimNetwork::new(NetProfile::instant()));
    let b = Peer::new(B_URI, EngineKind::Tree);
    b.register_module(U1_MODULE).unwrap();
    b.add_document("log.xml", "<log><e>0</e></log>").unwrap();
    b.set_transport(net.clone());
    net.register(B_URI, b.soap_handler());
    let wal_path = std::env::temp_dir().join(format!(
        "xrpc-u1-{}-g{group_commit}-n{updaters}.wal",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&wal_path);
    b.attach_wal_with(
        &wal_path,
        WalConfig {
            fsync,
            group_commit,
            ..WalConfig::default()
        },
    )
    .unwrap();
    let drivers = (0..updaters)
        .map(|i| UpdateDriver::new(net.clone(), &format!("xrpc://u{i}.example.org")))
        .collect();
    UpdateCluster {
        net,
        drivers,
        b,
        wal_path,
    }
}

/// The participant's durable-commit path at the WAL API: per committed
/// update, the exact forced-append sequence the 2PC participant performs
/// — `Prepared` (carrying the serialized ∆), `Decision`, `Applied` —
/// against a real log with real fsyncs. This is the layer group commit
/// operates on; [`UpdateCluster`] measures the same protocol end to end
/// with the engine and XML codec in the loop.
pub struct CommitPath {
    pub wal: Arc<xrpc_peer::Wal>,
    path: std::path::PathBuf,
}

impl Drop for CommitPath {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

impl CommitPath {
    pub fn open(group_commit: bool) -> CommitPath {
        let path = std::env::temp_dir().join(format!(
            "xrpc-u1-commit-{}-g{group_commit}.wal",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&path);
        let (wal, _) = xrpc_peer::Wal::open_with(
            &path,
            WalConfig {
                fsync: FsyncPolicy::Always,
                group_commit,
                ..WalConfig::default()
            },
        )
        .unwrap();
        CommitPath { wal, path }
    }

    /// One committed update transaction: the ∆ mirrors what `u:bump()`
    /// produces (a `replace value of node` on a three-deep text node).
    pub fn commit_one(&self, host: &str, seq: u64) {
        use xrpc_peer::wal::{NodePath, PathStep, SerializedPrimitive};
        let qid = xrpc_proto::QueryId::new(host, QID_TS_SENTINEL + seq, 3_000);
        let delta = vec![SerializedPrimitive::ReplaceValue {
            target: NodePath {
                doc_uri: "log.xml".into(),
                steps: vec![PathStep::Child(0), PathStep::Child(0), PathStep::Child(0)],
            },
            value: seq.to_string(),
        }];
        let mark = self
            .wal
            .append(&xrpc_peer::WalRecord::Prepared {
                qid: qid.clone(),
                coordinator: A_URI.into(),
                delta,
            })
            .unwrap();
        self.wal
            .append(&xrpc_peer::WalRecord::Decision {
                qid: qid.clone(),
                decision: xrpc_peer::Decision::Committed,
            })
            .unwrap();
        self.wal
            .append(&xrpc_peer::WalRecord::Applied { qid, mark })
            .unwrap();
    }
}

// ---------------------------------------------------------------------
// Counting allocator: allocation-pressure instrumentation for E4
// ---------------------------------------------------------------------

/// A `GlobalAlloc` wrapper over the system allocator that counts
/// allocations and bytes requested. Installed by the `tables` binary
/// (`#[global_allocator]`) so E4 can report allocator pressure per
/// request next to MB/s — the 4 MiB cliff is allocator-bound, so MB/s
/// alone can't tell "got faster" apart from "allocates less".
///
/// `realloc` counts as one allocation of the *new* size: a Vec that
/// doubles its way to N bytes shows up as ~log2(N) allocations and ~2N
/// bytes, which is exactly the waste the sized-arena work removes.
pub struct CountingAlloc;

static ALLOC_COUNT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
static ALLOC_BYTES: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

unsafe impl std::alloc::GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: std::alloc::Layout) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, std::sync::atomic::Ordering::Relaxed);
        std::alloc::System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: std::alloc::Layout) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, std::sync::atomic::Ordering::Relaxed);
        std::alloc::System.alloc_zeroed(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: std::alloc::Layout) {
        std::alloc::System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: std::alloc::Layout, new_size: usize) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, std::sync::atomic::Ordering::Relaxed);
        std::alloc::System.realloc(ptr, layout, new_size)
    }
}

/// Point-in-time allocator counters (monotonic; subtract two snapshots
/// to get the pressure of the code in between).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AllocSnapshot {
    pub allocs: u64,
    pub bytes: u64,
}

/// Read the counters. Always valid to call; stays at zero unless a
/// binary installs [`CountingAlloc`] as its `#[global_allocator]`.
pub fn alloc_snapshot() -> AllocSnapshot {
    AllocSnapshot {
        allocs: ALLOC_COUNT.load(std::sync::atomic::Ordering::Relaxed),
        bytes: ALLOC_BYTES.load(std::sync::atomic::Ordering::Relaxed),
    }
}

impl AllocSnapshot {
    /// Counters accumulated since `earlier`.
    pub fn since(self, earlier: AllocSnapshot) -> AllocSnapshot {
        AllocSnapshot {
            allocs: self.allocs.saturating_sub(earlier.allocs),
            bytes: self.bytes.saturating_sub(earlier.bytes),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn echo_cluster_runs_both_modes() {
        for (bulk, expected_requests) in [(true, 1u64), (false, 4u64)] {
            let c = echo_cluster(NetProfile::instant(), bulk, true);
            let (_, res) = time_query(&c.a, &echo_query(4));
            assert!(res.is_empty());
            assert_eq!(
                c.b.stats
                    .requests_handled
                    .load(std::sync::atomic::Ordering::Relaxed),
                expected_requests
            );
        }
    }

    #[test]
    fn wrapper_cluster_get_person() {
        let c = wrapper_cluster(50);
        let (_, res) = time_query(&c.a, &get_person_query(10, 50));
        assert_eq!(res.len(), 10);
        assert_eq!(c.wrapper.phases().requests, 1);
    }

    #[test]
    fn strategy_cluster_all_strategies() {
        let params = xmark::XmarkParams {
            persons: 20,
            closed_auctions: 60,
            matches: 4,
            padding_words: 4,
            seed: 3,
        };
        for s in distq::Strategy::ALL {
            let c = strategy_cluster(&params, NetProfile::instant());
            let (_, res) = time_query(&c.a, &s.query(B_URI, A_URI));
            let n = res
                .iter()
                .filter(|i| matches!(i, xdm::Item::Node(h) if h.name().is_some_and(|q| q.local == "result")))
                .count();
            assert_eq!(n, 4, "{}", s.label());
            // timing transport observed traffic for the XRPC strategies
            let blocked = c.timing.take_blocked();
            if s != distq::Strategy::DataShipping {
                assert!(blocked >= Duration::ZERO);
            }
        }
    }

    #[test]
    fn compile_heavy_query_parses_and_is_distinct_per_tag() {
        let q0 = compile_heavy_query(50, 0);
        let q1 = compile_heavy_query(50, 1);
        assert_ne!(q0, q1);
        let p = Peer::new("xrpc://c1.example.org", EngineKind::Tree);
        let r = p.execute(&q0).unwrap();
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn bulk_person_cluster_serves_bulk_get_person() {
        let c = bulk_person_cluster(20, NetProfile::instant());
        let (_, res) = time_query(&c.a, &get_person_query(10, 20));
        assert_eq!(res.len(), 10);
        // loop-lifted: one bulk request carried all ten calls
        assert_eq!(
            c.b.stats
                .requests_handled
                .load(std::sync::atomic::Ordering::Relaxed),
            1
        );
    }

    #[test]
    fn throughput_cluster_both_directions() {
        let c = throughput_cluster(64 * 1024);
        let (_, res) = time_query(&c.a, &request_heavy_query());
        assert!(res.items()[0].string_value().parse::<u64>().unwrap() > 100);
        let (_, res2) = time_query(&c.a, &response_heavy_query());
        assert!(res2.items()[0].string_value().parse::<u64>().unwrap() > 100);
        let m = c.net.metrics.snapshot();
        assert!(m.bytes_sent > 64 * 1024, "request payload shipped");
        assert!(m.bytes_received > 64 * 1024, "response payload shipped");
    }
}
