//! Regenerate every evaluation artifact of the paper:
//!
//! ```text
//! tables table2        — Table 2: bulk vs one-at-a-time × function cache
//! tables table3        — Table 3: wrapper (Saxon-role) phase latencies
//! tables table4        — Table 4: the four Q7 strategies
//! tables throughput    — §3.3 text: request/response payload MB/s (alias: e4)
//! tables ablation-latency    — A1: bulk advantage across network profiles (alias: a1)
//! tables ablation-isolation  — A2: isolation level overhead
//! tables u1            — U1: durable update throughput, WAL group commit on/off
//! tables c1            — C1: plan-cache warm path + adaptive bulk sizing (alias: compile-cache)
//! tables s1            — S1: concurrent-client swarm, reactor vs threaded (alias: swarm)
//! tables r1            — R1: deadline/cancellation latency + wasted-work reduction (alias: cancellation)
//! tables p1            — P1: query-profiler overhead, off vs sampled vs full (alias: profile-overhead)
//! tables all           — everything above except s1 (the swarm wants the machine to itself)
//! ```
//!
//! Numbers are wall-clock milliseconds on this machine; compare *shapes*
//! with the paper (EXPERIMENTS.md records both).
//!
//! `e4`, `a1`, `u1`, `c1`, `s1` and `r1` also write machine-readable
//! `BENCH_E4.json` / `BENCH_A1.json` / `BENCH_U1.json` / `BENCH_C1.json`
//! / `BENCH_S1.json` / `BENCH_R1.json` into the current directory, so the
//! perf trajectory is tracked across PRs instead of living only in
//! prose. `--quick` trims the sweeps to their cheap points (a
//! seconds-scale CI smoke run); for `s1` it additionally *asserts* that
//! the reactor sheds nothing at the smoke scale (exit 4 otherwise), for
//! `c1` that the warm plan-cache hit rate stays ≥ 95% (exit 5
//! otherwise), for `r1` that cancellation p99 stays under 250 ms
//! with zero leaked worker threads (exit 6 otherwise), and for `p1` that
//! explicit `xrpc:profile "off"` costs ≤ 1%, sampled profiling ≤ 5%, and
//! that one slow query lands in the slow-query log exactly once (exit 7
//! otherwise), so CI guards the admission, compile-once, cancellation
//! and profiling paths, not just the numbers.
//!
//! Every JSON artifact shares one envelope (`schema_version` 2): the
//! experiment id/title, quick flag, ISO-8601 UTC generation time, the
//! building git commit and the host's logical CPU count, so artifacts
//! from different PRs and machines are comparable without guesswork.

use std::time::Duration;
use xrpc_bench::*;
use xrpc_net::NetProfile;

/// Count allocations/bytes so E4 can report allocator pressure per
/// request next to MB/s (the 4 MiB cliff was allocator-bound).
#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check_cliff = args.iter().any(|a| a == "--check-cliff");
    let cmd = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "all".to_string());
    match cmd.as_str() {
        "table2" => table2(),
        "table3" => table3(),
        "table4" => table4(),
        "throughput" | "e4" => throughput(quick, check_cliff),
        "alloc-probe" => alloc_probe(),
        "ablation-latency" | "a1" => ablation_latency(quick),
        "ablation-isolation" => ablation_isolation(),
        "u1" => update_throughput(quick),
        "c1" | "compile-cache" => compile_cache(quick),
        "s1" | "swarm" => swarm(quick),
        "r1" | "cancellation" => cancellation(quick),
        "p1" | "profile-overhead" => profile_overhead(quick),
        "all" => {
            table2();
            table3();
            table4();
            throughput(quick, check_cliff);
            ablation_latency(quick);
            ablation_isolation();
            update_throughput(quick);
            compile_cache(quick);
            profile_overhead(quick);
        }
        other => {
            eprintln!("unknown table `{other}`");
            std::process::exit(2);
        }
    }
}

/// The git commit the artifact was built from, or "unknown" outside a
/// checkout (e.g. a source tarball).
fn git_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// ISO-8601 UTC wall-clock time, hand-rolled from the epoch (no chrono in
/// the workspace). Civil-from-days per Howard Hinnant's algorithm.
fn utc_now_iso8601() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let days = (secs / 86_400) as i64;
    let rem = secs % 86_400;
    let (hh, mm, ss) = (rem / 3600, (rem % 3600) / 60, rem % 60);
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}T{hh:02}:{mm:02}:{ss:02}Z")
}

/// Hand-rolled JSON writer (the workspace deliberately has no serde):
/// rows are emitted as an array of flat objects with numeric values,
/// under a shared provenance envelope (see the module docs).
fn write_json(path: &str, experiment: &str, title: &str, quick: bool, rows: &[Vec<(&str, f64)>]) {
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(0);
    let mut out = String::with_capacity(1024);
    out.push_str("{\n");
    out.push_str("  \"schema_version\": 2,\n");
    out.push_str(&format!("  \"experiment\": \"{experiment}\",\n"));
    out.push_str(&format!("  \"title\": \"{title}\",\n"));
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str(&format!(
        "  \"generated_utc\": \"{}\",\n",
        utc_now_iso8601()
    ));
    out.push_str(&format!("  \"git_commit\": \"{}\",\n", git_commit()));
    out.push_str(&format!("  \"host_cpus\": {cpus},\n"));
    out.push_str("  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let fields: Vec<String> = row
            .iter()
            .map(|(k, v)| format!("\"{k}\": {v:.3}"))
            .collect();
        out.push_str(&format!(
            "    {{{}}}{}\n",
            fields.join(", "),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    match std::fs::write(path, &out) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Quantiles from a one-shot cell are a lie: with a single sample p50
/// and p99 are the same number. Every table that reports latency
/// quantiles funnels its sample count through here so a degenerate cell
/// is flagged instead of silently published.
fn warn_samples(cell: &str, n: u64) {
    if n < 20 {
        println!("warning: {cell}: only {n} latency sample(s) — p50/p99 are unreliable below 20");
    }
}

/// S1: the concurrent-client swarm — the reactor's headline experiment.
/// Closed-loop keep-alive clients (one in-flight request each) against
/// a live peer, reactor vs the thread-per-connection baseline. The
/// baseline keeps the pre-reactor admission story: a hard 1024-
/// connection cap that turns every client beyond it into a 503/retry
/// loop, while the reactor admits the whole swarm on a fixed worker
/// pool.
fn swarm(quick: bool) {
    use xrpc_bench::swarm::run_swarm_cell;
    use xrpc_net::http::ServerModel;
    use xrpc_net::poll::raise_nofile_limit;

    const THREADED_CAP: usize = 1024;
    let nofile = raise_nofile_limit();
    // one fd at the driver + one at the server per client, plus slack
    // for the workspace's own files/sockets
    let max_clients = (nofile.saturating_sub(512) / 2) as usize;
    let levels: Vec<usize> = if quick {
        vec![100, 500]
    } else {
        vec![1000, 5000, 10000]
    }
    .into_iter()
    .map(|n| n.min(max_clients))
    .collect();
    let duration = Duration::from_millis(if quick { 2000 } else { 10000 });
    println!("== S1: client swarm, reactor vs thread-per-connection (cap {THREADED_CAP}) ==");
    println!("nofile limit {nofile} → at most {max_clients} in-process clients");
    println!(
        "{:<10} {:>8} {:>10} {:>10} {:>10} {:>10} {:>8} {:>10}",
        "model", "clients", "req/s", "p50 ms", "p99 ms", "shed rate", "errors", "srv sheds"
    );
    let mut rows = Vec::new();
    let mut reactor_sheds = 0u64;
    for model in [ServerModel::Reactor, ServerModel::Threaded] {
        for &clients in &levels {
            let cell = run_swarm_cell(model, clients, duration, THREADED_CAP);
            let r = &cell.report;
            let (p50, p99) = r.quantiles_ms();
            let label = match model {
                ServerModel::Reactor => "reactor",
                ServerModel::Threaded => "threaded",
            };
            warn_samples(
                &format!("S1 {label} {clients}"),
                r.latencies_ms.len() as u64,
            );
            println!(
                "{:<10} {:>8} {:>10.0} {:>10.2} {:>10.2} {:>9.2}% {:>8} {:>10}",
                label,
                clients,
                r.req_per_s(),
                p50,
                p99,
                r.shed_rate() * 100.0,
                r.errors,
                cell.server.sheds
            );
            if model == ServerModel::Reactor {
                reactor_sheds += r.shed + cell.server.sheds;
            }
            rows.push(vec![
                ("reactor", (model == ServerModel::Reactor) as u64 as f64),
                ("clients", clients as f64),
                ("req_per_s", r.req_per_s()),
                ("p50_ms", p50),
                ("p99_ms", p99),
                ("shed_rate", r.shed_rate()),
                ("errors", r.errors as f64),
                ("server_sheds", cell.server.sheds as f64),
                ("samples", r.latencies_ms.len() as f64),
            ]);
        }
    }
    write_json(
        "BENCH_S1.json",
        "S1",
        "concurrent keep-alive client swarm: reactor vs thread-per-connection",
        quick,
        &rows,
    );
    if quick && reactor_sheds > 0 {
        eprintln!(
            "S1 quick FAILED: reactor shed {reactor_sheds} request(s) at smoke scale (expected 0)"
        );
        std::process::exit(4);
    }
    println!();
}

/// R1: deadline enforcement under load. Phase one measures the latency
/// from a query's deadline passing to the evaluator actually aborting it
/// (`elapsed − budget` of spinning queries with a 1 s `xrpc:timeout`),
/// concurrently so the checkpoints compete for CPU like production
/// would. Phase two is a client-timeout storm: the same slow call served
/// with no budget (the pre-deadline world — the server burns the full
/// evaluation for clients that already gave up), with a budget exhausted
/// on arrival, and with a budget that dies mid-evaluation; the ratio of
/// server wall-clock is the wasted-work reduction.
fn cancellation(quick: bool) {
    use std::time::Instant;
    use xrpc_peer::{EngineKind, Peer};

    // the inner range is kept small: sequence materialization is a
    // checkpoint-free block, so its size bounds the best possible
    // cancellation latency
    const SPIN_1S: &str = r#"declare option xrpc:timeout "1";
        count(for $i in (1 to 1000000)
              for $j in (1 to 50000)
              where $i + $j lt 0 return 1)"#;
    const SLOW_MODULE: &str = r#"
        module namespace r = "r1";
        declare function r:slow()
        { count(for $i in (1 to 2000000) where $i lt 0 return 1) };
    "#;

    /// Linux thread count of this process (0 if unreadable): the leak
    /// gate — every cancelled query's worker must be back in the pool.
    fn thread_count() -> i64 {
        std::fs::read_to_string("/proc/self/status")
            .ok()
            .and_then(|s| {
                s.lines()
                    .find(|l| l.starts_with("Threads:"))
                    .and_then(|l| l.split_whitespace().nth(1))
                    .and_then(|n| n.parse().ok())
            })
            .unwrap_or(0)
    }

    println!("== R1: deadline & cooperative cancellation ==");
    let peer = Peer::new("xrpc://bench", EngineKind::Tree);
    let threads_before = thread_count();

    // Phase one: concurrent spinning queries, each with a 1 s budget.
    let waves = 5usize;
    let conc = if quick { 4 } else { 8 };
    let mut lat_ms: Vec<f64> = Vec::with_capacity(waves * conc);
    for _ in 0..waves {
        let handles: Vec<_> = (0..conc)
            .map(|_| {
                let p = peer.clone();
                std::thread::spawn(move || {
                    let t0 = Instant::now();
                    let err = p.execute(SPIN_1S).unwrap_err();
                    assert_eq!(err.code, "XRPC0004", "{err}");
                    t0.elapsed()
                })
            })
            .collect();
        for h in handles {
            let elapsed = h.join().unwrap();
            lat_ms.push((ms(elapsed) - 1000.0).max(0.0));
        }
    }
    lat_ms.sort_by(f64::total_cmp);
    let q = |p: f64| lat_ms[((lat_ms.len() - 1) as f64 * p) as usize];
    let (p50, p99) = (q(0.50), q(0.99));
    warn_samples("R1 cancel latency", lat_ms.len() as u64);

    // Workers freed: plain queries must flow immediately after the storm
    // of cancellations, and no thread may have leaked.
    let t0 = Instant::now();
    for _ in 0..20 {
        peer.execute("1 + 1").unwrap();
    }
    let drain = t0.elapsed();
    let leaked = (thread_count() - threads_before).max(0);
    println!(
        "cancellation latency over {} samples: p50 {:.1} ms, p99 {:.1} ms; post-cancel drain {:.1} ms; leaked threads {}",
        lat_ms.len(), p50, p99, ms(drain), leaked
    );

    // Phase two: the client-timeout storm against a slow function.
    let server = Peer::new("xrpc://server", EngineKind::Tree);
    server.register_module(SLOW_MODULE).unwrap();
    let storm_calls = if quick { 6 } else { 24 };
    let storm = |budget: Option<u64>| -> Duration {
        let mut req = xrpc_proto::XrpcRequest::new("r1", "slow", 0);
        req.budget_millis = budget;
        req.push_call(vec![]);
        let xml = req.to_xml().unwrap();
        let t0 = Instant::now();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let server = &server;
                let xml = &xml;
                s.spawn(move || {
                    for _ in 0..(storm_calls / 4).max(1) {
                        let _ = server.handle_soap(xml.as_bytes());
                    }
                });
            }
        });
        t0.elapsed()
    };
    // calibrate: one full evaluation, uncancelled
    let t_slow = {
        let mut req = xrpc_proto::XrpcRequest::new("r1", "slow", 0);
        req.push_call(vec![]);
        let xml = req.to_xml().unwrap();
        let t0 = Instant::now();
        let _ = server.handle_soap(xml.as_bytes());
        t0.elapsed()
    };
    let t_baseline = storm(None);
    let t_arrival = storm(Some(0));
    let t_mideval = storm(Some(30));
    let reduction = |t: Duration| 1.0 - ms(t) / ms(t_baseline).max(1e-9);
    println!(
        "storm of {storm_calls} calls (one slow call ≈ {:.0} ms): no budget {:.0} ms, exhausted-at-arrival {:.0} ms ({:.0}% less work), dies-mid-eval {:.0} ms ({:.0}% less work)",
        ms(t_slow), ms(t_baseline), ms(t_arrival), reduction(t_arrival) * 100.0,
        ms(t_mideval), reduction(t_mideval) * 100.0,
    );

    write_json(
        "BENCH_R1.json",
        "R1",
        "deadline cancellation latency and client-timeout-storm wasted-work reduction",
        quick,
        &[
            vec![
                ("cancel_p50_ms", p50),
                ("cancel_p99_ms", p99),
                ("samples", lat_ms.len() as f64),
                ("post_cancel_drain_ms", ms(drain)),
                ("leaked_threads", leaked as f64),
            ],
            vec![
                ("slow_call_ms", ms(t_slow)),
                ("storm_calls", storm_calls as f64),
                ("storm_no_budget_ms", ms(t_baseline)),
                ("storm_arrival_expired_ms", ms(t_arrival)),
                ("storm_mid_eval_ms", ms(t_mideval)),
                ("reduction_arrival", reduction(t_arrival)),
                ("reduction_mid_eval", reduction(t_mideval)),
            ],
        ],
    );
    if quick {
        let mut failed = false;
        if p99 >= 250.0 {
            eprintln!("R1 quick FAILED: cancellation p99 {p99:.1} ms ≥ 250 ms");
            failed = true;
        }
        if leaked > 0 {
            eprintln!("R1 quick FAILED: {leaked} worker thread(s) leaked past cancellation");
            failed = true;
        }
        if failed {
            std::process::exit(6);
        }
    }
    println!();
}

/// P1: what does the distributed profiler cost? The same repeated-shape
/// local workload (a FLWOR over path steps — thousands of operator
/// guards per query) run four ways: with no `xrpc:profile` option at
/// all (the baseline every query pays), with the option explicitly
/// "off", sampled at the default stride, and "full" (every guard reads
/// the clock). Interleaved rounds with min-of-rounds per mode, because
/// a percent-level comparison needs the noise floor, not the mean.
/// `--quick` gates: "off" ≤ 1% over baseline, sampled ≤ 5%, and a slow
/// query must land in the slow-query log exactly once (exit 7).
fn profile_overhead(quick: bool) {
    use std::time::Instant;
    use xrpc_peer::{EngineKind, Peer};

    println!("== P1: profiler overhead — off vs sampled vs full ==");
    let items = if quick { 400 } else { 2000 };
    let mut xml = String::with_capacity(items * 32);
    xml.push_str("<data>");
    for i in 0..items {
        xml.push_str(&format!("<item><id>{i}</id></item>"));
    }
    xml.push_str("</data>");

    const WORKLOAD: &str =
        r#"count(for $i in doc("data.xml")//item where $i/id mod 2 = 0 return $i/id)"#;
    let mk_query = |mode: Option<&str>| match mode {
        None => WORKLOAD.to_string(),
        Some(m) => format!("declare option xrpc:profile \"{m}\";\n{WORKLOAD}"),
    };

    let peer = Peer::new("xrpc://p1.example.org", EngineKind::Tree);
    peer.add_document("data.xml", &xml).unwrap();
    // keep the slow-query log out of the measurement
    peer.slowlog.set_threshold_millis(u64::MAX);

    let iters = if quick { 150 } else { 600 };
    let rounds = 8;
    let modes: [(&str, Option<&str>); 4] = [
        ("baseline", None),
        ("off", Some("off")),
        ("sampled", Some("on")),
        ("full", Some("full")),
    ];
    let mut best = [f64::INFINITY; 4];
    // Rotate the measurement order every round (and throw the first
    // round away): a fixed order hands whichever mode runs first the
    // still-boosting CPU and reads as phantom overhead on the others.
    for round in 0..rounds + 1 {
        for k in 0..modes.len() {
            let slot = (k + round) % modes.len();
            let q = mk_query(modes[slot].1);
            let _ = peer.execute(&q).unwrap(); // warm the plan cache
            let t0 = Instant::now();
            for _ in 0..iters {
                let _ = peer.execute(&q).unwrap();
            }
            if round > 0 {
                best[slot] = best[slot].min(ms(t0.elapsed()) / iters as f64);
            }
        }
    }
    let overhead = |slot: usize| (best[slot] / best[0].max(1e-9) - 1.0) * 100.0;
    println!("{:<10} {:>12} {:>10}", "mode", "ms/query", "overhead");
    let mut rows = Vec::new();
    for (slot, (label, _)) in modes.iter().enumerate() {
        println!("{label:<10} {:>12.4} {:>9.1}%", best[slot], overhead(slot));
        rows.push(vec![
            ("mode", slot as f64),
            ("ms_per_query", best[slot]),
            ("overhead_pct", overhead(slot)),
            ("iters_per_round", iters as f64),
            ("rounds", rounds as f64),
        ]);
    }

    // Slow-query log exactly-once: one query over the threshold must
    // produce one entry; fast queries around it must produce none.
    peer.slowlog.set_threshold_millis(20);
    let slow = "count(for $i in 1 to 3000000 return $i * 2)";
    let logged_before = peer.slowlog.entries_logged();
    let t0 = Instant::now();
    peer.execute(slow).unwrap();
    let slow_ms = ms(t0.elapsed());
    for _ in 0..5 {
        peer.execute("1 + 1").unwrap();
    }
    let slow_entries = peer.slowlog.entries_logged() - logged_before;
    println!(
        "slowlog: {slow_entries} entr{} for one {slow_ms:.0} ms query over a 20 ms threshold",
        if slow_entries == 1 { "y" } else { "ies" }
    );
    rows.push(vec![
        ("mode", -1.0),
        ("slowlog_entries", slow_entries as f64),
        ("slow_query_ms", slow_ms),
    ]);

    write_json(
        "BENCH_P1.json",
        "P1",
        "query-profiler overhead: off vs sampled vs full + slowlog exactly-once",
        quick,
        &rows,
    );
    if quick {
        let mut failed = false;
        if overhead(1) > 1.0 {
            eprintln!(
                "P1 quick FAILED: explicit `xrpc:profile \"off\"` costs {:.2}% > 1%",
                overhead(1)
            );
            failed = true;
        }
        if overhead(2) > 5.0 {
            eprintln!(
                "P1 quick FAILED: sampled profiling costs {:.2}% > 5%",
                overhead(2)
            );
            failed = true;
        }
        if slow_entries != 1 {
            eprintln!(
                "P1 quick FAILED: expected exactly one slow-query log entry, got {slow_entries}"
            );
            failed = true;
        }
        if failed {
            std::process::exit(7);
        }
        println!(
            "P1 quick: off {:+.2}%, sampled {:+.2}%, full {:+.2}% (gates: off ≤ 1%, sampled ≤ 5%)",
            overhead(1),
            overhead(2),
            overhead(3)
        );
    }
    println!();
}

/// Table 2: XRPC performance (msec), loop-lifted vs one-at-a-time,
/// function cache vs no function cache, $x ∈ {1, 1000}.
fn table2() {
    println!("== Table 2: XRPC performance (msec): loop-lifted vs one-at-a-time; function cache vs none ==");
    println!(
        "{:<14} {:>14} {:>14} {:>14} {:>14}",
        "", "nocache x=1", "nocache x=1000", "cache x=1", "cache x=1000"
    );
    for (label, bulk) in [("one-at-a-time", false), ("bulk", true)] {
        let mut cells = Vec::new();
        for cache in [false, true] {
            for x in [1usize, 1000] {
                let c = echo_cluster(NetProfile::lan(), bulk, cache);
                // warm the connection path once without counting it
                let q1 = echo_query(1);
                let _ = time_query(&c.a, &q1);
                if cache {
                    // cached half: the module is already prepared
                } else {
                    c.b.function_cache.set_enabled(false);
                }
                let (d, _) = time_query(&c.a, &echo_query(x));
                cells.push(ms(d));
            }
        }
        // reorder: printed columns are nocache(1,1000), cache(1,1000)
        println!(
            "{:<14} {:>14.1} {:>14.1} {:>14.1} {:>14.1}",
            label, cells[0], cells[1], cells[2], cells[3]
        );
    }
    println!("paper (2 GHz Athlon64, 1Gb/s): one-at-a-time 133 / 2696 / 2.6 / 2696 ; bulk 130 / 134 / 2.7 / 4");
    // The paper's no-cache penalty is MonetDB's ~130 ms module translation;
    // our translator is a hand-written parser, so the same *shape* exists
    // at a far smaller magnitude. Report it so the columns make sense.
    let t0 = std::time::Instant::now();
    let n = 100;
    for _ in 0..n {
        let _ = xqast::parse_library_module(xmark::test_module()).unwrap();
    }
    println!(
        "note: our per-request module translation costs {:.3} ms (paper's was ~130 ms)",
        ms(t0.elapsed()) / n as f64
    );
    println!();
}

/// Table 3: Saxon-via-wrapper latency with phase split.
fn table3() {
    println!("== Table 3: wrapper latency (msec): total / compile / treebuild / exec ==");
    let persons = 20000;
    println!(
        "{:<22} {:>10} {:>10} {:>10} {:>10}",
        "", "total", "compile", "treebuild", "exec"
    );
    for (label, query, x) in [
        ("echoVoid x=1", wrapper_echo_query(1), 1),
        ("echoVoid x=1000", wrapper_echo_query(1000), 1000),
        ("getPerson x=1", get_person_query(1, persons), 1),
        ("getPerson x=1000", get_person_query(1000, persons), 1000),
    ] {
        let c = wrapper_cluster(persons);
        let _ = x;
        let (total, _) = time_query(&c.a, &query);
        let ph = c.wrapper.take_phases();
        println!(
            "{:<22} {:>10.1} {:>10.1} {:>10.1} {:>10.1}",
            label,
            ms(total),
            ms(ph.compile),
            ms(ph.treebuild),
            ms(ph.exec)
        );
    }
    println!("paper (Saxon-B 8.7): echoVoid 275/178/4.6/92 and 590/178/86/325 ; getPerson 4276/185/1956/2134 and 8167/185/1973/6010");
    println!();
}

/// Table 4: execution time of Q7 under the four distribution strategies.
fn table4() {
    println!("== Table 4: Q7 strategies (msec): total / peer-A / peer-B(incl. network) ==");
    let params = xmark::XmarkParams {
        persons: 250,
        closed_auctions: 4875,
        matches: 6,
        padding_words: 60,
        seed: 42,
    };
    println!(
        "{:<24} {:>10} {:>12} {:>18} {:>9}",
        "", "total", "A (rel)", "B (wrapper+net)", "results"
    );
    for s in distq::Strategy::ALL {
        let c = strategy_cluster(&params, NetProfile::lan());
        // peer A acts as the distributed optimizer's target: invariant
        // hoisting + duplicate-call collapsing on (see EXPERIMENTS.md)
        c.a.set_rpc_optimize(true);
        let q = s.query(B_URI, A_URI);
        let (total, res) = time_query(&c.a, &q);
        let blocked = c.timing.take_blocked();
        let n = res
            .iter()
            .filter(|i| matches!(i, xdm::Item::Node(h) if h.name().is_some_and(|q| q.local == "result")))
            .count();
        println!(
            "{:<24} {:>10.0} {:>12.0} {:>18.0} {:>9}",
            s.label(),
            ms(total),
            ms(total - blocked),
            ms(blocked),
            n
        );
    }
    println!("paper: data shipping 28122/16457/11665 ; push-down 25799/2961/22838 ; relocation 53184/69/53115 ; semi-join 10278/118/10160");
    println!();
}

/// §3.3 throughput (E4): request- and response-heavy payload scaling,
/// with allocator pressure per request (allocations and MiB allocated —
/// the counting allocator makes "allocates less" visible next to MB/s).
/// Debugging aid, not part of `all`: break allocator pressure down by
/// message-path stage for a 4 MiB payload.
fn alloc_probe() {
    let bytes = 4096 * 1024;
    let xml = xmark::payload_xml(bytes);
    let probe = |label: &str, f: &mut dyn FnMut()| {
        let a0 = alloc_snapshot();
        f();
        let d = alloc_snapshot().since(a0);
        println!(
            "{label:<28} {:>12} allocs {:>10.1} MiB",
            d.allocs,
            d.bytes as f64 / (1024.0 * 1024.0)
        );
    };
    probe("parse payload", &mut || {
        let d = xmldom::parse(&xml).unwrap();
        std::hint::black_box(&d);
    });
    let doc = xmldom::parse(&xml).unwrap();
    probe("serialize payload", &mut || {
        let s = xmldom::serialize_document(&doc, &xmldom::SerializeOpts::default());
        std::hint::black_box(&s);
    });
    let doc2 = std::sync::Arc::new(xmldom::parse(&xml).unwrap());
    let payload_el = doc2.children(doc2.root())[0];
    let chunks: Vec<xdm::Item> = doc2
        .children(payload_el)
        .iter()
        .map(|&c| xdm::Item::Node(xmldom::NodeHandle::new(doc2.clone(), c)))
        .collect();
    let mut req = xrpc_proto::XrpcRequest::new("urn:m", "f", 1);
    req.push_call(vec![xdm::Sequence::from_items(chunks)]);
    probe("serialize request message", &mut || {
        let s = req.to_xml().unwrap();
        std::hint::black_box(&s);
    });
    let req_xml = req.to_xml().unwrap();
    probe("parse request message", &mut || {
        let m = xrpc_proto::parse_message(&req_xml).unwrap();
        std::hint::black_box(&m);
    });
    let c = throughput_cluster(bytes);
    probe("request-heavy round trip", &mut || {
        let _ = time_query(&c.a, &request_heavy_query());
    });
    let c2 = throughput_cluster(bytes);
    probe("response-heavy round trip", &mut || {
        let _ = time_query(&c2.a, &response_heavy_query());
    });
}

fn throughput(quick: bool, check_cliff: bool) {
    println!("== Throughput (§3.3 text, E4): payload scaling, MB/s + allocator pressure ==");
    println!(
        "{:<12} {:>14} {:>14} {:>12} {:>14}",
        "payload", "request MB/s", "response MB/s", "req allocs", "req MiB alloc"
    );
    let payloads: &[usize] = if quick {
        // quick keeps the 1 MiB and 4 MiB points so --check-cliff can
        // guard the large-message regression in CI
        &[64, 1024, 4096]
    } else {
        &[64, 256, 1024, 4096, 16384]
    };
    let mut rows = Vec::new();
    for &kb in payloads {
        let bytes = kb * 1024;
        // every cell runs `iters` round trips: MB/s is total bytes over
        // total time, the latency histograms accumulate one sample per
        // trip, and allocator pressure is averaged per request — a
        // single-shot cell gave p50 == p99 by construction
        let iters = if quick { 8 } else { 20 };
        // request-heavy
        let c = throughput_cluster(bytes);
        c.net.metrics.reset();
        let a0 = alloc_snapshot();
        let mut d_req = Duration::ZERO;
        for _ in 0..iters {
            let (d, _) = time_query(&c.a, &request_heavy_query());
            d_req += d;
        }
        let da = alloc_snapshot().since(a0);
        let sent = c.net.metrics.snapshot().bytes_sent;
        let req_lat = c.a.obs.histogram("xrpc_call_latency_micros").snapshot();
        // response-heavy
        let c2 = throughput_cluster(bytes);
        c2.net.metrics.reset();
        let mut d_resp = Duration::ZERO;
        for _ in 0..iters {
            let (d, _) = time_query(&c2.a, &response_heavy_query());
            d_resp += d;
        }
        let recv = c2.net.metrics.snapshot().bytes_received;
        let resp_lat = c2.a.obs.histogram("xrpc_call_latency_micros").snapshot();
        warn_samples(&format!("E4 request {kb} KiB"), req_lat.count);
        warn_samples(&format!("E4 response {kb} KiB"), resp_lat.count);
        let req = mb_per_sec(sent, d_req);
        let resp = mb_per_sec(recv, d_resp);
        let req_allocs = da.allocs as f64 / iters as f64;
        let req_mib_alloc = da.bytes as f64 / (1024.0 * 1024.0) / iters as f64;
        println!(
            "{:<12} {:>14.1} {:>14.1} {:>12.0} {:>14.1}",
            format!("{kb} KiB"),
            req,
            resp,
            req_allocs,
            req_mib_alloc
        );
        rows.push(vec![
            ("payload_kib", kb as f64),
            ("request_mb_per_s", req),
            ("response_mb_per_s", resp),
            ("request_allocs", req_allocs),
            ("request_mib_allocated", req_mib_alloc),
            ("samples", iters as f64),
            // originator-side latency histograms (the same ones /metrics
            // exposes), so the JSON artifact carries quantiles per PR
            ("request_call_p50_micros", req_lat.p50 as f64),
            ("request_call_p99_micros", req_lat.p99 as f64),
            ("response_call_p50_micros", resp_lat.p50 as f64),
            ("response_call_p99_micros", resp_lat.p99 as f64),
            ("request_bytes_sent", sent as f64),
            ("response_bytes_received", recv as f64),
        ]);
    }
    println!("paper: ~8 MB/s requests, ~14 MB/s responses (CPU-bound on 1Gb/s LAN)");
    write_json(
        "BENCH_E4.json",
        "E4",
        "request/response payload throughput (MB/s) + allocator pressure",
        quick,
        &rows,
    );
    if check_cliff {
        check_cliff_guard(&rows);
    }
    println!();
}

/// CI cliff-regression guard: fail if 4 MiB request throughput is more
/// than 3× below the 1 MiB point (2× is the target; 3× leaves headroom
/// for CI noise).
fn check_cliff_guard(rows: &[Vec<(&str, f64)>]) {
    let req_at = |kib: f64| -> Option<f64> {
        rows.iter()
            .find(|r| r.iter().any(|(k, v)| *k == "payload_kib" && *v == kib))
            .and_then(|r| {
                r.iter()
                    .find(|(k, _)| *k == "request_mb_per_s")
                    .map(|(_, v)| *v)
            })
    };
    let (Some(one_mib), Some(four_mib)) = (req_at(1024.0), req_at(4096.0)) else {
        eprintln!("cliff check: 1 MiB / 4 MiB rows missing from the sweep");
        std::process::exit(3);
    };
    let ratio = one_mib / four_mib.max(1e-9);
    println!("cliff check: request 1 MiB = {one_mib:.1} MB/s, 4 MiB = {four_mib:.1} MB/s ({ratio:.2}x gap, limit 3x)");
    if ratio > 3.0 {
        eprintln!("cliff check FAILED: 4 MiB request throughput is {ratio:.2}x below the 1 MiB point (> 3x)");
        std::process::exit(3);
    }
}

/// Ablation A1: where does Bulk RPC win? Sweep the link latency.
fn ablation_latency(quick: bool) {
    println!("== Ablation A1: bulk vs one-at-a-time across link latencies (x=100, msec) ==");
    println!(
        "{:<16} {:>14} {:>10} {:>9}",
        "one-way latency", "one-at-a-time", "bulk", "speedup"
    );
    let latencies: &[f64] = if quick {
        &[0.1, 1.0]
    } else {
        &[0.1, 1.0, 10.0, 50.0]
    };
    let mut rows = Vec::new();
    // the one-at-a-time side makes 100 calls per run (100 latency
    // samples); the bulk side makes *one* call per run, so a single run
    // gave a one-sample histogram with p50 == p99 — repeat it and
    // report the mean query time over the repeats
    let bulk_runs = 20u32;
    for &lat_ms in latencies {
        let profile = NetProfile::with_latency(Duration::from_secs_f64(lat_ms / 1e3));
        let (single, single_lat) = {
            let c = echo_cluster(profile, false, true);
            let (d, _) = time_query(&c.a, &echo_query(100));
            (d, c.a.obs.histogram("xrpc_call_latency_micros").snapshot())
        };
        let (bulk, bulk_lat) = {
            let c = echo_cluster(profile, true, true);
            let mut total = Duration::ZERO;
            for _ in 0..bulk_runs {
                let (d, _) = time_query(&c.a, &echo_query(100));
                total += d;
            }
            (
                total / bulk_runs,
                c.a.obs.histogram("xrpc_call_latency_micros").snapshot(),
            )
        };
        warn_samples(&format!("A1 one-at-a-time {lat_ms} ms"), single_lat.count);
        warn_samples(&format!("A1 bulk {lat_ms} ms"), bulk_lat.count);
        let speedup = ms(single) / ms(bulk).max(0.001);
        println!(
            "{:<16} {:>14.1} {:>10.1} {:>8.1}x",
            format!("{lat_ms} ms"),
            ms(single),
            ms(bulk),
            speedup
        );
        rows.push(vec![
            ("latency_ms", lat_ms),
            ("one_at_a_time_ms", ms(single)),
            ("bulk_ms", ms(bulk)),
            ("speedup", speedup),
            // per-roundtrip quantiles: one-at-a-time pays the link per
            // call (p50 ≈ RTT), bulk amortizes it over the whole batch
            ("one_at_a_time_call_p50_micros", single_lat.p50 as f64),
            ("one_at_a_time_call_p99_micros", single_lat.p99 as f64),
            ("bulk_call_p50_micros", bulk_lat.p50 as f64),
            ("bulk_call_p99_micros", bulk_lat.p99 as f64),
            ("one_at_a_time_samples", single_lat.count as f64),
            ("bulk_samples", bulk_lat.count as f64),
        ]);
    }
    write_json(
        "BENCH_A1.json",
        "A1",
        "bulk vs one-at-a-time across link latencies (x=100, ms)",
        quick,
        &rows,
    );
    println!();
}

/// U1: committed distributed updates per second against one durable
/// participant under `FsyncPolicy::Always`, group commit off vs on,
/// swept over concurrent updaters. Every transaction pays three forced
/// WAL records at the participant; without group commit the disk
/// serializes them, with it concurrent updaters share each fsync.
fn update_throughput(quick: bool) {
    println!("== U1: durable update throughput (fsync=always): group commit off vs on ==");
    let counts: &[usize] = if quick {
        &[1, 8, 16]
    } else {
        &[1, 2, 4, 8, 16]
    };
    let mut rows = Vec::new();
    // committed/s keyed by (group_commit, updaters) for the speedup lines
    let mut per_s_by: std::collections::HashMap<(bool, usize), f64> =
        std::collections::HashMap::new();
    let mut wire_per_s_by: std::collections::HashMap<(bool, usize), f64> =
        std::collections::HashMap::new();

    // --- commit path: the forced-append sequence (Prepared ∆, Decision,
    // Applied) every committed update pays at the participant's WAL —
    // the layer group commit batches, measured without the engine and
    // XML codec competing for the same core ---
    println!("-- commit path (participant's forced WAL sequence per update) --");
    println!(
        "{:<14} {:>9} {:>16} {:>12} {:>12} {:>12}",
        "group commit", "updaters", "committed/s", "p50 ms", "p99 ms", "fsyncs/txn"
    );
    let per_thread = if quick { 250 } else { 600 };
    for group in [false, true] {
        for &n in counts {
            let cp = CommitPath::open(group);
            cp.commit_one("xrpc://warm.example.org", 0);
            let t0 = std::time::Instant::now();
            let mut lat: Vec<f64> = std::thread::scope(|s| {
                let handles: Vec<_> = (0..n)
                    .map(|t| {
                        let cp = &cp;
                        s.spawn(move || {
                            let host = format!("xrpc://u{t}.example.org");
                            let mut v = Vec::with_capacity(per_thread);
                            for i in 0..per_thread {
                                let t0 = std::time::Instant::now();
                                cp.commit_one(&host, 1 + i as u64);
                                v.push(ms(t0.elapsed()));
                            }
                            v
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("updater thread"))
                    .collect()
            });
            let elapsed = t0.elapsed();
            let committed = (n * per_thread) as f64;
            let per_s = committed / elapsed.as_secs_f64().max(1e-9);
            lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let p50 = lat[lat.len() / 2];
            let p99 = lat[((lat.len() as f64 * 0.99) as usize).min(lat.len() - 1)];
            let fsyncs_per_txn = cp.wal.stats().fsyncs as f64 / committed;
            per_s_by.insert((group, n), per_s);
            println!(
                "{:<14} {:>9} {:>16.0} {:>12.3} {:>12.3} {:>12.2}",
                if group { "on" } else { "off" },
                n,
                per_s,
                p50,
                p99,
                fsyncs_per_txn,
            );
            rows.push(vec![
                ("end_to_end", 0.0),
                ("group_commit", group as u64 as f64),
                ("updaters", n as f64),
                ("committed_per_s", per_s),
                ("commit_p50_ms", p50),
                ("commit_p99_ms", p99),
                ("wal_fsyncs_per_txn", fsyncs_per_txn),
            ]);
        }
    }

    // --- end to end: the same protocol through the wire — XML request
    // parsing, XQuery evaluation, 2PC handlers and the WAL all sharing
    // the host CPU ---
    println!("-- end to end (wire-level update transactions) --");
    println!(
        "{:<14} {:>9} {:>16} {:>12} {:>12} {:>12} {:>12}",
        "group commit", "updaters", "committed/s", "p50 ms", "p99 ms", "fsyncs/txn", "prep p50 us"
    );
    let per_thread = if quick { 60 } else { 200 };
    for group in [false, true] {
        for &n in counts {
            let c = update_cluster(n, group);
            // queryID timestamps: unique per (driver host, txn) and
            // recent enough to pass expiry checks at the participant
            let base = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_millis() as u64;
            // warm the module/translation/dispatch path outside the clock
            c.drivers[0].commit_one(base).unwrap();
            let t0 = std::time::Instant::now();
            let mut lat: Vec<f64> = std::thread::scope(|s| {
                let handles: Vec<_> = c
                    .drivers
                    .iter()
                    .map(|d| {
                        s.spawn(move || {
                            let mut v = Vec::with_capacity(per_thread);
                            for i in 0..per_thread {
                                let t = std::time::Instant::now();
                                d.commit_one(base + 1 + i as u64).expect("update commits");
                                v.push(ms(t.elapsed()));
                            }
                            v
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("updater thread"))
                    .collect()
            });
            let elapsed = t0.elapsed();
            let committed = (n * per_thread) as f64;
            // cross-check against the participant's own 2PC accounting:
            // every driver transaction must have actually committed
            assert_eq!(
                c.b.twopc_metrics.snapshot().commits,
                n as u64 * per_thread as u64 + 1,
                "participant disagrees about committed count"
            );
            let per_s = committed / elapsed.as_secs_f64().max(1e-9);
            lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let p50 = lat[lat.len() / 2];
            let p99 = lat[((lat.len() as f64 * 0.99) as usize).min(lat.len() - 1)];
            wire_per_s_by.insert((group, n), per_s);
            let fsyncs_per_txn = c.b.wal().unwrap().stats().fsyncs as f64 / committed;
            let prep = c.b.obs.histogram("xrpc_twopc_prepare_micros").snapshot();
            let commit_us = c.b.obs.histogram("xrpc_twopc_commit_micros").snapshot();
            println!(
                "{:<14} {:>9} {:>16.0} {:>12.3} {:>12.3} {:>12.2} {:>12}",
                if group { "on" } else { "off" },
                n,
                per_s,
                p50,
                p99,
                fsyncs_per_txn,
                prep.p50
            );
            rows.push(vec![
                ("end_to_end", 1.0),
                ("group_commit", group as u64 as f64),
                ("updaters", n as f64),
                ("committed_per_s", per_s),
                ("commit_p50_ms", p50),
                ("commit_p99_ms", p99),
                ("wal_fsyncs_per_txn", fsyncs_per_txn),
                ("participant_prepare_p50_micros", prep.p50 as f64),
                ("participant_commit_p50_micros", commit_us.p50 as f64),
            ]);
        }
    }
    for &n in counts.iter().filter(|&&n| n >= 8) {
        if let (Some(off), Some(on)) = (per_s_by.get(&(false, n)), per_s_by.get(&(true, n))) {
            println!(
                "commit-path group-commit speedup at {n} updaters: {:.2}x (target ≥ 2x)",
                on / off
            );
        }
        if let (Some(off), Some(on)) = (
            wire_per_s_by.get(&(false, n)),
            wire_per_s_by.get(&(true, n)),
        ) {
            println!(
                "end-to-end group-commit speedup at {n} updaters: {:.2}x",
                on / off
            );
        }
    }
    write_json(
        "BENCH_U1.json",
        "U1",
        "durable update throughput (fsync=always), group commit off vs on",
        quick,
        &rows,
    );
    println!();
}

/// C1: prepared queries. Four cells: (a) `prepare()` cold compile vs
/// warm cache hit, (b) repeated-shape execution throughput with the
/// plan cache on vs off (the ≥ 2x warm-path target), (c) the wrapper's
/// generated-query cache over the wire — the paper's Table-3 compile
/// column collapsing to ≈ 0 on warm requests — and (d) the adaptive
/// bulk-sizing controller against the hand-pinned `set_bulk_threads`
/// sweep on the A1 bulk getPerson workload.
fn compile_cache(quick: bool) {
    use std::time::Instant;
    use xrpc_peer::{EngineKind, Peer};

    println!("== C1: prepared queries — plan cache & adaptive bulk sizing ==");
    let mut rows: Vec<Vec<(&str, f64)>> = Vec::new();
    let clauses = 400;

    // -- (a) prepare(): cold compile vs warm cache hit ------------------
    let distinct = if quick { 10 } else { 50 };
    let warm_iters = if quick { 500 } else { 5000 };
    let p = Peer::new("xrpc://c1.example.org", EngineKind::Tree);
    let t0 = Instant::now();
    for i in 0..distinct {
        let _ = p.prepare(&compile_heavy_query(clauses, i as u64)).unwrap();
    }
    let cold_us = t0.elapsed().as_secs_f64() * 1e6 / distinct as f64;
    let q = compile_heavy_query(clauses, 0);
    let t0 = Instant::now();
    for _ in 0..warm_iters {
        let _ = p.prepare(&q).unwrap();
    }
    let warm_us = t0.elapsed().as_secs_f64() * 1e6 / warm_iters as f64;
    println!(
        "prepare ({clauses}-clause query): cold {cold_us:.0} µs, warm {warm_us:.2} µs ({:.0}x)",
        cold_us / warm_us.max(1e-9)
    );
    rows.push(vec![
        ("section", 1.0),
        ("cold_prepare_micros", cold_us),
        ("warm_prepare_micros", warm_us),
        ("prepare_speedup", cold_us / warm_us.max(1e-9)),
    ]);

    // -- (b) repeated-shape execution: plan cache on vs off -------------
    let iters = if quick { 200 } else { 1000 };
    let mut qps = [0.0f64; 2]; // [cache on, cache off]
    let mut peer_hit_rate = 0.0;
    for (slot, cache_on) in [(0usize, true), (1, false)] {
        let p = Peer::new("xrpc://c1.example.org", EngineKind::Tree);
        p.set_plan_cache_enabled(cache_on);
        let q = compile_heavy_query(clauses, 99);
        let _ = p.execute(&q).unwrap(); // warm the path outside the clock
        p.plan_cache.reset_counters();
        let t0 = Instant::now();
        for _ in 0..iters {
            let _ = p.execute(&q).unwrap();
        }
        let v = iters as f64 / t0.elapsed().as_secs_f64().max(1e-9);
        let s = p.plan_cache.stats();
        if cache_on {
            peer_hit_rate = s.hit_rate();
        }
        qps[slot] = v;
        println!(
            "repeated shape, cache {}: {v:.0} queries/s (hit rate {:.1}%)",
            if cache_on { "on " } else { "off" },
            s.hit_rate() * 100.0
        );
        rows.push(vec![
            ("section", 2.0),
            ("cache_on", cache_on as u64 as f64),
            ("queries_per_s", v),
            ("hit_rate", s.hit_rate()),
        ]);
    }
    let warm_speedup = qps[0] / qps[1].max(1e-9);
    println!("warm-path speedup: {warm_speedup:.1}x (target ≥ 2x)");
    rows.push(vec![
        ("section", 2.0),
        ("cache_on", -1.0),
        ("warm_speedup", warm_speedup),
    ]);

    // -- (c) the wrapper's generated-query cache over the wire ----------
    let persons = if quick { 200 } else { 2000 };
    let reqs = if quick { 20 } else { 100 };
    let c = wrapper_cluster(persons);
    let wq = get_person_query(8, persons);
    let _ = time_query(&c.a, &wq); // cold request compiles the generated query
    let cold_ph = c.wrapper.take_phases();
    c.wrapper.plan_cache.reset_counters();
    let t0 = Instant::now();
    for _ in 0..reqs {
        let _ = time_query(&c.a, &wq);
    }
    let warm_elapsed = t0.elapsed();
    let ph = c.wrapper.take_phases();
    let ws = c.wrapper.plan_cache.stats();
    println!(
        "wrapper: cold compile {:.3} ms; {reqs} warm requests — {} cache hits, \
         compile {:.3} ms total, lookup {:.3} ms total (hit rate {:.1}%)",
        ms(cold_ph.compile),
        ph.cache_hits,
        ms(ph.compile),
        ms(ph.cache_lookup),
        ws.hit_rate() * 100.0
    );
    rows.push(vec![
        ("section", 3.0),
        ("requests", reqs as f64),
        ("cold_compile_ms", ms(cold_ph.compile)),
        ("warm_compile_ms_total", ms(ph.compile)),
        ("cache_lookup_ms_total", ms(ph.cache_lookup)),
        ("cache_hits", ph.cache_hits as f64),
        ("hit_rate", ws.hit_rate()),
        ("mean_request_ms", ms(warm_elapsed) / reqs as f64),
    ]);

    // -- (d) adaptive bulk sizing vs the pinned sweep -------------------
    println!("-- adaptive vs pinned set_bulk_threads (A1 bulk getPerson) --");
    println!(
        "{:<10} {:>10} {:>16}",
        "threads", "mean ms", "chosen threads"
    );
    let persons_d = if quick { 100 } else { 500 };
    let x = if quick { 100 } else { 400 };
    let runs = if quick { 3 } else { 10 };
    let mut best_static = f64::INFINITY;
    let mut adaptive_ms = f64::NAN;
    for pin in [0usize, 1, 2, 4, 8] {
        let c = bulk_person_cluster(persons_d, NetProfile::lan());
        if pin > 0 {
            c.b.set_bulk_threads(pin);
        }
        let q = get_person_query(x, persons_d);
        let _ = time_query(&c.a, &q); // warm modules, plans and the connection
        let mut total = Duration::ZERO;
        for _ in 0..runs {
            total += time_query(&c.a, &q).0;
        }
        let mean = ms(total) / runs as f64;
        let snap = c.b.adaptive.snapshot();
        let label = if pin == 0 {
            "adaptive".to_string()
        } else {
            format!("pin {pin}")
        };
        println!("{label:<10} {mean:>10.1} {:>16}", snap.last_threads);
        if pin == 0 {
            adaptive_ms = mean;
        } else {
            best_static = best_static.min(mean);
        }
        rows.push(vec![
            ("section", 4.0),
            ("pinned", pin as f64),
            ("mean_ms", mean),
            ("chosen_threads", snap.last_threads as f64),
            ("calls_per_batch", x as f64),
        ]);
    }
    println!(
        "adaptive {adaptive_ms:.1} ms vs best static {best_static:.1} ms ({:.2}x of best)",
        adaptive_ms / best_static.max(1e-9)
    );
    rows.push(vec![
        ("section", 4.0),
        ("pinned", -1.0),
        ("adaptive_ms", adaptive_ms),
        ("best_static_ms", best_static),
        (
            "adaptive_vs_best_static",
            adaptive_ms / best_static.max(1e-9),
        ),
    ]);

    write_json(
        "BENCH_C1.json",
        "C1",
        "prepared queries: plan-cache warm path + adaptive bulk sizing",
        quick,
        &rows,
    );
    if quick {
        let worst = peer_hit_rate.min(ws.hit_rate());
        if worst < 0.95 {
            eprintln!(
                "C1 quick FAILED: warm plan-cache hit rate {:.1}% < 95%",
                worst * 100.0
            );
            std::process::exit(5);
        }
        println!(
            "C1 quick: warm hit rates peer {:.1}% / wrapper {:.1}% (gate ≥ 95%)",
            peer_hit_rate * 100.0,
            ws.hit_rate() * 100.0
        );
    }
    println!();
}

/// Ablation A2: cost of repeatable-read isolation (snapshot pinning +
/// end-of-query release) against isolation "none".
fn ablation_isolation() {
    println!("== Ablation A2: isolation overhead (tree engine, 20 calls/query, msec/query) ==");
    let mk_query = |iso: &str| {
        format!(
            r#"declare option xrpc:isolation "{iso}";
import module namespace t = "test";
for $i in (1 to 20) return execute at {{"{B_URI}"}} {{t:echoVoid()}}"#
        )
    };
    for iso in ["none", "repeatable"] {
        let c = echo_cluster(NetProfile::lan(), false, true);
        // warm-up
        let _ = time_query(&c.a, &mk_query(iso));
        let runs = 5;
        let mut total = Duration::ZERO;
        for _ in 0..runs {
            let (d, _) = time_query(&c.a, &mk_query(iso));
            total += d;
        }
        println!("{:<12} {:>10.1}", iso, ms(total / runs));
    }
    println!();
}
