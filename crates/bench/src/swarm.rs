//! S1: the connection-scalability swarm. One driver thread multiplexes
//! thousands of closed-loop keep-alive HTTP clients over the same
//! [`Poller`](xrpc_net::poll::Poller) primitive the server's reactor is
//! built on, hammering a real peer (SOAP parse → XQuery eval →
//! serialize) with pre-serialized `echoVoid` requests. Each client owns
//! one connection and one in-flight request; completions, 503 sheds,
//! errors and per-request latencies are tallied per cell.
//!
//! The experiment compares the event-driven reactor against the
//! thread-per-connection baseline (kept behind
//! [`ServerModel::Threaded`]) at 1k/5k/10k concurrent clients — the
//! regime where a thread per socket stops being a server architecture.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::Arc;
use std::time::{Duration, Instant};
use xrpc_net::http::{Handler, HttpConfig, HttpServer, ServerModel};
use xrpc_net::metrics::MetricsSnapshot;
use xrpc_net::poll::{connect_nonblocking, take_socket_error, Event, Poller};
use xrpc_peer::{EngineKind, Peer};

/// New connects initiated per event-loop iteration during ramp-up, so
/// a 10k swarm doesn't dump its entire SYN burst on the listener's
/// (1024-deep) backlog at once.
const CONNECT_BATCH: usize = 512;

/// Event-loop tick: backoff/deadline granularity.
const TICK: Duration = Duration::from_millis(20);

/// What one swarm cell produced, client side.
#[derive(Debug, Default)]
pub struct SwarmReport {
    pub clients: usize,
    pub completed: u64,
    pub shed: u64,
    pub errors: u64,
    pub elapsed: Duration,
    /// Latency of every completed request, milliseconds, send→last byte.
    pub latencies_ms: Vec<f64>,
}

impl SwarmReport {
    pub fn req_per_s(&self) -> f64 {
        self.completed as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// Shed fraction over all *answered* attempts (completions + 503s).
    pub fn shed_rate(&self) -> f64 {
        let total = self.completed + self.shed;
        if total == 0 {
            0.0
        } else {
            self.shed as f64 / total as f64
        }
    }

    fn quantile(&self, sorted: &[f64], q: f64) -> f64 {
        if sorted.is_empty() {
            return 0.0;
        }
        let idx = ((sorted.len() as f64 * q) as usize).min(sorted.len() - 1);
        sorted[idx]
    }

    /// (p50, p99) of the completed-request latencies, milliseconds.
    pub fn quantiles_ms(&self) -> (f64, f64) {
        let mut s = self.latencies_ms.clone();
        s.sort_by(|a, b| a.partial_cmp(b).unwrap());
        (self.quantile(&s, 0.50), self.quantile(&s, 0.99))
    }
}

#[derive(PartialEq)]
enum CState {
    Connecting,
    Sending,
    Receiving,
    /// Parked until the backoff deadline; no live socket.
    Down,
}

struct Client {
    stream: Option<TcpStream>,
    state: CState,
    /// Registered epoll interest (readable, writable).
    interest: (bool, bool),
    woff: usize,
    rbuf: Vec<u8>,
    started: Instant,
}

/// The single-threaded swarm driver: `clients` closed-loop connections
/// against `addr`, each repeating `request` (a complete HTTP/1.1
/// keep-alive POST) for `duration`. A client that is shed (503) or
/// errors reconnects after `backoff` — the real-world retry pressure a
/// shedding server must survive.
pub fn run_swarm(
    addr: SocketAddr,
    clients: usize,
    duration: Duration,
    backoff: Duration,
    request: &[u8],
) -> SwarmReport {
    let poller = Poller::new().expect("swarm poller");
    let mut conns: Vec<Client> = (0..clients)
        .map(|_| Client {
            stream: None,
            state: CState::Down,
            interest: (false, false),
            woff: 0,
            rbuf: Vec::with_capacity(1024),
            started: Instant::now(),
        })
        .collect();
    let mut report = SwarmReport {
        clients,
        ..SwarmReport::default()
    };
    // ramp queue: everyone starts unconnected; retry queue: (due, idx)
    let mut to_connect: VecDeque<usize> = (0..clients).collect();
    let mut retry: VecDeque<(Instant, usize)> = VecDeque::new();
    let mut events: Vec<Event> = Vec::new();
    let t0 = Instant::now();
    let deadline = t0 + duration;

    loop {
        let now = Instant::now();
        if now >= deadline {
            break;
        }
        // move due retries back into the connect queue
        while retry.front().is_some_and(|(due, _)| *due <= now) {
            let (_, idx) = retry.pop_front().unwrap();
            to_connect.push_back(idx);
        }
        // ramp/reconnect in bounded batches
        for _ in 0..CONNECT_BATCH {
            let Some(idx) = to_connect.pop_front() else {
                break;
            };
            match connect_nonblocking(&addr) {
                Ok(stream) => {
                    let _ = stream.set_nodelay(true);
                    poller
                        .add(stream.as_raw_fd(), idx as u64, false, true)
                        .expect("register client");
                    let c = &mut conns[idx];
                    c.stream = Some(stream);
                    c.state = CState::Connecting;
                    c.interest = (false, true);
                    c.woff = 0;
                    c.rbuf.clear();
                }
                Err(_) => {
                    report.errors += 1;
                    retry.push_back((now + backoff, idx));
                }
            }
        }
        let timeout = deadline.saturating_duration_since(now).min(TICK);
        poller.wait(&mut events, Some(timeout)).expect("swarm wait");
        for &ev in &events {
            let idx = ev.token as usize;
            if idx >= conns.len() || conns[idx].stream.is_none() {
                continue;
            }
            let now = Instant::now();
            if conns[idx].state == CState::Connecting {
                if ev.error
                    || take_socket_error(conns[idx].stream.as_ref().unwrap().as_raw_fd()).is_err()
                {
                    report.errors += 1;
                    park(&poller, &mut conns[idx], &mut retry, now + backoff, idx);
                    continue;
                }
                begin_request(&mut conns[idx], now);
            }
            if conns[idx].state == CState::Sending
                && (ev.writable || ev.hangup)
                && pump_write(&mut conns[idx], request).is_err()
            {
                report.errors += 1;
                park(&poller, &mut conns[idx], &mut retry, now + backoff, idx);
                continue;
            }
            if conns[idx].state == CState::Receiving && (ev.readable || ev.hangup) {
                pump_read(
                    &poller,
                    &mut conns[idx],
                    request,
                    &mut report,
                    &mut retry,
                    now,
                    backoff,
                    idx,
                );
            }
            sync_interest(&poller, &mut conns[idx], idx);
        }
    }
    report.elapsed = t0.elapsed();
    report
}

/// Drop the connection (deregistering its fd implicitly) and schedule a
/// reconnect attempt at `due`.
fn park(
    poller: &Poller,
    c: &mut Client,
    retry: &mut VecDeque<(Instant, usize)>,
    due: Instant,
    idx: usize,
) {
    if let Some(s) = c.stream.take() {
        let _ = poller.delete(s.as_raw_fd());
    }
    c.state = CState::Down;
    c.interest = (false, false);
    retry.push_back((due, idx));
}

/// Arm the next request on a live keep-alive connection. Leaves `rbuf`
/// alone: leftover bytes may hold a further buffered response (drained
/// by `pump_read`'s parse loop); fresh connects clear it explicitly.
fn begin_request(c: &mut Client, now: Instant) {
    c.state = CState::Sending;
    c.woff = 0;
    c.started = now;
}

/// Write as much of the request as the socket takes. `Ok(())` on
/// progress (state advances to Receiving when complete); `Err(())` on a
/// transport error.
fn pump_write(c: &mut Client, request: &[u8]) -> Result<(), ()> {
    let mut s = c.stream.as_ref().unwrap();
    while c.woff < request.len() {
        match s.write(&request[c.woff..]) {
            Ok(0) => return Err(()),
            Ok(n) => c.woff += n,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return Err(()),
        }
    }
    if c.woff == request.len() {
        c.state = CState::Receiving;
    }
    Ok(())
}

/// Read whatever is buffered and classify any complete response:
/// 200 keep-alive → next request on the same socket, 503 → shed +
/// reconnect after backoff, anything else (including EOF mid-response)
/// → error + reconnect.
#[allow(clippy::too_many_arguments)]
fn pump_read(
    poller: &Poller,
    c: &mut Client,
    request: &[u8],
    report: &mut SwarmReport,
    retry: &mut VecDeque<(Instant, usize)>,
    now: Instant,
    backoff: Duration,
    idx: usize,
) {
    let mut eof = false;
    let mut buf = [0u8; 4096];
    loop {
        let mut s = c.stream.as_ref().unwrap();
        match s.read(&mut buf) {
            Ok(0) => {
                eof = true;
                break;
            }
            Ok(n) => c.rbuf.extend_from_slice(&buf[..n]),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                eof = true;
                break;
            }
        }
    }
    // drain every complete response already buffered, not just the
    // first — a straggler (e.g. after a server 503-then-close) must not
    // sit in rbuf until the next readiness event
    while let Some((status, total)) = parse_response(&c.rbuf) {
        if status != 200 {
            if status == 503 {
                report.shed += 1;
            } else {
                report.errors += 1;
            }
            park(poller, c, retry, now + backoff, idx);
            return;
        }
        report.completed += 1;
        report
            .latencies_ms
            .push(c.started.elapsed().as_secs_f64() * 1e3);
        c.rbuf.drain(..total);
        begin_request(c, now);
        // optimistic inline write: the socket buffer is almost always
        // empty, so the common case never touches epoll
        if pump_write(c, request).is_err() {
            report.errors += 1;
            park(poller, c, retry, now + backoff, idx);
            return;
        }
        if c.state != CState::Receiving {
            // request partially written: epoll finishes the send; any
            // further buffered bytes wait for the next read event
            return;
        }
    }
    if eof {
        report.errors += 1;
        park(poller, c, retry, now + backoff, idx);
    }
}

/// Re-arm epoll interest to match the client's state, only when it
/// actually changed (level-triggered, so stable interest costs nothing).
fn sync_interest(poller: &Poller, c: &mut Client, idx: usize) {
    let Some(s) = c.stream.as_ref() else {
        return;
    };
    let want = match c.state {
        CState::Connecting | CState::Sending => (false, true),
        CState::Receiving => (true, false),
        CState::Down => return,
    };
    if want != c.interest {
        let _ = poller.modify(s.as_raw_fd(), idx as u64, want.0, want.1);
        c.interest = want;
    }
}

/// Minimal HTTP/1.1 response framing: returns `(status, total_len)`
/// once the head and the full `Content-Length` body are buffered.
fn parse_response(buf: &[u8]) -> Option<(u16, usize)> {
    let he = buf.windows(4).position(|w| w == b"\r\n\r\n")?;
    let head = std::str::from_utf8(&buf[..he]).ok()?;
    let status: u16 = head.split_whitespace().nth(1)?.parse().ok()?;
    let cl: usize = head
        .lines()
        .skip(1)
        .filter_map(|l| l.split_once(':'))
        .find(|(k, _)| k.trim().eq_ignore_ascii_case("content-length"))?
        .1
        .trim()
        .parse()
        .ok()?;
    let total = he + 4 + cl;
    (buf.len() >= total).then_some((status, total))
}

// ---------------------------------------------------------------------
// Cell orchestration: a real peer served over either server model
// ---------------------------------------------------------------------

/// One swarm cell's full outcome: the client-side tally plus the
/// server's own transport counters (sheds, roundtrips) for cross-checks.
pub struct SwarmCell {
    pub report: SwarmReport,
    pub server: MetricsSnapshot,
}

/// Serialize the `t:echoVoid()` XRPC request once and wrap it as a
/// complete keep-alive HTTP POST — every swarm request is these bytes.
pub fn swarm_request_bytes() -> Vec<u8> {
    let mut req = xrpc_proto::XrpcRequest::new("test", "echoVoid", 0);
    req.push_call(vec![]);
    let body = req.to_xml().unwrap();
    let mut out = format!(
        "POST /xrpc HTTP/1.1\r\nHost: swarm\r\nContent-Type: application/soap+xml; charset=utf-8\r\nContent-Length: {}\r\nConnection: keep-alive\r\n\r\n",
        body.len()
    )
    .into_bytes();
    out.extend_from_slice(body.as_bytes());
    out
}

/// Server config for a swarm cell. The reactor runs with admission
/// sized for the swarm (dispatch queue ≥ one in-flight request per
/// client, queue-wait shedding effectively off so the cell measures
/// connection scalability); the threaded baseline keeps the hard
/// `max_connections` cap that was the pre-reactor admission story.
pub fn swarm_config(model: ServerModel, clients: usize, threaded_cap: usize) -> HttpConfig {
    match model {
        ServerModel::Reactor => HttpConfig {
            model,
            max_connections: 0,
            dispatch_queue: clients + 1024,
            shed_wait: Duration::from_secs(600),
            ..HttpConfig::default()
        },
        ServerModel::Threaded => HttpConfig {
            model,
            max_connections: threaded_cap,
            ..HttpConfig::default()
        },
    }
}

/// Boot a fresh peer on `model`, run the swarm against it, shut it
/// down. `threaded_cap` is the baseline's hard connection cap.
pub fn run_swarm_cell(
    model: ServerModel,
    clients: usize,
    duration: Duration,
    threaded_cap: usize,
) -> SwarmCell {
    let b = Peer::new("xrpc://swarm.example.org", EngineKind::Tree);
    b.register_module(xmark::test_module()).unwrap();
    let h = b.soap_handler();
    let handler: Arc<Handler> = Arc::new(move |_path, body| (200, h(body)));
    let mut server = HttpServer::bind_with(
        "127.0.0.1:0",
        handler,
        swarm_config(model, clients, threaded_cap),
    )
    .expect("bind swarm server");
    let addr: SocketAddr = server.addr().parse().expect("server addr");
    let request = swarm_request_bytes();
    let report = run_swarm(
        addr,
        clients,
        duration,
        Duration::from_millis(200),
        &request,
    );
    let server_metrics = server.metrics.snapshot();
    server.shutdown_graceful(Duration::from_secs(5));
    SwarmCell {
        report,
        server: server_metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn swarm_request_parses_as_http() {
        let req = swarm_request_bytes();
        let head_end = req.windows(4).position(|w| w == b"\r\n\r\n").unwrap();
        let head = std::str::from_utf8(&req[..head_end]).unwrap();
        assert!(head.starts_with("POST /xrpc HTTP/1.1"));
        assert!(head.contains("Connection: keep-alive"));
    }

    #[test]
    fn response_parser_requires_full_body() {
        let full = b"HTTP/1.1 200 OK\r\nContent-Length: 4\r\n\r\nbody";
        for cut in 1..full.len() {
            assert_eq!(parse_response(&full[..cut]), None, "cut at {cut}");
        }
        assert_eq!(parse_response(full), Some((200, full.len())));
        let shed = b"HTTP/1.1 503 Service Unavailable\r\nContent-Length: 0\r\n\r\n";
        assert_eq!(parse_response(shed), Some((503, shed.len())));
    }

    #[test]
    fn pump_read_drains_multiple_buffered_responses() {
        // two complete responses already buffered on the socket must
        // both be consumed by one pump, not one-per-readiness-event
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let stream = TcpStream::connect(l.local_addr().unwrap()).unwrap();
        let (mut srv, _) = l.accept().unwrap();
        let resp = b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok";
        srv.write_all(resp).unwrap();
        srv.write_all(resp).unwrap();
        srv.flush().unwrap();
        stream.set_nonblocking(true).unwrap();
        let poller = Poller::new().unwrap();
        let mut c = Client {
            stream: Some(stream),
            state: CState::Receiving,
            interest: (true, false),
            woff: 0,
            rbuf: Vec::new(),
            started: Instant::now(),
        };
        let mut report = SwarmReport::default();
        let mut retry = VecDeque::new();
        let request = b"POST /x HTTP/1.1\r\nContent-Length: 0\r\n\r\n";
        let deadline = Instant::now() + Duration::from_secs(5);
        while report.completed < 2 {
            assert!(
                Instant::now() < deadline,
                "buffered responses not drained: {report:?}"
            );
            pump_read(
                &poller,
                &mut c,
                request,
                &mut report,
                &mut retry,
                Instant::now(),
                Duration::from_millis(10),
                0,
            );
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(report.completed, 2);
        assert_eq!(report.errors, 0);
        assert_eq!(report.shed, 0);
        assert!(retry.is_empty(), "live connection must not be parked");
    }

    #[test]
    fn small_swarm_completes_requests_on_both_models() {
        for model in [ServerModel::Reactor, ServerModel::Threaded] {
            let cell = run_swarm_cell(model, 8, Duration::from_millis(800), 1024);
            assert!(
                cell.report.completed > 8,
                "{model:?}: only {} completions ({} errors, {} shed)",
                cell.report.completed,
                cell.report.errors,
                cell.report.shed
            );
            assert_eq!(cell.report.shed, 0, "{model:?} shed under capacity");
            assert_eq!(cell.server.sheds, 0, "{model:?} server sheds");
            assert_eq!(
                cell.report.latencies_ms.len(),
                cell.report.completed as usize
            );
            let (p50, p99) = cell.report.quantiles_ms();
            assert!(p50 <= p99);
        }
    }

    #[test]
    fn threaded_over_cap_sheds_and_swarm_counts_it() {
        // 12 clients against a 4-connection hard cap: the baseline must
        // shed, and every shed must be a clean readable 503 (errors stay
        // at connect-refused level, not protocol garbage)
        let cell = run_swarm_cell(ServerModel::Threaded, 12, Duration::from_millis(800), 4);
        assert!(
            cell.report.shed > 0,
            "hard cap must shed: {:?}",
            cell.report
        );
        assert!(cell.report.completed > 0, "capped clients still progress");
        assert_eq!(cell.server.sheds, cell.report.shed);
    }
}
