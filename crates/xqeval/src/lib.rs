//! A tree-walking XQuery evaluator — the "plain XQuery engine" of the
//! reproduction (the role Saxon plays in the paper, §4/§5).
//!
//! It evaluates the `xqast` AST directly over `xmldom` documents and
//! supports:
//! * the full supported expression grammar (FLWOR, paths, constructors,
//!   quantifiers, typeswitch, casts);
//! * user-defined functions and library modules;
//! * XQUF updating functions producing *pending update lists* that are only
//!   applied by an explicit `apply_updates` step (paper §2.3);
//! * `execute at` via a pluggable [`RpcDispatcher`] — the `xrpc-peer` crate
//!   plugs the SOAP XRPC client in here;
//! * an opt-in *join index* so that bulk predicate evaluation over a large
//!   document behaves like the hash join Saxon builds in the paper's
//!   `getPerson` experiment (§4, Table 3).

pub mod context;
pub mod eval;
pub mod functions;
pub mod index;
pub mod modules;
pub mod pul;

pub use context::{
    CancelToken, DocResolver, Environment, FunctionRef, InMemoryDocs, RpcDispatcher, StaticContext,
};
pub use eval::{
    evaluate_compiled, evaluate_main, evaluate_main_with_vars, evaluate_parsed, CompiledMain,
    Evaluator,
};
pub use modules::{CompiledModule, ModuleRegistry};
pub use pul::{apply_updates, DocEdit, PendingUpdateList, UpdatePrimitive};
