//! The built-in function library (`fn:` namespace plus the two `xrpc:`
//! helpers the paper introduces in §5 for URL-based push-down rewrites).

use crate::eval::{Ctx, EvalState, Evaluator};
use std::cmp::Ordering;
use xdm::atomic::AtomicValue;
use xdm::ops::{arith, ArithOp};
use xdm::types::AtomicType;
use xdm::{Item, Sequence, XdmError, XdmResult};
use xmldom::{NodeHandle, NodeKind};

/// True if `local` names a built-in we implement (used for call resolution).
pub fn is_builtin(local: &str) -> bool {
    BUILTINS.contains(&local)
}

const BUILTINS: &[&str] = &[
    "doc",
    "put",
    "root",
    "position",
    "last",
    "count",
    "empty",
    "exists",
    "not",
    "boolean",
    "true",
    "false",
    "string",
    "string-length",
    "concat",
    "string-join",
    "substring",
    "contains",
    "starts-with",
    "ends-with",
    "upper-case",
    "lower-case",
    "normalize-space",
    "substring-before",
    "substring-after",
    "translate",
    "number",
    "sum",
    "avg",
    "min",
    "max",
    "abs",
    "floor",
    "ceiling",
    "round",
    "data",
    "distinct-values",
    "index-of",
    "insert-before",
    "remove",
    "reverse",
    "subsequence",
    "zero-or-one",
    "one-or-more",
    "exactly-one",
    "deep-equal",
    "name",
    "local-name",
    "namespace-uri",
    "error",
    "trace",
    "doc-available",
    "string-to-codepoints",
    "codepoints-to-string",
    "exists",
    "node-name",
    "nilled",
    "base-uri",
    "document-uri",
];

/// Evaluate a built-in function call.
pub fn call_builtin(
    ev: &Evaluator,
    name: &str,
    args: Vec<Sequence>,
    st: &mut EvalState,
    ctx: &Ctx,
) -> XdmResult<Sequence> {
    let _ = st;
    match (name, args.len()) {
        ("doc", 1) => {
            let uri = one_string(&args[0], "fn:doc")?;
            // relative URIs resolve against the in-scope base URI, with a
            // fallback to the raw URI so stores keyed by unresolved names
            // (every pre-base-uri caller) keep working
            let resolved = ev.sctx.resolve_doc_uri(&uri);
            let doc = match ev.env.docs.resolve(&resolved) {
                Ok(d) => d,
                Err(e) if resolved != uri => ev.env.docs.resolve(&uri).map_err(|_| e)?,
                Err(e) => return Err(e),
            };
            Ok(Sequence::one(Item::Node(NodeHandle::root(doc))))
        }
        ("doc-available", 1) => {
            let uri = one_string(&args[0], "fn:doc-available")?;
            let resolved = ev.sctx.resolve_doc_uri(&uri);
            Ok(Sequence::one(Item::boolean(
                ev.env.docs.resolve(&resolved).is_ok() || ev.env.docs.resolve(&uri).is_ok(),
            )))
        }
        ("put", 2) => {
            // XQUF fn:put is an updating function: record a Put primitive.
            let node = match args[0].singleton()? {
                Item::Node(n) => n.clone(),
                _ => return Err(XdmError::type_error("fn:put expects a node")),
            };
            let uri = one_string(&args[1], "fn:put")?;
            st.pul.push(crate::pul::UpdatePrimitive::Put { node, uri });
            Ok(Sequence::empty())
        }
        ("root", 0) => {
            let n = ctx_node(ctx, "fn:root")?;
            Ok(Sequence::one(Item::Node(NodeHandle::root(n.doc.clone()))))
        }
        ("root", 1) => match args[0].zero_or_one()? {
            None => Ok(Sequence::empty()),
            Some(Item::Node(n)) => Ok(Sequence::one(Item::Node(NodeHandle::root(n.doc.clone())))),
            Some(_) => Err(XdmError::type_error("fn:root expects a node")),
        },
        ("position", 0) => Ok(Sequence::one(Item::integer(ctx.pos as i64))),
        ("last", 0) => Ok(Sequence::one(Item::integer(ctx.size as i64))),
        ("count", 1) => Ok(Sequence::one(Item::integer(args[0].len() as i64))),
        ("empty", 1) => Ok(Sequence::one(Item::boolean(args[0].is_empty()))),
        ("exists", 1) => Ok(Sequence::one(Item::boolean(!args[0].is_empty()))),
        ("not", 1) => Ok(Sequence::one(Item::boolean(!args[0].ebv()?))),
        ("boolean", 1) => Ok(Sequence::one(Item::boolean(args[0].ebv()?))),
        ("true", 0) => Ok(Sequence::one(Item::boolean(true))),
        ("false", 0) => Ok(Sequence::one(Item::boolean(false))),
        ("string", 0) => {
            let n = ctx_item(ctx, "fn:string")?;
            Ok(Sequence::one(Item::string(n.string_value())))
        }
        ("string", 1) => match args[0].zero_or_one()? {
            None => Ok(Sequence::one(Item::string(""))),
            Some(i) => Ok(Sequence::one(Item::string(i.string_value()))),
        },
        ("string-length", 0) => {
            let i = ctx_item(ctx, "fn:string-length")?;
            Ok(Sequence::one(Item::integer(
                i.string_value().chars().count() as i64,
            )))
        }
        ("string-length", 1) => {
            let s = opt_string(&args[0]);
            Ok(Sequence::one(Item::integer(s.chars().count() as i64)))
        }
        ("concat", _) if args.len() >= 2 => {
            let mut out = String::new();
            for a in &args {
                if let Some(i) = a.zero_or_one()? {
                    out.push_str(&i.string_value());
                }
            }
            Ok(Sequence::one(Item::string(out)))
        }
        ("string-join", 2) => {
            let sep = one_string(&args[1], "fn:string-join")?;
            let parts: Vec<String> = args[0].iter().map(|i| i.string_value()).collect();
            Ok(Sequence::one(Item::string(parts.join(&sep))))
        }
        ("substring", 2) | ("substring", 3) => {
            let s = opt_string(&args[0]);
            let start = one_number(&args[1], "fn:substring")?;
            let len = if args.len() == 3 {
                Some(one_number(&args[2], "fn:substring")?)
            } else {
                None
            };
            Ok(Sequence::one(Item::string(substring(&s, start, len))))
        }
        ("contains", 2) => {
            let a = opt_string(&args[0]);
            let b = opt_string(&args[1]);
            Ok(Sequence::one(Item::boolean(a.contains(&b))))
        }
        ("starts-with", 2) => {
            let a = opt_string(&args[0]);
            let b = opt_string(&args[1]);
            Ok(Sequence::one(Item::boolean(a.starts_with(&b))))
        }
        ("ends-with", 2) => {
            let a = opt_string(&args[0]);
            let b = opt_string(&args[1]);
            Ok(Sequence::one(Item::boolean(a.ends_with(&b))))
        }
        ("substring-before", 2) => {
            let a = opt_string(&args[0]);
            let b = opt_string(&args[1]);
            let r = a.find(&b).map(|i| a[..i].to_string()).unwrap_or_default();
            Ok(Sequence::one(Item::string(r)))
        }
        ("substring-after", 2) => {
            let a = opt_string(&args[0]);
            let b = opt_string(&args[1]);
            let r = a
                .find(&b)
                .map(|i| a[i + b.len()..].to_string())
                .unwrap_or_default();
            Ok(Sequence::one(Item::string(r)))
        }
        ("upper-case", 1) => Ok(Sequence::one(Item::string(
            opt_string(&args[0]).to_uppercase(),
        ))),
        ("lower-case", 1) => Ok(Sequence::one(Item::string(
            opt_string(&args[0]).to_lowercase(),
        ))),
        ("normalize-space", 0) => {
            let i = ctx_item(ctx, "fn:normalize-space")?;
            Ok(Sequence::one(Item::string(normalize_space(
                &i.string_value(),
            ))))
        }
        ("normalize-space", 1) => Ok(Sequence::one(Item::string(normalize_space(&opt_string(
            &args[0],
        ))))),
        ("translate", 3) => {
            let s = opt_string(&args[0]);
            let from: Vec<char> = one_string(&args[1], "fn:translate")?.chars().collect();
            let to: Vec<char> = one_string(&args[2], "fn:translate")?.chars().collect();
            let out: String = s
                .chars()
                .filter_map(|c| match from.iter().position(|&f| f == c) {
                    Some(i) => to.get(i).copied(),
                    None => Some(c),
                })
                .collect();
            Ok(Sequence::one(Item::string(out)))
        }
        ("number", 0) => {
            let i = ctx_item(ctx, "fn:number")?;
            Ok(Sequence::one(to_number(Some(i))))
        }
        ("number", 1) => Ok(Sequence::one(to_number(args[0].zero_or_one()?))),
        ("sum", 1) | ("sum", 2) => {
            if args[0].is_empty() {
                if args.len() == 2 {
                    return Ok(args[1].clone());
                }
                return Ok(Sequence::one(Item::integer(0)));
            }
            let mut acc = args[0].items()[0].atomize();
            if matches!(acc, AtomicValue::UntypedAtomic(_)) {
                acc = acc.cast_to(AtomicType::Double)?;
            }
            for it in &args[0].items()[1..] {
                acc = arith(ArithOp::Add, &acc, &it.atomize())?;
            }
            Ok(Sequence::one(Item::Atomic(acc)))
        }
        ("avg", 1) => {
            if args[0].is_empty() {
                return Ok(Sequence::empty());
            }
            let sum = call_builtin(ev, "sum", vec![args[0].clone()], st, ctx)?;
            let n = AtomicValue::Integer(args[0].len() as i64);
            let v = arith(ArithOp::Div, sum.singleton()?.as_atomic().unwrap(), &n)?;
            Ok(Sequence::one(Item::Atomic(v)))
        }
        ("min", 1) | ("max", 1) => {
            if args[0].is_empty() {
                return Ok(Sequence::empty());
            }
            let want = if name == "min" {
                Ordering::Less
            } else {
                Ordering::Greater
            };
            let mut best = args[0].items()[0].atomize();
            if matches!(best, AtomicValue::UntypedAtomic(_)) {
                best = best.cast_to(AtomicType::Double)?;
            }
            for it in &args[0].items()[1..] {
                let mut v = it.atomize();
                if matches!(v, AtomicValue::UntypedAtomic(_)) {
                    v = v.cast_to(AtomicType::Double)?;
                }
                if v.value_cmp(&best)? == want {
                    best = v;
                }
            }
            Ok(Sequence::one(Item::Atomic(best)))
        }
        ("abs", 1) => num_unary(&args[0], |v| match v {
            AtomicValue::Integer(i) => Ok(AtomicValue::Integer(i.abs())),
            AtomicValue::Decimal(d) => Ok(AtomicValue::Decimal(d.abs())),
            AtomicValue::Double(d) => Ok(AtomicValue::Double(d.abs())),
            AtomicValue::Float(f) => Ok(AtomicValue::Float(f.abs())),
            other => Err(XdmError::type_error(format!(
                "fn:abs on {}",
                other.atomic_type()
            ))),
        }),
        ("floor", 1) => num_unary(&args[0], |v| match v {
            AtomicValue::Integer(i) => Ok(AtomicValue::Integer(i)),
            AtomicValue::Decimal(d) => Ok(AtomicValue::Integer(d.floor())),
            AtomicValue::Double(d) => Ok(AtomicValue::Double(d.floor())),
            AtomicValue::Float(f) => Ok(AtomicValue::Float(f.floor())),
            other => Err(XdmError::type_error(format!(
                "fn:floor on {}",
                other.atomic_type()
            ))),
        }),
        ("ceiling", 1) => num_unary(&args[0], |v| match v {
            AtomicValue::Integer(i) => Ok(AtomicValue::Integer(i)),
            AtomicValue::Decimal(d) => Ok(AtomicValue::Integer(d.ceiling())),
            AtomicValue::Double(d) => Ok(AtomicValue::Double(d.ceil())),
            AtomicValue::Float(f) => Ok(AtomicValue::Float(f.ceil())),
            other => Err(XdmError::type_error(format!(
                "fn:ceiling on {}",
                other.atomic_type()
            ))),
        }),
        ("round", 1) => num_unary(&args[0], |v| match v {
            AtomicValue::Integer(i) => Ok(AtomicValue::Integer(i)),
            AtomicValue::Decimal(d) => Ok(AtomicValue::Integer(d.round())),
            AtomicValue::Double(d) => Ok(AtomicValue::Double((d + 0.5).floor())),
            AtomicValue::Float(f) => Ok(AtomicValue::Float((f + 0.5).floor())),
            other => Err(XdmError::type_error(format!(
                "fn:round on {}",
                other.atomic_type()
            ))),
        }),
        ("data", 1) => Ok(Sequence::from_items(
            args[0].atomized().into_iter().map(Item::Atomic).collect(),
        )),
        ("distinct-values", 1) => {
            let mut out: Vec<AtomicValue> = Vec::new();
            for v in args[0].atomized() {
                let v = match v {
                    AtomicValue::UntypedAtomic(s) => AtomicValue::String(s),
                    other => other,
                };
                if !out.iter().any(|o| {
                    o.value_cmp(&v)
                        .map(|c| c == Ordering::Equal)
                        .unwrap_or(false)
                }) {
                    out.push(v);
                }
            }
            Ok(Sequence::from_items(
                out.into_iter().map(Item::Atomic).collect(),
            ))
        }
        ("index-of", 2) => {
            let needle = args[1].singleton()?.atomize();
            let mut out = Vec::new();
            for (i, it) in args[0].iter().enumerate() {
                if it.atomize().general_eq(&needle).unwrap_or(false) {
                    out.push(Item::integer(i as i64 + 1));
                }
            }
            Ok(Sequence::from_items(out))
        }
        ("insert-before", 3) => {
            let pos = one_integer(&args[1], "fn:insert-before")?.max(1) as usize;
            let mut items = args[0].items().to_vec();
            let pos = (pos - 1).min(items.len());
            for (i, it) in args[2].iter().enumerate() {
                items.insert(pos + i, it.clone());
            }
            Ok(Sequence::from_items(items))
        }
        ("remove", 2) => {
            let pos = one_integer(&args[1], "fn:remove")?;
            let items: Vec<Item> = args[0]
                .iter()
                .enumerate()
                .filter(|(i, _)| (*i as i64 + 1) != pos)
                .map(|(_, it)| it.clone())
                .collect();
            Ok(Sequence::from_items(items))
        }
        ("reverse", 1) => {
            let mut items = args[0].items().to_vec();
            items.reverse();
            Ok(Sequence::from_items(items))
        }
        ("subsequence", 2) | ("subsequence", 3) => {
            let start = one_number(&args[1], "fn:subsequence")?;
            let len = if args.len() == 3 {
                Some(one_number(&args[2], "fn:subsequence")?)
            } else {
                None
            };
            let items = args[0].items();
            let mut out = Vec::new();
            for (i, it) in items.iter().enumerate() {
                let p = i as f64 + 1.0;
                let keep = p >= start.round() && len.is_none_or(|l| p < start.round() + l.round());
                if keep {
                    out.push(it.clone());
                }
            }
            Ok(Sequence::from_items(out))
        }
        ("zero-or-one", 1) => {
            args[0].zero_or_one()?;
            Ok(args[0].clone())
        }
        ("one-or-more", 1) => {
            if args[0].is_empty() {
                return Err(XdmError::type_error("fn:one-or-more got an empty sequence"));
            }
            Ok(args[0].clone())
        }
        ("exactly-one", 1) => {
            args[0].singleton()?;
            Ok(args[0].clone())
        }
        ("deep-equal", 2) => Ok(Sequence::one(Item::boolean(deep_equal_seq(
            &args[0], &args[1],
        )?))),
        ("name", 0) | ("local-name", 0) | ("namespace-uri", 0) => {
            let n = ctx_node(ctx, name)?;
            Ok(Sequence::one(Item::string(node_name_part(n, name))))
        }
        ("name", 1) | ("local-name", 1) | ("namespace-uri", 1) => match args[0].zero_or_one()? {
            None => Ok(Sequence::one(Item::string(""))),
            Some(Item::Node(n)) => Ok(Sequence::one(Item::string(node_name_part(n, name)))),
            Some(_) => Err(XdmError::type_error(format!("fn:{name} expects a node"))),
        },
        ("node-name", 1) => match args[0].zero_or_one()? {
            Some(Item::Node(n)) => match n.name() {
                Some(q) => Ok(Sequence::one(Item::Atomic(AtomicValue::QNameV(q.clone())))),
                None => Ok(Sequence::empty()),
            },
            Some(_) => Err(XdmError::type_error("fn:node-name expects a node")),
            None => Ok(Sequence::empty()),
        },
        ("nilled", 1) => Ok(Sequence::one(Item::boolean(false))),
        ("base-uri", 1) | ("document-uri", 1) => match args[0].zero_or_one()? {
            Some(Item::Node(n)) => Ok(n
                .doc
                .uri
                .clone()
                .map(|u| Sequence::one(Item::string(u)))
                .unwrap_or_else(Sequence::empty)),
            _ => Ok(Sequence::empty()),
        },
        ("error", 0) => Err(XdmError::new("FOER0000", "fn:error()")),
        ("error", 1) | ("error", 2) => {
            let code = args[0]
                .zero_or_one()?
                .map(|i| i.string_value())
                .unwrap_or_else(|| "FOER0000".into());
            let msg = args
                .get(1)
                .and_then(|s| s.first())
                .map(|i| i.string_value())
                .unwrap_or_else(|| "fn:error".into());
            Err(XdmError::new(&code, msg))
        }
        ("trace", 2) => Ok(args[0].clone()),
        ("string-to-codepoints", 1) => {
            let s = opt_string(&args[0]);
            Ok(Sequence::from_items(
                s.chars().map(|c| Item::integer(c as i64)).collect(),
            ))
        }
        ("codepoints-to-string", 1) => {
            let mut out = String::new();
            for it in args[0].iter() {
                let cp = match it.atomize() {
                    AtomicValue::Integer(i) => i,
                    other => {
                        return Err(XdmError::type_error(format!(
                            "codepoints-to-string expects integers, got {}",
                            other.atomic_type()
                        )))
                    }
                };
                out.push(
                    char::from_u32(cp as u32)
                        .ok_or_else(|| XdmError::new("FOCH0001", "invalid code point"))?,
                );
            }
            Ok(Sequence::one(Item::string(out)))
        }
        _ => Err(XdmError::unknown_function(format!(
            "unknown function fn:{name}#{}",
            args.len()
        ))),
    }
}

/// The `xrpc:host` / `xrpc:path` helpers (paper §5 "Advanced Pushdown"):
/// default host is "localhost" and path is the argument, except for
/// `xrpc://host[:port]/path` URLs which are split.
pub fn call_xrpc_builtin(name: &str, args: Vec<Sequence>) -> XdmResult<Sequence> {
    match (name, args.len()) {
        ("host", 1) => {
            let url = one_string(&args[0], "xrpc:host")?;
            Ok(Sequence::one(Item::string(split_xrpc_url(&url).0)))
        }
        ("path", 1) => {
            let url = one_string(&args[0], "xrpc:path")?;
            Ok(Sequence::one(Item::string(split_xrpc_url(&url).1)))
        }
        _ => Err(XdmError::unknown_function(format!(
            "unknown function xrpc:{name}#{}",
            args.len()
        ))),
    }
}

/// Split an `xrpc://host[:port]/path` URL into (peer URI, local path).
pub fn split_xrpc_url(url: &str) -> (String, String) {
    if let Some(rest) = url.strip_prefix("xrpc://") {
        match rest.split_once('/') {
            Some((host, path)) => (format!("xrpc://{host}"), path.to_string()),
            None => (url.to_string(), String::new()),
        }
    } else {
        ("localhost".to_string(), url.to_string())
    }
}

// ---------------------------------------------------------------------
// helpers
// ---------------------------------------------------------------------

fn ctx_item<'c>(ctx: &'c Ctx, who: &str) -> XdmResult<&'c Item> {
    ctx.item
        .as_ref()
        .ok_or_else(|| XdmError::new("XPDY0002", format!("{who}: no context item")))
}

fn ctx_node<'c>(ctx: &'c Ctx, who: &str) -> XdmResult<&'c NodeHandle> {
    match ctx_item(ctx, who)? {
        Item::Node(n) => Ok(n),
        _ => Err(XdmError::type_error(format!(
            "{who}: context item is not a node"
        ))),
    }
}

fn one_string(s: &Sequence, who: &str) -> XdmResult<String> {
    Ok(s.singleton()
        .map_err(|e| XdmError::type_error(format!("{who}: {}", e.message)))?
        .string_value())
}

fn opt_string(s: &Sequence) -> String {
    s.first().map(|i| i.string_value()).unwrap_or_default()
}

fn one_integer(s: &Sequence, who: &str) -> XdmResult<i64> {
    match s.singleton()?.atomize().cast_to(AtomicType::Integer) {
        Ok(AtomicValue::Integer(i)) => Ok(i),
        _ => Err(XdmError::type_error(format!("{who}: expected an integer"))),
    }
}

fn one_number(s: &Sequence, who: &str) -> XdmResult<f64> {
    match s.singleton()?.atomize().cast_to(AtomicType::Double) {
        Ok(AtomicValue::Double(d)) => Ok(d),
        _ => Err(XdmError::type_error(format!("{who}: expected a number"))),
    }
}

fn to_number(item: Option<&Item>) -> Item {
    match item {
        None => Item::double(f64::NAN),
        Some(i) => match i.atomize().cast_to(AtomicType::Double) {
            Ok(AtomicValue::Double(d)) => Item::double(d),
            _ => Item::double(f64::NAN),
        },
    }
}

fn num_unary(
    s: &Sequence,
    f: impl Fn(AtomicValue) -> XdmResult<AtomicValue>,
) -> XdmResult<Sequence> {
    match s.zero_or_one()? {
        None => Ok(Sequence::empty()),
        Some(i) => {
            let mut v = i.atomize();
            if matches!(v, AtomicValue::UntypedAtomic(_)) {
                v = v.cast_to(AtomicType::Double)?;
            }
            Ok(Sequence::one(Item::Atomic(f(v)?)))
        }
    }
}

fn substring(s: &str, start: f64, len: Option<f64>) -> String {
    let chars: Vec<char> = s.chars().collect();
    let mut out = String::new();
    for (i, c) in chars.iter().enumerate() {
        let p = i as f64 + 1.0;
        let keep = p >= start.round() && len.is_none_or(|l| p < start.round() + l.round());
        if keep {
            out.push(*c);
        }
    }
    out
}

fn normalize_space(s: &str) -> String {
    s.split_whitespace().collect::<Vec<_>>().join(" ")
}

fn node_name_part(n: &NodeHandle, which: &str) -> String {
    match which {
        "name" => n.name().map(|q| q.lexical()).unwrap_or_default(),
        "local-name" => n.name().map(|q| q.local.clone()).unwrap_or_default(),
        _ => n.name().and_then(|q| q.ns_uri.clone()).unwrap_or_default(),
    }
}

/// `fn:deep-equal` over sequences.
pub fn deep_equal_seq(a: &Sequence, b: &Sequence) -> XdmResult<bool> {
    if a.len() != b.len() {
        return Ok(false);
    }
    for (x, y) in a.iter().zip(b.iter()) {
        if !deep_equal_item(x, y)? {
            return Ok(false);
        }
    }
    Ok(true)
}

fn deep_equal_item(a: &Item, b: &Item) -> XdmResult<bool> {
    match (a, b) {
        (Item::Atomic(x), Item::Atomic(y)) => Ok(x
            .value_cmp(y)
            .map(|c| c == Ordering::Equal)
            .unwrap_or(false)),
        (Item::Node(x), Item::Node(y)) => Ok(deep_equal_node(x, y)),
        _ => Ok(false),
    }
}

fn deep_equal_node(a: &NodeHandle, b: &NodeHandle) -> bool {
    if a.kind() != b.kind() {
        return false;
    }
    match a.kind() {
        NodeKind::Text | NodeKind::Comment => a.data().value == b.data().value,
        NodeKind::ProcessingInstruction | NodeKind::Attribute => {
            a.name() == b.name() && a.data().value == b.data().value
        }
        NodeKind::Element => {
            if a.name() != b.name() {
                return false;
            }
            // attributes: set-equal
            let aa = a.doc.attributes(a.id);
            let bb = b.doc.attributes(b.id);
            if aa.len() != bb.len() {
                return false;
            }
            for &x in aa {
                let xn = NodeHandle::new(a.doc.clone(), x);
                if !bb.iter().any(|&y| {
                    let yn = NodeHandle::new(b.doc.clone(), y);
                    deep_equal_node(&xn, &yn)
                }) {
                    return false;
                }
            }
            children_equal(a, b)
        }
        NodeKind::Document => children_equal(a, b),
    }
}

fn children_equal(a: &NodeHandle, b: &NodeHandle) -> bool {
    // comments and PIs are ignored by deep-equal
    let ac: Vec<NodeHandle> = a
        .doc
        .children(a.id)
        .iter()
        .map(|&c| NodeHandle::new(a.doc.clone(), c))
        .filter(|h| {
            !matches!(
                h.kind(),
                NodeKind::Comment | NodeKind::ProcessingInstruction
            )
        })
        .collect();
    let bc: Vec<NodeHandle> = b
        .doc
        .children(b.id)
        .iter()
        .map(|&c| NodeHandle::new(b.doc.clone(), c))
        .filter(|h| {
            !matches!(
                h.kind(),
                NodeKind::Comment | NodeKind::ProcessingInstruction
            )
        })
        .collect();
    if ac.len() != bc.len() {
        return false;
    }
    ac.iter().zip(bc.iter()).all(|(x, y)| deep_equal_node(x, y))
}
