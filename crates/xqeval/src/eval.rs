//! The tree-walking evaluator core.

use crate::context::{Environment, FunctionRef, StaticContext};
use crate::functions;
use crate::pul::{PendingUpdateList, UpdatePrimitive};
use std::collections::HashMap;
use std::sync::Arc;
use xdm::atomic::AtomicValue;
use xdm::ops;
use xdm::types::AtomicType;
use xdm::{Item, Sequence, XdmError, XdmResult};
use xmldom::order::{cmp_handles, sort_dedup};
use xmldom::{axes, Document, NodeHandle, NodeKind, QName};
use xqast::{
    AttrContent, Axis, CompName, CompOp, DirContent, DirElem, Expr, FlworClause, FunctionDecl,
    InsertPos, MainModule, Name, NodeCompOp, NodeTest, Quantifier,
};

/// One FLWOR tuple's variable bindings (name → bound sequence).
type Bindings = Vec<(String, Sequence)>;
/// Atomized `order by` keys for one tuple (one entry per spec).
type OrderKeys = Vec<Option<AtomicValue>>;

/// Focus: the context item, position and size.
#[derive(Clone, Default)]
pub struct Ctx {
    pub item: Option<Item>,
    pub pos: usize,
    pub size: usize,
}

impl Ctx {
    pub fn none() -> Self {
        Ctx::default()
    }

    pub fn of(item: Item) -> Self {
        Ctx {
            item: Some(item),
            pos: 1,
            size: 1,
        }
    }
}

/// Mutable evaluation state threaded through the recursion: the variable
/// stack, the accumulating pending update list and the call depth.
pub struct EvalState {
    pub vars: Vec<(String, Sequence)>,
    pub pul: PendingUpdateList,
    pub depth: usize,
}

impl EvalState {
    pub fn new() -> Self {
        EvalState {
            vars: Vec::new(),
            pul: PendingUpdateList::new(),
            depth: 0,
        }
    }

    pub fn bind(&mut self, name: &Name, value: Sequence) {
        self.vars.push((name.lexical(), value));
    }

    pub fn lookup(&self, name: &Name) -> Option<&Sequence> {
        let key = name.lexical();
        self.vars
            .iter()
            .rev()
            .find(|(n, _)| *n == key)
            .map(|(_, v)| v)
    }
}

impl Default for EvalState {
    fn default() -> Self {
        Self::new()
    }
}

/// The evaluator: an environment plus the static context of the module
/// whose expressions it is currently evaluating.
pub struct Evaluator<'e> {
    pub env: &'e Environment,
    pub sctx: Arc<StaticContext>,
    /// Functions declared in the main module's prolog.
    pub local_functions: Arc<HashMap<(String, usize), Arc<FunctionDecl>>>,
}

/// Evaluate a main-module query text against an environment. Returns the
/// result sequence and the pending update list (empty for read-only
/// queries); the caller decides when to `apply_updates` — that split is
/// exactly what the paper's isolation levels manipulate (§2.3).
pub fn evaluate_main(query: &str, env: &Environment) -> XdmResult<(Sequence, PendingUpdateList)> {
    evaluate_main_with_vars(query, env, Vec::new())
}

/// Like [`evaluate_main`] but with externally bound variables.
pub fn evaluate_main_with_vars(
    query: &str,
    env: &Environment,
    external: Vec<(String, Sequence)>,
) -> XdmResult<(Sequence, PendingUpdateList)> {
    let module = xqast::parse_main_module(query)?;
    evaluate_parsed(&module, env, external)
}

/// Local function index of a main module: (local name, arity) → decl.
pub type LocalFunctions = HashMap<(String, usize), Arc<FunctionDecl>>;

/// The compile-once artifact of a main module: the parsed AST plus the
/// static analysis the evaluator would otherwise redo on every run (the
/// derived static context and the local-function index). This is what the
/// peer's keyed plan cache stores behind an `Arc` — executing a prepared
/// query touches no per-run allocation beyond the evaluation itself.
#[derive(Clone)]
pub struct CompiledMain {
    pub module: Arc<MainModule>,
    pub sctx: Arc<StaticContext>,
    pub local_functions: Arc<LocalFunctions>,
}

impl CompiledMain {
    /// Compile with the static context derived from the module's prolog.
    pub fn compile(module: Arc<MainModule>) -> Self {
        let sctx = StaticContext::from_prolog(&module.prolog);
        Self::compile_with(module, sctx)
    }

    /// Compile with an explicit static context (the peer injects its
    /// default base URI / collation into the prolog-derived context).
    pub fn compile_with(module: Arc<MainModule>, sctx: StaticContext) -> Self {
        CompiledMain {
            sctx: Arc::new(sctx),
            local_functions: Arc::new(local_functions_of(&module)),
            module,
        }
    }
}

/// Index a main module's locally declared functions.
pub fn local_functions_of(module: &MainModule) -> LocalFunctions {
    let mut local_functions = HashMap::new();
    for f in &module.prolog.functions {
        local_functions.insert((f.name.local.clone(), f.arity()), Arc::new(f.clone()));
    }
    local_functions
}

/// Evaluate an already-parsed main module (the function-cache path skips
/// re-parsing; paper §3.3 "Function Cache").
pub fn evaluate_parsed(
    module: &MainModule,
    env: &Environment,
    external: Vec<(String, Sequence)>,
) -> XdmResult<(Sequence, PendingUpdateList)> {
    let sctx = Arc::new(StaticContext::from_prolog(&module.prolog));
    let local_functions = Arc::new(local_functions_of(module));
    evaluate_with(module, sctx, local_functions, env, external)
}

/// Evaluate a compiled plan: the prepared-query fast path — no parse, no
/// static analysis, just the evaluation walk.
pub fn evaluate_compiled(
    plan: &CompiledMain,
    env: &Environment,
    external: Vec<(String, Sequence)>,
) -> XdmResult<(Sequence, PendingUpdateList)> {
    evaluate_with(
        &plan.module,
        plan.sctx.clone(),
        plan.local_functions.clone(),
        env,
        external,
    )
}

fn evaluate_with(
    module: &MainModule,
    sctx: Arc<StaticContext>,
    local_functions: Arc<LocalFunctions>,
    env: &Environment,
    external: Vec<(String, Sequence)>,
) -> XdmResult<(Sequence, PendingUpdateList)> {
    // Under an instrumented peer this nests an evaluation span inside the
    // ambient request trace; standalone callers pay one thread-local read.
    let _span = xrpc_obs::ambient_span("xqeval:evaluate");
    let ev = Evaluator {
        env,
        sctx,
        local_functions,
    };
    let mut st = EvalState::new();
    for (n, v) in external {
        st.vars.push((n, v));
    }
    eval_prolog_vars(&ev, module, &mut st)?;
    let res = ev.eval(&module.body, &mut st, &Ctx::none())?;
    Ok((res, st.pul))
}

/// Evaluate the prolog's variable declarations into `st`. External
/// variables (`declare variable $x external`) take the caller-supplied
/// binding already pushed into `st` — the parameter channel of a
/// prepared query — coerced to the declared type by the function
/// conversion rules; an unbound external without a default errors.
pub fn eval_prolog_vars(ev: &Evaluator, module: &MainModule, st: &mut EvalState) -> XdmResult<()> {
    for decl in &module.prolog.variables {
        if decl.external {
            if let Some(bound) = st.lookup(&decl.name) {
                let coerced = coerce_to_declared(bound.clone(), decl.ty.as_ref())?;
                st.vars.push((decl.name.lexical(), coerced));
                continue;
            }
        }
        let v = match &decl.value {
            Some(value) => ev.eval(value, st, &Ctx::none())?,
            None => {
                return Err(XdmError::new(
                    "XPDY0002",
                    format!("external variable ${} is not bound", decl.name.lexical()),
                ))
            }
        };
        st.vars.push((decl.name.lexical(), v));
    }
    Ok(())
}

/// Function-conversion-style coercion for externally bound values:
/// accept as-is when the declared type matches, else atomize + cast for
/// atomic target types.
fn coerce_to_declared(value: Sequence, ty: Option<&xdm::types::SeqType>) -> XdmResult<Sequence> {
    let Some(t) = ty else { return Ok(value) };
    if value.check_type(t).is_ok() {
        return Ok(value);
    }
    if let xdm::types::ItemKind::Atomic(at) = &t.kind {
        let items: XdmResult<Vec<Item>> = value
            .iter()
            .map(|i| i.atomize().cast_to(*at).map(Item::Atomic))
            .collect();
        let s = Sequence::from_items(items?);
        s.check_type(t)?;
        return Ok(s);
    }
    value.check_type(t)?;
    unreachable!()
}

impl<'e> Evaluator<'e> {
    pub fn new(env: &'e Environment, sctx: StaticContext) -> Self {
        Evaluator {
            env,
            sctx: Arc::new(sctx),
            local_functions: Arc::new(HashMap::new()),
        }
    }

    /// Run `f` under a profiled-operator guard when profiling is on,
    /// recording the result cardinality; one branch and a tail call when
    /// it is off.
    #[inline]
    fn profiled(
        &self,
        name: &str,
        f: impl FnOnce(&Self) -> XdmResult<Sequence>,
    ) -> XdmResult<Sequence> {
        let Some(mut guard) = self.env.profile_op(name) else {
            return f(self);
        };
        let r = f(self);
        if let Ok(seq) = &r {
            guard.set_items(seq.len() as u64);
        }
        r
    }

    /// Evaluate one expression.
    pub fn eval(&self, e: &Expr, st: &mut EvalState, ctx: &Ctx) -> XdmResult<Sequence> {
        match e {
            Expr::Literal(v) => Ok(Sequence::one(Item::Atomic(v.clone()))),
            Expr::VarRef(n) => st
                .lookup(n)
                .cloned()
                .ok_or_else(|| XdmError::undefined(format!("undefined variable ${}", n.lexical()))),
            Expr::ContextItem => match &ctx.item {
                Some(i) => Ok(Sequence::one(i.clone())),
                None => Err(XdmError::new("XPDY0002", "no context item")),
            },
            Expr::Sequence(es) => {
                let mut out = Sequence::empty();
                for x in es {
                    out.extend(self.eval(x, st, ctx)?);
                }
                Ok(out)
            }
            Expr::Range(a, b) => {
                let lo = self.eval_integer_opt(a, st, ctx)?;
                let hi = self.eval_integer_opt(b, st, ctx)?;
                match (lo, hi) {
                    (Some(lo), Some(hi)) if lo <= hi => {
                        Ok(Sequence::from_items((lo..=hi).map(Item::integer).collect()))
                    }
                    _ => Ok(Sequence::empty()),
                }
            }
            Expr::Arith(op, a, b) => {
                let va = self.eval(a, st, ctx)?;
                let vb = self.eval(b, st, ctx)?;
                let (Some(ia), Some(ib)) = (va.zero_or_one()?, vb.zero_or_one()?) else {
                    return Ok(Sequence::empty());
                };
                Ok(Sequence::one(Item::Atomic(ops::arith(
                    *op,
                    &ia.atomize(),
                    &ib.atomize(),
                )?)))
            }
            Expr::Neg(a) => {
                let v = self.eval(a, st, ctx)?;
                match v.zero_or_one()? {
                    None => Ok(Sequence::empty()),
                    Some(i) => Ok(Sequence::one(Item::Atomic(ops::negate(&i.atomize())?))),
                }
            }
            Expr::ValueComp(op, a, b) => {
                let va = self.eval(a, st, ctx)?;
                let vb = self.eval(b, st, ctx)?;
                let (Some(ia), Some(ib)) = (va.zero_or_one()?, vb.zero_or_one()?) else {
                    return Ok(Sequence::empty());
                };
                let ord = ia.atomize().value_cmp(&ib.atomize())?;
                Ok(Sequence::one(Item::boolean(comp_matches(*op, ord))))
            }
            Expr::GeneralComp(op, a, b) => {
                let va = self.eval(a, st, ctx)?;
                let vb = self.eval(b, st, ctx)?;
                Ok(Sequence::one(Item::boolean(general_compare(
                    *op, &va, &vb,
                )?)))
            }
            Expr::NodeComp(op, a, b) => {
                let va = self.eval(a, st, ctx)?;
                let vb = self.eval(b, st, ctx)?;
                let (Some(ia), Some(ib)) = (va.zero_or_one()?, vb.zero_or_one()?) else {
                    return Ok(Sequence::empty());
                };
                let (Item::Node(na), Item::Node(nb)) = (ia, ib) else {
                    return Err(XdmError::type_error("node comparison on non-nodes"));
                };
                let r = match op {
                    NodeCompOp::Is => na.same_node(nb),
                    NodeCompOp::Precedes => cmp_handles(na, nb) == std::cmp::Ordering::Less,
                    NodeCompOp::Follows => cmp_handles(na, nb) == std::cmp::Ordering::Greater,
                };
                Ok(Sequence::one(Item::boolean(r)))
            }
            Expr::And(a, b) => {
                let va = self.eval(a, st, ctx)?.ebv()?;
                if !va {
                    return Ok(Sequence::one(Item::boolean(false)));
                }
                let vb = self.eval(b, st, ctx)?.ebv()?;
                Ok(Sequence::one(Item::boolean(vb)))
            }
            Expr::Or(a, b) => {
                let va = self.eval(a, st, ctx)?.ebv()?;
                if va {
                    return Ok(Sequence::one(Item::boolean(true)));
                }
                let vb = self.eval(b, st, ctx)?.ebv()?;
                Ok(Sequence::one(Item::boolean(vb)))
            }
            Expr::Union(a, b) => {
                let mut nodes = self.eval_nodes(a, st, ctx, "union")?;
                nodes.extend(self.eval_nodes(b, st, ctx, "union")?);
                sort_dedup(&mut nodes);
                Ok(Sequence::from_items(
                    nodes.into_iter().map(Item::Node).collect(),
                ))
            }
            Expr::Intersect(a, b) => {
                let na = self.eval_nodes(a, st, ctx, "intersect")?;
                let nb = self.eval_nodes(b, st, ctx, "intersect")?;
                let mut out: Vec<NodeHandle> = na
                    .into_iter()
                    .filter(|x| nb.iter().any(|y| y.same_node(x)))
                    .collect();
                sort_dedup(&mut out);
                Ok(Sequence::from_items(
                    out.into_iter().map(Item::Node).collect(),
                ))
            }
            Expr::Except(a, b) => {
                let na = self.eval_nodes(a, st, ctx, "except")?;
                let nb = self.eval_nodes(b, st, ctx, "except")?;
                let mut out: Vec<NodeHandle> = na
                    .into_iter()
                    .filter(|x| !nb.iter().any(|y| y.same_node(x)))
                    .collect();
                sort_dedup(&mut out);
                Ok(Sequence::from_items(
                    out.into_iter().map(Item::Node).collect(),
                ))
            }
            Expr::If { cond, then, els } => {
                if self.eval(cond, st, ctx)?.ebv()? {
                    self.eval(then, st, ctx)
                } else {
                    self.eval(els, st, ctx)
                }
            }
            Expr::Flwor { clauses, ret } => {
                self.profiled("xq:flwor", |ev| ev.eval_flwor(clauses, ret, st, ctx))
            }
            Expr::Quantified {
                quantifier,
                bindings,
                satisfies,
            } => self.eval_quantified(*quantifier, bindings, satisfies, st, ctx),
            Expr::Typeswitch {
                operand,
                cases,
                default_var,
                default,
            } => {
                let v = self.eval(operand, st, ctx)?;
                for case in cases {
                    if v.check_type(&case.ty).is_ok() {
                        let base = st.vars.len();
                        if let Some(var) = &case.var {
                            st.bind(var, v.clone());
                        }
                        let r = self.eval(&case.body, st, ctx);
                        st.vars.truncate(base);
                        return r;
                    }
                }
                let base = st.vars.len();
                if let Some(var) = default_var {
                    st.bind(var, v);
                }
                let r = self.eval(default, st, ctx);
                st.vars.truncate(base);
                r
            }
            Expr::Root(rest) => {
                let node = match &ctx.item {
                    Some(Item::Node(n)) => n.clone(),
                    _ => {
                        return Err(XdmError::new(
                            "XPDY0002",
                            "`/` requires a node context item",
                        ))
                    }
                };
                let root = NodeHandle::root(node.doc.clone());
                match rest {
                    None => Ok(Sequence::one(Item::Node(root))),
                    Some(r) => self.eval(r, st, &Ctx::of(Item::Node(root))),
                }
            }
            Expr::PathStep(a, b) => self.profiled("xq:path-step", |ev| {
                // Join-index fast path for the `base//elem[@attr = v]`
                // shape: `//` parses as an intermediate descendant-or-self
                // step, so peel it off and probe the per-document index.
                if ev.env.join_index {
                    if let Expr::PathStep(inner_base, dos) = a.as_ref() {
                        if matches!(
                            dos.as_ref(),
                            Expr::AxisStep {
                                axis: Axis::DescendantOrSelf,
                                test: NodeTest::AnyKind,
                                predicates,
                            } if predicates.is_empty()
                        ) {
                            let base = ev.eval(inner_base, st, ctx)?;
                            if let Some(r) = ev.try_join_index(&base, b, st, true)? {
                                return Ok(r);
                            }
                            // fall back: continue with the dos expansion
                            let expanded = ev.eval_path_rhs(&base, dos, st)?;
                            return ev.eval_path_rhs(&expanded, b, st);
                        }
                    }
                }
                let base = ev.eval(a, st, ctx)?;
                ev.eval_path_rhs(&base, b, st)
            }),
            Expr::AxisStep {
                axis,
                test,
                predicates,
            } => {
                let node = match &ctx.item {
                    Some(Item::Node(n)) => n.clone(),
                    Some(_) => {
                        return Err(XdmError::type_error("axis step on a non-node context item"))
                    }
                    None => {
                        return Err(XdmError::new("XPDY0002", "axis step with no context item"))
                    }
                };
                let mut nodes = self.axis_nodes(&node, *axis, test)?;
                let reverse = matches!(
                    axis,
                    Axis::Parent
                        | Axis::Ancestor
                        | Axis::AncestorOrSelf
                        | Axis::PrecedingSibling
                        | Axis::Preceding
                );
                let items: Vec<Item> = nodes.drain(..).map(Item::Node).collect();
                let filtered = self.apply_predicates(items, predicates, st)?;
                // steps deliver document order regardless of axis direction
                let mut handles: Vec<NodeHandle> = filtered
                    .into_iter()
                    .map(|i| match i {
                        Item::Node(n) => n,
                        _ => unreachable!("axis produces nodes"),
                    })
                    .collect();
                if reverse {
                    handles.reverse();
                }
                Ok(Sequence::from_items(
                    handles.into_iter().map(Item::Node).collect(),
                ))
            }
            Expr::Filter(base, predicates) => {
                let v = self.eval(base, st, ctx)?;
                let filtered = self.apply_predicates(v.into_items(), predicates, st)?;
                Ok(Sequence::from_items(filtered))
            }
            Expr::FunctionCall { name, args } => self.profiled("xq:function-call", |ev| {
                ev.eval_function_call(name, args, st, ctx)
            }),
            Expr::ExecuteAt { dest, call } => self.profiled("xq:execute-at", |ev| {
                ev.eval_execute_at(dest, call, st, ctx)
            }),
            Expr::DirectElem(d) => {
                let mut doc = Document::new();
                let id = self.construct_direct(d, &mut doc, st, ctx)?;
                let root = doc.root();
                doc.append_child(root, id);
                let arc = Arc::new(doc);
                Ok(Sequence::one(Item::Node(NodeHandle::new(
                    arc.clone(),
                    arc.children(arc.root())[0],
                ))))
            }
            Expr::CompElem { name, content } => {
                let qname = self.comp_qname(name, st, ctx, true)?;
                let mut doc = Document::new();
                let elem = doc.create_element(qname);
                if let Some(c) = content {
                    let v = self.eval(c, st, ctx)?;
                    attach_content(&mut doc, elem, &v)?;
                }
                let root = doc.root();
                doc.append_child(root, elem);
                let arc = Arc::new(doc);
                Ok(Sequence::one(Item::Node(NodeHandle::new(
                    arc.clone(),
                    arc.children(arc.root())[0],
                ))))
            }
            Expr::CompAttr { name, content } => {
                let qname = self.comp_qname(name, st, ctx, false)?;
                let value = match content {
                    Some(c) => self
                        .eval(c, st, ctx)?
                        .atomized()
                        .iter()
                        .map(|v| v.lexical())
                        .collect::<Vec<_>>()
                        .join(" "),
                    None => String::new(),
                };
                let mut doc = Document::new();
                let a = doc.create_attribute(qname, value);
                let arc = Arc::new(doc);
                Ok(Sequence::one(Item::Node(NodeHandle::new(arc, a))))
            }
            Expr::CompText(c) => {
                let v = self.eval(c, st, ctx)?;
                if v.is_empty() {
                    return Ok(Sequence::empty());
                }
                let text = v
                    .atomized()
                    .iter()
                    .map(|a| a.lexical())
                    .collect::<Vec<_>>()
                    .join(" ");
                let mut doc = Document::new();
                let t = doc.create_text(text);
                let arc = Arc::new(doc);
                Ok(Sequence::one(Item::Node(NodeHandle::new(arc, t))))
            }
            Expr::CompComment(c) => {
                let v = self.eval(c, st, ctx)?;
                let text = v.joined_string();
                let mut doc = Document::new();
                let t = doc.create_comment(text);
                let arc = Arc::new(doc);
                Ok(Sequence::one(Item::Node(NodeHandle::new(arc, t))))
            }
            Expr::CompPi { target, content } => {
                let t = match target {
                    CompName::Const(n) => n.local.clone(),
                    CompName::Computed(e) => self.eval(e, st, ctx)?.singleton()?.string_value(),
                };
                let data = match content {
                    Some(c) => self.eval(c, st, ctx)?.joined_string(),
                    None => String::new(),
                };
                let mut doc = Document::new();
                let p = doc.create_pi(t, data);
                let arc = Arc::new(doc);
                Ok(Sequence::one(Item::Node(NodeHandle::new(arc, p))))
            }
            Expr::CompDoc(c) => {
                let v = self.eval(c, st, ctx)?;
                let mut doc = Document::new();
                let root = doc.root();
                attach_content(&mut doc, root, &v)?;
                let arc = Arc::new(doc);
                Ok(Sequence::one(Item::Node(NodeHandle::root(arc))))
            }
            Expr::InstanceOf(a, t) => {
                let v = self.eval(a, st, ctx)?;
                Ok(Sequence::one(Item::boolean(v.check_type(t).is_ok())))
            }
            Expr::TreatAs(a, t) => {
                let v = self.eval(a, st, ctx)?;
                v.check_type(t)?;
                Ok(v)
            }
            Expr::CastAs {
                expr,
                ty,
                allow_empty,
            } => {
                let v = self.eval(expr, st, ctx)?;
                let target = AtomicType::from_xs_name(&ty.lexical()).ok_or_else(|| {
                    XdmError::type_error(format!("unknown cast target `{}`", ty.lexical()))
                })?;
                match v.zero_or_one()? {
                    None if *allow_empty => Ok(Sequence::empty()),
                    None => Err(XdmError::type_error("cast of empty sequence")),
                    Some(i) => Ok(Sequence::one(Item::Atomic(i.atomize().cast_to(target)?))),
                }
            }
            Expr::CastableAs {
                expr,
                ty,
                allow_empty,
            } => {
                let v = self.eval(expr, st, ctx)?;
                let Some(target) = AtomicType::from_xs_name(&ty.lexical()) else {
                    return Ok(Sequence::one(Item::boolean(false)));
                };
                let r = match v.zero_or_one() {
                    Err(_) => false,
                    Ok(None) => *allow_empty,
                    Ok(Some(i)) => i.atomize().cast_to(target).is_ok(),
                };
                Ok(Sequence::one(Item::boolean(r)))
            }
            // ---- XQUF ----
            Expr::Insert {
                source,
                target,
                pos,
            } => {
                let content: Vec<NodeHandle> = self
                    .eval(source, st, ctx)?
                    .into_items()
                    .into_iter()
                    .map(|i| match i {
                        Item::Node(n) => Ok(n),
                        _ => Err(XdmError::type_error("insert source must be nodes")),
                    })
                    .collect::<XdmResult<_>>()?;
                let t = self.eval_single_node(target, st, ctx, "insert target")?;
                st.pul.push(match pos {
                    InsertPos::Into => UpdatePrimitive::InsertInto { target: t, content },
                    InsertPos::AsFirstInto => UpdatePrimitive::InsertFirst { target: t, content },
                    InsertPos::AsLastInto => UpdatePrimitive::InsertLast { target: t, content },
                    InsertPos::Before => UpdatePrimitive::InsertBefore { target: t, content },
                    InsertPos::After => UpdatePrimitive::InsertAfter { target: t, content },
                });
                Ok(Sequence::empty())
            }
            Expr::Delete { target } => {
                let v = self.eval(target, st, ctx)?;
                for i in v.items() {
                    match i {
                        Item::Node(n) => st.pul.push(UpdatePrimitive::Delete { target: n.clone() }),
                        _ => return Err(XdmError::type_error("delete target must be nodes")),
                    }
                }
                Ok(Sequence::empty())
            }
            Expr::ReplaceNode { target, with } => {
                let t = self.eval_single_node(target, st, ctx, "replace target")?;
                let replacement: Vec<NodeHandle> = self
                    .eval(with, st, ctx)?
                    .into_items()
                    .into_iter()
                    .map(|i| match i {
                        Item::Node(n) => Ok(n),
                        _ => Err(XdmError::type_error("replacement must be nodes")),
                    })
                    .collect::<XdmResult<_>>()?;
                st.pul.push(UpdatePrimitive::ReplaceNode {
                    target: t,
                    replacement,
                });
                Ok(Sequence::empty())
            }
            Expr::ReplaceValue { target, with } => {
                let t = self.eval_single_node(target, st, ctx, "replace target")?;
                let value = self.eval(with, st, ctx)?.joined_string();
                st.pul
                    .push(UpdatePrimitive::ReplaceValue { target: t, value });
                Ok(Sequence::empty())
            }
            Expr::Rename { target, name } => {
                let t = self.eval_single_node(target, st, ctx, "rename target")?;
                let lex = self.eval(name, st, ctx)?.singleton()?.string_value();
                let qname = self.lex_to_qname(&lex, false)?;
                st.pul.push(UpdatePrimitive::Rename {
                    target: t,
                    name: qname,
                });
                Ok(Sequence::empty())
            }
        }
    }

    // ------------------------------------------------------------------
    // FLWOR
    // ------------------------------------------------------------------

    fn eval_flwor(
        &self,
        clauses: &[FlworClause],
        ret: &Expr,
        st: &mut EvalState,
        ctx: &Ctx,
    ) -> XdmResult<Sequence> {
        // Hash-join fast path: `for $a in X, $b in Y where keyA($a) = keyB($b)`
        // becomes a build+probe join instead of a nested loop — the same
        // join detection the paper observes in Saxon (§4).
        if self.env.join_index {
            if let Some(result) = self.try_flwor_hash_join(clauses, ret, st, ctx)? {
                return Ok(result);
            }
        }
        // Split off a trailing OrderBy.
        let (stream_clauses, order_specs) = match clauses.last() {
            Some(FlworClause::OrderBy(specs)) => (&clauses[..clauses.len() - 1], Some(specs)),
            _ => (clauses, None),
        };
        let base = st.vars.len();
        let mut out = Sequence::empty();
        if let Some(specs) = order_specs {
            // Materialize tuples, compute keys, sort, then evaluate return.
            let mut tuples: Vec<(Bindings, OrderKeys)> = Vec::new();
            self.stream(stream_clauses, st, ctx, &mut |ev, st2| {
                let binding = st2.vars[base..].to_vec();
                let mut keys = Vec::new();
                for spec in specs {
                    let kv = ev.eval(&spec.key, st2, ctx)?;
                    keys.push(kv.zero_or_one()?.map(|i| i.atomize()));
                }
                tuples.push((binding, keys));
                Ok(())
            })?;
            tuples.sort_by(|(_, ka), (_, kb)| {
                for (spec, (x, y)) in specs.iter().zip(ka.iter().zip(kb.iter())) {
                    let ord = match (x, y) {
                        (None, None) => std::cmp::Ordering::Equal,
                        (None, Some(_)) => {
                            if spec.empty_least {
                                std::cmp::Ordering::Less
                            } else {
                                std::cmp::Ordering::Greater
                            }
                        }
                        (Some(_), None) => {
                            if spec.empty_least {
                                std::cmp::Ordering::Greater
                            } else {
                                std::cmp::Ordering::Less
                            }
                        }
                        (Some(a), Some(b)) => a.value_cmp(b).unwrap_or(std::cmp::Ordering::Equal),
                    };
                    let ord = if spec.descending { ord.reverse() } else { ord };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
            for (binding, _) in tuples {
                st.vars.truncate(base);
                st.vars.extend(binding);
                out.extend(self.eval(ret, st, ctx)?);
            }
        } else {
            self.stream(stream_clauses, st, ctx, &mut |ev, st2| {
                let r = ev.eval(ret, st2, ctx)?;
                out.extend(r);
                Ok(())
            })?;
        }
        st.vars.truncate(base);
        Ok(out)
    }

    /// Recognize `for $a in X, $b in Y where l($a) = r($b) …` and execute
    /// it as a hash join (build on Y, probe per $a). Only string-class
    /// keys are joined this way (the general-comparison coercion for
    /// untyped/string operands is plain string equality); anything else
    /// falls back to the nested-loop stream. Result order is identical to
    /// the naive evaluation: X order, then Y order per match.
    fn try_flwor_hash_join(
        &self,
        clauses: &[FlworClause],
        ret: &Expr,
        st: &mut EvalState,
        ctx: &Ctx,
    ) -> XdmResult<Option<Sequence>> {
        let [FlworClause::For {
            var: a_var,
            pos_var: None,
            seq: x_seq,
        }, FlworClause::For {
            var: b_var,
            pos_var: None,
            seq: y_seq,
        }, FlworClause::Where(Expr::GeneralComp(CompOp::Eq, l, r)), rest @ ..] = clauses
        else {
            return Ok(None);
        };
        // No trailing order-by (it would need the tuple materialization).
        if rest.iter().any(|c| matches!(c, FlworClause::OrderBy(_))) {
            return Ok(None);
        }
        // Side-effecting bodies (updates, RPC) must not be partially run
        // and then re-run by the naive fallback: skip the fast path.
        let mut effectful = false;
        for c in clauses {
            match c {
                FlworClause::For { seq, .. } => seq.walk(&mut |x| {
                    if x.is_updating_expr() || matches!(x, Expr::ExecuteAt { .. }) {
                        effectful = true;
                    }
                }),
                FlworClause::Let { value, .. } => value.walk(&mut |x| {
                    if x.is_updating_expr() || matches!(x, Expr::ExecuteAt { .. }) {
                        effectful = true;
                    }
                }),
                FlworClause::Where(w) => w.walk(&mut |x| {
                    if x.is_updating_expr() || matches!(x, Expr::ExecuteAt { .. }) {
                        effectful = true;
                    }
                }),
                FlworClause::OrderBy(_) => {}
            }
        }
        ret.walk(&mut |x| {
            if x.is_updating_expr() || matches!(x, Expr::ExecuteAt { .. }) {
                effectful = true;
            }
        });
        if effectful {
            return Ok(None);
        }
        // Node constructors in Y would get fresh identities per naive
        // iteration; evaluating Y once changes `is` semantics — skip.
        let mut y_constructs = false;
        y_seq.walk(&mut |x| {
            if matches!(
                x,
                Expr::DirectElem(_)
                    | Expr::CompElem { .. }
                    | Expr::CompAttr { .. }
                    | Expr::CompText(_)
                    | Expr::CompComment(_)
                    | Expr::CompPi { .. }
                    | Expr::CompDoc(_)
            ) {
                y_constructs = true;
            }
        });
        if y_constructs {
            return Ok(None);
        }
        let a_name = a_var.lexical();
        let b_name = b_var.lexical();
        // Y must not depend on $a; l on $a-side only; r on $b-side only
        // (or swapped).
        let y_free = free_var_names(y_seq);
        if y_free.contains(&a_name) {
            return Ok(None);
        }
        let l_free = free_var_names(l);
        let r_free = free_var_names(r);
        let (a_key, b_key) = if l_free.contains(&a_name)
            && !l_free.contains(&b_name)
            && r_free.contains(&b_name)
            && !r_free.contains(&a_name)
        {
            (l, r)
        } else if r_free.contains(&a_name)
            && !r_free.contains(&b_name)
            && l_free.contains(&b_name)
            && !l_free.contains(&a_name)
        {
            (r, l)
        } else {
            return Ok(None);
        };

        let x_items = self.eval(x_seq, st, ctx)?.into_items();
        let y_items = self.eval(y_seq, st, ctx)?.into_items();
        // Build side: key strings per Y item; bail out on non-string keys.
        let mut table: std::collections::HashMap<String, Vec<usize>> =
            std::collections::HashMap::new();
        for (yi, y) in y_items.iter().enumerate() {
            let depth = st.vars.len();
            st.bind(b_var, Sequence::one(y.clone()));
            let keys = self.eval(b_key, st, ctx);
            st.vars.truncate(depth);
            for k in keys?.atomized() {
                match string_class_key(&k) {
                    Some(s) => table.entry(s).or_default().push(yi),
                    None => return Ok(None),
                }
            }
        }

        let mut out = Sequence::empty();
        for x in x_items {
            let depth = st.vars.len();
            st.bind(a_var, Sequence::one(x));
            let probe_keys = self.eval(a_key, st, ctx)?;
            let mut hits: Vec<usize> = Vec::new();
            let mut abort = false;
            for k in probe_keys.atomized() {
                match string_class_key(&k) {
                    Some(s) => {
                        if let Some(v) = table.get(&s) {
                            hits.extend_from_slice(v);
                        }
                    }
                    None => abort = true,
                }
            }
            if abort {
                st.vars.truncate(depth);
                return Ok(None);
            }
            hits.sort_unstable();
            hits.dedup();
            for yi in hits {
                let d2 = st.vars.len();
                st.bind(b_var, Sequence::one(y_items[yi].clone()));
                self.stream(rest, st, ctx, &mut |ev, st2| {
                    out.extend(ev.eval(ret, st2, ctx)?);
                    Ok(())
                })?;
                st.vars.truncate(d2);
            }
            st.vars.truncate(depth);
        }
        Ok(Some(out))
    }

    /// Drive the tuple stream of for/let/where clauses, invoking `sink`
    /// once per surviving tuple (variables bound in `st`).
    fn stream(
        &self,
        clauses: &[FlworClause],
        st: &mut EvalState,
        ctx: &Ctx,
        sink: &mut dyn FnMut(&Evaluator, &mut EvalState) -> XdmResult<()>,
    ) -> XdmResult<()> {
        match clauses.first() {
            None => sink(self, st),
            Some(FlworClause::For { var, pos_var, seq }) => {
                let v = self.eval(seq, st, ctx)?;
                for (i, item) in v.into_items().into_iter().enumerate() {
                    self.env.check_cancel()?;
                    let depth = st.vars.len();
                    st.bind(var, Sequence::one(item));
                    if let Some(pv) = pos_var {
                        st.bind(pv, Sequence::one(Item::integer(i as i64 + 1)));
                    }
                    self.stream(&clauses[1..], st, ctx, sink)?;
                    st.vars.truncate(depth);
                }
                Ok(())
            }
            Some(FlworClause::Let { var, value }) => {
                let v = self.eval(value, st, ctx)?;
                let depth = st.vars.len();
                st.bind(var, v);
                self.stream(&clauses[1..], st, ctx, sink)?;
                st.vars.truncate(depth);
                Ok(())
            }
            Some(FlworClause::Where(cond)) => {
                if self.eval(cond, st, ctx)?.ebv()? {
                    self.stream(&clauses[1..], st, ctx, sink)?;
                }
                Ok(())
            }
            Some(FlworClause::OrderBy(_)) => {
                Err(XdmError::syntax("order by must be the last FLWOR clause"))
            }
        }
    }

    fn eval_quantified(
        &self,
        q: Quantifier,
        bindings: &[(Name, Expr)],
        satisfies: &Expr,
        st: &mut EvalState,
        ctx: &Ctx,
    ) -> XdmResult<Sequence> {
        fn rec(
            ev: &Evaluator,
            q: Quantifier,
            bindings: &[(Name, Expr)],
            satisfies: &Expr,
            st: &mut EvalState,
            ctx: &Ctx,
        ) -> XdmResult<bool> {
            match bindings.first() {
                None => ev.eval(satisfies, st, ctx)?.ebv(),
                Some((var, seq)) => {
                    let v = ev.eval(seq, st, ctx)?;
                    for item in v.into_items() {
                        ev.env.check_cancel()?;
                        let depth = st.vars.len();
                        st.bind(var, Sequence::one(item));
                        let r = rec(ev, q, &bindings[1..], satisfies, st, ctx)?;
                        st.vars.truncate(depth);
                        match q {
                            Quantifier::Some if r => return Ok(true),
                            Quantifier::Every if !r => return Ok(false),
                            _ => {}
                        }
                    }
                    Ok(matches!(q, Quantifier::Every))
                }
            }
        }
        let r = rec(self, q, bindings, satisfies, st, ctx)?;
        Ok(Sequence::one(Item::boolean(r)))
    }

    // ------------------------------------------------------------------
    // Paths
    // ------------------------------------------------------------------

    /// Apply a path step expression to an already-evaluated base sequence
    /// (public: the loop-lifted engine reuses this per iteration).
    pub fn eval_path_rhs(
        &self,
        base: &Sequence,
        rhs: &Expr,
        st: &mut EvalState,
    ) -> XdmResult<Sequence> {
        // Join-index fast path (see index.rs): `base/step[@attr = value]`
        if self.env.join_index {
            if let Some(result) = self.try_join_index(base, rhs, st, false)? {
                return Ok(result);
            }
        }
        let size = base.len();
        let mut node_results: Vec<NodeHandle> = Vec::new();
        let mut atomic_results: Vec<Item> = Vec::new();
        for (i, item) in base.iter().enumerate() {
            self.env.check_cancel()?;
            match item {
                Item::Node(_) => {}
                _ => return Err(XdmError::type_error("path step applied to a non-node")),
            }
            let c = Ctx {
                item: Some(item.clone()),
                pos: i + 1,
                size,
            };
            let r = self.eval(rhs, st, &c)?;
            for it in r.into_items() {
                match it {
                    Item::Node(n) => node_results.push(n),
                    a => atomic_results.push(a),
                }
            }
        }
        if !node_results.is_empty() && !atomic_results.is_empty() {
            return Err(XdmError::type_error(
                "path result mixes nodes and atomic values",
            ));
        }
        if atomic_results.is_empty() {
            // A forward-axis step over a single context node is already in
            // document order with no duplicates (axes emit forward axes in
            // document order; predicates only filter) — skip the sort.
            let already_ordered = size <= 1
                && matches!(
                    rhs,
                    Expr::AxisStep {
                        axis: Axis::Child
                            | Axis::Descendant
                            | Axis::DescendantOrSelf
                            | Axis::Attribute
                            | Axis::SelfAxis
                            | Axis::FollowingSibling
                            | Axis::Following,
                        ..
                    }
                );
            if !already_ordered {
                sort_dedup(&mut node_results);
            }
            Ok(Sequence::from_items(
                node_results.into_iter().map(Item::Node).collect(),
            ))
        } else {
            Ok(Sequence::from_items(atomic_results))
        }
    }

    /// Recognize `descendant-ish::elem[@attr = $v]` applied to a document
    /// root over a large document, and answer it from the join index.
    fn try_join_index(
        &self,
        base: &Sequence,
        rhs: &Expr,
        st: &mut EvalState,
        via_dos: bool,
    ) -> XdmResult<Option<Sequence>> {
        let Expr::AxisStep {
            axis: axis @ (Axis::Child | Axis::Descendant | Axis::DescendantOrSelf),
            test: NodeTest::Name(elem_name),
            predicates,
        } = rhs
        else {
            return Ok(None);
        };
        let child_only = matches!(axis, Axis::Child) && !via_dos;
        if predicates.len() != 1 || elem_name.prefix.is_some() {
            return Ok(None);
        }
        let Expr::GeneralComp(CompOp::Eq, lhs, val) = &predicates[0] else {
            return Ok(None);
        };
        // The key side must be a simple downward path relative to the
        // candidate element (e.g. `@id`, `buyer/@person`, `name`).
        let Some(fingerprint) = simple_key_path(lhs) else {
            return Ok(None);
        };
        // The comparison value must not depend on the inner focus.
        if expr_uses_focus(val) {
            return Ok(None);
        }
        // Base: a single node whose subtree is worth indexing. We only take
        // the fast path when the base is one node (e.g. one document) —
        // that is the bulk-call pattern the paper's §4 experiment uses.
        let [Item::Node(root)] = base.items() else {
            return Ok(None);
        };
        // Heuristic: only index reasonably large documents.
        if root.doc.len() < 256 {
            return Ok(None);
        }
        let value = self
            .eval(val, st, &Ctx::none())?
            .zero_or_one()?
            .map(|i| i.string_value());
        let Some(value) = value else {
            return Ok(Some(Sequence::empty()));
        };
        let index = match self
            .env
            .join_cache
            .get(&root.doc, &elem_name.local, &fingerprint)
        {
            Some(m) => {
                self.env.stats.lock().join_index_hits += 1;
                m
            }
            None => {
                // Build: one pass over all elements with the wanted name,
                // evaluating the key path per element. Seed the walk with
                // the attached tree AND every detached fragment root —
                // marshaled parameters share the message arena without
                // being reachable from slot 0; the ancestor filter below
                // scopes hits back to the base node's own fragment.
                let mut map = crate::index::ValueIndex::new();
                let mut stack = vec![root.doc.root()];
                for id in root.doc.all_ids().skip(1) {
                    if root.doc.node(id).parent.is_none() {
                        stack.push(id);
                    }
                }
                let mut order = Vec::new();
                while let Some(id) = stack.pop() {
                    order.push(id);
                    for &c in root.doc.children(id).iter().rev() {
                        if root.doc.kind(c) == NodeKind::Element {
                            stack.push(c);
                        }
                    }
                }
                for id in order {
                    if root.doc.kind(id) != NodeKind::Element {
                        continue;
                    }
                    if root
                        .doc
                        .node(id)
                        .name
                        .as_ref()
                        .is_none_or(|n| n.local != elem_name.local)
                    {
                        continue;
                    }
                    let h = NodeHandle::new(root.doc.clone(), id);
                    let keys = self.eval(lhs, st, &Ctx::of(Item::Node(h)))?;
                    for k in keys.atomized() {
                        map.entry(k.lexical()).or_default().push(id);
                    }
                }
                self.env.stats.lock().join_index_builds += 1;
                self.env
                    .join_cache
                    .insert(&root.doc, &elem_name.local, &fingerprint, map)
            }
        };
        let mut hits: Vec<NodeHandle> = index
            .get(&value)
            .map(|ids| {
                ids.iter()
                    .map(|&id| NodeHandle::new(root.doc.clone(), id))
                    .collect()
            })
            .unwrap_or_default();
        // The index spans the whole document; restrict hits to the base
        // node's children (child axis) or strict descendants.
        if child_only {
            hits.retain(|h| h.doc.node(h.id).parent == Some(root.id));
        } else {
            hits.retain(|h| {
                h.id != root.id && xmldom::order::is_ancestor(&root.doc, root.id, h.id)
            });
        }
        Ok(Some(Sequence::from_items(
            hits.into_iter().map(Item::Node).collect(),
        )))
    }

    fn axis_nodes(
        &self,
        node: &NodeHandle,
        axis: Axis,
        test: &NodeTest,
    ) -> XdmResult<Vec<NodeHandle>> {
        let dom_axis = match axis {
            Axis::Child => axes::Axis::Child,
            Axis::Descendant => axes::Axis::Descendant,
            Axis::DescendantOrSelf => axes::Axis::DescendantOrSelf,
            Axis::Parent => axes::Axis::Parent,
            Axis::Ancestor => axes::Axis::Ancestor,
            Axis::AncestorOrSelf => axes::Axis::AncestorOrSelf,
            Axis::FollowingSibling => axes::Axis::FollowingSibling,
            Axis::PrecedingSibling => axes::Axis::PrecedingSibling,
            Axis::Following => axes::Axis::Following,
            Axis::Preceding => axes::Axis::Preceding,
            Axis::Attribute => axes::Axis::Attribute,
            Axis::SelfAxis => axes::Axis::SelfAxis,
        };
        let principal_attr = matches!(axis, Axis::Attribute);
        let nodes = axes::step(node, dom_axis);
        Ok(nodes
            .into_iter()
            .filter(|n| self.test_matches(n, test, principal_attr))
            .collect())
    }

    fn test_matches(&self, n: &NodeHandle, test: &NodeTest, principal_attr: bool) -> bool {
        let principal_kind = if principal_attr {
            NodeKind::Attribute
        } else {
            NodeKind::Element
        };
        match test {
            NodeTest::AnyKind => true,
            NodeTest::Text => n.kind() == NodeKind::Text,
            NodeTest::Comment => n.kind() == NodeKind::Comment,
            NodeTest::Pi(target) => {
                n.kind() == NodeKind::ProcessingInstruction
                    && target
                        .as_ref()
                        .map(|t| n.name().is_some_and(|q| &q.local == t))
                        .unwrap_or(true)
            }
            NodeTest::DocumentTest => n.kind() == NodeKind::Document,
            NodeTest::AnyName => n.kind() == principal_kind,
            NodeTest::Element(name) => {
                n.kind() == NodeKind::Element
                    && name
                        .as_ref()
                        .map(|nm| self.name_matches(n, nm, false))
                        .unwrap_or(true)
            }
            NodeTest::AttributeTest(name) => {
                n.kind() == NodeKind::Attribute
                    && name
                        .as_ref()
                        .map(|nm| self.name_matches(n, nm, true))
                        .unwrap_or(true)
            }
            NodeTest::NsWildcard(prefix) => {
                n.kind() == principal_kind && {
                    let uri = self.sctx.resolve_prefix(prefix);
                    n.name().is_some_and(|q| q.ns_uri.as_deref() == uri)
                }
            }
            NodeTest::LocalWildcard(local) => {
                n.kind() == principal_kind && n.name().is_some_and(|q| &q.local == local)
            }
            NodeTest::Name(name) => {
                n.kind() == principal_kind && self.name_matches(n, name, principal_attr)
            }
        }
    }

    fn name_matches(&self, n: &NodeHandle, name: &Name, is_attr: bool) -> bool {
        let Some(q) = n.name() else { return false };
        if q.local != name.local {
            return false;
        }
        let expected_uri = match &name.prefix {
            Some(p) => self.sctx.resolve_prefix(p).map(|s| s.to_string()),
            // Unprefixed name tests use the default element namespace for
            // elements, no namespace for attributes.
            None if is_attr => None,
            None => self.sctx.default_element_ns.clone(),
        };
        normalize_uri(&q.ns_uri) == normalize_uri(&expected_uri)
    }

    fn apply_predicates(
        &self,
        items: Vec<Item>,
        predicates: &[Expr],
        st: &mut EvalState,
    ) -> XdmResult<Vec<Item>> {
        let mut current = items;
        for p in predicates {
            let size = current.len();
            let mut next = Vec::new();
            for (i, item) in current.into_iter().enumerate() {
                self.env.check_cancel()?;
                let c = Ctx {
                    item: Some(item.clone()),
                    pos: i + 1,
                    size,
                };
                let v = self.eval(p, st, &c)?;
                // numeric predicate = position test
                let keep = if v.len() == 1 {
                    if let Some(a) = v.items()[0].as_atomic() {
                        if a.atomic_type().is_numeric() {
                            let pos = a.cast_to(AtomicType::Double)?;
                            match pos {
                                AtomicValue::Double(d) => d == (i + 1) as f64,
                                _ => unreachable!(),
                            }
                        } else {
                            v.ebv()?
                        }
                    } else {
                        v.ebv()?
                    }
                } else {
                    v.ebv()?
                };
                if keep {
                    next.push(item);
                }
            }
            current = next;
        }
        Ok(current)
    }

    // ------------------------------------------------------------------
    // Function calls
    // ------------------------------------------------------------------

    fn eval_function_call(
        &self,
        name: &Name,
        args: &[Expr],
        st: &mut EvalState,
        ctx: &Ctx,
    ) -> XdmResult<Sequence> {
        // Evaluate actual parameters first (strict semantics).
        let mut actuals = Vec::with_capacity(args.len());
        for a in args {
            actuals.push(self.eval(a, st, ctx)?);
        }
        self.apply_function(name, actuals, st, ctx)
    }

    /// Apply a function to already-evaluated arguments (shared with the
    /// XRPC server-side request handler).
    pub fn apply_function(
        &self,
        name: &Name,
        actuals: Vec<Sequence>,
        st: &mut EvalState,
        ctx: &Ctx,
    ) -> XdmResult<Sequence> {
        self.env.stats.lock().functions_called += 1;
        match name.prefix.as_deref() {
            None | Some("fn") => {
                if name.prefix.is_none() {
                    // user-declared main-module function shadows nothing: try
                    // local functions first only when they exist.
                    if let Some(f) = self
                        .local_functions
                        .get(&(name.local.clone(), actuals.len()))
                        .cloned()
                    {
                        return self.invoke_udf(
                            &f,
                            actuals,
                            st,
                            self.sctx.clone(),
                            self.local_functions.clone(),
                        );
                    }
                }
                functions::call_builtin(self, &name.local, actuals, st, ctx)
            }
            Some("xrpc") => functions::call_xrpc_builtin(&name.local, actuals),
            Some("local") => {
                let f = self
                    .local_functions
                    .get(&(name.local.clone(), actuals.len()))
                    .cloned()
                    .ok_or_else(|| {
                        XdmError::unknown_function(format!(
                            "unknown local function local:{}#{}",
                            name.local,
                            actuals.len()
                        ))
                    })?;
                self.invoke_udf(
                    &f,
                    actuals,
                    st,
                    self.sctx.clone(),
                    self.local_functions.clone(),
                )
            }
            Some(prefix) => {
                // module function via imports (or an already-loaded module
                // whose namespace this prefix maps to)
                let (ns, hint) = match self.sctx.imports.get(prefix) {
                    Some((ns, hints)) => (ns.clone(), hints.first().cloned()),
                    None => match self.sctx.resolve_prefix(prefix) {
                        Some(ns) => (ns.to_string(), None),
                        None => {
                            return Err(XdmError::undefined(format!(
                                "undeclared prefix `{prefix}`"
                            )))
                        }
                    },
                };
                let module = self.env.modules.get_or_load(&ns, hint.as_deref())?;
                let f = module.function(&name.local, actuals.len()).ok_or_else(|| {
                    XdmError::unknown_function(format!(
                        "unknown function {}:{}#{} in module `{}`",
                        prefix,
                        name.local,
                        actuals.len(),
                        ns
                    ))
                })?;
                let msctx = Arc::new(module.sctx.clone());
                self.invoke_udf(&f, actuals, st, msctx, Arc::new(HashMap::new()))
            }
        }
    }

    fn invoke_udf(
        &self,
        f: &FunctionDecl,
        actuals: Vec<Sequence>,
        st: &mut EvalState,
        sctx: Arc<StaticContext>,
        local_functions: Arc<HashMap<(String, usize), Arc<FunctionDecl>>>,
    ) -> XdmResult<Sequence> {
        if st.depth >= self.env.max_depth {
            return Err(XdmError::new(
                "XQDY0054",
                "function recursion limit exceeded",
            ));
        }
        // Cooperative checkpoint: recursive UDFs are the one loop shape the
        // FLWOR/path checkpoints cannot see, so check the budget per call.
        self.env.check_cancel()?;
        // Type-check and bind parameters.
        let base = st.vars.len();
        for ((pname, pty), value) in f.params.iter().zip(actuals) {
            if let Some(t) = pty {
                value.check_type(t).map_err(|e| {
                    XdmError::type_error(format!(
                        "parameter ${} of {}: {}",
                        pname.lexical(),
                        f.name.lexical(),
                        e.message
                    ))
                })?;
            }
            st.vars.push((pname.lexical(), value));
        }
        let sub = Evaluator {
            env: self.env,
            sctx,
            local_functions,
        };
        st.depth += 1;
        let result = sub.eval(&f.body, st, &Ctx::none());
        st.depth -= 1;
        st.vars.truncate(base);
        let result = result?;
        if let Some(rt) = &f.ret {
            result.check_type(rt).map_err(|e| {
                XdmError::type_error(format!(
                    "return value of {}: {}",
                    f.name.lexical(),
                    e.message
                ))
            })?;
        }
        Ok(result)
    }

    // ------------------------------------------------------------------
    // execute at
    // ------------------------------------------------------------------

    fn eval_execute_at(
        &self,
        dest: &Expr,
        call: &Expr,
        st: &mut EvalState,
        ctx: &Ctx,
    ) -> XdmResult<Sequence> {
        let dest_val = self.eval(dest, st, ctx)?.singleton()?.string_value();
        let Expr::FunctionCall { name, args } = call else {
            return Err(XdmError::syntax("execute at body must be a function call"));
        };
        // Resolve the function's module from the caller's imports — the
        // request carries module URI + at-hint (paper §2.1).
        let func = self.resolve_function_ref(name, args.len())?;
        let mut actuals = Vec::with_capacity(args.len());
        for a in args {
            actuals.push(self.eval(a, st, ctx)?);
        }
        let dispatcher = self
            .env
            .dispatcher
            .as_ref()
            .ok_or_else(|| XdmError::xrpc("no XRPC dispatcher configured on this peer"))?;
        {
            let mut stats = self.env.stats.lock();
            stats.rpc_dispatches += 1;
            stats.rpc_calls += 1;
        }
        let mut results = dispatcher.dispatch(&dest_val, &func, vec![actuals])?;
        if results.len() != 1 {
            return Err(XdmError::xrpc(format!(
                "XRPC response carried {} results for 1 call",
                results.len()
            )));
        }
        Ok(results.pop().unwrap())
    }

    /// Build the [`FunctionRef`] an `execute at` needs to put on the wire.
    pub fn resolve_function_ref(&self, name: &Name, arity: usize) -> XdmResult<FunctionRef> {
        let prefix = name.prefix.as_deref().ok_or_else(|| {
            XdmError::syntax("execute at requires a module-qualified function (prefix:name)")
        })?;
        let (ns, hint) = match self.sctx.imports.get(prefix) {
            Some((ns, hints)) => (ns.clone(), hints.first().cloned()),
            None => match self.sctx.resolve_prefix(prefix) {
                Some(ns) => (ns.to_string(), None),
                None => {
                    return Err(XdmError::undefined(format!(
                        "undeclared prefix `{prefix}` in execute at"
                    )))
                }
            },
        };
        // If the module is locally known, learn whether the function updates.
        let updating = self
            .env
            .modules
            .get(&ns)
            .and_then(|m| m.function(&name.local, arity))
            .map(|f| f.updating)
            .unwrap_or(false);
        Ok(FunctionRef {
            module_ns: ns,
            location_hint: hint,
            local_name: name.local.clone(),
            arity,
            updating,
        })
    }

    // ------------------------------------------------------------------
    // Construction
    // ------------------------------------------------------------------

    fn construct_direct(
        &self,
        d: &DirElem,
        doc: &mut Document,
        st: &mut EvalState,
        ctx: &Ctx,
    ) -> XdmResult<xmldom::NodeId> {
        let qname = self.resolve_ctor_name(&d.name, &d.ns_decls, true)?;
        let elem = doc.create_element(qname);
        doc.node_mut(elem).ns_decls = d.ns_decls.clone();
        for (aname, parts) in &d.attrs {
            let aq = self.resolve_ctor_name(aname, &d.ns_decls, false)?;
            let mut value = String::new();
            for p in parts {
                match p {
                    AttrContent::Text(t) => value.push_str(t),
                    AttrContent::Enclosed(e) => {
                        let v = self.eval(e, st, ctx)?;
                        value.push_str(
                            &v.atomized()
                                .iter()
                                .map(|a| a.lexical())
                                .collect::<Vec<_>>()
                                .join(" "),
                        );
                    }
                }
            }
            if aq.is(xmldom::qname::NS_XSI, "type") {
                doc.node_mut(elem).type_annotation = Some(value.clone());
            }
            doc.set_attribute(elem, aq, value);
        }
        // Boundary whitespace: drop all-whitespace text particles (XQuery
        // default `declare boundary-space strip`).
        for c in &d.content {
            match c {
                DirContent::Text(t) => {
                    if t.trim().is_empty() {
                        continue;
                    }
                    let id = doc.create_text(t.clone());
                    doc.append_child(elem, id);
                }
                DirContent::Comment(t) => {
                    let id = doc.create_comment(t.clone());
                    doc.append_child(elem, id);
                }
                DirContent::Pi(t, v) => {
                    let id = doc.create_pi(t.clone(), v.clone());
                    doc.append_child(elem, id);
                }
                DirContent::Element(inner) => {
                    let id = self.construct_direct(inner, doc, st, ctx)?;
                    doc.append_child(elem, id);
                }
                DirContent::Enclosed(e) => {
                    let v = self.eval(e, st, ctx)?;
                    attach_content(doc, elem, &v)?;
                }
            }
        }
        Ok(elem)
    }

    fn resolve_ctor_name(
        &self,
        name: &Name,
        local_decls: &[(String, String)],
        is_element: bool,
    ) -> XdmResult<QName> {
        let uri = match &name.prefix {
            Some(p) => match local_decls
                .iter()
                .find(|(dp, _)| dp == p)
                .map(|(_, u)| u.clone())
                .or_else(|| self.sctx.resolve_prefix(p).map(|s| s.to_string()))
            {
                Some(u) => Some(u),
                None => {
                    return Err(XdmError::undefined(format!(
                        "undeclared prefix `{p}` in constructor"
                    )))
                }
            },
            None if is_element => local_decls
                .iter()
                .find(|(dp, _)| dp.is_empty())
                .map(|(_, u)| u.clone())
                .or_else(|| self.sctx.default_element_ns.clone()),
            None => None,
        };
        Ok(QName {
            prefix: name.prefix.clone(),
            ns_uri: uri,
            local: name.local.clone(),
        })
    }

    fn comp_qname(
        &self,
        name: &CompName,
        st: &mut EvalState,
        ctx: &Ctx,
        is_element: bool,
    ) -> XdmResult<QName> {
        match name {
            CompName::Const(n) => self.resolve_ctor_name(n, &[], is_element),
            CompName::Computed(e) => {
                let lex = self.eval(e, st, ctx)?.singleton()?.string_value();
                self.lex_to_qname(&lex, is_element)
            }
        }
    }

    fn lex_to_qname(&self, lex: &str, is_element: bool) -> XdmResult<QName> {
        match lex.split_once(':') {
            Some((p, l)) => {
                let uri = self.sctx.resolve_prefix(p).map(|s| s.to_string());
                Ok(QName {
                    prefix: Some(p.to_string()),
                    ns_uri: uri,
                    local: l.to_string(),
                })
            }
            None => {
                let uri = if is_element {
                    self.sctx.default_element_ns.clone()
                } else {
                    None
                };
                Ok(QName {
                    prefix: None,
                    ns_uri: uri,
                    local: lex.to_string(),
                })
            }
        }
    }

    // ------------------------------------------------------------------
    // misc helpers
    // ------------------------------------------------------------------

    fn eval_integer_opt(&self, e: &Expr, st: &mut EvalState, ctx: &Ctx) -> XdmResult<Option<i64>> {
        let v = self.eval(e, st, ctx)?;
        match v.zero_or_one()? {
            None => Ok(None),
            Some(i) => match i.atomize().cast_to(AtomicType::Integer)? {
                AtomicValue::Integer(n) => Ok(Some(n)),
                _ => unreachable!(),
            },
        }
    }

    fn eval_nodes(
        &self,
        e: &Expr,
        st: &mut EvalState,
        ctx: &Ctx,
        who: &str,
    ) -> XdmResult<Vec<NodeHandle>> {
        self.eval(e, st, ctx)?
            .into_items()
            .into_iter()
            .map(|i| match i {
                Item::Node(n) => Ok(n),
                _ => Err(XdmError::type_error(format!(
                    "{who} operands must be nodes"
                ))),
            })
            .collect()
    }

    fn eval_single_node(
        &self,
        e: &Expr,
        st: &mut EvalState,
        ctx: &Ctx,
        who: &str,
    ) -> XdmResult<NodeHandle> {
        match self.eval(e, st, ctx)?.singleton()? {
            Item::Node(n) => Ok(n.clone()),
            _ => Err(XdmError::type_error(format!("{who} must be a single node"))),
        }
    }
}

/// Attach evaluated content to an element/document under construction:
/// adjacent atomics are space-joined into text nodes; nodes are deep-copied
/// (by value); attribute items become attributes; document nodes splice.
pub fn attach_content(
    doc: &mut Document,
    parent: xmldom::NodeId,
    content: &Sequence,
) -> XdmResult<()> {
    let mut pending_text: Option<String> = None;
    let mut seen_child = false;
    for item in content.iter() {
        match item {
            Item::Atomic(a) => {
                match &mut pending_text {
                    Some(t) => {
                        t.push(' ');
                        t.push_str(&a.lexical());
                    }
                    None => pending_text = Some(a.lexical()),
                }
                continue;
            }
            Item::Node(n) => {
                if let Some(t) = pending_text.take() {
                    let id = doc.create_text(t);
                    doc.append_child(parent, id);
                    seen_child = true;
                }
                match n.kind() {
                    NodeKind::Attribute => {
                        if seen_child {
                            return Err(XdmError::new(
                                "XQTY0024",
                                "attribute constructed after content",
                            ));
                        }
                        let copy = doc.import_subtree(&n.doc, n.id);
                        doc.set_attribute_node(parent, copy);
                    }
                    NodeKind::Document => {
                        for &c in n.doc.children(n.id) {
                            let copy = doc.import_subtree(&n.doc, c);
                            doc.append_child(parent, copy);
                            seen_child = true;
                        }
                    }
                    _ => {
                        let copy = doc.import_subtree(&n.doc, n.id);
                        doc.append_child(parent, copy);
                        seen_child = true;
                    }
                }
            }
        }
    }
    if let Some(t) = pending_text {
        let id = doc.create_text(t);
        doc.append_child(parent, id);
    }
    Ok(())
}

fn comp_matches(op: CompOp, ord: std::cmp::Ordering) -> bool {
    use std::cmp::Ordering::*;
    match op {
        CompOp::Eq => ord == Equal,
        CompOp::Ne => ord != Equal,
        CompOp::Lt => ord == Less,
        CompOp::Le => ord != Greater,
        CompOp::Gt => ord == Greater,
        CompOp::Ge => ord != Less,
    }
}

/// Existential general comparison (XQuery §3.5.2).
pub fn general_compare(op: CompOp, a: &Sequence, b: &Sequence) -> XdmResult<bool> {
    let left = a.atomized();
    let right = b.atomized();
    for x in &left {
        for y in &right {
            let ord = match x.general_cmp(y) {
                Ok(o) => o,
                // comparisons that fail on this pair just don't match
                Err(_) => continue,
            };
            if comp_matches(op, ord) {
                return Ok(true);
            }
        }
    }
    Ok(false)
}

fn normalize_uri(u: &Option<String>) -> Option<&str> {
    match u.as_deref() {
        None | Some("") => None,
        Some(s) => Some(s),
    }
}

/// A "simple key path": child/`.`/attribute steps with plain name tests
/// and no predicates (`@id`, `buyer/@person`, `name`). Returns a stable
/// fingerprint usable as an index cache key.
fn simple_key_path(e: &Expr) -> Option<String> {
    match e {
        Expr::AxisStep {
            axis: Axis::Child,
            test: NodeTest::Name(n),
            predicates,
        } if predicates.is_empty() && n.prefix.is_none() => Some(n.local.clone()),
        Expr::AxisStep {
            axis: Axis::Attribute,
            test: NodeTest::Name(n),
            predicates,
        } if predicates.is_empty() && n.prefix.is_none() => Some(format!("@{}", n.local)),
        Expr::AxisStep {
            axis: Axis::SelfAxis,
            test: NodeTest::AnyKind,
            predicates,
        } if predicates.is_empty() => Some(".".to_string()),
        Expr::ContextItem => Some(".".to_string()),
        Expr::PathStep(a, b) => {
            let fa = simple_key_path(a)?;
            let fb = simple_key_path(b)?;
            Some(format!("{fa}/{fb}"))
        }
        _ => None,
    }
}

/// Collect the names of all variables referenced in `e` (conservative:
/// shadowing is ignored, which only makes optimizations more cautious).
fn free_var_names(e: &Expr) -> std::collections::HashSet<String> {
    let mut names = std::collections::HashSet::new();
    e.walk(&mut |x| {
        if let Expr::VarRef(n) = x {
            names.insert(n.lexical());
        }
    });
    names
}

/// The hash-join key for a string-class atomic (general comparison over
/// untyped/string/anyURI operands is string equality). `None` for any
/// other type — the caller must fall back to the naive join.
fn string_class_key(v: &AtomicValue) -> Option<String> {
    match v {
        AtomicValue::String(s) | AtomicValue::UntypedAtomic(s) | AtomicValue::AnyUri(s) => {
            Some(s.clone())
        }
        _ => None,
    }
}

/// Does the expression reference the focus (context item/position/size)?
fn expr_uses_focus(e: &Expr) -> bool {
    let mut uses = false;
    e.walk(&mut |x| match x {
        Expr::ContextItem | Expr::Root(_) | Expr::AxisStep { .. } => uses = true,
        Expr::FunctionCall { name, .. }
            if matches!(
                name.local.as_str(),
                "position" | "last" | "string" | "number"
            ) && name.prefix.is_none() =>
        {
            uses = true
        }
        _ => {}
    });
    uses
}
