//! The predicate *join index*: the engine-level analog of the hash join the
//! paper observes Saxon building for Bulk RPC (§4, Table 3).
//!
//! When a bulk request makes the same selection predicate — `//person[@id =
//! $pid]`, or the semi-join's `//closed_auction[./buyer/@person = $pid]` —
//! run once per call, a naive tree-walker rescans the whole document per
//! call (O(n·m)). This cache stores, per (document, element name, key-path)
//! combination, a hash map from key value to matching nodes, making each
//! subsequent probe O(1) — exactly the "selection becomes a join" effect of
//! Bulk RPC.
//!
//! The cache itself is key-agnostic: the evaluator builds the map (it knows
//! how to evaluate the key path per element) and registers it here.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use xmldom::{Document, NodeId};

/// Key: (document identity, element local name, key-path fingerprint).
type Key = (usize, String, String);

/// value → matching element ids, in document order.
pub type ValueIndex = HashMap<String, Vec<NodeId>>;

#[derive(Default)]
pub struct JoinIndexCache {
    maps: Mutex<HashMap<Key, Arc<ValueIndex>>>,
}

impl JoinIndexCache {
    pub fn new() -> Self {
        Self::default()
    }

    fn key(doc: &Arc<Document>, elem_local: &str, fingerprint: &str) -> Key {
        (
            Arc::as_ptr(doc) as usize,
            elem_local.to_string(),
            fingerprint.to_string(),
        )
    }

    /// Fetch an existing index.
    pub fn get(
        &self,
        doc: &Arc<Document>,
        elem_local: &str,
        fingerprint: &str,
    ) -> Option<Arc<ValueIndex>> {
        self.maps
            .lock()
            .get(&Self::key(doc, elem_local, fingerprint))
            .cloned()
    }

    /// Register a freshly built index.
    pub fn insert(
        &self,
        doc: &Arc<Document>,
        elem_local: &str,
        fingerprint: &str,
        map: ValueIndex,
    ) -> Arc<ValueIndex> {
        let map = Arc::new(map);
        self.maps
            .lock()
            .insert(Self::key(doc, elem_local, fingerprint), map.clone());
        map
    }

    pub fn clear(&self) {
        self.maps.lock().clear();
    }

    pub fn len(&self) -> usize {
        self.maps.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.maps.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmldom::parse;

    #[test]
    fn insert_then_get_by_identity_and_fingerprint() {
        let d1 = Arc::new(parse(r#"<db><p id="1"/></db>"#).unwrap());
        let d2 = Arc::new(parse(r#"<db><p id="1"/></db>"#).unwrap());
        let cache = JoinIndexCache::new();
        assert!(cache.get(&d1, "p", "@id").is_none());
        let mut m = ValueIndex::new();
        m.insert("1".into(), vec![d1.children(d1.root())[0]]);
        cache.insert(&d1, "p", "@id", m);
        assert!(cache.get(&d1, "p", "@id").is_some());
        // different doc or fingerprint miss
        assert!(cache.get(&d2, "p", "@id").is_none());
        assert!(cache.get(&d1, "p", "buyer/@person").is_none());
        assert_eq!(cache.len(), 1);
        cache.clear();
        assert!(cache.is_empty());
    }
}
