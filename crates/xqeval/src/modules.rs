//! The module registry: compiled XQuery library modules, addressable by
//! namespace URI — the unit of code the XRPC protocol references via
//! `module` + `location` (at-hint) attributes (paper §2.1).

use crate::context::StaticContext;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;
use xdm::{XdmError, XdmResult};
use xqast::{FunctionDecl, LibraryModule};

/// A compiled library module: its functions keyed by (local name, arity),
/// plus the static context its bodies must be evaluated in.
#[derive(Clone)]
pub struct CompiledModule {
    pub ns_uri: String,
    pub prefix: String,
    pub functions: HashMap<(String, usize), Arc<FunctionDecl>>,
    pub sctx: StaticContext,
}

impl CompiledModule {
    pub fn from_library(lib: &LibraryModule) -> Self {
        let mut sctx = StaticContext::from_prolog(&lib.prolog);
        // The module's own prefix maps to its namespace.
        sctx.namespaces
            .insert(lib.prefix.clone(), lib.ns_uri.clone());
        let mut functions = HashMap::new();
        for f in &lib.prolog.functions {
            functions.insert((f.name.local.clone(), f.arity()), Arc::new(f.clone()));
        }
        CompiledModule {
            ns_uri: lib.ns_uri.clone(),
            prefix: lib.prefix.clone(),
            functions,
            sctx,
        }
    }

    pub fn function(&self, local: &str, arity: usize) -> Option<Arc<FunctionDecl>> {
        self.functions.get(&(local.to_string(), arity)).cloned()
    }
}

/// Fetches module source text by location hint (e.g. over HTTP).
pub type ModuleLoader = Box<dyn Fn(&str) -> XdmResult<String> + Send + Sync>;

/// Registry of modules by namespace URI. Mirrors the paper's model where an
/// XRPC peer pre-loads (and caches) XQuery modules referenced by requests;
/// a `loader` hook fetches unknown modules by their at-hint, which is how a
/// remote peer pulls `http://x.example.org/film.xq`.
pub struct ModuleRegistry {
    modules: RwLock<HashMap<String, Arc<CompiledModule>>>,
    /// Fetch module source text by location hint (e.g. over HTTP).
    loader: RwLock<Option<ModuleLoader>>,
    /// Bumped on every (re)registration. Plan caches fold this into
    /// their static-context fingerprint so a module reload makes every
    /// key derived from the old registry state unreachable.
    generation: std::sync::atomic::AtomicU64,
}

impl ModuleRegistry {
    pub fn new() -> Self {
        ModuleRegistry {
            modules: RwLock::new(HashMap::new()),
            loader: RwLock::new(None),
            generation: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Register a parsed library module.
    pub fn register(&self, lib: &LibraryModule) {
        let cm = Arc::new(CompiledModule::from_library(lib));
        self.modules.write().insert(cm.ns_uri.clone(), cm);
        self.generation
            .fetch_add(1, std::sync::atomic::Ordering::SeqCst);
    }

    /// The registry's registration generation (see the field docs).
    pub fn generation(&self) -> u64 {
        self.generation.load(std::sync::atomic::Ordering::SeqCst)
    }

    /// Parse + register module source text.
    pub fn register_source(&self, source: &str) -> XdmResult<String> {
        let lib = xqast::parse_library_module(source)?;
        let ns = lib.ns_uri.clone();
        self.register(&lib);
        Ok(ns)
    }

    /// Install a loader used to fetch unknown modules by location hint.
    pub fn set_loader(&self, f: impl Fn(&str) -> XdmResult<String> + Send + Sync + 'static) {
        *self.loader.write() = Some(Box::new(f));
    }

    pub fn get(&self, ns_uri: &str) -> Option<Arc<CompiledModule>> {
        self.modules.read().get(ns_uri).cloned()
    }

    /// Get a module, fetching it through the loader if necessary. The
    /// paper's XRPC error message example ("could not load module!") maps to
    /// the failure path here.
    pub fn get_or_load(&self, ns_uri: &str, hint: Option<&str>) -> XdmResult<Arc<CompiledModule>> {
        if let Some(m) = self.get(ns_uri) {
            return Ok(m);
        }
        if let Some(hint) = hint {
            let loader = self.loader.read();
            if let Some(loader) = loader.as_ref() {
                let source = loader(hint)?;
                let ns = self.register_source(&source)?;
                if ns != ns_uri {
                    return Err(XdmError::xrpc(format!(
                        "module at `{hint}` declares namespace `{ns}`, expected `{ns_uri}`"
                    )));
                }
                return self
                    .get(ns_uri)
                    .ok_or_else(|| XdmError::xrpc("module registration failed"));
            }
        }
        Err(XdmError::xrpc(format!(
            "could not load module! (`{ns_uri}`)"
        )))
    }

    pub fn namespaces(&self) -> Vec<String> {
        self.modules.read().keys().cloned().collect()
    }
}

impl Default for ModuleRegistry {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FILM_MODULE: &str = r#"
        module namespace film = "films";
        declare function film:filmsByActor($actor as xs:string) as node()*
        { doc("filmDB.xml")//name[../actor = $actor] };
        declare function film:count() { fn:count(doc("filmDB.xml")//film) };
    "#;

    #[test]
    fn register_and_lookup() {
        let reg = ModuleRegistry::new();
        let ns = reg.register_source(FILM_MODULE).unwrap();
        assert_eq!(ns, "films");
        let m = reg.get("films").unwrap();
        assert!(m.function("filmsByActor", 1).is_some());
        assert!(m.function("filmsByActor", 2).is_none());
        assert!(m.function("count", 0).is_some());
    }

    #[test]
    fn missing_module_error_matches_paper() {
        let reg = ModuleRegistry::new();
        let err = match reg.get_or_load("nope", None) {
            Err(e) => e,
            Ok(_) => panic!("expected an error"),
        };
        assert!(err.message.contains("could not load module!"));
    }

    #[test]
    fn loader_fetches_by_hint() {
        let reg = ModuleRegistry::new();
        reg.set_loader(|hint| {
            assert_eq!(hint, "http://x.example.org/film.xq");
            Ok(FILM_MODULE.to_string())
        });
        let m = reg
            .get_or_load("films", Some("http://x.example.org/film.xq"))
            .unwrap();
        assert_eq!(m.ns_uri, "films");
        // second call is cached (loader not invoked: would panic on wrong hint)
        assert!(reg.get_or_load("films", Some("other")).is_ok());
    }

    #[test]
    fn loader_namespace_mismatch_rejected() {
        let reg = ModuleRegistry::new();
        reg.set_loader(|_| {
            Ok("module namespace x = \"other\"; declare function x:f() { 1 };".into())
        });
        assert!(reg.get_or_load("films", Some("hint")).is_err());
    }
}
