//! XQUF pending update lists (PULs) and `applyUpdates`.
//!
//! The paper's update semantics (§2.3) hinge on this machinery: an updating
//! function evaluates to a PUL ∆; rule `RFu` applies ∆ right after the call,
//! rule `R'Fu` defers the union of all ∆s until 2PC commit. `apply_updates`
//! here computes *new document versions* without touching the originals —
//! the document store swaps them in, which is what makes snapshot isolation
//! cheap (shadow-paging analog).

use std::sync::Arc;
use xdm::{XdmError, XdmResult};
use xmldom::{Document, NodeHandle, NodeId, QName};

/// One XQUF update primitive. Node sources are stored as by-value fragments
/// (fresh documents), matching XRPC call-by-value marshaling.
#[derive(Clone, Debug)]
pub enum UpdatePrimitive {
    InsertInto {
        target: NodeHandle,
        content: Vec<NodeHandle>,
    },
    InsertFirst {
        target: NodeHandle,
        content: Vec<NodeHandle>,
    },
    InsertLast {
        target: NodeHandle,
        content: Vec<NodeHandle>,
    },
    InsertBefore {
        target: NodeHandle,
        content: Vec<NodeHandle>,
    },
    InsertAfter {
        target: NodeHandle,
        content: Vec<NodeHandle>,
    },
    Delete {
        target: NodeHandle,
    },
    ReplaceNode {
        target: NodeHandle,
        replacement: Vec<NodeHandle>,
    },
    ReplaceValue {
        target: NodeHandle,
        value: String,
    },
    Rename {
        target: NodeHandle,
        name: QName,
    },
    /// `fn:put($node, $uri)`
    Put {
        node: NodeHandle,
        uri: String,
    },
}

impl UpdatePrimitive {
    pub fn target(&self) -> Option<&NodeHandle> {
        match self {
            UpdatePrimitive::InsertInto { target, .. }
            | UpdatePrimitive::InsertFirst { target, .. }
            | UpdatePrimitive::InsertLast { target, .. }
            | UpdatePrimitive::InsertBefore { target, .. }
            | UpdatePrimitive::InsertAfter { target, .. }
            | UpdatePrimitive::Delete { target }
            | UpdatePrimitive::ReplaceNode { target, .. }
            | UpdatePrimitive::ReplaceValue { target, .. }
            | UpdatePrimitive::Rename { target, .. } => Some(target),
            UpdatePrimitive::Put { .. } => None,
        }
    }
}

/// A pending update list. XQUF allows unioning PULs freely — the paper
/// relies on this to merge the per-call ∆s of one query (§2.3).
#[derive(Clone, Debug, Default)]
pub struct PendingUpdateList {
    pub primitives: Vec<UpdatePrimitive>,
}

impl PendingUpdateList {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn is_empty(&self) -> bool {
        self.primitives.is_empty()
    }

    pub fn len(&self) -> usize {
        self.primitives.len()
    }

    pub fn push(&mut self, p: UpdatePrimitive) {
        self.primitives.push(p);
    }

    /// Union (XQUF `upd:mergeUpdates`): concatenation; compatibility is
    /// checked at apply time.
    pub fn merge(&mut self, other: PendingUpdateList) {
        self.primitives.extend(other.primitives);
    }

    /// Copy every *source* fragment (insert content, replacements,
    /// `fn:put` nodes) whose handle shares a larger arena into its own
    /// right-sized document. Targets are left alone — they identify store
    /// documents by `Arc` identity and must keep pointing at them.
    ///
    /// Deferred PULs (rule `R'Fu`) outlive the request that produced them:
    /// zero-copy decode leaves node parameters detached inside the shared
    /// message arena, so without this a single small content fragment held
    /// until 2PC commit pins the whole multi-MiB envelope arena.
    pub fn compact_sources(&mut self) {
        for p in &mut self.primitives {
            match p {
                UpdatePrimitive::InsertInto { content, .. }
                | UpdatePrimitive::InsertFirst { content, .. }
                | UpdatePrimitive::InsertLast { content, .. }
                | UpdatePrimitive::InsertBefore { content, .. }
                | UpdatePrimitive::InsertAfter { content, .. }
                | UpdatePrimitive::ReplaceNode {
                    replacement: content,
                    ..
                } => {
                    for h in content {
                        compact_handle(h);
                    }
                }
                UpdatePrimitive::Put { node, .. } => compact_handle(node),
                UpdatePrimitive::Delete { .. }
                | UpdatePrimitive::ReplaceValue { .. }
                | UpdatePrimitive::Rename { .. } => {}
            }
        }
    }

    /// XQUF compatibility checks (XUDY0015/16/17): at most one rename, one
    /// replace-node and one replace-value per target node.
    pub fn check_compatibility(&self) -> XdmResult<()> {
        let mut renames: Vec<&NodeHandle> = Vec::new();
        let mut repl_nodes: Vec<&NodeHandle> = Vec::new();
        let mut repl_values: Vec<&NodeHandle> = Vec::new();
        for p in &self.primitives {
            let (bucket, t): (&mut Vec<&NodeHandle>, &NodeHandle) = match p {
                UpdatePrimitive::Rename { target, .. } => (&mut renames, target),
                UpdatePrimitive::ReplaceNode { target, .. } => (&mut repl_nodes, target),
                UpdatePrimitive::ReplaceValue { target, .. } => (&mut repl_values, target),
                _ => continue,
            };
            if bucket.iter().any(|h| h.same_node(t)) {
                return Err(XdmError::update_error(
                    "incompatible updates: same target updated twice (XUDY0015-17)",
                ));
            }
            bucket.push(t);
        }
        Ok(())
    }
}

/// Re-home `h` into a fresh arena sized to its subtree when its current
/// arena is substantially larger (i.e. the handle pins unrelated nodes).
/// The copy stays detached, exactly like a decoded message fragment —
/// source handles are only ever consumed via `import_subtree`.
fn compact_handle(h: &mut NodeHandle) {
    let subtree = h.doc.subtree_size(h.id);
    // the handle already (roughly) owns its whole arena: nothing to win
    if subtree + 1 >= h.doc.len() {
        return;
    }
    let mut fresh = Document::with_node_capacity(subtree);
    let id = fresh.import_subtree(&h.doc, h.id);
    *h = NodeHandle::new(Arc::new(fresh), id);
}

/// The outcome of `apply_updates` for one affected document: the old
/// snapshot identity and the freshly built new version.
pub struct DocEdit {
    pub uri: Option<String>,
    pub old: Arc<Document>,
    pub new: Arc<Document>,
}

/// Materialize a PUL: for every document touched, clone it, apply the
/// primitives in XQUF order (inserts/renames/replace-values first, then
/// replaces, then deletes), and return the new versions. `fn:put` targets
/// come back as extra edits with the `put` URI and no `old`-identity match.
pub fn apply_updates(pul: &PendingUpdateList) -> XdmResult<Vec<DocEdit>> {
    pul.check_compatibility()?;

    // Group primitives by target document (Arc identity).
    let mut groups: Vec<(Arc<Document>, Vec<&UpdatePrimitive>)> = Vec::new();
    let mut puts: Vec<&UpdatePrimitive> = Vec::new();
    for p in &pul.primitives {
        match p.target() {
            Some(t) => match groups.iter_mut().find(|(d, _)| Arc::ptr_eq(d, &t.doc)) {
                Some((_, v)) => v.push(p),
                None => groups.push((t.doc.clone(), vec![p])),
            },
            None => puts.push(p),
        }
    }

    let mut edits = Vec::new();
    for (old, prims) in groups {
        let mut new_doc: Document = (*old).clone();
        // XQUF application order: insert/rename/replace-value, then
        // replace-node, then delete. Within a class, list order.
        let phase = |p: &UpdatePrimitive| match p {
            UpdatePrimitive::Delete { .. } => 2,
            UpdatePrimitive::ReplaceNode { .. } => 1,
            _ => 0,
        };
        let mut ordered = prims.clone();
        ordered.sort_by_key(|p| phase(p));
        for p in ordered {
            apply_one(&mut new_doc, p)?;
        }
        edits.push(DocEdit {
            uri: old.uri.clone(),
            old,
            new: Arc::new(new_doc),
        });
    }

    for p in puts {
        if let UpdatePrimitive::Put { node, uri } = p {
            let mut d = Document::with_uri(uri.clone());
            let root = d.root();
            let copy = d.import_subtree(&node.doc, node.id);
            d.append_child(root, copy);
            edits.push(DocEdit {
                uri: Some(uri.clone()),
                old: node.doc.clone(),
                new: Arc::new(d),
            });
        }
    }
    Ok(edits)
}

fn import_content(dst: &mut Document, content: &[NodeHandle]) -> Vec<NodeId> {
    content
        .iter()
        .map(|h| dst.import_subtree(&h.doc, h.id))
        .collect()
}

fn apply_one(doc: &mut Document, p: &UpdatePrimitive) -> XdmResult<()> {
    match p {
        UpdatePrimitive::InsertInto { target, content }
        | UpdatePrimitive::InsertLast { target, content } => {
            let ids = import_content(doc, content);
            for id in ids {
                attach(doc, target.id, id);
            }
        }
        UpdatePrimitive::InsertFirst { target, content } => {
            let ids = import_content(doc, content);
            for (i, id) in ids.into_iter().enumerate() {
                if doc.kind(id) == xmldom::NodeKind::Attribute {
                    doc.set_attribute_node(target.id, id);
                } else {
                    doc.insert_child_at(target.id, i, id);
                }
            }
        }
        UpdatePrimitive::InsertBefore { target, content } => {
            let ids = import_content(doc, content);
            for id in ids {
                doc.insert_before(target.id, id);
            }
        }
        UpdatePrimitive::InsertAfter { target, content } => {
            let ids = import_content(doc, content);
            // keep relative order: insert after the previous inserted node
            let mut anchor = target.id;
            for id in ids {
                doc.insert_after(anchor, id);
                anchor = id;
            }
        }
        UpdatePrimitive::Delete { target } => {
            doc.detach(target.id);
        }
        UpdatePrimitive::ReplaceNode {
            target,
            replacement,
        } => {
            let ids = import_content(doc, replacement);
            doc.replace_node(target.id, &ids);
        }
        UpdatePrimitive::ReplaceValue { target, value } => {
            doc.replace_value(target.id, value);
        }
        UpdatePrimitive::Rename { target, name } => {
            doc.rename(target.id, name.clone());
        }
        UpdatePrimitive::Put { .. } => unreachable!("puts handled separately"),
    }
    Ok(())
}

fn attach(doc: &mut Document, parent: NodeId, child: NodeId) {
    if doc.kind(child) == xmldom::NodeKind::Attribute {
        doc.set_attribute_node(parent, child);
    } else {
        doc.append_child(parent, child);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmldom::parse;

    fn handle(doc: &Arc<Document>, path: &[usize]) -> NodeHandle {
        let mut id = doc.root();
        for &i in path {
            id = doc.children(id)[i];
        }
        NodeHandle::new(doc.clone(), id)
    }

    fn fragment(xml: &str) -> NodeHandle {
        let d = Arc::new(parse(xml).unwrap());
        let root = d.children(d.root())[0];
        NodeHandle::new(d, root)
    }

    #[test]
    fn insert_into_creates_new_version() {
        let old = Arc::new(parse("<a><b/></a>").unwrap());
        let mut pul = PendingUpdateList::new();
        pul.push(UpdatePrimitive::InsertInto {
            target: handle(&old, &[0]),
            content: vec![fragment("<c/>")],
        });
        let edits = apply_updates(&pul).unwrap();
        assert_eq!(edits.len(), 1);
        let new = &edits[0].new;
        let a = new.children(new.root())[0];
        assert_eq!(new.children(a).len(), 2);
        // old version untouched
        let a_old = old.children(old.root())[0];
        assert_eq!(old.children(a_old).len(), 1);
    }

    #[test]
    fn insert_positions() {
        let old = Arc::new(parse("<a><m/></a>").unwrap());
        let a = handle(&old, &[0]);
        let m = handle(&old, &[0, 0]);
        let mut pul = PendingUpdateList::new();
        pul.push(UpdatePrimitive::InsertFirst {
            target: a.clone(),
            content: vec![fragment("<first/>")],
        });
        pul.push(UpdatePrimitive::InsertLast {
            target: a.clone(),
            content: vec![fragment("<last/>")],
        });
        pul.push(UpdatePrimitive::InsertBefore {
            target: m.clone(),
            content: vec![fragment("<before/>")],
        });
        pul.push(UpdatePrimitive::InsertAfter {
            target: m,
            content: vec![fragment("<x1/>"), fragment("<x2/>")],
        });
        let edits = apply_updates(&pul).unwrap();
        let new = &edits[0].new;
        let a = new.children(new.root())[0];
        let names: Vec<String> = new
            .children(a)
            .iter()
            .map(|&c| new.node(c).name.as_ref().unwrap().local.clone())
            .collect();
        assert_eq!(names, ["first", "before", "m", "x1", "x2", "last"]);
    }

    #[test]
    fn delete_and_replace() {
        let old = Arc::new(parse("<a><b/><c>old</c></a>").unwrap());
        let mut pul = PendingUpdateList::new();
        pul.push(UpdatePrimitive::Delete {
            target: handle(&old, &[0, 0]),
        });
        pul.push(UpdatePrimitive::ReplaceValue {
            target: handle(&old, &[0, 1]),
            value: "new".into(),
        });
        let edits = apply_updates(&pul).unwrap();
        let new = &edits[0].new;
        let a = new.children(new.root())[0];
        assert_eq!(new.children(a).len(), 1);
        assert_eq!(new.string_value(a), "new");
    }

    #[test]
    fn replace_node_with_fragment() {
        let old = Arc::new(parse("<a><b/></a>").unwrap());
        let mut pul = PendingUpdateList::new();
        pul.push(UpdatePrimitive::ReplaceNode {
            target: handle(&old, &[0, 0]),
            replacement: vec![fragment("<x><y/></x>")],
        });
        let edits = apply_updates(&pul).unwrap();
        let new = &edits[0].new;
        let a = new.children(new.root())[0];
        let x = new.children(a)[0];
        assert_eq!(new.node(x).name.as_ref().unwrap().local.clone(), "x");
        assert_eq!(new.children(x).len(), 1);
    }

    #[test]
    fn rename() {
        let old = Arc::new(parse("<a><b/></a>").unwrap());
        let mut pul = PendingUpdateList::new();
        pul.push(UpdatePrimitive::Rename {
            target: handle(&old, &[0, 0]),
            name: QName::local("renamed"),
        });
        let new = &apply_updates(&pul).unwrap()[0].new;
        let a = new.children(new.root())[0];
        let b = new.children(a)[0];
        assert_eq!(new.node(b).name.as_ref().unwrap().local.clone(), "renamed");
    }

    #[test]
    fn incompatible_double_rename_rejected() {
        let old = Arc::new(parse("<a><b/></a>").unwrap());
        let t = handle(&old, &[0, 0]);
        let mut pul = PendingUpdateList::new();
        pul.push(UpdatePrimitive::Rename {
            target: t.clone(),
            name: QName::local("x"),
        });
        pul.push(UpdatePrimitive::Rename {
            target: t,
            name: QName::local("y"),
        });
        assert!(apply_updates(&pul).is_err());
    }

    #[test]
    fn merge_order_independent_for_commuting_updates() {
        // Inserting into two different parents commutes: applying the merged
        // PUL in either merge order gives the same document.
        let old = Arc::new(parse("<a><b/><c/></a>").unwrap());
        let mk = |first: bool| {
            let mut p1 = PendingUpdateList::new();
            p1.push(UpdatePrimitive::InsertInto {
                target: handle(&old, &[0, 0]),
                content: vec![fragment("<x/>")],
            });
            let mut p2 = PendingUpdateList::new();
            p2.push(UpdatePrimitive::InsertInto {
                target: handle(&old, &[0, 1]),
                content: vec![fragment("<y/>")],
            });
            let mut merged = PendingUpdateList::new();
            if first {
                merged.merge(p1);
                merged.merge(p2);
            } else {
                merged.merge(p2);
                merged.merge(p1);
            }
            let edits = apply_updates(&merged).unwrap();
            xmldom::serialize_document(&edits[0].new, &Default::default())
        };
        assert_eq!(mk(true), mk(false));
    }

    #[test]
    fn delete_applies_after_insert_per_xquf_order() {
        // Insert into a node AND delete it in one PUL: XQUF applies inserts
        // first, deletes last — net effect the node is gone.
        let old = Arc::new(parse("<a><b/></a>").unwrap());
        let b = handle(&old, &[0, 0]);
        let mut pul = PendingUpdateList::new();
        pul.push(UpdatePrimitive::Delete { target: b.clone() });
        pul.push(UpdatePrimitive::InsertInto {
            target: b,
            content: vec![fragment("<kid/>")],
        });
        let new = &apply_updates(&pul).unwrap()[0].new;
        let a = new.children(new.root())[0];
        assert!(new.children(a).is_empty());
    }

    /// Compaction must re-home source fragments out of a big shared arena
    /// (the deferred-PUL case) without changing targets or apply results.
    #[test]
    fn compact_sources_rehomes_fragments_without_changing_result() {
        let big = Arc::new(
            parse(
                r#"<env><pad><p/><p/><p/><p/><p/></pad><frag a="1"><kid>text</kid></frag></env>"#,
            )
            .unwrap(),
        );
        let old = Arc::new(parse("<a/>").unwrap());
        let mut pul = PendingUpdateList::new();
        pul.push(UpdatePrimitive::InsertInto {
            target: handle(&old, &[0]),
            content: vec![handle(&big, &[0, 1])],
        });
        let before =
            xmldom::serialize_document(&apply_updates(&pul).unwrap()[0].new, &Default::default());
        pul.compact_sources();
        match &pul.primitives[0] {
            UpdatePrimitive::InsertInto { target, content } => {
                // targets keep their Arc identity (the store grouping key)
                assert!(Arc::ptr_eq(&target.doc, &old));
                // the fragment no longer pins the envelope arena
                assert!(!Arc::ptr_eq(&content[0].doc, &big));
                assert!(content[0].doc.len() < big.len());
            }
            _ => unreachable!(),
        }
        let after =
            xmldom::serialize_document(&apply_updates(&pul).unwrap()[0].new, &Default::default());
        assert_eq!(before, after);
    }

    #[test]
    fn put_produces_new_document() {
        let src = Arc::new(parse("<data><v>1</v></data>").unwrap());
        let mut pul = PendingUpdateList::new();
        pul.push(UpdatePrimitive::Put {
            node: handle(&src, &[0]),
            uri: "out.xml".into(),
        });
        let edits = apply_updates(&pul).unwrap();
        assert_eq!(edits[0].uri.as_deref(), Some("out.xml"));
        let d = &edits[0].new;
        assert_eq!(d.string_value(d.root()), "1");
    }

    #[test]
    fn attribute_insert() {
        let old = Arc::new(parse("<a/>").unwrap());
        let attr_doc = {
            let mut d = Document::new();
            let a = d.create_attribute(QName::local("k"), "v");
            Arc::new({
                let _ = a;
                d
            })
        };
        let attr = NodeHandle::new(attr_doc.clone(), NodeId(1));
        let mut pul = PendingUpdateList::new();
        pul.push(UpdatePrimitive::InsertInto {
            target: handle(&old, &[0]),
            content: vec![attr],
        });
        let new = &apply_updates(&pul).unwrap()[0].new;
        let a = new.children(new.root())[0];
        assert_eq!(new.attr_local(a, "k"), Some("v"));
    }
}
