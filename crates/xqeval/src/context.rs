//! Static and dynamic evaluation context, plus the two extension points the
//! distributed layer plugs into: document resolution (`fn:doc`) and XRPC
//! dispatch (`execute at`).

use crate::modules::ModuleRegistry;
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Instant;
use xdm::{Sequence, XdmError, XdmResult};
use xmldom::Document;

/// How many [`CancelToken::check`] polls elapse between wall-clock reads.
/// Flag checks (explicit cancellation, the network layer's per-job kill
/// switch) happen on *every* poll — the stride only bounds how often the
/// hot evaluation loops pay for `Instant::now()`.
const CLOCK_STRIDE: u32 = 16;

/// A shared deadline + cooperative-cancellation token, checked at bounded
/// intervals inside the evaluator's loop/recursion sites.
///
/// Three ways a query dies through one of these:
/// * its own deadline (from `xrpc:timeout`, decremented per hop) passes —
///   [`check`](Self::check) raises `XRPC0004`;
/// * someone calls [`cancel`](Self::cancel) (originator fan-out, admin) —
///   `XRPC0005`;
/// * the bridged `external` flag flips (the reactor's sweep cancelling a
///   job whose connection died or whose deadline passed) — `XRPC0005`.
///
/// The token deliberately lives in `xqeval` with only `std` types so the
/// evaluator does not depend on the network layer; the bridge to a
/// reactor job is a plain shared `AtomicBool`.
pub struct CancelToken {
    deadline: Option<Instant>,
    cancelled: AtomicBool,
    external: Option<Arc<AtomicBool>>,
    polls: AtomicU32,
}

impl CancelToken {
    /// A token with an optional deadline (`None` = no deadline, the
    /// `xrpc:timeout "0"` semantics).
    pub fn new(deadline: Option<Instant>) -> Arc<Self> {
        Arc::new(CancelToken {
            deadline,
            cancelled: AtomicBool::new(false),
            external: None,
            polls: AtomicU32::new(0),
        })
    }

    /// A token additionally bridged to an external kill flag (e.g. the
    /// network layer's per-job cancellation switch).
    pub fn with_external(deadline: Option<Instant>, external: Arc<AtomicBool>) -> Arc<Self> {
        Arc::new(CancelToken {
            deadline,
            cancelled: AtomicBool::new(false),
            external: Some(external),
            polls: AtomicU32::new(0),
        })
    }

    /// Request cancellation; every subsequent [`check`](Self::check)
    /// fails with `XRPC0005`.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Relaxed);
    }

    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Relaxed)
            || self
                .external
                .as_ref()
                .is_some_and(|f| f.load(Ordering::Relaxed))
    }

    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Whether the deadline has already passed (unstrided clock read).
    pub fn expired(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Budget left on the deadline, in milliseconds, saturating at zero —
    /// what gets stamped into an outgoing request's `<xrpc:budget/>`
    /// header. `None` when the token has no deadline.
    pub fn remaining_millis(&self) -> Option<u64> {
        self.deadline
            .map(|d| d.saturating_duration_since(Instant::now()).as_millis() as u64)
    }

    /// The cooperative checkpoint: cheap atomic loads on every call, a
    /// wall-clock read every [`CLOCK_STRIDE`] calls. `Err(XRPC0005)` when
    /// cancelled, `Err(XRPC0004)` when the deadline passed.
    pub fn check(&self) -> XdmResult<()> {
        if self.is_cancelled() {
            return Err(XdmError::xrpc_cancelled("query cancelled"));
        }
        if let Some(d) = self.deadline {
            let n = self.polls.fetch_add(1, Ordering::Relaxed);
            if n.is_multiple_of(CLOCK_STRIDE) && Instant::now() >= d {
                return Err(XdmError::xrpc_deadline(
                    "query deadline exceeded (xrpc:timeout)",
                ));
            }
        }
        Ok(())
    }

    /// Like [`check`](Self::check) but always consulting the clock — for
    /// one-shot decision points (dispatch admission, the 2PC commit
    /// point) rather than hot loops.
    pub fn check_now(&self) -> XdmResult<()> {
        if self.is_cancelled() {
            return Err(XdmError::xrpc_cancelled("query cancelled"));
        }
        if self.expired() {
            return Err(XdmError::xrpc_deadline(
                "query deadline exceeded (xrpc:timeout)",
            ));
        }
        Ok(())
    }
}

/// Resolves document URIs for `fn:doc` (and stores for `fn:put`).
pub trait DocResolver: Send + Sync {
    fn resolve(&self, uri: &str) -> XdmResult<Arc<Document>>;

    /// `fn:put` target: store `doc` under `uri`. Default: unsupported.
    fn put(&self, _uri: &str, _doc: Document) -> XdmResult<()> {
        Err(XdmError::doc_error(
            "fn:put is not supported by this resolver",
        ))
    }

    /// Swap in a new version of a document (used by `applyUpdates`).
    fn replace(&self, _uri: &str, _doc: Arc<Document>) -> XdmResult<()> {
        Err(XdmError::doc_error(
            "updates are not supported by this resolver",
        ))
    }
}

/// A simple in-memory URI → document map, used by tests, the wrapper and as
/// the building block of the peer document store.
#[derive(Default)]
pub struct InMemoryDocs {
    docs: RwLock<HashMap<String, Arc<Document>>>,
    /// Applied-transaction marks: highest log sequence number whose ∆ has
    /// been applied, per transaction key. Lives with the documents (not
    /// the WAL) because idempotent re-apply needs the mark to travel with
    /// exactly the state it describes across a restart.
    marks: RwLock<HashMap<String, u64>>,
}

impl InMemoryDocs {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn insert(&self, uri: impl Into<String>, doc: Document) {
        self.docs.write().insert(uri.into(), Arc::new(doc));
    }

    pub fn insert_arc(&self, uri: impl Into<String>, doc: Arc<Document>) {
        self.docs.write().insert(uri.into(), doc);
    }

    pub fn get(&self, uri: &str) -> Option<Arc<Document>> {
        self.docs.read().get(uri).cloned()
    }

    pub fn uris(&self) -> Vec<String> {
        self.docs.read().keys().cloned().collect()
    }

    /// A consistent snapshot of every document (repeatable-read isolation
    /// pins one of these per queryID; paper §2.2).
    pub fn snapshot(&self) -> HashMap<String, Arc<Document>> {
        self.docs.read().clone()
    }

    /// The applied mark for `key`, if any: updates logged at-or-below it
    /// have already reached the documents.
    pub fn applied_mark(&self, key: &str) -> Option<u64> {
        self.marks.read().get(key).copied()
    }

    /// Raise the applied mark for `key` to `lsn` (monotonic: a lower or
    /// equal mark never overwrites a higher one).
    pub fn set_applied_mark(&self, key: &str, lsn: u64) {
        let mut marks = self.marks.write();
        let slot = marks.entry(key.to_string()).or_insert(0);
        *slot = (*slot).max(lsn);
    }
}

impl DocResolver for InMemoryDocs {
    fn resolve(&self, uri: &str) -> XdmResult<Arc<Document>> {
        self.get(uri)
            .ok_or_else(|| XdmError::doc_error(format!("document not found: `{uri}`")))
    }

    fn put(&self, uri: &str, doc: Document) -> XdmResult<()> {
        self.insert(uri, doc);
        Ok(())
    }

    fn replace(&self, uri: &str, doc: Arc<Document>) -> XdmResult<()> {
        self.docs.write().insert(uri.to_string(), doc);
        Ok(())
    }
}

/// Identifies the remote function of an `execute at` call: the module URI,
/// the location (at-)hint, the function local name and the arity — exactly
/// the fields of the `xrpc:request` element (paper §2.1).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FunctionRef {
    pub module_ns: String,
    pub location_hint: Option<String>,
    pub local_name: String,
    pub arity: usize,
    /// True when the *caller* knows the function is updating (it may not;
    /// the callee decides authoritatively from its module definition).
    pub updating: bool,
}

/// Dispatches XRPC calls. One implementation lives in `xrpc-peer` (the SOAP
/// client); tests use in-process mocks.
///
/// `calls` carries one `Vec<Sequence>` of actual parameters *per call* —
/// passing several at once is exactly Bulk RPC (paper §3.2). The result has
/// one sequence per call, in call order.
pub trait RpcDispatcher: Send + Sync {
    fn dispatch(
        &self,
        dest: &str,
        func: &FunctionRef,
        calls: Vec<Vec<Sequence>>,
    ) -> XdmResult<Vec<Sequence>>;
}

/// Counters exposed to the benchmark harness.
#[derive(Default, Debug, Clone)]
pub struct EvalStats {
    pub functions_called: u64,
    pub rpc_dispatches: u64,
    pub rpc_calls: u64,
    pub join_index_builds: u64,
    pub join_index_hits: u64,
}

/// Everything that outlives a single query evaluation.
pub struct Environment {
    pub docs: Arc<dyn DocResolver>,
    pub dispatcher: Option<Arc<dyn RpcDispatcher>>,
    pub modules: Arc<ModuleRegistry>,
    /// Enable the predicate join-index fast path (see `index.rs`).
    pub join_index: bool,
    /// Opt-in distributed-optimizer behaviours in the loop-lifted engine:
    /// loop-invariant `execute at` hoisting and duplicate-call collapsing.
    /// Off by default so the wire traffic matches Figure 2 literally.
    pub rpc_optimize: bool,
    pub join_cache: crate::index::JoinIndexCache,
    pub stats: Mutex<EvalStats>,
    /// Function-call recursion limit.
    pub max_depth: usize,
    /// Deadline/cancellation token for the query this environment serves,
    /// polled by the evaluator's loop and recursion sites. `None` (the
    /// default) means the query runs unchecked.
    pub cancel: Option<Arc<CancelToken>>,
    /// Per-operator profile collector for the query this environment
    /// serves (`xrpc:profile`). `None` (the default) means profiling is
    /// off and the instrumentation sites cost one branch.
    pub profile: Option<Arc<xrpc_obs::ProfileCollector>>,
}

impl Environment {
    pub fn new(docs: Arc<dyn DocResolver>) -> Self {
        Environment {
            docs,
            dispatcher: None,
            modules: Arc::new(ModuleRegistry::new()),
            join_index: true,
            rpc_optimize: false,
            join_cache: crate::index::JoinIndexCache::new(),
            stats: Mutex::new(EvalStats::default()),
            max_depth: 128,
            cancel: None,
            profile: None,
        }
    }

    /// The evaluator's cooperative checkpoint: a no-op without a token.
    #[inline]
    pub fn check_cancel(&self) -> XdmResult<()> {
        match &self.cancel {
            Some(t) => t.check(),
            None => Ok(()),
        }
    }

    /// Open a profiled-operator guard, or `None` when profiling is off —
    /// the one-branch fast path every instrumented operator starts with.
    #[inline]
    pub fn profile_op(&self, name: &str) -> Option<xrpc_obs::profile::OpGuard> {
        self.profile.as_ref().map(|p| p.op(name))
    }

    pub fn with_modules(mut self, modules: Arc<ModuleRegistry>) -> Self {
        self.modules = modules;
        self
    }

    pub fn with_dispatcher(mut self, d: Arc<dyn RpcDispatcher>) -> Self {
        self.dispatcher = Some(d);
        self
    }

    pub fn stats(&self) -> EvalStats {
        self.stats.lock().clone()
    }

    pub fn reset_stats(&self) {
        *self.stats.lock() = EvalStats::default();
    }
}

/// Static context: in-scope namespaces and module imports.
#[derive(Clone, Debug, Default)]
pub struct StaticContext {
    /// prefix → namespace URI
    pub namespaces: HashMap<String, String>,
    pub default_element_ns: Option<String>,
    /// prefix → (module ns URI, at-hints)
    pub imports: HashMap<String, (String, Vec<String>)>,
    /// `declare option` values, `prefix:local` → value.
    pub options: HashMap<String, String>,
    /// Base URI for resolving relative `fn:doc` arguments (`declare
    /// base-uri`, or a peer-level default).
    pub base_uri: Option<String>,
    /// Default collation (`declare default collation`, or a peer-level
    /// default). Only the codepoint collation is implemented; the value
    /// participates in the plan-cache fingerprint regardless.
    pub default_collation: Option<String>,
}

impl StaticContext {
    /// Standard prefixes every query sees.
    pub fn with_defaults() -> Self {
        let mut ns = HashMap::new();
        ns.insert("xs".to_string(), xmldom::qname::NS_XS.to_string());
        ns.insert("xsi".to_string(), xmldom::qname::NS_XSI.to_string());
        ns.insert(
            "fn".to_string(),
            "http://www.w3.org/2005/xpath-functions".to_string(),
        );
        ns.insert("xrpc".to_string(), xmldom::qname::NS_XRPC.to_string());
        ns.insert(
            "local".to_string(),
            "http://www.w3.org/2005/xquery-local-functions".to_string(),
        );
        ns.insert("env".to_string(), xmldom::qname::NS_SOAP_ENV.to_string());
        StaticContext {
            namespaces: ns,
            ..Default::default()
        }
    }

    /// Build from a parsed prolog.
    pub fn from_prolog(prolog: &xqast::Prolog) -> Self {
        let mut sc = Self::with_defaults();
        for (p, u) in &prolog.namespaces {
            sc.namespaces.insert(p.clone(), u.clone());
        }
        sc.default_element_ns = prolog.default_element_ns.clone();
        for imp in &prolog.module_imports {
            sc.namespaces.insert(imp.prefix.clone(), imp.ns_uri.clone());
            sc.imports.insert(
                imp.prefix.clone(),
                (imp.ns_uri.clone(), imp.at_hints.clone()),
            );
        }
        for (name, value) in &prolog.options {
            sc.options.insert(name.lexical(), value.clone());
        }
        sc.base_uri = prolog.base_uri.clone();
        sc.default_collation = prolog.default_collation.clone();
        sc
    }

    pub fn resolve_prefix(&self, prefix: &str) -> Option<&str> {
        self.namespaces.get(prefix).map(|s| s.as_str())
    }

    /// Resolve a (possibly relative) document URI against the in-scope
    /// base URI. Absolute URIs — a scheme prefix or a rooted path — and
    /// contexts without a base URI pass through unchanged.
    pub fn resolve_doc_uri(&self, uri: &str) -> String {
        let Some(base) = &self.base_uri else {
            return uri.to_string();
        };
        if uri.contains("://") || uri.starts_with('/') || uri.is_empty() {
            return uri.to_string();
        }
        if base.ends_with('/') {
            format!("{base}{uri}")
        } else {
            format!("{base}/{uri}")
        }
    }

    /// A stable fingerprint of everything in this static context that
    /// affects what a compiled plan means: in-scope namespaces, default
    /// element namespace, module imports, base URI and default collation.
    /// Combined with the module-registry generation it forms the
    /// static-context half of a plan-cache key — two queries with the
    /// same text but different static contexts never share a plan.
    pub fn fingerprint(&self) -> u64 {
        let mut h = FNV_OFFSET;
        let mut feed = |tag: &str, s: &str| {
            h = fnv1a_str(h, tag);
            h = fnv1a_str(h, s);
        };
        let mut ns: Vec<_> = self.namespaces.iter().collect();
        ns.sort();
        for (p, u) in ns {
            feed("ns", p);
            feed("=", u);
        }
        feed("defelem", self.default_element_ns.as_deref().unwrap_or(""));
        let mut imports: Vec<_> = self.imports.iter().collect();
        imports.sort();
        for (p, (u, hints)) in imports {
            feed("import", p);
            feed("=", u);
            for hint in hints {
                feed("at", hint);
            }
        }
        feed("base-uri", self.base_uri.as_deref().unwrap_or(""));
        feed("collation", self.default_collation.as_deref().unwrap_or(""));
        h
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// FNV-1a over a string, continuing from `h` (plus a NUL separator so
/// concatenation boundaries stay distinguishable).
fn fnv1a_str(mut h: u64, s: &str) -> u64 {
    for b in s.as_bytes().iter().chain(std::iter::once(&0u8)) {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmldom::parse;

    #[test]
    fn in_memory_docs_roundtrip() {
        let docs = InMemoryDocs::new();
        docs.insert("a.xml", parse("<a/>").unwrap());
        assert!(docs.resolve("a.xml").is_ok());
        assert_eq!(docs.resolve("b.xml").unwrap_err().code, "FODC0002");
        docs.put("b.xml", parse("<b/>").unwrap()).unwrap();
        assert!(docs.resolve("b.xml").is_ok());
    }

    #[test]
    fn snapshot_is_immutable() {
        let docs = InMemoryDocs::new();
        docs.insert("a.xml", parse("<a/>").unwrap());
        let snap = docs.snapshot();
        docs.insert("a.xml", parse("<changed/>").unwrap());
        // snapshot still sees the old version
        let old = snap.get("a.xml").unwrap();
        let root = old.children(old.root())[0];
        assert_eq!(old.node(root).name.as_ref().unwrap().local, "a");
    }

    #[test]
    fn cancel_token_deadline_and_flags() {
        use std::time::Duration;
        // no deadline: never fails on its own
        let t = CancelToken::new(None);
        for _ in 0..64 {
            t.check().unwrap();
        }
        assert_eq!(t.remaining_millis(), None);
        // explicit cancel → XRPC0005 on the next poll
        t.cancel();
        assert_eq!(t.check().unwrap_err().code, "XRPC0005");

        // expired deadline → XRPC0004 (poll 0 reads the clock)
        let t = CancelToken::new(Some(Instant::now() - Duration::from_millis(1)));
        assert!(t.expired());
        assert_eq!(t.check().unwrap_err().code, "XRPC0004");
        assert_eq!(t.remaining_millis(), Some(0));

        // a live deadline passes checks and reports a shrinking budget
        let t = CancelToken::new(Some(Instant::now() + Duration::from_secs(60)));
        t.check().unwrap();
        let r = t.remaining_millis().unwrap();
        assert!(r > 55_000 && r <= 60_000, "remaining {r}ms");

        // external flag bridges in as cancellation
        let flag = Arc::new(AtomicBool::new(false));
        let t = CancelToken::with_external(None, flag.clone());
        t.check().unwrap();
        flag.store(true, Ordering::Relaxed);
        assert!(t.is_cancelled());
        assert_eq!(t.check().unwrap_err().code, "XRPC0005");
    }

    #[test]
    fn environment_checkpoint_is_noop_without_token() {
        let env = Environment::new(Arc::new(InMemoryDocs::new()));
        env.check_cancel().unwrap();
        let mut env = Environment::new(Arc::new(InMemoryDocs::new()));
        let tok = CancelToken::new(None);
        tok.cancel();
        env.cancel = Some(tok);
        assert_eq!(env.check_cancel().unwrap_err().code, "XRPC0005");
    }

    #[test]
    fn static_context_from_prolog() {
        let m = xqast::parse_main_module(
            r#"declare namespace foo = "urn:foo";
               import module namespace f = "films" at "http://x/film.xq";
               declare option xrpc:isolation "repeatable";
               1"#,
        )
        .unwrap();
        let sc = StaticContext::from_prolog(&m.prolog);
        assert_eq!(sc.resolve_prefix("foo"), Some("urn:foo"));
        assert_eq!(sc.resolve_prefix("f"), Some("films"));
        assert_eq!(sc.imports["f"].1[0], "http://x/film.xq");
        assert_eq!(sc.options["xrpc:isolation"], "repeatable");
        // defaults still present
        assert_eq!(sc.resolve_prefix("xs"), Some(xmldom::qname::NS_XS));
    }
}
