//! Static and dynamic evaluation context, plus the two extension points the
//! distributed layer plugs into: document resolution (`fn:doc`) and XRPC
//! dispatch (`execute at`).

use crate::modules::ModuleRegistry;
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::Arc;
use xdm::{Sequence, XdmError, XdmResult};
use xmldom::Document;

/// Resolves document URIs for `fn:doc` (and stores for `fn:put`).
pub trait DocResolver: Send + Sync {
    fn resolve(&self, uri: &str) -> XdmResult<Arc<Document>>;

    /// `fn:put` target: store `doc` under `uri`. Default: unsupported.
    fn put(&self, _uri: &str, _doc: Document) -> XdmResult<()> {
        Err(XdmError::doc_error(
            "fn:put is not supported by this resolver",
        ))
    }

    /// Swap in a new version of a document (used by `applyUpdates`).
    fn replace(&self, _uri: &str, _doc: Arc<Document>) -> XdmResult<()> {
        Err(XdmError::doc_error(
            "updates are not supported by this resolver",
        ))
    }
}

/// A simple in-memory URI → document map, used by tests, the wrapper and as
/// the building block of the peer document store.
#[derive(Default)]
pub struct InMemoryDocs {
    docs: RwLock<HashMap<String, Arc<Document>>>,
    /// Applied-transaction marks: highest log sequence number whose ∆ has
    /// been applied, per transaction key. Lives with the documents (not
    /// the WAL) because idempotent re-apply needs the mark to travel with
    /// exactly the state it describes across a restart.
    marks: RwLock<HashMap<String, u64>>,
}

impl InMemoryDocs {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn insert(&self, uri: impl Into<String>, doc: Document) {
        self.docs.write().insert(uri.into(), Arc::new(doc));
    }

    pub fn insert_arc(&self, uri: impl Into<String>, doc: Arc<Document>) {
        self.docs.write().insert(uri.into(), doc);
    }

    pub fn get(&self, uri: &str) -> Option<Arc<Document>> {
        self.docs.read().get(uri).cloned()
    }

    pub fn uris(&self) -> Vec<String> {
        self.docs.read().keys().cloned().collect()
    }

    /// A consistent snapshot of every document (repeatable-read isolation
    /// pins one of these per queryID; paper §2.2).
    pub fn snapshot(&self) -> HashMap<String, Arc<Document>> {
        self.docs.read().clone()
    }

    /// The applied mark for `key`, if any: updates logged at-or-below it
    /// have already reached the documents.
    pub fn applied_mark(&self, key: &str) -> Option<u64> {
        self.marks.read().get(key).copied()
    }

    /// Raise the applied mark for `key` to `lsn` (monotonic: a lower or
    /// equal mark never overwrites a higher one).
    pub fn set_applied_mark(&self, key: &str, lsn: u64) {
        let mut marks = self.marks.write();
        let slot = marks.entry(key.to_string()).or_insert(0);
        *slot = (*slot).max(lsn);
    }
}

impl DocResolver for InMemoryDocs {
    fn resolve(&self, uri: &str) -> XdmResult<Arc<Document>> {
        self.get(uri)
            .ok_or_else(|| XdmError::doc_error(format!("document not found: `{uri}`")))
    }

    fn put(&self, uri: &str, doc: Document) -> XdmResult<()> {
        self.insert(uri, doc);
        Ok(())
    }

    fn replace(&self, uri: &str, doc: Arc<Document>) -> XdmResult<()> {
        self.docs.write().insert(uri.to_string(), doc);
        Ok(())
    }
}

/// Identifies the remote function of an `execute at` call: the module URI,
/// the location (at-)hint, the function local name and the arity — exactly
/// the fields of the `xrpc:request` element (paper §2.1).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FunctionRef {
    pub module_ns: String,
    pub location_hint: Option<String>,
    pub local_name: String,
    pub arity: usize,
    /// True when the *caller* knows the function is updating (it may not;
    /// the callee decides authoritatively from its module definition).
    pub updating: bool,
}

/// Dispatches XRPC calls. One implementation lives in `xrpc-peer` (the SOAP
/// client); tests use in-process mocks.
///
/// `calls` carries one `Vec<Sequence>` of actual parameters *per call* —
/// passing several at once is exactly Bulk RPC (paper §3.2). The result has
/// one sequence per call, in call order.
pub trait RpcDispatcher: Send + Sync {
    fn dispatch(
        &self,
        dest: &str,
        func: &FunctionRef,
        calls: Vec<Vec<Sequence>>,
    ) -> XdmResult<Vec<Sequence>>;
}

/// Counters exposed to the benchmark harness.
#[derive(Default, Debug, Clone)]
pub struct EvalStats {
    pub functions_called: u64,
    pub rpc_dispatches: u64,
    pub rpc_calls: u64,
    pub join_index_builds: u64,
    pub join_index_hits: u64,
}

/// Everything that outlives a single query evaluation.
pub struct Environment {
    pub docs: Arc<dyn DocResolver>,
    pub dispatcher: Option<Arc<dyn RpcDispatcher>>,
    pub modules: Arc<ModuleRegistry>,
    /// Enable the predicate join-index fast path (see `index.rs`).
    pub join_index: bool,
    /// Opt-in distributed-optimizer behaviours in the loop-lifted engine:
    /// loop-invariant `execute at` hoisting and duplicate-call collapsing.
    /// Off by default so the wire traffic matches Figure 2 literally.
    pub rpc_optimize: bool,
    pub join_cache: crate::index::JoinIndexCache,
    pub stats: Mutex<EvalStats>,
    /// Function-call recursion limit.
    pub max_depth: usize,
}

impl Environment {
    pub fn new(docs: Arc<dyn DocResolver>) -> Self {
        Environment {
            docs,
            dispatcher: None,
            modules: Arc::new(ModuleRegistry::new()),
            join_index: true,
            rpc_optimize: false,
            join_cache: crate::index::JoinIndexCache::new(),
            stats: Mutex::new(EvalStats::default()),
            max_depth: 128,
        }
    }

    pub fn with_modules(mut self, modules: Arc<ModuleRegistry>) -> Self {
        self.modules = modules;
        self
    }

    pub fn with_dispatcher(mut self, d: Arc<dyn RpcDispatcher>) -> Self {
        self.dispatcher = Some(d);
        self
    }

    pub fn stats(&self) -> EvalStats {
        self.stats.lock().clone()
    }

    pub fn reset_stats(&self) {
        *self.stats.lock() = EvalStats::default();
    }
}

/// Static context: in-scope namespaces and module imports.
#[derive(Clone, Debug, Default)]
pub struct StaticContext {
    /// prefix → namespace URI
    pub namespaces: HashMap<String, String>,
    pub default_element_ns: Option<String>,
    /// prefix → (module ns URI, at-hints)
    pub imports: HashMap<String, (String, Vec<String>)>,
    /// `declare option` values, `prefix:local` → value.
    pub options: HashMap<String, String>,
    /// Base URI for resolving relative `fn:doc` arguments (`declare
    /// base-uri`, or a peer-level default).
    pub base_uri: Option<String>,
    /// Default collation (`declare default collation`, or a peer-level
    /// default). Only the codepoint collation is implemented; the value
    /// participates in the plan-cache fingerprint regardless.
    pub default_collation: Option<String>,
}

impl StaticContext {
    /// Standard prefixes every query sees.
    pub fn with_defaults() -> Self {
        let mut ns = HashMap::new();
        ns.insert("xs".to_string(), xmldom::qname::NS_XS.to_string());
        ns.insert("xsi".to_string(), xmldom::qname::NS_XSI.to_string());
        ns.insert(
            "fn".to_string(),
            "http://www.w3.org/2005/xpath-functions".to_string(),
        );
        ns.insert("xrpc".to_string(), xmldom::qname::NS_XRPC.to_string());
        ns.insert(
            "local".to_string(),
            "http://www.w3.org/2005/xquery-local-functions".to_string(),
        );
        ns.insert("env".to_string(), xmldom::qname::NS_SOAP_ENV.to_string());
        StaticContext {
            namespaces: ns,
            ..Default::default()
        }
    }

    /// Build from a parsed prolog.
    pub fn from_prolog(prolog: &xqast::Prolog) -> Self {
        let mut sc = Self::with_defaults();
        for (p, u) in &prolog.namespaces {
            sc.namespaces.insert(p.clone(), u.clone());
        }
        sc.default_element_ns = prolog.default_element_ns.clone();
        for imp in &prolog.module_imports {
            sc.namespaces.insert(imp.prefix.clone(), imp.ns_uri.clone());
            sc.imports.insert(
                imp.prefix.clone(),
                (imp.ns_uri.clone(), imp.at_hints.clone()),
            );
        }
        for (name, value) in &prolog.options {
            sc.options.insert(name.lexical(), value.clone());
        }
        sc.base_uri = prolog.base_uri.clone();
        sc.default_collation = prolog.default_collation.clone();
        sc
    }

    pub fn resolve_prefix(&self, prefix: &str) -> Option<&str> {
        self.namespaces.get(prefix).map(|s| s.as_str())
    }

    /// Resolve a (possibly relative) document URI against the in-scope
    /// base URI. Absolute URIs — a scheme prefix or a rooted path — and
    /// contexts without a base URI pass through unchanged.
    pub fn resolve_doc_uri(&self, uri: &str) -> String {
        let Some(base) = &self.base_uri else {
            return uri.to_string();
        };
        if uri.contains("://") || uri.starts_with('/') || uri.is_empty() {
            return uri.to_string();
        }
        if base.ends_with('/') {
            format!("{base}{uri}")
        } else {
            format!("{base}/{uri}")
        }
    }

    /// A stable fingerprint of everything in this static context that
    /// affects what a compiled plan means: in-scope namespaces, default
    /// element namespace, module imports, base URI and default collation.
    /// Combined with the module-registry generation it forms the
    /// static-context half of a plan-cache key — two queries with the
    /// same text but different static contexts never share a plan.
    pub fn fingerprint(&self) -> u64 {
        let mut h = FNV_OFFSET;
        let mut feed = |tag: &str, s: &str| {
            h = fnv1a_str(h, tag);
            h = fnv1a_str(h, s);
        };
        let mut ns: Vec<_> = self.namespaces.iter().collect();
        ns.sort();
        for (p, u) in ns {
            feed("ns", p);
            feed("=", u);
        }
        feed("defelem", self.default_element_ns.as_deref().unwrap_or(""));
        let mut imports: Vec<_> = self.imports.iter().collect();
        imports.sort();
        for (p, (u, hints)) in imports {
            feed("import", p);
            feed("=", u);
            for hint in hints {
                feed("at", hint);
            }
        }
        feed("base-uri", self.base_uri.as_deref().unwrap_or(""));
        feed("collation", self.default_collation.as_deref().unwrap_or(""));
        h
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// FNV-1a over a string, continuing from `h` (plus a NUL separator so
/// concatenation boundaries stay distinguishable).
fn fnv1a_str(mut h: u64, s: &str) -> u64 {
    for b in s.as_bytes().iter().chain(std::iter::once(&0u8)) {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmldom::parse;

    #[test]
    fn in_memory_docs_roundtrip() {
        let docs = InMemoryDocs::new();
        docs.insert("a.xml", parse("<a/>").unwrap());
        assert!(docs.resolve("a.xml").is_ok());
        assert_eq!(docs.resolve("b.xml").unwrap_err().code, "FODC0002");
        docs.put("b.xml", parse("<b/>").unwrap()).unwrap();
        assert!(docs.resolve("b.xml").is_ok());
    }

    #[test]
    fn snapshot_is_immutable() {
        let docs = InMemoryDocs::new();
        docs.insert("a.xml", parse("<a/>").unwrap());
        let snap = docs.snapshot();
        docs.insert("a.xml", parse("<changed/>").unwrap());
        // snapshot still sees the old version
        let old = snap.get("a.xml").unwrap();
        let root = old.children(old.root())[0];
        assert_eq!(old.node(root).name.as_ref().unwrap().local, "a");
    }

    #[test]
    fn static_context_from_prolog() {
        let m = xqast::parse_main_module(
            r#"declare namespace foo = "urn:foo";
               import module namespace f = "films" at "http://x/film.xq";
               declare option xrpc:isolation "repeatable";
               1"#,
        )
        .unwrap();
        let sc = StaticContext::from_prolog(&m.prolog);
        assert_eq!(sc.resolve_prefix("foo"), Some("urn:foo"));
        assert_eq!(sc.resolve_prefix("f"), Some("films"));
        assert_eq!(sc.imports["f"].1[0], "http://x/film.xq");
        assert_eq!(sc.options["xrpc:isolation"], "repeatable");
        // defaults still present
        assert_eq!(sc.resolve_prefix("xs"), Some(xmldom::qname::NS_XS));
    }
}
