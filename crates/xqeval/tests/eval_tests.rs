//! End-to-end tests of the tree-walking evaluator: parse + evaluate query
//! strings against in-memory documents.

use std::sync::Arc;
use xdm::{Item, Sequence, XdmResult};
use xqeval::context::{FunctionRef, RpcDispatcher};
use xqeval::{evaluate_main, Environment, InMemoryDocs};

fn env_with(docs: &[(&str, &str)]) -> Environment {
    let store = InMemoryDocs::new();
    for (uri, xml) in docs {
        store.insert(*uri, xmldom::parse_with_uri(xml, uri).unwrap());
    }
    Environment::new(Arc::new(store))
}

fn eval_str(env: &Environment, q: &str) -> String {
    let (seq, _) = evaluate_main(q, env).unwrap_or_else(|e| panic!("eval `{q}`: {e}"));
    serialize(&seq)
}

fn serialize(seq: &Sequence) -> String {
    let mut parts = Vec::new();
    let mut pending_atomic = false;
    let mut out = String::new();
    for item in seq.iter() {
        match item {
            Item::Atomic(a) => {
                if pending_atomic {
                    out.push(' ');
                }
                out.push_str(&a.lexical());
                pending_atomic = true;
            }
            Item::Node(n) => {
                out.push_str(&n.to_xml());
                pending_atomic = false;
            }
        }
    }
    parts.push(out);
    parts.join("")
}

const FILM_DB: &str = r#"<films>
<film><name>The Rock</name><actor>Sean Connery</actor></film>
<film><name>Goldfinger</name><actor>Sean Connery</actor></film>
<film><name>Green Card</name><actor>Gerard Depardieu</actor></film>
</films>"#;

#[test]
fn arithmetic_and_logic() {
    let env = env_with(&[]);
    assert_eq!(eval_str(&env, "1 + 2 * 3"), "7");
    assert_eq!(eval_str(&env, "(1 + 2) * 3"), "9");
    assert_eq!(eval_str(&env, "7 idiv 2"), "3");
    assert_eq!(eval_str(&env, "7 mod 2"), "1");
    assert_eq!(eval_str(&env, "1 div 8"), "0.125");
    assert_eq!(eval_str(&env, "true() and false()"), "false");
    assert_eq!(eval_str(&env, "true() or false()"), "true");
    assert_eq!(eval_str(&env, "not(1 = 2)"), "true");
    assert_eq!(eval_str(&env, "-(3 - 5)"), "2");
}

#[test]
fn sequences_and_ranges() {
    let env = env_with(&[]);
    assert_eq!(eval_str(&env, "(1, 2, 3)"), "1 2 3");
    assert_eq!(eval_str(&env, "1 to 5"), "1 2 3 4 5");
    assert_eq!(eval_str(&env, "5 to 1"), "");
    assert_eq!(eval_str(&env, "count((1 to 100))"), "100");
    assert_eq!(eval_str(&env, "reverse((1, 2, 3))"), "3 2 1");
    assert_eq!(eval_str(&env, "subsequence((1, 2, 3, 4), 2, 2)"), "2 3");
    assert_eq!(eval_str(&env, "(1, 2, 3)[2]"), "2");
    assert_eq!(eval_str(&env, "(1, 2, 3)[. > 1]"), "2 3");
}

#[test]
fn flwor_basics() {
    let env = env_with(&[]);
    assert_eq!(
        eval_str(&env, "for $x in (1 to 4) where $x mod 2 = 0 return $x * 10"),
        "20 40"
    );
    assert_eq!(
        eval_str(&env, "for $x in (1, 2), $y in (10, 20) return $x + $y"),
        "11 21 12 22"
    );
    assert_eq!(
        eval_str(&env, "let $a := 5 let $b := $a * 2 return $b"),
        "10"
    );
    assert_eq!(
        eval_str(&env, "for $x at $i in ('a', 'b', 'c') return $i"),
        "1 2 3"
    );
}

#[test]
fn flwor_order_by() {
    let env = env_with(&[]);
    assert_eq!(
        eval_str(&env, "for $x in (3, 1, 2) order by $x return $x"),
        "1 2 3"
    );
    assert_eq!(
        eval_str(&env, "for $x in (3, 1, 2) order by $x descending return $x"),
        "3 2 1"
    );
    assert_eq!(
        eval_str(&env, "for $p in (('b', 2), ('a', 1)) return ()"),
        ""
    );
    // multi-key
    assert_eq!(
        eval_str(
            &env,
            "for $x in (1, 2, 3, 4) order by $x mod 2, $x descending return $x"
        ),
        "4 2 3 1"
    );
}

#[test]
fn quantified_expressions() {
    let env = env_with(&[]);
    assert_eq!(
        eval_str(&env, "some $x in (1, 2, 3) satisfies $x = 2"),
        "true"
    );
    assert_eq!(
        eval_str(&env, "every $x in (1, 2, 3) satisfies $x > 0"),
        "true"
    );
    assert_eq!(
        eval_str(&env, "every $x in (1, 2, 3) satisfies $x > 1"),
        "false"
    );
    assert_eq!(
        eval_str(&env, "some $x in (1, 2), $y in (2, 3) satisfies $x = $y"),
        "true"
    );
}

#[test]
fn paths_over_film_db() {
    let env = env_with(&[("filmDB.xml", FILM_DB)]);
    assert_eq!(eval_str(&env, r#"count(doc("filmDB.xml")//film)"#), "3");
    assert_eq!(
        eval_str(
            &env,
            r#"doc("filmDB.xml")//name[../actor = "Sean Connery"]"#
        ),
        "<name>The Rock</name><name>Goldfinger</name>"
    );
    assert_eq!(
        eval_str(&env, r#"string(doc("filmDB.xml")/films/film[1]/name)"#),
        "The Rock"
    );
    assert_eq!(
        eval_str(&env, r#"doc("filmDB.xml")//film[last()]/name/text()"#),
        "Green Card"
    );
    assert_eq!(
        eval_str(&env, r#"count(doc("filmDB.xml")/films/child::*)"#),
        "3"
    );
}

#[test]
fn axes_document_order_and_dedup() {
    let env = env_with(&[("t.xml", "<a><b><c/></b><b><c/></b></a>")]);
    // double slash with shared descendants must dedup
    assert_eq!(eval_str(&env, r#"count(doc("t.xml")//c)"#), "2");
    assert_eq!(eval_str(&env, r#"count(doc("t.xml")//c/ancestor::b)"#), "2");
    assert_eq!(eval_str(&env, r#"count(doc("t.xml")//b/..)"#), "1");
}

#[test]
fn attributes_and_wildcards() {
    let env = env_with(&[(
        "p.xml",
        r#"<people><p id="1" name="ann"/><p id="2"/></people>"#,
    )]);
    assert_eq!(eval_str(&env, r#"string(doc("p.xml")//p[1]/@name)"#), "ann");
    assert_eq!(
        eval_str(&env, r#"doc("p.xml")//p[@id = "2"]/@id/data(.)"#),
        "2"
    );
    assert_eq!(eval_str(&env, r#"count(doc("p.xml")//p[1]/@*)"#), "2");
    assert_eq!(eval_str(&env, r#"count(doc("p.xml")/*/*)"#), "2");
}

#[test]
fn constructors() {
    let env = env_with(&[("filmDB.xml", FILM_DB)]);
    assert_eq!(
        eval_str(&env, r#"<out count="{1 + 1}">{ 40 + 2 }</out>"#),
        r#"<out count="2">42</out>"#
    );
    assert_eq!(
        eval_str(
            &env,
            r#"<films>{ doc("filmDB.xml")//name[../actor = "Sean Connery"] }</films>"#
        ),
        "<films><name>The Rock</name><name>Goldfinger</name></films>"
    );
    assert_eq!(
        eval_str(&env, "element tag {attribute k {'v'}, 'body'}"),
        r#"<tag k="v">body</tag>"#
    );
    assert_eq!(eval_str(&env, "string(text {'a', 'b'})"), "a b");
    // adjacent atomics in element content are space-joined
    assert_eq!(eval_str(&env, "<x>{1, 2, 3}</x>"), "<x>1 2 3</x>");
    // constructed nodes are copies: navigating up from them is empty
    assert_eq!(
        eval_str(
            &env,
            r#"count((<wrap>{doc("filmDB.xml")//name}</wrap>)/name/../..)"#
        ),
        "1"
    );
}

#[test]
fn node_identity_and_comparison() {
    let env = env_with(&[("t.xml", "<a><b/></a>")]);
    assert_eq!(
        eval_str(&env, r#"doc("t.xml")//b is doc("t.xml")//b"#),
        "true"
    );
    assert_eq!(
        eval_str(&env, r#"doc("t.xml")/a << doc("t.xml")//b"#),
        "true"
    );
    // constructed copies have fresh identity
    assert_eq!(eval_str(&env, "<x/> is <x/>"), "false");
}

#[test]
fn general_vs_value_comparison() {
    let env = env_with(&[]);
    assert_eq!(eval_str(&env, "(1, 2, 3) = 2"), "true");
    assert_eq!(eval_str(&env, "(1, 2, 3) != 2"), "true"); // existential!
    assert_eq!(eval_str(&env, "() = 2"), "false");
    assert_eq!(eval_str(&env, "2 eq 2"), "true");
    assert_eq!(eval_str(&env, "count(() eq 2)"), "0"); // empty propagates
}

#[test]
fn conditional_and_typeswitch() {
    let env = env_with(&[]);
    assert_eq!(eval_str(&env, "if (1 < 2) then 'y' else 'n'"), "y");
    assert_eq!(
        eval_str(
            &env,
            "typeswitch (42) case xs:string return 's' case xs:integer return 'i' default return 'o'"
        ),
        "i"
    );
    assert_eq!(
        eval_str(
            &env,
            "typeswitch (<a/>) case element() return 'e' default return 'o'"
        ),
        "e"
    );
    assert_eq!(
        eval_str(
            &env,
            "typeswitch ('x') case $s as xs:string return concat($s, '!') default return 'o'"
        ),
        "x!"
    );
}

#[test]
fn casts_and_instance() {
    let env = env_with(&[]);
    assert_eq!(eval_str(&env, "'42' cast as xs:integer"), "42");
    assert_eq!(eval_str(&env, "'x' castable as xs:integer"), "false");
    assert_eq!(eval_str(&env, "3.5 instance of xs:decimal"), "true");
    assert_eq!(eval_str(&env, "(1, 2) instance of xs:integer+"), "true");
    assert_eq!(eval_str(&env, "() instance of xs:integer?"), "true");
}

#[test]
fn user_functions_in_prolog() {
    let env = env_with(&[]);
    assert_eq!(
        eval_str(
            &env,
            "declare function fact($n as xs:integer) as xs:integer \
             { if ($n le 1) then 1 else $n * fact($n - 1) }; fact(6)"
        ),
        "720"
    );
    assert_eq!(
        eval_str(
            &env,
            "declare function local:twice($x) { ($x, $x) }; count(local:twice((1, 2)))"
        ),
        "4"
    );
}

#[test]
fn module_function_call() {
    let env = env_with(&[("filmDB.xml", FILM_DB)]);
    env.modules
        .register_source(
            r#"module namespace film = "films";
               declare function film:filmsByActor($actor as xs:string) as node()*
               { doc("filmDB.xml")//name[../actor = $actor] };"#,
        )
        .unwrap();
    assert_eq!(
        eval_str(
            &env,
            r#"import module namespace f = "films";
               <films>{ f:filmsByActor("Sean Connery") }</films>"#
        ),
        "<films><name>The Rock</name><name>Goldfinger</name></films>"
    );
}

#[test]
fn string_functions() {
    let env = env_with(&[]);
    assert_eq!(eval_str(&env, "concat('a', 'b', 'c')"), "abc");
    assert_eq!(eval_str(&env, "string-join(('a', 'b'), '-')"), "a-b");
    assert_eq!(eval_str(&env, "substring('hello', 2, 3)"), "ell");
    assert_eq!(eval_str(&env, "contains('hello', 'ell')"), "true");
    assert_eq!(eval_str(&env, "starts-with('hello', 'he')"), "true");
    assert_eq!(eval_str(&env, "upper-case('abc')"), "ABC");
    assert_eq!(eval_str(&env, "normalize-space('  a   b ')"), "a b");
    assert_eq!(eval_str(&env, "string-length('héllo')"), "5");
    assert_eq!(eval_str(&env, "substring-before('a=b', '=')"), "a");
    assert_eq!(eval_str(&env, "substring-after('a=b', '=')"), "b");
    assert_eq!(eval_str(&env, "translate('abc', 'abc', 'xyz')"), "xyz");
}

#[test]
fn numeric_and_aggregate_functions() {
    let env = env_with(&[]);
    assert_eq!(eval_str(&env, "sum((1, 2, 3))"), "6");
    assert_eq!(eval_str(&env, "sum(())"), "0");
    assert_eq!(eval_str(&env, "avg((1, 2, 3))"), "2");
    assert_eq!(eval_str(&env, "min((3, 1, 2))"), "1");
    assert_eq!(eval_str(&env, "max((3, 1, 2))"), "3");
    assert_eq!(eval_str(&env, "abs(-5)"), "5");
    assert_eq!(eval_str(&env, "floor(2.7)"), "2");
    assert_eq!(eval_str(&env, "ceiling(2.1)"), "3");
    assert_eq!(eval_str(&env, "round(2.5)"), "3");
    assert_eq!(eval_str(&env, "number('3.5') * 2"), "7");
    assert_eq!(eval_str(&env, "string(number('zzz'))"), "NaN");
}

#[test]
fn sequence_functions() {
    let env = env_with(&[]);
    assert_eq!(eval_str(&env, "distinct-values((1, 2, 1, 3, 2))"), "1 2 3");
    assert_eq!(eval_str(&env, "index-of((10, 20, 10), 10)"), "1 3");
    assert_eq!(eval_str(&env, "insert-before((1, 3), 2, 2)"), "1 2 3");
    assert_eq!(eval_str(&env, "remove((1, 2, 3), 2)"), "1 3");
    assert_eq!(eval_str(&env, "empty(())"), "true");
    assert_eq!(eval_str(&env, "exists((1))"), "true");
    assert_eq!(eval_str(&env, "zero-or-one(())"), "");
    assert_eq!(eval_str(&env, "exactly-one(5)"), "5");
    assert_eq!(
        eval_str(&env, "deep-equal(<a><b>1</b></a>, <a><b>1</b></a>)"),
        "true"
    );
    assert_eq!(
        eval_str(&env, "deep-equal(<a><b>1</b></a>, <a><b>2</b></a>)"),
        "false"
    );
}

#[test]
fn name_functions() {
    let env = env_with(&[("n.xml", r#"<a:root xmlns:a="urn:a"><kid id="1"/></a:root>"#)]);
    assert_eq!(eval_str(&env, r#"name(doc("n.xml")/*)"#), "a:root");
    assert_eq!(eval_str(&env, r#"local-name(doc("n.xml")/*)"#), "root");
    assert_eq!(eval_str(&env, r#"namespace-uri(doc("n.xml")/*)"#), "urn:a");
    assert_eq!(
        eval_str(
            &env,
            r#"doc("n.xml")//*[local-name(.) = 'kid']/@id/string(.)"#
        ),
        "1"
    );
}

#[test]
fn xrpc_url_helpers() {
    let env = env_with(&[]);
    assert_eq!(
        eval_str(&env, "xrpc:host('xrpc://y.example.org:8080/db/x.xml')"),
        "xrpc://y.example.org:8080"
    );
    assert_eq!(
        eval_str(&env, "xrpc:path('xrpc://y.example.org:8080/db/x.xml')"),
        "db/x.xml"
    );
    assert_eq!(eval_str(&env, "xrpc:host('plain.xml')"), "localhost");
    assert_eq!(eval_str(&env, "xrpc:path('plain.xml')"), "plain.xml");
}

#[test]
fn union_intersect_except() {
    let env = env_with(&[("t.xml", "<a><b/><c/><d/></a>")]);
    assert_eq!(
        eval_str(&env, r#"count(doc("t.xml")//b union doc("t.xml")//c)"#),
        "2"
    );
    assert_eq!(
        eval_str(
            &env,
            r#"count((doc("t.xml")/a/* ) intersect (doc("t.xml")//c))"#
        ),
        "1"
    );
    assert_eq!(
        eval_str(
            &env,
            r#"count((doc("t.xml")/a/*) except (doc("t.xml")//c))"#
        ),
        "2"
    );
}

#[test]
fn updates_produce_pul_not_side_effects() {
    let env = env_with(&[("db.xml", "<db><item>1</item></db>")]);
    let (res, pul) = evaluate_main(r#"delete nodes doc("db.xml")//item"#, &env).unwrap();
    assert!(res.is_empty());
    assert_eq!(pul.len(), 1);
    // the document is unchanged until apply_updates
    assert_eq!(eval_str(&env, r#"count(doc("db.xml")//item)"#), "1");
    // apply and swap in
    let edits = xqeval::apply_updates(&pul).unwrap();
    for e in &edits {
        if let Some(uri) = &e.uri {
            env.docs.replace(uri, e.new.clone()).unwrap();
        }
    }
    assert_eq!(eval_str(&env, r#"count(doc("db.xml")//item)"#), "0");
}

#[test]
fn update_in_flwor_collects_multiple_primitives() {
    let env = env_with(&[("db.xml", "<db><i/><i/><i/></db>")]);
    let (_, pul) = evaluate_main(
        r#"for $i in doc("db.xml")//i return insert node <k/> into $i"#,
        &env,
    )
    .unwrap();
    assert_eq!(pul.len(), 3);
}

#[test]
fn updating_function_via_module() {
    let env = env_with(&[("db.xml", "<db/>")]);
    env.modules
        .register_source(
            r#"module namespace m = "mod";
               declare updating function m:add($name as xs:string)
               { insert node element {$name} {} into doc("db.xml")/db };"#,
        )
        .unwrap();
    let (_, pul) = evaluate_main(r#"import module namespace m = "mod"; m:add("x")"#, &env).unwrap();
    assert_eq!(pul.len(), 1);
    let edits = xqeval::apply_updates(&pul).unwrap();
    env.docs.replace("db.xml", edits[0].new.clone()).unwrap();
    assert_eq!(eval_str(&env, r#"count(doc("db.xml")/db/x)"#), "1");
}

#[test]
fn fn_put_records_primitive() {
    let env = env_with(&[]);
    let (_, pul) = evaluate_main(r#"put(<snapshot>data</snapshot>, "snap.xml")"#, &env).unwrap();
    assert_eq!(pul.len(), 1);
    let edits = xqeval::apply_updates(&pul).unwrap();
    env.docs.replace("snap.xml", edits[0].new.clone()).unwrap();
    assert_eq!(eval_str(&env, r#"string(doc("snap.xml"))"#), "data");
}

/// A mock dispatcher that runs calls against another environment, recording
/// bulk shapes — used to test `execute at` without the network stack.
struct MockDispatcher {
    remote: Environment,
    calls_seen: parking_lot::Mutex<Vec<usize>>,
}

impl RpcDispatcher for MockDispatcher {
    fn dispatch(
        &self,
        _dest: &str,
        func: &FunctionRef,
        calls: Vec<Vec<Sequence>>,
    ) -> XdmResult<Vec<Sequence>> {
        self.calls_seen.lock().push(calls.len());
        let module = self
            .remote
            .modules
            .get_or_load(&func.module_ns, func.location_hint.as_deref())?;
        let f = module
            .function(&func.local_name, func.arity)
            .ok_or_else(|| xdm::XdmError::unknown_function("no such remote function"))?;
        let ev = xqeval::Evaluator::new(&self.remote, module.sctx.clone());
        let mut out = Vec::new();
        for args in calls {
            let mut st = xqeval::eval::EvalState::new();
            let base = st.vars.len();
            for ((pname, _), v) in f.params.iter().zip(args) {
                st.vars.push((pname.lexical(), v));
            }
            let r = ev.eval(&f.body, &mut st, &xqeval::eval::Ctx::none())?;
            st.vars.truncate(base);
            out.push(r);
        }
        Ok(out)
    }
}

#[test]
fn execute_at_through_mock_dispatcher() {
    // remote peer: has the film DB and the module
    let remote = env_with(&[("filmDB.xml", FILM_DB)]);
    remote
        .modules
        .register_source(
            r#"module namespace film = "films";
               declare function film:filmsByActor($actor as xs:string) as node()*
               { doc("filmDB.xml")//name[../actor = $actor] };"#,
        )
        .unwrap();
    // local peer: knows the module interface (same registry for simplicity)
    let mut local = env_with(&[]);
    local
        .modules
        .register_source(
            r#"module namespace film = "films";
               declare function film:filmsByActor($actor as xs:string) as node()*
               { doc("filmDB.xml")//name[../actor = $actor] };"#,
        )
        .unwrap();
    let mock = Arc::new(MockDispatcher {
        remote,
        calls_seen: parking_lot::Mutex::new(vec![]),
    });
    local.dispatcher = Some(mock.clone());

    let q = r#"
        import module namespace f = "films";
        <films>{ execute at {"xrpc://y.example.org"} {f:filmsByActor("Sean Connery")} }</films>"#;
    let (res, _) = evaluate_main(q, &local).unwrap();
    assert_eq!(
        serialize(&res),
        "<films><name>The Rock</name><name>Goldfinger</name></films>"
    );
    // tree evaluator dispatches one call at a time
    assert_eq!(*mock.calls_seen.lock(), vec![1]);
}

#[test]
fn execute_at_in_loop_is_one_call_at_a_time_in_tree_engine() {
    let remote = env_with(&[]);
    remote
        .modules
        .register_source(
            r#"module namespace t = "test";
               declare function t:echoVoid() { () };"#,
        )
        .unwrap();
    let mut local = env_with(&[]);
    local
        .modules
        .register_source(
            r#"module namespace t = "test";
               declare function t:echoVoid() { () };"#,
        )
        .unwrap();
    let mock = Arc::new(MockDispatcher {
        remote,
        calls_seen: parking_lot::Mutex::new(vec![]),
    });
    local.dispatcher = Some(mock.clone());
    let q = r#"
        import module namespace t = "test";
        for $i in (1 to 5) return execute at {"xrpc://y"} {t:echoVoid()}"#;
    let (res, _) = evaluate_main(q, &local).unwrap();
    assert!(res.is_empty());
    // five separate dispatches of one call each — the baseline the paper's
    // Table 2 compares Bulk RPC against
    assert_eq!(*mock.calls_seen.lock(), vec![1, 1, 1, 1, 1]);
}

#[test]
fn execute_at_without_dispatcher_errors() {
    let env = env_with(&[]);
    env.modules
        .register_source(r#"module namespace t = "test"; declare function t:f() { 1 };"#)
        .unwrap();
    let err = evaluate_main(
        r#"import module namespace t = "test"; execute at {"xrpc://y"} {t:f()}"#,
        &env,
    )
    .unwrap_err();
    assert_eq!(err.code, "XRPC0001");
}

#[test]
fn join_index_accelerated_lookup_matches_naive() {
    // Build a document big enough to trigger the index.
    let mut xml = String::from("<db>");
    for i in 0..500 {
        xml.push_str(&format!(r#"<person id="p{i}"><name>n{i}</name></person>"#));
    }
    xml.push_str("</db>");
    let env = env_with(&[("people.xml", &xml)]);
    let q = r#"string(doc("people.xml")//person[@id = "p250"]/name)"#;
    assert_eq!(eval_str(&env, q), "n250");
    let stats = env.stats();
    assert_eq!(stats.join_index_builds, 1);
    // repeated probes hit the cache
    assert_eq!(eval_str(&env, q), "n250");
    assert!(env.stats().join_index_hits >= 1);

    // naive evaluation (index off) gives the same answer
    let env2 = env_with(&[("people.xml", &xml)]);
    let mut env2 = env2;
    env2.join_index = false;
    assert_eq!(eval_str(&env2, q), "n250");
    assert_eq!(env2.stats().join_index_builds, 0);
}

#[test]
fn errors_surface_with_codes() {
    let env = env_with(&[]);
    assert_eq!(
        evaluate_main("$undefined", &env).unwrap_err().code,
        "XPST0008"
    );
    assert_eq!(
        evaluate_main("1 idiv 0", &env).unwrap_err().code,
        "FOAR0001"
    );
    assert_eq!(
        evaluate_main(r#"doc("missing.xml")"#, &env)
            .unwrap_err()
            .code,
        "FODC0002"
    );
    assert_eq!(
        evaluate_main("unknown-fn-xyz()", &env).unwrap_err().code,
        "XPST0017"
    );
    assert_eq!(
        evaluate_main("error('Q{uri}mycode', 'boom')", &env)
            .unwrap_err()
            .message,
        "boom"
    );
}

#[test]
fn external_variables() {
    let env = env_with(&[]);
    let (res, _) = xqeval::evaluate_main_with_vars(
        "$x + $y",
        &env,
        vec![
            ("x".to_string(), Sequence::one(Item::integer(40))),
            ("y".to_string(), Sequence::one(Item::integer(2))),
        ],
    )
    .unwrap();
    assert_eq!(serialize(&res), "42");
}

#[test]
fn prolog_variables() {
    let env = env_with(&[]);
    assert_eq!(
        eval_str(&env, "declare variable $base := 10; $base * 2"),
        "20"
    );
}

#[test]
fn deep_recursion_capped() {
    // Debug-build frames are large; give the evaluation a generous stack
    // (the peer runtime does the same for its request handler threads).
    let handle = std::thread::Builder::new()
        .stack_size(64 * 1024 * 1024)
        .spawn(|| {
            let env = env_with(&[]);
            evaluate_main("declare function loop($n) { loop($n + 1) }; loop(0)", &env).unwrap_err()
        })
        .unwrap();
    let err = handle.join().unwrap();
    assert_eq!(err.code, "XQDY0054");
}

#[test]
fn paper_semijoin_pattern() {
    // The §5 distributed semi-join body, evaluated locally.
    let auctions = r#"<site><closed_auctions>
        <closed_auction><buyer person="p0"/><annotation>good</annotation></closed_auction>
        <closed_auction><buyer person="p2"/><annotation>bad</annotation></closed_auction>
    </closed_auctions></site>"#;
    let persons = r#"<site><people>
        <person id="p0"><name>Ann</name></person>
        <person id="p1"><name>Bob</name></person>
    </people></site>"#;
    let env = env_with(&[("auctions.xml", auctions), ("persons.xml", persons)]);
    let q = r#"
        for $p in doc("persons.xml")//person
        let $ca := doc("auctions.xml")//closed_auction[./buyer/@person = $p/@id]
        return if (empty($ca)) then () else <result>{$p/name, $ca/annotation}</result>"#;
    assert_eq!(
        eval_str(&env, q),
        "<result><name>Ann</name><annotation>good</annotation></result>"
    );
}

#[test]
fn flwor_hash_join_matches_naive_nested_loop() {
    // the Q7 join shape; run with the optimization on and off and compare
    let persons = r#"<site><people>
        <person id="p0"><name>Ann</name></person>
        <person id="p1"><name>Bob</name></person>
        <person id="p2"><name>Cec</name></person>
    </people></site>"#;
    let auctions = r#"<site>
        <closed_auction><buyer person="p1"/><annotation>x</annotation></closed_auction>
        <closed_auction><buyer person="p0"/><annotation>y</annotation></closed_auction>
        <closed_auction><buyer person="p1"/><annotation>z</annotation></closed_auction>
        <closed_auction><buyer person="nobody"/><annotation>w</annotation></closed_auction>
    </site>"#;
    let q = r#"
        for $p in doc("persons.xml")//person,
            $ca in doc("auctions.xml")//closed_auction
        where $p/@id = $ca/buyer/@person
        return <r>{string($p/name)}{string($ca/annotation)}</r>"#;
    let run = |join_on: bool| {
        let mut env = env_with(&[("persons.xml", persons), ("auctions.xml", auctions)]);
        env.join_index = join_on;
        eval_str(&env, q)
    };
    let fast = run(true);
    let naive = run(false);
    assert_eq!(fast, naive);
    // order: X-major (persons), then auction document order
    assert_eq!(fast, "<r>Anny</r><r>Bobx</r><r>Bobz</r>");
}

#[test]
fn flwor_hash_join_with_extra_clauses_and_numeric_fallback() {
    let env = env_with(&[]);
    // numeric keys: must fall back to the naive path and still be right
    assert_eq!(
        eval_str(
            &env,
            "for $a in (1, 2, 3), $b in (2, 3, 4) where $a = $b return $a * 10 + $b"
        ),
        "22 33"
    );
    // a compound where (join pattern + extra conjunct) must fall back to
    // the naive path and still be correct
    let persons = r#"<db><p id="a"/><p id="b"/></db>"#;
    let orders = r#"<db><o ref="a" v="1"/><o ref="a" v="2"/><o ref="b" v="3"/></db>"#;
    let env2 = env_with(&[("p.xml", persons), ("o.xml", orders)]);
    assert_eq!(
        eval_str(
            &env2,
            r#"for $p in doc("p.xml")//p, $o in doc("o.xml")//o
               where $p/@id = $o/@ref and number($o/@v) > 1
               return number($o/@v)"#
        ),
        "2 3"
    );
    // hash-joinable pattern with work in the return clause
    assert_eq!(
        eval_str(
            &env2,
            r#"for $p in doc("p.xml")//p, $o in doc("o.xml")//o
               where $p/@id = $o/@ref
               return concat(string($p/@id), "-", string($o/@v))"#
        ),
        "a-1 a-2 b-3"
    );
}
