//! Cast / type-conversion conformance matrix — the regression floor for
//! the coercion rules the prepared-query parameter channel rides (external
//! variables are coerced by the same function-conversion rules).
//!
//! Each row is one `cast as` / `castable as` / promotion case with its
//! pinned outcome; the macros expand every row into its own `#[test]` so a
//! single regression names the exact cell that moved.

use std::sync::Arc;
use xdm::Sequence;
use xqeval::{evaluate_main, Environment, InMemoryDocs};

fn eval(query: &str) -> Result<String, String> {
    let env = Environment::new(Arc::new(InMemoryDocs::new()));
    evaluate_main(query, &env)
        .map(|(seq, _)| serialize(&seq))
        .map_err(|e| e.code)
}

fn serialize(seq: &Sequence) -> String {
    seq.iter()
        .map(|i| i.string_value())
        .collect::<Vec<_>>()
        .join("|")
}

/// `cast_ok!(name, expression, expected_serialization)`
macro_rules! cast_ok {
    ($($name:ident: $expr:expr => $expected:expr;)+) => {
        $(
            #[test]
            fn $name() {
                assert_eq!(eval($expr).as_deref(), Ok($expected), "expr: {}", $expr);
            }
        )+
    };
}

/// `cast_err!(name, expression, expected_error_code)`
macro_rules! cast_err {
    ($($name:ident: $expr:expr => $code:expr;)+) => {
        $(
            #[test]
            fn $name() {
                assert_eq!(eval($expr).as_ref().err().map(|s| s.as_str()), Some($code), "expr: {}", $expr);
            }
        )+
    };
}

// ---------------------------------------------------------------------
// string → T
// ---------------------------------------------------------------------
cast_ok! {
    string_to_integer: r#""42" cast as xs:integer"# => "42";
    string_to_integer_negative: r#""-7" cast as xs:integer"# => "-7";
    string_to_integer_whitespace: r#""  42  " cast as xs:integer"# => "42";
    string_to_decimal: r#""3.14" cast as xs:decimal"# => "3.14";
    string_to_double: r#""1.5e2" cast as xs:double"# => "150";
    string_to_boolean_true: r#""true" cast as xs:boolean"# => "true";
    string_to_boolean_one: r#""1" cast as xs:boolean"# => "true";
    string_to_boolean_false: r#""false" cast as xs:boolean"# => "false";
    string_to_boolean_zero: r#""0" cast as xs:boolean"# => "false";
    string_to_date: r#""2007-09-23" cast as xs:date"# => "2007-09-23";
    string_to_time: r#""10:30:00" cast as xs:time"# => "10:30:00";
    string_to_datetime: r#""2007-09-23T10:30:00" cast as xs:dateTime"# => "2007-09-23T10:30:00";
    string_to_anyuri: r#""xrpc://x.example.org/q" cast as xs:anyURI"# => "xrpc://x.example.org/q";
    string_to_untyped: r#""seq" cast as xs:untypedAtomic"# => "seq";
    string_to_string_identity: r#""abc" cast as xs:string"# => "abc";
}

cast_err! {
    string_to_integer_garbage: r#""abc" cast as xs:integer"# => "FORG0001";
    string_to_integer_decimal_point: r#""4.2" cast as xs:integer"# => "FORG0001";
    string_to_boolean_garbage: r#""yes" cast as xs:boolean"# => "FORG0001";
    string_to_date_garbage: r#""not-a-date" cast as xs:date"# => "FORG0001";
    string_to_double_garbage: r#""1.5ee" cast as xs:double"# => "FORG0001";
}

// ---------------------------------------------------------------------
// numeric tower: integer ↔ decimal ↔ double
// ---------------------------------------------------------------------
cast_ok! {
    integer_to_string: r#"42 cast as xs:string"# => "42";
    integer_to_decimal: r#"42 cast as xs:decimal"# => "42";
    integer_to_double: r#"42 cast as xs:double"# => "42";
    integer_to_boolean_nonzero: r#"7 cast as xs:boolean"# => "true";
    integer_to_boolean_zero: r#"0 cast as xs:boolean"# => "false";
    decimal_to_integer_truncates: r#"3.99 cast as xs:integer"# => "3";
    decimal_to_integer_truncates_negative: r#"-3.99 cast as xs:integer"# => "-3";
    double_to_integer_truncates: r#"2.5e0 cast as xs:integer"# => "2";
    decimal_to_double: r#"2.5 cast as xs:double"# => "2.5";
    double_to_decimal: r#"2.5e0 cast as xs:decimal"# => "2.5";
    double_serialization_integral: r#"1.0e3 cast as xs:string"# => "1000";
}

// ---------------------------------------------------------------------
// boolean → T
// ---------------------------------------------------------------------
cast_ok! {
    boolean_to_integer_true: r#"true() cast as xs:integer"# => "1";
    boolean_to_integer_false: r#"false() cast as xs:integer"# => "0";
    boolean_to_string: r#"true() cast as xs:string"# => "true";
    boolean_to_double: r#"true() cast as xs:double"# => "1";
}

// ---------------------------------------------------------------------
// untypedAtomic behaves like its lexical form (function conversion)
// ---------------------------------------------------------------------
cast_ok! {
    untyped_to_integer: r#"("5" cast as xs:untypedAtomic) cast as xs:integer"# => "5";
    untyped_to_double: r#"("1.5" cast as xs:untypedAtomic) cast as xs:double"# => "1.5";
    untyped_in_arithmetic: r#"("5" cast as xs:untypedAtomic) + 1"# => "6";
}

cast_err! {
    untyped_to_integer_garbage: r#"("x" cast as xs:untypedAtomic) cast as xs:integer"# => "FORG0001";
}

// ---------------------------------------------------------------------
// empty sequences and cardinality
// ---------------------------------------------------------------------
cast_ok! {
    empty_to_optional: r#"() cast as xs:integer?"# => "";
    castable_reports_true: r#""42" castable as xs:integer"# => "true";
    castable_reports_false: r#""abc" castable as xs:integer"# => "false";
    castable_empty_optional: r#"() castable as xs:integer?"# => "true";
    castable_empty_required: r#"() castable as xs:integer"# => "false";
}

cast_err! {
    empty_to_required_errors: r#"() cast as xs:integer"# => "XPTY0004";
}

// ---------------------------------------------------------------------
// temporal round-trips
// ---------------------------------------------------------------------
cast_ok! {
    date_roundtrip: r#"(("2007-09-23" cast as xs:date) cast as xs:string) cast as xs:date"# => "2007-09-23";
    datetime_to_string: r#"("2007-09-23T10:30:00" cast as xs:dateTime) cast as xs:string"# => "2007-09-23T10:30:00";
}

// ---------------------------------------------------------------------
// external-variable coercion: the same matrix through the parameter
// channel the prepared-query API uses
// ---------------------------------------------------------------------
mod external_coercion {
    use super::*;
    use xdm::Item;
    use xqeval::evaluate_main_with_vars;

    fn eval_with(query: &str, name: &str, value: Sequence) -> Result<String, String> {
        let env = Environment::new(Arc::new(InMemoryDocs::new()));
        evaluate_main_with_vars(query, &env, vec![(name.to_string(), value)])
            .map(|(seq, _)| serialize(&seq))
            .map_err(|e| e.code)
    }

    #[test]
    fn string_coerces_to_declared_integer() {
        let r = eval_with(
            r#"declare variable $n as xs:integer external; $n + 1"#,
            "n",
            Sequence::one(Item::string("41")),
        );
        assert_eq!(r.as_deref(), Ok("42"));
    }

    #[test]
    fn matching_type_passes_through() {
        let r = eval_with(
            r#"declare variable $n as xs:integer external; $n + 1"#,
            "n",
            Sequence::one(Item::integer(41)),
        );
        assert_eq!(r.as_deref(), Ok("42"));
    }

    #[test]
    fn uncoercible_value_is_a_type_error() {
        let r = eval_with(
            r#"declare variable $n as xs:integer external; $n"#,
            "n",
            Sequence::one(Item::string("abc")),
        );
        assert!(r.is_err(), "casting 'abc' to integer must fail");
    }

    #[test]
    fn cardinality_violation_rejected() {
        let r = eval_with(
            r#"declare variable $n as xs:integer external; $n"#,
            "n",
            Sequence::from_items(vec![Item::integer(1), Item::integer(2)]),
        );
        assert_eq!(r.as_ref().err().map(|s| s.as_str()), Some("XPTY0004"));
    }

    #[test]
    fn untyped_declaration_accepts_anything() {
        let r = eval_with(
            r#"declare variable $x external; count($x)"#,
            "x",
            Sequence::from_items(vec![Item::integer(1), Item::string("two")]),
        );
        assert_eq!(r.as_deref(), Ok("2"));
    }
}
