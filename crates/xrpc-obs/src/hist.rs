//! Log-linear atomic histogram, HDR-style: each power-of-two magnitude
//! is split into [`SUB_BUCKETS`] linear sub-buckets, so any recorded
//! value lands in a bucket whose width is at most `1/16` of its lower
//! bound (≤ 6.25 % relative error) while the whole table is a fixed
//! 1024 × `AtomicU64` ≈ 8 KiB regardless of range. Recording is one
//! relaxed `fetch_add`; snapshots and merges never block recorders.
//!
//! Units are the caller's business: the same type records microseconds
//! (latencies), bytes (message sizes) and plain counts (batch sizes).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Linear sub-buckets per power-of-two magnitude.
pub const SUB_BUCKETS: usize = 16;
const SUB_BITS: u32 = 4; // log2(SUB_BUCKETS)
/// Total bucket count: indices 0..16 are exact (value == index), the
/// remaining magnitudes (4..=63) contribute 16 buckets each; 1024
/// rounds the 976 reachable slots up to a power of two.
pub const BUCKETS: usize = 1024;

/// Map a value to its bucket index. Values below 16 are exact; above,
/// the top [`SUB_BITS`] bits after the leading one select the
/// sub-bucket within the value's magnitude.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS as u64 {
        return v as usize;
    }
    let m = 63 - v.leading_zeros(); // >= SUB_BITS
    let sub = (v >> (m - SUB_BITS)) & (SUB_BUCKETS as u64 - 1);
    ((m - SUB_BITS + 1) as usize) * SUB_BUCKETS + sub as usize
}

/// Inclusive upper edge of bucket `i` — the value reported for any
/// sample that landed in it (so reported quantiles never under-state).
pub fn bucket_high(i: usize) -> u64 {
    if i < SUB_BUCKETS {
        return i as u64;
    }
    let hi = (i / SUB_BUCKETS) as u32;
    let sub = (i % SUB_BUCKETS) as u64;
    let m = hi + SUB_BITS - 1;
    let width = 1u64 << (m - SUB_BITS);
    (1u64 << m) + sub * width + (width - 1)
}

/// Lower edge of bucket `i`.
pub fn bucket_low(i: usize) -> u64 {
    if i < SUB_BUCKETS {
        return i as u64;
    }
    let hi = (i / SUB_BUCKETS) as u32;
    let sub = (i % SUB_BUCKETS) as u64;
    let m = hi + SUB_BITS - 1;
    (1u64 << m) + sub * (1u64 << (m - SUB_BITS))
}

/// Point-in-time view of a histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistSnapshot {
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    pub p50: u64,
    pub p90: u64,
    pub p99: u64,
}

impl HistSnapshot {
    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// The histogram itself. `min`/`max` are tracked exactly (not at
/// bucket granularity) via `fetch_min`/`fetch_max`.
pub struct Histogram {
    buckets: Box<[AtomicU64; BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    pub fn new() -> Self {
        Histogram {
            buckets: Box::new([const { AtomicU64::new(0) }; BUCKETS]),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Record a duration in whole microseconds.
    #[inline]
    pub fn record_micros(&self, d: Duration) {
        self.record(d.as_micros().min(u64::MAX as u128) as u64);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Fold another histogram's buckets into this one. Snapshot-equal
    /// to having recorded both value streams into a single histogram.
    pub fn merge(&self, other: &Histogram) {
        for i in 0..BUCKETS {
            let n = other.buckets[i].load(Ordering::Relaxed);
            if n > 0 {
                self.buckets[i].fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.min
            .fetch_min(other.min.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// The value at quantile `q` (0 < q ≤ 1): the upper edge of the
    /// first bucket whose cumulative count reaches `ceil(q·count)`, so
    /// at least a `q` fraction of recorded samples are ≤ the result.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count.load(Ordering::Relaxed);
        if count == 0 {
            return 0;
        }
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for i in 0..BUCKETS {
            seen += self.buckets[i].load(Ordering::Relaxed);
            if seen >= rank {
                // never report past the true maximum
                return bucket_high(i).min(self.max.load(Ordering::Relaxed));
            }
        }
        self.max.load(Ordering::Relaxed)
    }

    pub fn snapshot(&self) -> HistSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        if count == 0 {
            return HistSnapshot::default();
        }
        HistSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
        }
    }
}

/// A histogram family keyed by one label value (e.g. destination),
/// exposed as `name{dest="..."}` in the Prometheus output.
pub struct HistogramVec {
    label: String,
    children: std::sync::Mutex<std::collections::BTreeMap<String, std::sync::Arc<Histogram>>>,
}

impl HistogramVec {
    pub fn new(label: &str) -> Self {
        HistogramVec {
            label: label.to_string(),
            children: std::sync::Mutex::new(std::collections::BTreeMap::new()),
        }
    }

    pub fn label(&self) -> &str {
        &self.label
    }

    /// Get-or-create the child histogram for one label value.
    pub fn with_label(&self, value: &str) -> std::sync::Arc<Histogram> {
        let mut c = self.children.lock().unwrap();
        c.entry(value.to_string())
            .or_insert_with(|| std::sync::Arc::new(Histogram::new()))
            .clone()
    }

    /// All children, label-sorted.
    pub fn children(&self) -> Vec<(String, std::sync::Arc<Histogram>)> {
        self.children
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn small_values_are_exact_buckets() {
        for v in 0..16u64 {
            assert_eq!(bucket_index(v), v as usize, "value {v}");
            assert_eq!(bucket_low(v as usize), v);
            assert_eq!(bucket_high(v as usize), v);
        }
    }

    #[test]
    fn buckets_are_contiguous_and_monotone() {
        // every value maps into a bucket whose [low, high] contains it,
        // and bucket edges tile the range without gaps or overlaps
        let mut prev_high = None;
        for i in 0..BUCKETS {
            let lo = bucket_low(i);
            let hi = bucket_high(i);
            assert!(lo <= hi, "bucket {i}: low {lo} > high {hi}");
            if let Some(p) = prev_high {
                if lo == 0 && i > 0 {
                    continue; // unreachable tail buckets past u64 range
                }
                assert_eq!(lo, p + 1, "gap before bucket {i}");
            }
            prev_high = Some(hi);
            if hi == u64::MAX {
                break;
            }
        }
        for v in [
            0u64,
            1,
            15,
            16,
            17,
            31,
            32,
            100,
            1_000,
            65_535,
            65_536,
            1 << 30,
            (1 << 40) + 12345,
            u64::MAX / 2,
        ] {
            let i = bucket_index(v);
            assert!(
                bucket_low(i) <= v && v <= bucket_high(i),
                "value {v} outside bucket {i} [{}, {}]",
                bucket_low(i),
                bucket_high(i)
            );
        }
    }

    #[test]
    fn bucket_relative_error_bounded() {
        // bucket width / lower-bound ≤ 1/16 for all values ≥ 16
        for v in [16u64, 100, 999, 4096, 1 << 20, (1 << 33) + 7] {
            let i = bucket_index(v);
            let width = bucket_high(i) - bucket_low(i) + 1;
            assert!(
                (width as f64) / (bucket_low(i) as f64) <= 1.0 / 16.0 + 1e-9,
                "value {v}: width {width} low {}",
                bucket_low(i)
            );
        }
    }

    #[test]
    fn p99_of_known_distribution_within_bucket_error() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.sum, 500_500);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 1000);
        // true p99 = 990; the reported value is the containing bucket's
        // upper edge, within the 6.25 % log-linear error bound
        let true_p99 = 990.0;
        assert!(
            (s.p99 as f64 - true_p99).abs() / true_p99 <= 1.0 / 16.0,
            "p99 {} vs true {true_p99}",
            s.p99
        );
        assert!(s.p99 as f64 >= true_p99, "quantile must not under-state");
        // same for p50 (true 500)
        assert!(
            (s.p50 as f64 - 500.0).abs() / 500.0 <= 1.0 / 16.0,
            "p50 {}",
            s.p50
        );
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = Arc::new(Histogram::new());
        let threads = 8;
        let per_thread = 10_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        h.record(t * per_thread + i);
                    }
                })
            })
            .collect();
        for j in handles {
            j.join().unwrap();
        }
        let s = h.snapshot();
        assert_eq!(s.count, threads * per_thread);
        let expect_sum: u64 = (0..threads * per_thread).sum();
        assert_eq!(s.sum, expect_sum);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, threads * per_thread - 1);
    }

    #[test]
    fn merge_equals_single_histogram() {
        let a = Histogram::new();
        let b = Histogram::new();
        let one = Histogram::new();
        for v in [0u64, 1, 5, 16, 17, 99, 1_000, 123_456, 1 << 30] {
            a.record(v);
            one.record(v);
        }
        for v in [2u64, 3, 64, 65_536, 7_777_777, u64::MAX / 3] {
            b.record(v);
            one.record(v);
        }
        a.merge(&b);
        assert_eq!(a.snapshot(), one.snapshot());
    }

    #[test]
    fn empty_snapshot_is_zeroed() {
        let s = Histogram::new().snapshot();
        assert_eq!(s, HistSnapshot::default());
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn vec_children_sorted_and_reused() {
        let v = HistogramVec::new("dest");
        v.with_label("b").record(2);
        v.with_label("a").record(1);
        v.with_label("b").record(4);
        let kids = v.children();
        assert_eq!(
            kids.iter().map(|(k, _)| k.as_str()).collect::<Vec<_>>(),
            vec!["a", "b"]
        );
        assert_eq!(kids[1].1.count(), 2);
    }
}
